#!/usr/bin/env bash
# Regenerates every table/figure of the paper and stores the CSV outputs
# under artifacts/. Set QAPROX_QUICK=1 for a fast smoke pass.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p artifacts
cargo build --release -p qaprox-bench

BINS=(table1 fig02 fig03 fig04 fig05 fig06 fig07 fig08 fig09 fig10 fig11 \
      fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 qvolume \
      selection_study mitigation_study partitioned_study roadmap_study metrics_study drift_study)

for bin in "${BINS[@]}"; do
    echo "=== $bin ==="
    start=$(date +%s)
    "target/release/$bin" 2>&1 | tee "artifacts/$bin.csv" | tail -5
    echo "# wall: $(( $(date +%s) - start ))s" | tee -a "artifacts/$bin.csv"
done

echo "all experiment outputs written to artifacts/"
