#!/usr/bin/env bash
# End-to-end smoke test for the job service: start `qaprox serve` on a
# random port, submit a tiny synth + run job, assert the identical resubmit
# answers from the artifact store, then exercise `store stats` / `store gc`.
# Used by CI (serve-smoke job); runnable locally after
# `cargo build --release -p qaprox-cli`.
set -euo pipefail

bin=${QAPROX_BIN:-target/release/qaprox}
store=$(mktemp -d)
log=$(mktemp)

"$bin" serve --addr 127.0.0.1:0 --workers 2 --store "$store" >"$log" 2>&1 &
server_pid=$!
cleanup() {
    kill "$server_pid" 2>/dev/null || true
    rm -rf "$store" "$log"
}
trap cleanup EXIT

# the server prints "# qaprox-serve listening on HOST:PORT (...)" once bound
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^# qaprox-serve listening on \([0-9.:]*\).*/\1/p' "$log")
    [ -n "$addr" ] && break
    sleep 0.2
done
if [ -z "$addr" ]; then
    echo "serve_smoke: server did not start" >&2
    cat "$log" >&2
    exit 1
fi
echo "serve_smoke: server at $addr (store: $store)"

tiny=(--workload tfim --qubits 2 --steps 2 --max-cnots 3 --max-nodes 25 --max-hs 0.4)

echo "--- synth (cold)"
out=$("$bin" submit --addr "$addr" --op synth "${tiny[@]}")
echo "$out"
grep -q "cached=false" <<<"$out" || { echo "serve_smoke: first synth must compute" >&2; exit 1; }

echo "--- synth (resubmit must hit the store)"
out=$("$bin" submit --addr "$addr" --op synth "${tiny[@]}")
echo "$out"
grep -q "cached=true" <<<"$out" || { echo "serve_smoke: resubmit did not hit the cache" >&2; exit 1; }

echo "--- run (reuses the cached population)"
out=$("$bin" submit --addr "$addr" --op run "${tiny[@]}" --device ourense --cx-error 0.1)
echo "$out"
grep -q "population_cached=true" <<<"$out" || { echo "serve_smoke: run did not reuse the population" >&2; exit 1; }

echo "--- store stats + gc"
"$bin" store stats --store "$store"
"$bin" store gc --max-bytes 0 --store "$store"

echo "serve_smoke: OK"
