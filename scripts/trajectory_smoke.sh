#!/usr/bin/env bash
# Trajectory-backend smoke test: the engine's quick convergence and
# thread-invariance tests, a narrow end-to-end CLI run, and the wide path
# the backend exists for — a noisy 27-qubit TFIM on the Toronto heavy-hex
# (a density matrix at that width would need 4^27 entries; one trajectory
# shot is a single 2^27 statevector, ~2 GiB transient, minutes of CPU).
# The wide run uses --steps 3 so the job scores >= 2 candidate truncations
# and therefore lands on the shot-batched fast path (TrajectoryBatch: one
# shared arena reset per shot across all candidates), not the solo loop.
# Used by CI (trajectory-smoke job); runnable locally after
# `cargo build --release -p qaprox-cli`.
set -euo pipefail

bin=${QAPROX_BIN:-target/release/qaprox}

echo "--- trajectory engine tests (quick): convergence vs density matrix,"
echo "--- thread-count invariance, fusion exactness, batch bit-identity"
QAPROX_QUICK=1 cargo test -p qaprox-sim trajectory::
QAPROX_QUICK=1 cargo test -p qaprox-sim --features parallel trajectory::

echo "--- narrow end-to-end: 3q TFIM on ourense, trajectory backend"
"$bin" run --workload tfim --qubits 3 --steps 4 --device ourense \
    --backend trajectory --shots 256 --no-store

echo "--- same narrow run with QAPROX_SIMD=0 (forced-scalar kernels);"
echo "--- dispatch is bit-identical by contract, so this just pins the fallback"
QAPROX_SIMD=0 "$bin" run --workload tfim --qubits 3 --steps 4 --device ourense \
    --backend trajectory --shots 256 --no-store

echo "--- wide end-to-end: 27q TFIM on the Toronto heavy-hex, multi-candidate"
echo "--- (steps 3 => the shot-batched path engages across the truncations)"
out=$("$bin" run --workload tfim --qubits 27 --steps 3 --device toronto \
    --backend trajectory --shots 1 --no-store)
echo "$out"
grep -q "tvd_to_ideal" <<<"$out" || {
    echo "trajectory_smoke: 27q run produced no scored rows" >&2
    exit 1
}

echo "trajectory_smoke: OK"
