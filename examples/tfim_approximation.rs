//! The paper's headline experiment in miniature: approximate circuits for
//! the time-dependent Transverse-Field Ising Model, evaluated on a device
//! noise model and across a CNOT-error sweep.
//!
//! ```sh
//! cargo run --release -p qaprox --example tfim_approximation
//! ```

use qaprox::prelude::*;
use qaprox::sweep::{cx_error_sweep, mean_best_depth};
use qaprox::tfim_study::{evaluate, generate_populations, series_error};
use qaprox_synth::InstantiateConfig;

fn main() {
    // A moderate configuration: 8 timesteps, 3 qubits.
    let params = TfimParams::paper_defaults(3);
    let steps = 8;
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 6,
            max_nodes: 120,
            beam_width: 4,
            instantiate: InstantiateConfig {
                starts: 2,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.12,
    };

    println!("generating approximate circuits for {steps} TFIM timesteps...");
    let pops = generate_populations(&params, steps, &workflow);
    for (i, p) in pops.populations.iter().enumerate() {
        println!(
            "  step {:>2}: reference {} CNOTs -> {} approximations (min HS {:.1e}, {} CNOTs)",
            i + 1,
            pops.references[i].cx_count(),
            p.circuits.len(),
            p.minimal_hs.hs_distance,
            p.minimal_hs.cnots,
        );
    }

    // Evaluate under the Toronto device model.
    let cal = devices::toronto().induced(&[0, 1, 2]);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let results = evaluate(&pops, &backend);
    println!("\nmagnetization per timestep (Toronto model):");
    println!("step | ideal  | noisy ref | best approx (CNOTs)");
    for r in &results {
        println!(
            "{:>4} | {:>6.3} | {:>9.3} | {:>6.3} ({})",
            r.step, r.noise_free_ref, r.noisy_ref, r.best_approx.score, r.best_approx.cnots
        );
    }
    let ref_err = series_error(&results, |r| r.noisy_ref);
    let best_err = series_error(&results, |r| r.best_approx.score);
    println!("mean |error|: reference {ref_err:.4}, best approximate {best_err:.4}");

    // CNOT-error sweep (Obs. 6): winners get shallower as noise grows.
    println!("\nCNOT-error sweep (Ourense base):");
    let base = devices::ourense().induced(&[0, 1, 2]);
    let sweep = cx_error_sweep(&pops, &base, &[0.0, 0.03, 0.12, 0.24]);
    for (eps, depth) in mean_best_depth(&sweep) {
        println!("  cx_error={eps:<7} mean winning CNOT depth = {depth:.2}");
    }
}
