//! Grover's algorithm under increasing noise: when does the approximate
//! circuit overtake the exact one?
//!
//! ```sh
//! cargo run --release -p qaprox --example grover_noise_study
//! ```

use qaprox::grover_study::GroverStudy;
use qaprox::prelude::*;
use qaprox_synth::InstantiateConfig;

fn main() {
    let study = GroverStudy::paper();
    let reference = study.reference();
    println!(
        "3-qubit Grover for |111>: reference uses {} CNOTs over {} gates",
        reference.cx_count(),
        reference.len()
    );

    // Generate an approximate population once.
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 6,
            max_nodes: 120,
            beam_width: 4,
            instantiate: InstantiateConfig {
                starts: 2,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.12,
    };
    let pop = workflow.generate(&study.target_unitary());
    println!(
        "kept {} approximate circuits (HS <= 0.12)\n",
        pop.circuits.len()
    );

    // Sweep the CNOT error and watch the crossover.
    println!("cx_error | P(correct) reference | best approximate (CNOTs) | winner");
    let base = devices::ourense().induced(&[0, 1, 2]);
    for eps in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2] {
        let cal = base.with_uniform_cx_error(eps);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let ref_p = study.reference_score(&backend);
        let scored = study.evaluate_population(&pop.circuits, &backend);
        let best = scored
            .iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .expect("population not empty");
        let winner = if best.score > ref_p {
            "approximate"
        } else {
            "reference"
        };
        println!(
            "{eps:>8} | {ref_p:>20.4} | {:>7.4} ({:>2})          | {winner}",
            best.score, best.cnots
        );
    }

    println!("\nthe exact circuit wins only while noise stays negligible;");
    println!("as CNOT error grows, shorter approximations take over (Obs. 5/6).");
}
