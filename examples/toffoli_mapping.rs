//! Qubit-mapping sensitivity: the same Toffoli approximations land on
//! different JS distances depending on which physical qubits they use
//! (the paper's Figs. 16-19).
//!
//! ```sh
//! cargo run --release -p qaprox --example toffoli_mapping
//! ```

use qaprox::mapping::{compare_mappings, Placement};
use qaprox::prelude::*;
use qaprox::toffoli_study::{random_noise_js, toffoli_target};
use qaprox_device::standard_mappings;
use qaprox_synth::InstantiateConfig;

fn main() {
    let device = devices::toronto();
    println!(
        "device: {} ({} qubits)",
        device.machine,
        device.topology.num_qubits()
    );

    // The candidate mapping "circles" of Fig. 16.
    let maps = standard_mappings(&device, 3);
    println!("candidate mappings (3 qubits):");
    for m in &maps {
        println!(
            "  {:<22} qubits {:?}  noise score {:.4}",
            m.name,
            m.qubits,
            device.subset_score(&m.qubits)
        );
    }

    // A small approximate population for the 3-qubit Toffoli.
    let workflow = Workflow {
        topology: Topology::linear(3),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 5,
            max_nodes: 60,
            beam_width: 3,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.12,
    };
    let pop = workflow.generate(&toffoli_target(3));
    println!("\npopulation: {} approximate circuits", pop.circuits.len());

    let reference = mct_reference(3);
    let placements = vec![
        (
            "blue(best)".to_string(),
            Placement::Manual(maps[0].qubits.clone()),
        ),
        (
            "red(worst)".to_string(),
            Placement::Manual(maps[1].qubits.clone()),
        ),
        ("auto(level-3)".to_string(), Placement::Auto),
    ];
    let effects = HardwareEffects {
        shots: 4096,
        ..Default::default()
    };
    let results = compare_mappings(&device, &placements, &reference, &pop.circuits, &effects);

    println!("\nmapping                | reference JS | best approx JS | beats ref");
    for (label, ref_js, scored) in &results {
        let best = scored
            .iter()
            .map(|s| s.score)
            .min_by(f64::total_cmp)
            .unwrap_or(f64::NAN);
        let wins = scored.iter().filter(|s| s.score < *ref_js).count();
        println!(
            "{label:<22} | {ref_js:>12.4} | {best:>14.4} | {wins}/{}",
            scored.len()
        );
    }
    println!(
        "\nrandom-noise JS floor for this battery: {:.4}",
        random_noise_js(3)
    );
    println!(
        "different mappings shift both series: CNOT error is not the only contributor (Obs. 9)."
    );
}
