//! Quickstart: the paper's Fig. 1 workflow end to end on a small circuit.
//!
//! ```sh
//! cargo run --release -p qaprox --example quickstart
//! ```
//!
//! 1. build a reference circuit and take its unitary;
//! 2. run (modified) synthesis to generate approximate circuits;
//! 3. select by Hilbert-Schmidt threshold;
//! 4. execute everything on a noisy device model;
//! 5. compare against the noise-free reference.

use qaprox::prelude::*;

fn main() {
    // 1. A reference circuit: GHZ preparation with a twist of rotation.
    let mut reference = Circuit::new(3);
    reference.h(0).cx(0, 1).cx(1, 2).rz(0.6, 2).cx(1, 2);
    println!("reference: {}", qaprox_circuit::qasm::summary(&reference));

    let target = Workflow::target_unitary(&reference);

    // 2-3. Generate + select approximate circuits over a linear 3-qubit chain.
    let workflow = Workflow::linear_qsearch(3);
    let population = workflow.generate(&target);
    println!(
        "synthesis explored {} candidates, kept {} with HS <= {}",
        population.explored,
        population.circuits.len(),
        workflow.max_hs
    );
    println!(
        "minimal-HS circuit: {} CNOTs at distance {:.2e} (reference has {})",
        population.minimal_hs.cnots,
        population.minimal_hs.hs_distance,
        reference.cx_count()
    );

    // 4. Execute on the Ourense noise model (qubits 0..3, level-1 style).
    let cal = devices::ourense().induced(&[0, 1, 2]);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));

    // 5. Score by fidelity of the output distribution to the ideal one.
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let scored = execute_and_score(&population.circuits, &backend, |_, probs| {
        // total-variation distance to the noise-free output (lower = better)
        qaprox_metrics::total_variation(probs, &ideal)
    });

    let ref_tvd = {
        let noisy_ref = backend.probabilities(&reference, 0);
        qaprox_metrics::total_variation(&noisy_ref, &ideal)
    };
    println!("noisy reference TVD to ideal: {ref_tvd:.4}");

    let mut best: Vec<_> = scored.iter().collect();
    best.sort_by(|a, b| a.score.total_cmp(&b.score));
    println!("top approximate circuits (TVD to ideal | CNOTs | HS distance):");
    for s in best.iter().take(5) {
        let marker = if s.score < ref_tvd {
            "BEATS REFERENCE"
        } else {
            ""
        };
        println!(
            "  {:.4} | {:>2} | {:.4}  {marker}",
            s.score, s.cnots, s.hs_distance
        );
    }
    let wins = scored.iter().filter(|s| s.score < ref_tvd).count();
    println!(
        "{} of {} approximate circuits outperform the exact reference under noise",
        wins,
        scored.len()
    );
}
