//! Approximating a QAOA MaxCut circuit — the Related-Work ([20]) workload:
//! do shorter approximate QAOA circuits preserve the expected cut under
//! noise better than the exact circuit?
//!
//! ```sh
//! cargo run --release -p qaprox --example qaoa_approximation
//! ```

use qaprox::prelude::*;
use qaprox_algos::qaoa::{qaoa_circuit, tune_p1, MaxCutGraph};
use qaprox_synth::InstantiateConfig;

fn main() {
    // MaxCut on a 4-cycle: max cut = 4.
    let graph = MaxCutGraph::cycle(4);
    let (gamma, beta, ideal_cut) = tune_p1(&graph, 16);
    let reference = qaoa_circuit(&graph, &[gamma], &[beta]);
    println!(
        "QAOA p=1 on C4: gamma={gamma:.3} beta={beta:.3}, ideal expected cut {ideal_cut:.3} \
         (max {}), reference uses {} CNOTs",
        graph.max_cut(),
        reference.cx_count()
    );

    // Generate approximations over the 4-qubit line.
    let workflow = Workflow {
        topology: Topology::linear(4),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots: 6,
            max_nodes: 150,
            beam_width: 4,
            instantiate: InstantiateConfig {
                starts: 3,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs: 0.25,
    };
    let pop = workflow.generate(&Workflow::target_unitary(&reference));
    println!("population: {} approximate circuits\n", pop.circuits.len());

    println!("cx_error | expected cut: reference | best approximate (CNOTs)");
    let base = devices::toronto().induced(&[0, 1, 2, 3]);
    for eps in [0.0, 0.01, 0.03, 0.08, 0.15] {
        let cal = base.with_uniform_cx_error(eps);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let ref_cut = graph.expected_cut(&backend.probabilities(&reference, 0));
        let best = pop
            .circuits
            .iter()
            .enumerate()
            .map(|(i, ap)| {
                let cut = graph.expected_cut(&backend.probabilities(&ap.circuit, i as u64));
                (cut, ap.cnots)
            })
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .expect("nonempty population");
        let winner = if best.0 > ref_cut { "approx" } else { "exact" };
        println!(
            "{eps:>8} | {ref_cut:>23.3} | {:>6.3} ({:>2})  <- {winner}",
            best.0, best.1
        );
    }
    println!("\nshorter approximate QAOA circuits hold their cut value as noise grows,");
    println!("matching the Related-Work observation the paper cites ([20]).");
}
