// qaprox circuit: 2 qubits, 2 gates
qreg q[2];
cx q[0],q[1];
rz(0.700000000000) q[0];
