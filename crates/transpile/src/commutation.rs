//! Commutation-aware CX cancellation.
//!
//! The plain [`crate::optimize::cancel_cx_pairs`] pass only cancels CX pairs
//! with *no* intervening gate on either wire. Real circuits (especially the
//! TFIM Trotter pattern `CX - RZ - CX`) interleave commuting gates between
//! cancellable pairs; this pass uses the rule base in
//! [`qaprox_circuit::commute`] to hop over provably commuting gates,
//! matching what Qiskit's `CommutativeCancellation` achieves on our gate set.

use qaprox_circuit::{commuting_span, Circuit, Gate, Instruction};

/// Cancels CX pairs separated only by gates that provably commute with the
/// CX. Runs to a fixed point.
///
/// Built on the shared [`qaprox_circuit::commuting_span`] slide primitive: a
/// CX never commutes with its own copy (it shares both control and target),
/// so a cancelling partner is necessarily the *first* non-commuting
/// instruction — exactly the span boundary. `tests` plus the routed-output
/// regression suite (`tests/routed_regression.rs`) pin this pass bit-for-bit
/// against the pre-dedup scan.
pub fn commutation_cancel_cx(circuit: &Circuit) -> Circuit {
    let mut insts: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let mut removed = false;
        let mut i = 0;
        while i < insts.len() {
            if matches!(insts[i].gate, Gate::CX) {
                let j = commuting_span(&insts, i);
                let cancels = j < insts.len()
                    && matches!(insts[j].gate, Gate::CX)
                    && insts[j].qubits == insts[i].qubits;
                if cancels {
                    insts.remove(j);
                    insts.remove(i);
                    removed = true;
                    continue;
                }
            }
            i += 1;
        }
        if !removed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in insts {
        out.push(inst.gate, &inst.qubits);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::hs_distance;

    fn assert_same_unitary(a: &Circuit, b: &Circuit) {
        assert!(
            hs_distance(&a.unitary(), &b.unitary()) < 1e-9,
            "pass changed semantics"
        );
    }

    #[test]
    fn cancels_across_commuting_rz_on_control() {
        // CX(0,1) RZ(0) CX(0,1): RZ on the control commutes -> pair cancels
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.7, 0).cx(0, 1);
        let opt = commutation_cancel_cx(&c);
        assert_eq!(opt.cx_count(), 0, "pair should cancel across the RZ");
        assert_same_unitary(&c, &opt);
    }

    #[test]
    fn cancels_across_commuting_rx_on_target() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rx(0.4, 1).cx(0, 1);
        let opt = commutation_cancel_cx(&c);
        assert_eq!(opt.cx_count(), 0);
        assert_same_unitary(&c, &opt);
    }

    #[test]
    fn does_not_cancel_across_blocking_rz_on_target() {
        // the TFIM bond pattern: CX RZ(target) CX must NOT cancel
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.7, 1).cx(0, 1);
        let opt = commutation_cancel_cx(&c);
        assert_eq!(opt.cx_count(), 2, "TFIM bond pattern is not cancellable");
    }

    #[test]
    fn cancels_across_shared_control_cx() {
        // CX(0,1) CX(0,2) CX(0,1): the middle CX shares only the control
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).cx(0, 1);
        let opt = commutation_cancel_cx(&c);
        assert_eq!(opt.cx_count(), 1);
        assert_same_unitary(&c, &opt);
    }

    #[test]
    fn cancels_across_disjoint_gates() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).h(2).rz(0.3, 2).cx(0, 1);
        let opt = commutation_cancel_cx(&c);
        assert_eq!(opt.cx_count(), 0);
        assert_eq!(opt.len(), 2);
        assert_same_unitary(&c, &opt);
    }

    #[test]
    fn fixed_point_on_nested_pairs() {
        // CX(0,1) CX(0,2) CX(0,2) CX(0,1): inner pair cancels, then outer
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).cx(0, 2).cx(0, 1);
        let opt = commutation_cancel_cx(&c);
        assert!(
            opt.is_empty(),
            "both pairs should vanish, got {} gates",
            opt.len()
        );
    }

    #[test]
    fn beats_plain_cancellation_on_commuting_interleave() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.7, 0).cx(0, 1);
        let plain = crate::optimize::cancel_cx_pairs(&c);
        let commuting = commutation_cancel_cx(&c);
        assert_eq!(plain.cx_count(), 2, "plain pass cannot see through the RZ");
        assert_eq!(commuting.cx_count(), 0);
    }

    #[test]
    fn preserves_semantics_on_tfim_like_body() {
        let mut c = Circuit::new(3);
        for _ in 0..3 {
            c.cx(0, 1).rz(0.4, 1).cx(0, 1);
            c.cx(1, 2).rz(0.4, 2).cx(1, 2);
            c.rx(0.2, 0).rx(0.2, 1).rx(0.2, 2);
        }
        let opt = commutation_cancel_cx(&c);
        assert_same_unitary(&c, &opt);
    }
}
