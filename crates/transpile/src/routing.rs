//! SWAP routing onto a coupling graph.
//!
//! A lookahead-free SABRE-style router: gates execute in order; when a
//! two-qubit gate's endpoints are not adjacent, SWAPs walk one endpoint
//! along a shortest path toward the other, updating the running
//! logical-to-physical map. Deterministic, and optimal on the linear chains
//! the paper's 5-qubit devices expose.

use crate::layout::Layout;
use qaprox_circuit::{Circuit, Gate};
use qaprox_device::Topology;

/// Result of routing: a physical-qubit circuit plus the final layout (the
/// logical-to-physical map after all inserted SWAPs).
#[derive(Debug, Clone)]
pub struct Routed {
    /// Circuit over physical qubit indices (width = device size).
    pub circuit: Circuit,
    /// Initial logical-to-physical assignment used.
    pub initial_layout: Layout,
    /// Final logical-to-physical assignment (after SWAP tracking).
    pub final_layout: Layout,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
}

/// Routes `circuit` (over logical qubits) onto `topology` starting from
/// `layout`. Inserted SWAPs are emitted as [`Gate::SWAP`]; run the basis
/// pass afterwards to expand them into CNOTs.
pub fn route(circuit: &Circuit, topology: &Topology, layout: &Layout) -> Routed {
    let n_logical = circuit.num_qubits();
    assert_eq!(layout.len(), n_logical, "layout width mismatch");
    let n_phys = topology.num_qubits();
    for &p in layout {
        assert!(p < n_phys, "layout targets qubit {p} outside the device");
    }
    assert!(
        topology.is_connected() || n_logical <= 1,
        "routing requires a connected coupling graph"
    );

    let dist = topology.distance_matrix();
    let mut log2phys = layout.clone();
    let mut phys2log = vec![usize::MAX; n_phys];
    for (l, &p) in log2phys.iter().enumerate() {
        assert_eq!(phys2log[p], usize::MAX, "layout repeats physical qubit {p}");
        phys2log[p] = l;
    }

    let mut out = Circuit::new(n_phys);
    let mut swaps_inserted = 0usize;

    for inst in circuit.iter() {
        match *inst.qubits.as_slice() {
            [q] => {
                out.push(inst.gate.clone(), &[log2phys[q]]);
            }
            [a, b] => {
                // walk a's physical position toward b's until adjacent
                loop {
                    let (pa, pb) = (log2phys[a], log2phys[b]);
                    if topology.has_edge(pa, pb) {
                        break;
                    }
                    // neighbor of pa strictly closer to pb (exists: connected graph)
                    let next = topology
                        .neighbors(pa)
                        .into_iter()
                        .filter(|&nb| dist[nb][pb] < dist[pa][pb])
                        .min_by_key(|&nb| dist[nb][pb])
                        .expect("connected graph guarantees progress");
                    out.push(Gate::SWAP, &[pa, next]);
                    swaps_inserted += 1;
                    // update maps: whatever logical lives at `next` moves to pa
                    let displaced = phys2log[next];
                    phys2log[next] = a;
                    phys2log[pa] = displaced;
                    log2phys[a] = next;
                    if displaced != usize::MAX {
                        log2phys[displaced] = pa;
                    }
                }
                out.push(inst.gate.clone(), &[log2phys[a], log2phys[b]]);
            }
            _ => unreachable!(),
        }
    }

    Routed {
        circuit: out,
        initial_layout: layout.clone(),
        final_layout: log2phys,
        swaps_inserted,
    }
}

/// The set of physical qubits a routed circuit actually touches, ascending.
pub fn used_qubits(circuit: &Circuit) -> Vec<usize> {
    let mut used = vec![false; circuit.num_qubits()];
    for inst in circuit.iter() {
        for &q in &inst.qubits {
            used[q] = true;
        }
    }
    (0..circuit.num_qubits()).filter(|&q| used[q]).collect()
}

/// Re-expresses a routed physical circuit on only its used qubits
/// (relabeled ascending), so a small circuit mapped onto a big device can be
/// simulated at its natural width. Returns the compacted circuit and the
/// used physical qubits (compact index -> physical index).
pub fn compact(circuit: &Circuit) -> (Circuit, Vec<usize>) {
    let used = used_qubits(circuit);
    let mut index = vec![usize::MAX; circuit.num_qubits()];
    for (i, &q) in used.iter().enumerate() {
        index[q] = i;
    }
    let mut out = Circuit::new(used.len());
    for inst in circuit.iter() {
        let qs: Vec<usize> = inst.qubits.iter().map(|&q| index[q]).collect();
        out.push(inst.gate.clone(), &qs);
    }
    (out, used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::hs_distance;

    /// Checks routing correctness: undoing the final permutation recovers
    /// the original unitary.
    fn assert_routing_correct(original: &Circuit, topology: &Topology, layout: &Layout) {
        let routed = route(original, topology, layout);
        let (compacted, used) = compact(&routed.circuit);

        // Build expected: original circuit mapped onto the compact indices of
        // its *initial* layout, followed by permutation correction via the
        // final layout. Simplest check: simulate basis states.
        let n_log = original.num_qubits();
        let phys_index = |p: usize| used.iter().position(|&u| u == p).unwrap();
        for basis in 0..(1usize << n_log) {
            // prepare logical basis state on compact circuit input
            let mut input_compact = 0usize;
            for l in 0..n_log {
                if (basis >> l) & 1 == 1 {
                    input_compact |= 1 << phys_index(routed.initial_layout[l]);
                }
            }
            let out_state = qaprox_sim::statevector::run_from_basis(&compacted, input_compact);
            let expect_logical = original.statevector().clone(); // placeholder, replaced below
            let _ = expect_logical;
            // logical output distribution via original circuit
            let logical_out = {
                let mut s = vec![qaprox_linalg::Complex64::ZERO; 1 << n_log];
                s[basis] = qaprox_linalg::Complex64::ONE;
                original.apply_to_state(&mut s);
                s
            };
            // compare amplitudes through the final layout permutation
            for (out_idx, &amp) in out_state.iter().enumerate() {
                // map compact output index to logical index via final layout
                let mut logical_idx = 0usize;
                let mut extra_bits = false;
                for (c, &p) in used.iter().enumerate() {
                    if (out_idx >> c) & 1 == 1 {
                        if let Some(l) = routed.final_layout.iter().position(|&x| x == p) {
                            logical_idx |= 1 << l;
                        } else {
                            extra_bits = true;
                        }
                    }
                }
                let expect = if extra_bits {
                    qaprox_linalg::Complex64::ZERO
                } else {
                    logical_out[logical_idx]
                };
                assert!(
                    (amp - expect).abs() < 1e-9,
                    "basis {basis}: output index {out_idx} mismatch"
                );
            }
        }
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(1, 2);
        let topo = Topology::linear(3);
        let routed = route(&c, &topo, &vec![0, 1, 2]);
        assert_eq!(routed.swaps_inserted, 0);
        assert!(hs_distance(&routed.circuit.unitary(), &c.unitary()) < 1e-12);
    }

    #[test]
    fn distant_gate_inserts_swaps_on_chain() {
        let mut c = Circuit::new(3);
        c.cx(0, 2);
        let topo = Topology::linear(3);
        let routed = route(&c, &topo, &vec![0, 1, 2]);
        assert_eq!(routed.swaps_inserted, 1);
        assert_routing_correct(&c, &topo, &vec![0, 1, 2]);
    }

    #[test]
    fn long_chain_routing_is_semantically_correct() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).cx(3, 1).cx(1, 2).cx(2, 0).rz(0.3, 3);
        let topo = Topology::linear(5);
        assert_routing_correct(&c, &topo, &vec![0, 1, 2, 3]);
    }

    #[test]
    fn routing_on_heavy_hex() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(1, 2).cx(2, 3).cx(0, 3);
        let topo = Topology::heavy_hex_27();
        assert_routing_correct(&c, &topo, &vec![0, 1, 4, 7]);
    }

    #[test]
    fn nontrivial_initial_layout() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).cx(0, 2);
        let topo = Topology::linear(5);
        assert_routing_correct(&c, &topo, &vec![4, 2, 3]);
    }

    #[test]
    fn used_qubits_and_compaction() {
        let mut c = Circuit::new(6);
        c.cx(1, 2).h(4);
        assert_eq!(used_qubits(&c), vec![1, 2, 4]);
        let (compacted, used) = compact(&c);
        assert_eq!(compacted.num_qubits(), 3);
        assert_eq!(used, vec![1, 2, 4]);
        assert_eq!(compacted.instructions()[0].qubits, vec![0, 1]);
        assert_eq!(compacted.instructions()[1].qubits, vec![2]);
    }

    #[test]
    #[should_panic(expected = "repeats physical qubit")]
    fn duplicate_layout_is_rejected() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        route(&c, &Topology::linear(3), &vec![1, 1]);
    }
}
