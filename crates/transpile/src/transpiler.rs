//! The end-to-end transpiler with Qiskit-style optimization levels.
//!
//! * **Level 0** — basis translation only (debugging aid).
//! * **Level 1** — trivial (or caller-provided) layout, routing, one light
//!   optimization pass: the paper's *simulator* configuration ("optimization
//!   level 1 with mappings to qubits 0..4").
//! * **Level 2** — level 1 plus iterated peephole optimization.
//! * **Level 3** — noise-aware layout from the calibration, routing, full
//!   optimization: the paper's *hardware* configuration ("level 3, which
//!   allows IBM to map virtual qubits to the best available physical
//!   qubits").

use crate::commutation::commutation_cancel_cx;
use crate::decompose::to_basis;
use crate::layout::{best_permutation_onto, noise_aware_layout, trivial_layout, Layout};
use crate::optimize::{cancel_cx_pairs, merge_1q_runs, optimize};
use crate::routing::{compact, route};
use qaprox_circuit::Circuit;
use qaprox_device::Calibration;

/// Optimization level, mirroring Qiskit's 0-3 scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Basis translation only.
    L0,
    /// Trivial layout + routing + light optimization.
    L1,
    /// L1 plus iterated peephole optimization.
    L2,
    /// Noise-aware layout + routing + full optimization.
    L3,
}

/// The transpiler output.
#[derive(Debug, Clone)]
pub struct Transpiled {
    /// The physical circuit, **compacted** onto its used qubits and
    /// expressed in the {U3, CX} basis.
    pub circuit: Circuit,
    /// Physical qubit ids backing each compact wire
    /// (`physical_qubits[compact] = device qubit`).
    pub physical_qubits: Vec<usize>,
    /// Initial logical-to-physical layout chosen.
    pub initial_layout: Layout,
    /// Final logical-to-physical layout after routing.
    pub final_layout: Layout,
    /// SWAPs inserted by routing (each costs 3 CNOTs after expansion).
    pub swaps_inserted: usize,
}

impl Transpiled {
    /// The induced calibration for simulating this circuit on its mapped
    /// qubits.
    pub fn induced_calibration(&self, cal: &Calibration) -> Calibration {
        cal.induced(&self.physical_qubits)
    }

    /// Maps a compact-circuit output distribution back to *logical* qubit
    /// order, marginalizing nothing (every used qubit is either a logical
    /// qubit or a routing intermediary that started and ended in |0>-ish
    /// states; intermediary amplitudes are folded by index remapping of the
    /// final layout).
    pub fn logical_probabilities(&self, compact_probs: &[f64], num_logical: usize) -> Vec<f64> {
        let mut out = vec![0.0; 1 << num_logical];
        // compact index -> physical -> logical (via final layout)
        let mut compact_to_logical: Vec<Option<usize>> = vec![None; self.physical_qubits.len()];
        for (c, &p) in self.physical_qubits.iter().enumerate() {
            if let Some(l) = self.final_layout.iter().position(|&x| x == p) {
                compact_to_logical[c] = Some(l);
            }
        }
        for (idx, &p) in compact_probs.iter().enumerate() {
            let mut logical_idx = 0usize;
            for (c, maybe_l) in compact_to_logical.iter().enumerate() {
                if (idx >> c) & 1 == 1 {
                    if let Some(l) = maybe_l {
                        logical_idx |= 1 << l;
                    }
                    // stray excitation on a non-logical wire: attribute to the
                    // logical outcome with that bit ignored (readout traces it out)
                }
            }
            out[logical_idx] += p;
        }
        out
    }
}

/// Transpiles `circuit` for the device described by `cal`.
///
/// `manual_subset`, when given, pins the layout onto those physical qubits
/// (the paper's manual mapping study); otherwise L1/L2 use the trivial
/// layout and L3 picks qubits by noise.
pub fn transpile(
    circuit: &Circuit,
    cal: &Calibration,
    level: OptLevel,
    manual_subset: Option<&[usize]>,
) -> Transpiled {
    let basis = to_basis(circuit);
    if level == OptLevel::L0 {
        return Transpiled {
            physical_qubits: (0..basis.num_qubits()).collect(),
            initial_layout: trivial_layout(basis.num_qubits()),
            final_layout: trivial_layout(basis.num_qubits()),
            swaps_inserted: 0,
            circuit: basis,
        };
    }

    let layout: Layout = match (manual_subset, level) {
        (Some(subset), _) => best_permutation_onto(&basis, cal, subset),
        (None, OptLevel::L3) => noise_aware_layout(&basis, cal),
        (None, _) => trivial_layout(basis.num_qubits()),
    };

    let routed = route(&basis, &cal.topology, &layout);
    // expand SWAPs into CNOTs, then optimize
    let expanded = to_basis(&routed.circuit);
    let optimized = match level {
        OptLevel::L0 => unreachable!(),
        OptLevel::L1 => merge_1q_runs(&cancel_cx_pairs(&expanded)),
        OptLevel::L2 => optimize(&expanded),
        OptLevel::L3 => optimize(&commutation_cancel_cx(&expanded)),
    };
    // post-pass invariant: the optimize passes must not change the unitary
    // (up to global phase). Expensive, so only under `strict-invariants`, and
    // only at widths where the 2^n x 2^n unitary is materializable at all —
    // routed circuits live on the full device, which can be 27+ qubits.
    #[cfg(feature = "strict-invariants")]
    if expanded.num_qubits() <= 10 {
        let a = expanded.unitary();
        let b = optimized.unitary();
        let overlap = a.hs_inner(&b).abs() / a.rows() as f64;
        debug_assert!(
            (overlap - 1.0).abs() < 1e-7,
            "optimization changed the circuit unitary (overlap {overlap})"
        );
    }
    let (compacted, physical_qubits) = compact(&optimized);

    // post-pass invariant: every 2-qubit gate in the output must sit on a
    // coupling-map edge once mapped back to physical qubits. Cheap, so it
    // runs in every debug build.
    #[cfg(debug_assertions)]
    if let Err(e) = check_routed(&compacted, &physical_qubits, cal) {
        panic!("{e}");
    }

    Transpiled {
        circuit: compacted,
        physical_qubits,
        initial_layout: routed.initial_layout,
        final_layout: routed.final_layout,
        swaps_inserted: routed.swaps_inserted,
    }
}

/// Validates a transpiled circuit against the device: runs the structural
/// circuit lints with connectivity promoted to deny, after mapping each
/// compacted index back to its physical qubit via `physical_qubits`.
///
/// Returns the rendered diagnostics of the first failing report.
pub fn check_routed(
    circuit: &Circuit,
    physical_qubits: &[usize],
    cal: &Calibration,
) -> Result<(), String> {
    check_routed_with(
        circuit,
        physical_qubits,
        cal,
        &qaprox_verify::LintConfig::strict_connectivity(),
    )
}

/// [`check_routed`] with a caller-supplied lint configuration, for pipelines
/// that want to re-level individual codes (e.g. tolerate QA106 on a device
/// snapshot known to be stale) instead of the strict-connectivity default.
pub fn check_routed_with(
    circuit: &Circuit,
    physical_qubits: &[usize],
    cal: &Calibration,
    cfg: &qaprox_verify::LintConfig,
) -> Result<(), String> {
    // lift the compacted circuit onto physical indices so the coupling-map
    // lint sees real device edges
    let mut physical = Vec::with_capacity(circuit.len());
    for inst in circuit.iter() {
        let mut mapped = inst.clone();
        for q in &mut mapped.qubits {
            let phys = physical_qubits.get(*q).copied();
            match phys {
                Some(p) => *q = p,
                None => return Err(format!("compacted qubit {q} has no physical assignment")),
            }
        }
        physical.push(mapped);
    }
    let report = qaprox_verify::lint_instructions(
        cal.topology.num_qubits(),
        &physical,
        Some(&cal.topology),
        cfg,
    );
    // dead-gate findings are advisory here: optimization may legitimately
    // leave cancellable pairs behind at low levels
    if report.error_count() > 0 {
        Err(format!(
            "transpiled circuit failed device validation:\n{}",
            report.to_text()
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::is_in_basis;
    use qaprox_device::devices::{ourense, toronto};

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).rz(0.4, 2).cx(0, 2).h(1);
        c
    }

    #[test]
    fn check_routed_with_honors_relaxed_configs() {
        // cx(0,4) is off the ourense line: strict default rejects it, a
        // config that demotes QA106 back to warn lets it through
        let mut c = Circuit::new(5);
        c.cx(0, 4);
        let cal = ourense();
        let phys: Vec<usize> = (0..5).collect();
        assert!(check_routed(&c, &phys, &cal).is_err());
        let mut relaxed = qaprox_verify::LintConfig::new();
        relaxed.set(
            qaprox_verify::LintCode::ConnectivityViolation,
            qaprox_verify::LintLevel::Warn,
        );
        assert!(check_routed_with(&c, &phys, &cal, &relaxed).is_ok());
    }

    #[test]
    fn level0_is_basis_only() {
        let t = transpile(&sample_circuit(), &ourense(), OptLevel::L0, None);
        assert!(is_in_basis(&t.circuit));
        assert_eq!(t.swaps_inserted, 0);
    }

    #[test]
    fn level1_routes_onto_chain() {
        let t = transpile(&sample_circuit(), &ourense(), OptLevel::L1, None);
        assert!(is_in_basis(&t.circuit));
        // cx(0,2) on a line needs routing
        assert!(t.swaps_inserted >= 1);
        // every 2q gate must respect the induced coupling
        let ind = t.induced_calibration(&ourense());
        for inst in t.circuit.iter() {
            if inst.qubits.len() == 2 {
                assert!(
                    ind.topology.has_edge(inst.qubits[0], inst.qubits[1]),
                    "gate on uncoupled pair {:?}",
                    inst.qubits
                );
            }
        }
    }

    #[test]
    fn level3_picks_low_noise_qubits() {
        let cal = toronto();
        let t = transpile(&sample_circuit(), &cal, OptLevel::L3, None);
        assert!(is_in_basis(&t.circuit));
        // chosen qubits should score no worse than the device-average subset
        let score = cal.subset_score(&t.initial_layout);
        let worst = cal.worst_subset(3);
        assert!(score <= cal.subset_score(&worst) + 1e-12);
    }

    #[test]
    fn manual_subset_is_honored() {
        let cal = toronto();
        let subset = vec![12, 13, 14];
        let t = transpile(&sample_circuit(), &cal, OptLevel::L1, Some(&subset));
        for &p in &t.initial_layout {
            assert!(
                subset.contains(&p),
                "layout {:?} escapes subset",
                t.initial_layout
            );
        }
    }

    #[test]
    fn transpiled_preserves_logical_distribution() {
        // level 1 on ourense: simulate compact circuit ideally, map back to
        // logical order, compare against the original's distribution.
        let c = sample_circuit();
        let t = transpile(&c, &ourense(), OptLevel::L1, None);
        let compact_probs = qaprox_sim::statevector::probabilities(&t.circuit);
        let logical = t.logical_probabilities(&compact_probs, 3);
        let expect = qaprox_sim::statevector::probabilities(&c);
        for (a, b) in logical.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9, "logical {logical:?} vs {expect:?}");
        }
    }

    #[test]
    fn level2_never_increases_gate_count_over_level1() {
        let c = sample_circuit();
        let t1 = transpile(&c, &ourense(), OptLevel::L1, None);
        let t2 = transpile(&c, &ourense(), OptLevel::L2, None);
        assert!(t2.circuit.len() <= t1.circuit.len());
    }

    #[test]
    fn deep_circuit_on_toronto_level3_stays_correct() {
        let mut c = Circuit::new(4);
        for i in 0..3 {
            c.h(i);
            c.cx(i, i + 1);
        }
        c.cx(3, 0);
        let cal = toronto();
        let t = transpile(&c, &cal, OptLevel::L3, None);
        let compact_probs = qaprox_sim::statevector::probabilities(&t.circuit);
        let logical = t.logical_probabilities(&compact_probs, 4);
        let expect = qaprox_sim::statevector::probabilities(&c);
        for (a, b) in logical.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
