//! Peephole optimization passes over {U3, CX} circuits.
//!
//! These mirror what Qiskit's optimization levels do to the paper's
//! circuits: runs of one-qubit gates fuse into a single U3 (1q resynthesis)
//! and adjacent self-inverse CX pairs cancel. Both passes preserve the
//! unitary up to global phase.

use qaprox_circuit::{Circuit, Gate, Instruction};
use qaprox_linalg::kernels::{apply_1q_mat_left, mat2_to_array};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::zyz_decompose;

/// Fuses consecutive one-qubit gates on the same wire into one U3 and drops
/// (near-)identity results.
pub fn merge_1q_runs(circuit: &Circuit) -> Circuit {
    let n = circuit.num_qubits();
    let mut pending: Vec<Option<Matrix>> = vec![None; n];
    let mut out = Circuit::new(n);

    let flush = |out: &mut Circuit, pending: &mut Vec<Option<Matrix>>, q: usize| {
        if let Some(m) = pending[q].take() {
            let zyz = zyz_decompose(&m);
            let near_identity =
                zyz.theta.abs() < 1e-12 && phase_mod_tau(zyz.phi + zyz.lambda) < 1e-12;
            if !near_identity {
                out.u3(zyz.theta, zyz.phi, zyz.lambda, q);
            }
        }
    };

    for inst in circuit.iter() {
        match *inst.qubits.as_slice() {
            [q] => {
                let acc = pending[q].get_or_insert_with(|| Matrix::identity(2));
                let g = mat2_to_array(&inst.gate.matrix());
                apply_1q_mat_left(acc, 0, &g);
            }
            [a, b] => {
                flush(&mut out, &mut pending, a);
                flush(&mut out, &mut pending, b);
                out.push(inst.gate.clone(), &inst.qubits);
            }
            _ => unreachable!(),
        }
    }
    for q in 0..n {
        flush(&mut out, &mut pending, q);
    }
    out
}

fn phase_mod_tau(x: f64) -> f64 {
    let r = x.rem_euclid(std::f64::consts::TAU);
    r.min(std::f64::consts::TAU - r)
}

/// Cancels adjacent identical CX pairs (no intervening gate on either wire).
/// Runs to a fixed point.
pub fn cancel_cx_pairs(circuit: &Circuit) -> Circuit {
    let mut insts: Vec<Instruction> = circuit.instructions().to_vec();
    loop {
        let mut removed = false;
        let mut i = 0;
        'outer: while i < insts.len() {
            if matches!(insts[i].gate, Gate::CX) {
                let (a, b) = (insts[i].qubits[0], insts[i].qubits[1]);
                // scan forward for the next gate touching a or b
                for j in i + 1..insts.len() {
                    let touches = insts[j].qubits.iter().any(|&q| q == a || q == b);
                    if !touches {
                        continue;
                    }
                    if matches!(insts[j].gate, Gate::CX)
                        && insts[j].qubits[0] == a
                        && insts[j].qubits[1] == b
                    {
                        insts.remove(j);
                        insts.remove(i);
                        removed = true;
                        continue 'outer;
                    }
                    break;
                }
            }
            i += 1;
        }
        if !removed {
            break;
        }
    }
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in insts {
        out.push(inst.gate, &inst.qubits);
    }
    out
}

/// The full light-optimization pipeline: CX cancellation then 1q fusion,
/// iterated until the gate count stops shrinking.
pub fn optimize(circuit: &Circuit) -> Circuit {
    let mut current = circuit.clone();
    loop {
        let next = merge_1q_runs(&cancel_cx_pairs(&current));
        if next.len() >= current.len() {
            return current;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::hs_distance;

    fn assert_same_unitary(a: &Circuit, b: &Circuit) {
        assert!(
            hs_distance(&a.unitary(), &b.unitary()) < 1e-9,
            "optimization changed semantics"
        );
    }

    #[test]
    fn merges_rotation_run_into_one_u3() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rx(0.5, 0).rz(-0.2, 0).ry(0.9, 0);
        let m = merge_1q_runs(&c);
        assert_eq!(m.len(), 1);
        assert_same_unitary(&c, &m);
    }

    #[test]
    fn identity_run_is_dropped() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let m = merge_1q_runs(&c);
        assert!(m.is_empty(), "H H should vanish, got {} gates", m.len());
    }

    #[test]
    fn two_qubit_gates_break_runs() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0).cx(0, 1).rz(0.4, 0);
        let m = merge_1q_runs(&c);
        assert_eq!(m.len(), 3, "rz / cx / rz cannot fuse across the CX");
        assert_same_unitary(&c, &m);
    }

    #[test]
    fn cancels_adjacent_cx_pair() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        assert!(cancel_cx_pairs(&c).is_empty());
    }

    #[test]
    fn does_not_cancel_through_blocking_gate() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.5, 1).cx(0, 1);
        assert_eq!(cancel_cx_pairs(&c).cx_count(), 2);
    }

    #[test]
    fn cancels_through_unrelated_gate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).rz(0.5, 2).cx(0, 1);
        let opt = cancel_cx_pairs(&c);
        assert_eq!(opt.cx_count(), 0);
        assert_eq!(opt.len(), 1);
        assert_same_unitary(&c, &opt);
    }

    #[test]
    fn reversed_cx_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        assert_eq!(cancel_cx_pairs(&c).cx_count(), 2);
    }

    #[test]
    fn cascading_cancellation() {
        // cx cx cx cx nested: all four should vanish over two passes
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).cx(0, 1).cx(0, 1);
        assert!(cancel_cx_pairs(&c).is_empty());
    }

    #[test]
    fn optimize_pipeline_preserves_semantics() {
        let mut c = Circuit::new(3);
        c.h(0)
            .h(0)
            .cx(0, 1)
            .rz(0.1, 1)
            .rz(-0.1, 1)
            .cx(0, 1)
            .ry(0.7, 2)
            .cx(1, 2);
        let opt = optimize(&c);
        assert!(opt.len() < c.len());
        assert_same_unitary(&c, &opt);
        // h h cancels, the rz pair fuses to identity, then cx pair cancels
        assert_eq!(opt.cx_count(), 1);
    }
}
