//! # qaprox-transpile
//!
//! The transpiler substrate standing in for Qiskit's: basis translation to
//! {U3, CX} ([`decompose`]), peephole optimization ([`optimize`]), initial
//! layout selection ([`layout`] — trivial for the paper's simulator runs,
//! noise-aware for its hardware runs), and SWAP routing onto coupling graphs
//! ([`routing`]), tied together by [`transpiler::transpile`] with Qiskit-
//! style optimization levels 0-3.

#![warn(missing_docs)]

pub mod commutation;
pub mod decompose;
pub mod layout;
pub mod optimize;
pub mod routing;
pub mod transpiler;

pub use commutation::commutation_cancel_cx;
pub use decompose::{is_in_basis, to_basis};
pub use layout::{best_permutation_onto, noise_aware_layout, trivial_layout, Layout};
pub use optimize::{cancel_cx_pairs, merge_1q_runs, optimize};
pub use routing::{compact, route, used_qubits, Routed};
pub use transpiler::{check_routed, check_routed_with, transpile, OptLevel, Transpiled};
