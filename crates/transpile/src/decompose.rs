//! Basis translation: rewrite any IR circuit into the native {U3, CX} set,
//! the gate basis of IBM's devices (up to the trivial U3 -> rz/sx/rz split).

use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::zyz_decompose;

/// Rewrites `circuit` into {U3, CX} gates, preserving its unitary up to
/// global phase.
///
/// # Panics
/// Panics on [`Gate::Unitary2`]: generic two-qubit blocks are refined by the
/// synthesis crate before transpilation (they never reach devices raw).
pub fn to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in circuit.iter() {
        match (&inst.gate, inst.qubits.as_slice()) {
            (Gate::CX, &[c, t]) => {
                out.cx(c, t);
            }
            (Gate::CZ, &[a, b]) => {
                push_u3_of(&mut out, &Gate::H, b);
                out.cx(a, b);
                push_u3_of(&mut out, &Gate::H, b);
            }
            (Gate::SWAP, &[a, b]) => {
                out.cx(a, b);
                out.cx(b, a);
                out.cx(a, b);
            }
            (Gate::CP(l), &[a, b]) => {
                // standard Qiskit decomposition
                push_u3_of(&mut out, &Gate::P(l / 2.0), a);
                out.cx(a, b);
                push_u3_of(&mut out, &Gate::P(-l / 2.0), b);
                out.cx(a, b);
                push_u3_of(&mut out, &Gate::P(l / 2.0), b);
            }
            (Gate::CRZ(t), &[c, tq]) => {
                push_u3_of(&mut out, &Gate::RZ(t / 2.0), tq);
                out.cx(c, tq);
                push_u3_of(&mut out, &Gate::RZ(-t / 2.0), tq);
                out.cx(c, tq);
            }
            (Gate::CRX(t), &[c, tq]) => {
                push_u3_of(&mut out, &Gate::H, tq);
                push_u3_of(&mut out, &Gate::RZ(t / 2.0), tq);
                out.cx(c, tq);
                push_u3_of(&mut out, &Gate::RZ(-t / 2.0), tq);
                out.cx(c, tq);
                push_u3_of(&mut out, &Gate::H, tq);
            }
            (Gate::Unitary2(_), _) => {
                panic!("generic 2q unitaries must be refined by synthesis before transpilation")
            }
            (g, &[q]) if g.arity() == 1 => push_u3_of(&mut out, g, q),
            (g, qs) => unreachable!("unhandled gate {} on {qs:?}", g.name()),
        }
    }
    out
}

/// Appends the U3 equivalent of a one-qubit gate (global phase dropped).
fn push_u3_of(out: &mut Circuit, gate: &Gate, q: usize) {
    let zyz = zyz_decompose(&gate.matrix());
    // Skip exact identities to avoid useless gates.
    if zyz.theta.abs() < 1e-14 && ((zyz.phi + zyz.lambda) % std::f64::consts::TAU).abs() < 1e-14 {
        return;
    }
    out.u3(zyz.theta, zyz.phi, zyz.lambda, q);
}

/// True when the circuit uses only {U3, CX}.
pub fn is_in_basis(circuit: &Circuit) -> bool {
    circuit
        .iter()
        .all(|i| matches!(i.gate, Gate::U3(..) | Gate::CX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::hs_distance;

    fn assert_equivalent(original: &Circuit) {
        let translated = to_basis(original);
        assert!(is_in_basis(&translated), "output not in {{U3, CX}}");
        let d = hs_distance(&original.unitary(), &translated.unitary());
        assert!(d < 1e-9, "translation changed semantics: HS {d}");
    }

    #[test]
    fn one_qubit_gates_become_u3() {
        let mut c = Circuit::new(1);
        c.h(0).x(0).rz(0.7, 0).ry(-0.2, 0);
        c.push(Gate::S, &[0]);
        c.push(Gate::T, &[0]);
        c.push(Gate::SX, &[0]);
        assert_equivalent(&c);
    }

    #[test]
    fn cz_translation() {
        let mut c = Circuit::new(2);
        c.cz(0, 1);
        assert_equivalent(&c);
        assert_eq!(to_basis(&c).cx_count(), 1);
    }

    #[test]
    fn swap_translation_costs_three() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_equivalent(&c);
        assert_eq!(to_basis(&c).cx_count(), 3);
    }

    #[test]
    fn controlled_phase_and_rotations() {
        let mut c = Circuit::new(2);
        c.push(Gate::CP(0.9), &[0, 1]);
        c.push(Gate::CRZ(-1.3), &[1, 0]);
        c.push(Gate::CRX(0.4), &[0, 1]);
        assert_equivalent(&c);
    }

    #[test]
    fn mixed_circuit_round_trip() {
        let mut c = Circuit::new(3);
        c.h(0).cz(0, 1).swap(1, 2).rz(0.3, 2);
        c.push(Gate::CP(1.1), &[0, 2]);
        c.cx(2, 1);
        assert_equivalent(&c);
    }

    #[test]
    fn already_basis_circuit_is_preserved() {
        let mut c = Circuit::new(2);
        c.u3(0.1, 0.2, 0.3, 0).cx(0, 1).u3(1.0, -1.0, 0.5, 1);
        let t = to_basis(&c);
        assert_eq!(t.len(), c.len());
        assert!(hs_distance(&t.unitary(), &c.unitary()) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "refined by synthesis")]
    fn generic_2q_blocks_are_rejected() {
        let mut c = Circuit::new(2);
        c.push(Gate::Unitary2(Box::new(Gate::CX.matrix())), &[0, 1]);
        to_basis(&c);
    }
}
