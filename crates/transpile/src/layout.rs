//! Initial layout: choosing physical qubits for logical qubits.
//!
//! The paper transpiles simulator runs at optimization level 1 with the
//! trivial mapping onto qubits 0..4 and hardware runs at level 3, where
//! Qiskit picks the least-noisy qubits. [`trivial_layout`] and
//! [`noise_aware_layout`] reproduce those two behaviours.

use qaprox_circuit::Circuit;
use qaprox_device::Calibration;

/// A logical-to-physical qubit assignment: `layout[logical] = physical`.
pub type Layout = Vec<usize>;

/// Identity mapping onto the first `n` physical qubits (Qiskit level 1 with
/// an explicit `initial_layout=[0..n]`).
pub fn trivial_layout(num_logical: usize) -> Layout {
    (0..num_logical).collect()
}

/// Interaction weights between logical qubits: how many two-qubit gates act
/// on each pair.
fn interaction_counts(circuit: &Circuit) -> Vec<((usize, usize), usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for inst in circuit.iter() {
        if let &[a, b] = inst.qubits.as_slice() {
            *counts.entry((a.min(b), a.max(b))).or_insert(0usize) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Noise-aware layout (Qiskit level-3 analogue): choose the best connected
/// physical subset by calibration score, then assign logical qubits to it by
/// exhaustive permutation (circuits here are <= 6 qubits) minimizing
/// `sum_over_pairs interactions * edge_cost`, where non-adjacent pairs pay a
/// distance penalty.
pub fn noise_aware_layout(circuit: &Circuit, cal: &Calibration) -> Layout {
    let n = circuit.num_qubits();
    assert!(n <= cal.topology.num_qubits(), "circuit wider than device");
    let subset = cal.best_subset(n);
    best_permutation_onto(circuit, cal, &subset)
}

/// Assigns logical qubits onto a **given** physical subset, choosing the
/// permutation that minimizes routing + noise cost. This is how the paper's
/// manual mapping study (Figs. 17-18) pins circuits to specific qubits.
pub fn best_permutation_onto(circuit: &Circuit, cal: &Calibration, subset: &[usize]) -> Layout {
    let n = circuit.num_qubits();
    assert_eq!(subset.len(), n, "subset size must match circuit width");
    let interactions = interaction_counts(circuit);
    let dist = cal.topology.distance_matrix();

    let mut best: Option<(f64, Layout)> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |p: &[usize]| {
        let layout: Layout = p.iter().map(|&i| subset[i]).collect();
        let mut cost = 0.0;
        for &((a, b), w) in &interactions {
            let (pa, pb) = (layout[a], layout[b]);
            let d = dist[pa][pb] as f64;
            // each extra hop costs ~3 CNOTs of the average edge error
            let edge_err = cal
                .edge(pa, pb)
                .map(|e| e.cx_error)
                .unwrap_or_else(|| cal.avg_cx_error() * (1.0 + 3.0 * (d - 1.0).max(0.0)));
            cost += w as f64 * (edge_err + 0.01 * (d - 1.0).max(0.0));
        }
        // prefer low readout error on measured (all) qubits
        cost += layout
            .iter()
            .map(|&q| cal.qubits[q].readout_error)
            .sum::<f64>()
            * 0.1;
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, layout));
        }
    });
    best.expect("at least one permutation").1
}

fn permute<F: FnMut(&[usize])>(arr: &mut Vec<usize>, k: usize, visit: &mut F) {
    if k == arr.len() {
        visit(arr);
        return;
    }
    for i in k..arr.len() {
        arr.swap(k, i);
        permute(arr, k + 1, visit);
        arr.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::{ourense, toronto};

    fn chain_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.cx(i, i + 1);
        }
        c
    }

    #[test]
    fn trivial_layout_is_identity() {
        assert_eq!(trivial_layout(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn noise_aware_layout_is_valid_assignment() {
        let cal = toronto();
        let c = chain_circuit(4);
        let layout = noise_aware_layout(&c, &cal);
        assert_eq!(layout.len(), 4);
        let mut sorted = layout.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "layout must not repeat physical qubits");
        for &p in &layout {
            assert!(p < 27);
        }
    }

    #[test]
    fn chain_maps_onto_connected_path() {
        let cal = ourense();
        let c = chain_circuit(3);
        let layout = noise_aware_layout(&c, &cal);
        // every interacting pair should land on adjacent qubits of the line
        assert!(cal.topology.has_edge(layout[0], layout[1]));
        assert!(cal.topology.has_edge(layout[1], layout[2]));
    }

    #[test]
    fn manual_subset_is_respected() {
        let cal = toronto();
        let c = chain_circuit(4);
        let subset = vec![12, 13, 14, 15];
        let layout = best_permutation_onto(&c, &cal, &subset);
        let mut s = layout.clone();
        s.sort_unstable();
        assert_eq!(s, subset, "layout must stay inside the requested subset");
    }

    #[test]
    fn permutation_prefers_adjacency() {
        // A chain on the subset {1, 2, 3} of a line: logical order should map
        // onto a path, i.e. the middle logical qubit gets a middle physical.
        let cal = ourense();
        let c = chain_circuit(3);
        let layout = best_permutation_onto(&c, &cal, &[3, 1, 2]);
        assert!(cal.topology.has_edge(layout[0], layout[1]));
        assert!(cal.topology.has_edge(layout[1], layout[2]));
    }
}
