//! Regression pin for the commutation-aware routing/optimization pipeline.
//!
//! This PR rebuilt `commutation_cancel_cx` on the shared
//! [`qaprox_circuit::commuting_span`] oracle; the pass is argued bit-for-bit
//! equivalent to the old scan (a CX never commutes with its own copy, so a
//! cancelling partner is exactly the span boundary), and this suite pins the
//! *routed output* of every example QASM program so any future drift in the
//! commutation rules or the optimizer shows up as a hash mismatch, not a
//! silent behavior change.

use qaprox_circuit::{from_qasm, qasm};
use qaprox_device::devices::ourense;
use qaprox_linalg::hash128_hex;
use qaprox_transpile::{transpile, OptLevel};

fn routed_fingerprint(source: &str, level: OptLevel) -> String {
    let circuit = from_qasm(source).expect("example parses");
    let cal = ourense();
    let t = transpile(&circuit, &cal, level, None);
    let mut payload = qasm::canonical_bytes(&t.circuit);
    payload.extend(format!("; physical={:?}", t.physical_qubits).into_bytes());
    hash128_hex(&payload)
}

/// Every example program, pinned at the commutation-aware level (L3, the
/// only level that runs `commutation_cancel_cx`) and at L1 as a control.
#[test]
fn example_qasm_set_routes_bit_for_bit() {
    let cases: [(&str, &str, OptLevel, &str); 6] = [
        (
            "grover_3q",
            include_str!("../../../examples/qasm/grover_3q.qasm"),
            OptLevel::L3,
            "3b9e195a2c5927e3596f73b61a897877",
        ),
        (
            "grover_3q",
            include_str!("../../../examples/qasm/grover_3q.qasm"),
            OptLevel::L1,
            "12502d78d0f2b1d4095a476c2dae977c",
        ),
        (
            "tfim_3q_4steps",
            include_str!("../../../examples/qasm/tfim_3q_4steps.qasm"),
            OptLevel::L3,
            "7d95d7c872c6ff4311b81562a65bb8f1",
        ),
        (
            "tfim_3q_4steps",
            include_str!("../../../examples/qasm/tfim_3q_4steps.qasm"),
            OptLevel::L1,
            "746a7ede3f76bb5717d087c49732f81e",
        ),
        (
            "toffoli_4q",
            include_str!("../../../examples/qasm/toffoli_4q.qasm"),
            OptLevel::L3,
            "24db1f5fd2c16f24a4608592ad3def76",
        ),
        (
            "toffoli_4q",
            include_str!("../../../examples/qasm/toffoli_4q.qasm"),
            OptLevel::L1,
            "2a8d5986309ac86ec873a04b2e76d2a9",
        ),
    ];
    for (name, source, level, expected) in cases {
        let got = routed_fingerprint(source, level);
        assert_eq!(
            got, expected,
            "routed output of {name} at {level:?} drifted (update the pin \
             only for an intentional pass change)"
        );
    }
}

/// The TFIM Trotter body is the workload the commutation pass was built
/// for: L3 must strictly reduce its CX count versus L1 (the plain pass
/// cannot see through the commuting RZ on the control).
#[test]
fn commutation_pass_still_beats_plain_cancellation_on_tfim() {
    let circuit = from_qasm(include_str!("../../../examples/qasm/tfim_3q_4steps.qasm"))
        .expect("example parses");
    let cal = ourense();
    let l1 = transpile(&circuit, &cal, OptLevel::L1, None);
    let l3 = transpile(&circuit, &cal, OptLevel::L3, None);
    assert!(
        l3.circuit.cx_count() <= l1.circuit.cx_count(),
        "L3 must never leave more CX than L1 ({} vs {})",
        l3.circuit.cx_count(),
        l1.circuit.cx_count()
    );
}
