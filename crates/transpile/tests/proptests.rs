//! Property-style tests for the transpiler: every pass must preserve
//! circuit semantics (up to global phase / qubit relabeling). Driven by the
//! in-repo seeded RNG.

use qaprox_circuit::{Circuit, Gate};
use qaprox_device::Topology;
use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_metrics::hs_distance;
use qaprox_transpile::{cancel_cx_pairs, merge_1q_runs, optimize, route, to_basis};

const CASES: usize = 48;

fn random_circuit(n: usize, rng: &mut SplitMix64) -> Circuit {
    let len = rng.gen_range(0usize..18);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let kind = rng.gen_range(0usize..8);
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let t = rng.gen_range(-3.0..3.0);
        match kind {
            0 => {
                c.h(a);
            }
            1 => {
                c.rx(t, a);
            }
            2 => {
                c.rz(t, a);
            }
            3 => {
                c.push(Gate::S, &[a]);
            }
            4 if a != b => {
                c.cx(a, b);
            }
            5 if a != b => {
                c.cz(a, b);
            }
            6 if a != b => {
                c.swap(a, b);
            }
            7 if a != b => {
                c.push(Gate::CP(t), &[a, b]);
            }
            _ => {}
        }
    }
    c
}

#[test]
fn basis_translation_preserves_unitary() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let t = to_basis(&c);
        assert!(qaprox_transpile::is_in_basis(&t));
        assert!(hs_distance(&c.unitary(), &t.unitary()) < 1e-8);
    }
}

#[test]
fn merge_1q_preserves_unitary() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let m = merge_1q_runs(&to_basis(&c));
        assert!(hs_distance(&c.unitary(), &m.unitary()) < 1e-8);
    }
}

#[test]
fn cx_cancellation_preserves_unitary() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let b = to_basis(&c);
        let x = cancel_cx_pairs(&b);
        assert!(hs_distance(&b.unitary(), &x.unitary()) < 1e-9);
        assert!(x.cx_count() <= b.cx_count());
    }
}

#[test]
fn optimize_never_grows_and_preserves() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let c = random_circuit(3, &mut rng);
        let b = to_basis(&c);
        let o = optimize(&b);
        assert!(o.len() <= b.len());
        assert!(hs_distance(&b.unitary(), &o.unitary()) < 1e-8);
    }
}

#[test]
fn routing_respects_coupling() {
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..CASES {
        let c = random_circuit(4, &mut rng);
        let topo = Topology::linear(5);
        let layout: Vec<usize> = vec![0, 1, 2, 3];
        let routed = route(&to_basis(&c), &topo, &layout);
        for inst in routed.circuit.iter() {
            if inst.qubits.len() == 2 {
                assert!(
                    topo.has_edge(inst.qubits[0], inst.qubits[1]),
                    "routed gate on uncoupled pair {:?}",
                    inst.qubits
                );
            }
        }
        // final layout is a permutation of the initial one's image
        let mut fin = routed.final_layout.clone();
        fin.sort_unstable();
        fin.dedup();
        assert_eq!(fin.len(), 4);
    }
}

#[test]
fn routing_preserves_measurement_distribution() {
    let mut rng = SplitMix64::seed_from_u64(6);
    for _ in 0..CASES {
        // Route onto a chain, simulate, and map outcomes back through the
        // final layout: distributions must match the unrouted circuit.
        let c = random_circuit(3, &mut rng);
        let topo = Topology::linear(4);
        let layout = vec![0usize, 1, 2];
        let routed = route(&c, &topo, &layout);
        let (compact, used) = qaprox_transpile::compact(&routed.circuit);
        if compact.num_qubits() == 0 {
            continue;
        }
        let compact_probs = qaprox_sim::statevector::probabilities(&compact);
        let logical_expect = qaprox_sim::statevector::probabilities(&c);
        // fold compact outcomes back to logical outcomes
        let mut got = vec![0.0; 8];
        for (idx, p) in compact_probs.iter().enumerate() {
            let mut logical = 0usize;
            for (ci, &phys) in used.iter().enumerate() {
                if (idx >> ci) & 1 == 1 {
                    if let Some(l) = routed.final_layout.iter().position(|&x| x == phys) {
                        logical |= 1 << l;
                    }
                }
            }
            got[logical] += p;
        }
        for (a, b) in got.iter().zip(&logical_expect) {
            assert!((a - b).abs() < 1e-8, "{got:?} vs {logical_expect:?}");
        }
    }
}
