//! End-to-end service tests: a real TCP server, a real client, a real store.

use qaprox_serve::{
    AdmissionConfig, Client, ClientError, JobSpec, RetryPolicy, RunSpec, SchedulerConfig, Server,
    ServerConfig, SynthSpec,
};
use qaprox_store::Store;
use std::sync::Arc;
use std::time::Duration;

fn tmp_store(tag: &str) -> Arc<Store> {
    let dir = std::env::temp_dir().join(format!("qaprox-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(Store::open(dir).unwrap())
}

fn tiny(seed: u64) -> SynthSpec {
    SynthSpec {
        workload: "tfim".into(),
        qubits: 2,
        steps: 2,
        max_cnots: 3,
        max_nodes: 25,
        max_hs: 0.4,
        seed,
        deadline_ms: None,
    }
}

const WAIT: Duration = Duration::from_secs(120);

#[test]
fn synth_and_run_round_trip_with_cache_hits() {
    let server = Server::start(ServerConfig::default(), Some(tmp_store("roundtrip"))).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    // synth: first submission computes
    let spec = JobSpec::Synth(tiny(0));
    let (id, key, deduped) = client.submit(&spec).unwrap();
    assert!(!deduped);
    assert_eq!(key.len(), 32);
    let payload = client.wait_for_result(id, WAIT).unwrap();
    assert_eq!(payload.get_str("kind"), Some("synth"));
    assert_eq!(payload.get_bool("cached"), Some(false));
    assert_eq!(payload.get_str("key"), Some(key.as_str()));
    let explored = payload.get_u64("explored").unwrap();
    assert!(explored > 0);

    // identical resubmit: hits the store, no new synthesis nodes
    let (id2, key2, _) = client.submit(&spec).unwrap();
    assert_ne!(id2, id, "a finished job is re-submittable");
    assert_eq!(key2, key, "content address is stable");
    let payload2 = client.wait_for_result(id2, WAIT).unwrap();
    assert_eq!(payload2.get_bool("cached"), Some(true));
    assert_eq!(payload2.get_u64("explored"), Some(explored));

    // run: reuses the cached population, then caches its own result
    let run = JobSpec::Run(RunSpec {
        synth: tiny(0),
        device: "ourense".into(),
        cx_error: Some(0.1),
        hardware: false,
        job_seed: 0,
        epsilon: None,
        ..Default::default()
    });
    let (rid, _, _) = client.submit(&run).unwrap();
    let rpayload = client.wait_for_result(rid, WAIT).unwrap();
    assert_eq!(rpayload.get_str("kind"), Some("run"));
    assert_eq!(rpayload.get_bool("cached"), Some(false));
    assert_eq!(rpayload.get_bool("population_cached"), Some(true));
    assert!(rpayload.get_f64("ref_score").unwrap() > 0.0);

    let (rid2, _, _) = client.submit(&run).unwrap();
    let rpayload2 = client.wait_for_result(rid2, WAIT).unwrap();
    assert_eq!(rpayload2.get_bool("cached"), Some(true));

    // stats reflect the cache traffic
    let stats = client.stats().unwrap();
    assert!(stats.get_u64("completed").unwrap() >= 4);
    let store_stats = stats.get("store").unwrap();
    assert!(store_stats.get_u64("hits").unwrap() >= 2, "{stats:?}");
    assert!(store_stats.get_u64("populations").unwrap() >= 1);
    assert!(store_stats.get_u64("results").unwrap() >= 1);

    server.shutdown();
}

#[test]
fn protocol_rejects_malformed_requests_without_dying() {
    let server = Server::start(ServerConfig::default(), None).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    use qaprox_store::json::Json;
    let bad_op = client
        .request(&Json::obj(vec![("op", Json::Str("frobnicate".into()))]))
        .unwrap();
    assert_eq!(bad_op.get_bool("ok"), Some(false));

    let bad_spec = client
        .request(&Json::obj(vec![
            ("op", Json::Str("synth".into())),
            ("workload", Json::Str("nope".into())),
        ]))
        .unwrap();
    assert_eq!(bad_spec.get_bool("ok"), Some(false));

    let unknown_id = client.status(123456).unwrap_err();
    assert!(unknown_id.contains("unknown"), "{unknown_id}");

    // the connection is still usable afterwards
    let (id, _, _) = client.submit(&JobSpec::Synth(tiny(1))).unwrap();
    assert!(client.wait_for_result(id, WAIT).is_ok());

    server.shutdown();
}

#[test]
fn backpressure_and_cancel_over_the_wire() {
    let server = Server::start(
        ServerConfig {
            scheduler: SchedulerConfig {
                workers: 1,
                queue_capacity: 1,
                ..Default::default()
            },
            ..Default::default()
        },
        None,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    // fast retries so the worker is still busy when they exhaust
    let mut client = Client::connect(&addr).unwrap().with_retry(RetryPolicy {
        max_attempts: 2,
        base_ms: 1,
        cap_ms: 2,
        ..Default::default()
    });

    // keep the single worker busy, fill the queue of one, then overflow
    let (_busy, _, _) = client.submit(&JobSpec::Synth(tiny(10))).unwrap();
    let (queued, _, _) = client.submit(&JobSpec::Synth(tiny(11))).unwrap();
    let mut saw_backpressure = false;
    for seed in 12..24 {
        match client.submit(&JobSpec::Synth(tiny(seed))) {
            Err(qaprox_serve::ClientError::Backpressure { attempts }) => {
                assert!(attempts >= 2, "the client retried before giving up");
                saw_backpressure = true;
                break;
            }
            Ok(_) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(saw_backpressure, "a 1-deep queue must reject overflow");

    // cancel the queued job before the worker reaches it
    assert!(client.cancel(queued).unwrap());
    let state = client.status(queued).unwrap();
    assert_eq!(state, "cancelled");

    server.shutdown();
}

#[test]
fn recover_op_reports_the_replayed_journal() {
    let journal_dir =
        std::env::temp_dir().join(format!("qaprox-serve-e2e-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let journaled = ServerConfig {
        scheduler: SchedulerConfig {
            journal_dir: Some(journal_dir.clone()),
            ..Default::default()
        },
        ..Default::default()
    };

    // first life: run one job to completion, shut down
    {
        let server = Server::start(journaled.clone(), Some(tmp_store("recover-a"))).unwrap();
        let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
        let (id, _, _) = client.submit(&JobSpec::Synth(tiny(0))).unwrap();
        client.wait_for_result(id, WAIT).unwrap();
        server.shutdown();
    }

    // second life: the recover op reports what the journal replayed
    let server = Server::start(journaled, Some(tmp_store("recover-b"))).unwrap();
    let mut client = Client::connect(&server.local_addr().to_string()).unwrap();
    let report = client.recover().unwrap();
    assert_eq!(report.get_bool("ok"), Some(true));
    assert_eq!(report.get_u64("jobs_seen"), Some(1));
    assert_eq!(report.get_u64("restored_terminal"), Some(1));
    server.shutdown();

    // a journal-less server rejects the op
    let plain = Server::start(ServerConfig::default(), None).unwrap();
    let mut client = Client::connect(&plain.local_addr().to_string()).unwrap();
    let err = client.recover().unwrap();
    assert_eq!(err.get_bool("ok"), Some(false));
    plain.shutdown();
}

#[test]
fn read_deadline_surfaces_as_typed_timeout() {
    // a listener that accepts nothing: the connect succeeds (kernel
    // backlog), the request is written, and the reply never comes
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();

    let mut client =
        Client::connect_timeout(&addr, Duration::from_secs(5), Duration::from_millis(100)).unwrap();
    use qaprox_store::json::Json;
    let err = client
        .request_typed(&Json::obj(vec![("op", Json::Str("stats".into()))]))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Timeout(_)),
        "a silent server must surface as the typed timeout, got {err:?}"
    );
    drop(listener);

    // against a live server the same deadlines are generous, so the client
    // behaves exactly like the untimed one
    let server = Server::start(ServerConfig::default(), None).unwrap();
    let mut client = Client::connect_timeout(
        &server.local_addr().to_string(),
        Duration::from_secs(5),
        Duration::from_secs(30),
    )
    .unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.get_bool("ok"), Some(true));
    server.shutdown();
}

#[test]
fn admission_control_rejections_reach_the_client_typed() {
    // a synth cost budget of zero turns every synthesis job away
    let server = Server::start(
        ServerConfig {
            scheduler: SchedulerConfig {
                admission: AdmissionConfig {
                    max_synth_cost: Some(0),
                    retry_after_ms: 13,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        },
        None,
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap().with_retry(RetryPolicy {
        max_attempts: 2,
        base_ms: 1,
        cap_ms: 2,
        ..Default::default()
    });

    match client.submit(&JobSpec::Synth(tiny(0))) {
        Err(ClientError::Overloaded { retry_after_ms }) => {
            assert_eq!(retry_after_ms, 13, "the server's backoff hint rides along");
        }
        other => panic!("over-budget submission must be typed Overloaded: {other:?}"),
    }

    // the stats op surfaces the overload counters and breaker states
    let stats = client.stats().unwrap();
    assert!(stats.get_u64("overloaded").unwrap() >= 2, "{stats:?}");
    assert_eq!(stats.get_u64("submitted"), Some(0), "nothing was admitted");
    assert_eq!(stats.get_u64("queued_cost"), Some(0));
    assert_eq!(stats.get_u64("shed"), Some(0));
    assert_eq!(stats.get_u64("quarantined"), Some(0));
    assert!(stats.get("breakers").is_some(), "{stats:?}");

    server.shutdown();
}

#[test]
fn shutdown_op_stops_the_accept_loop() {
    let server = Server::start(ServerConfig::default(), None).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    // joins promptly because the handler wakes the accept loop
    server.wait_for_shutdown();
}
