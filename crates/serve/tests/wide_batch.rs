//! Wide-run batching: the serve wide path must score its trajectory
//! candidates in ONE shot-batched pass — a single shared arena reset per
//! shot per batch, however many candidates are in flight — instead of one
//! full shot loop per candidate. Pinned via the process-wide reset counter
//! ([`qaprox_sim::batch_reset_total`]); this file holds exactly one test so
//! the counter delta is not polluted by a concurrent batch.

use qaprox_serve::{obtain_run, ExecCtl, RunSpec, SynthSpec};

#[test]
fn wide_run_shares_one_reset_per_shot_across_candidates() {
    let shots = 32usize;
    let spec = RunSpec {
        synth: SynthSpec {
            workload: "tfim".into(),
            qubits: 8, // past MAX_SYNTH_QUBITS: the wide trajectory path
            steps: 3,
            ..Default::default()
        },
        device: "toronto".into(),
        backend: Some("trajectory".into()),
        shots: Some(shots),
        ..Default::default()
    };
    let before = qaprox_sim::batch_reset_total();
    let out = obtain_run(None, &spec, &ExecCtl::default()).unwrap();
    let delta = qaprox_sim::batch_reset_total() - before;
    assert_eq!(out.result.rows.len(), 2, "steps 1 and 2 truncations");
    assert_eq!(
        delta,
        shots as u64,
        "candidates must share one arena reset per shot (got {delta} resets \
         for {shots} shots over {} candidates)",
        out.result.rows.len()
    );
}
