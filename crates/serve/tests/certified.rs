//! The certified fast path end to end: submitting a workload whose reference
//! is provably ε-equivalent to an already-executed one must be answered
//! straight from the store — no synthesis, no backend — with the stored rows
//! bit-identical and the payload marked `certified`.
//!
//! Backend-invocation counting uses the `serve.backend` failpoint's
//! evaluation counter, so those assertions only run under
//! `--features failpoints` (the CI faults job); the store-level and
//! payload-level assertions hold either way.

use qaprox_serve::{obtain_run, run_spec, ExecCtl, ExecResult, JobSpec, RunSpec, SynthSpec};
use qaprox_store::json::Json;
use qaprox_store::Store;

fn tmp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("qaprox-serve-cert-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Store::open(dir).unwrap()
}

/// A tiny run spec; `workload` is `tfim` or its commuting reorder `tfim-r`.
fn spec(workload: &str) -> RunSpec {
    RunSpec {
        synth: SynthSpec {
            workload: workload.into(),
            qubits: 2,
            steps: 2,
            max_cnots: 3,
            max_nodes: 25,
            max_hs: 0.4,
            seed: 0,
            deadline_ms: None,
        },
        device: "ourense".into(),
        cx_error: Some(0.1),
        hardware: false,
        job_seed: 0,
        epsilon: Some(0.05),
        ..Default::default()
    }
}

fn done(r: ExecResult) -> Json {
    match r {
        ExecResult::Done(p) => p,
        ExecResult::Suspended => panic!("unexpected suspension"),
    }
}

#[test]
fn certified_equivalent_resubmission_skips_synthesis_and_backend() {
    let store = tmp_store("fastpath");

    // arm the backend failpoint pass-through (`never` fires nothing) purely
    // so its evaluation counter runs; unarmed points don't count
    #[cfg(feature = "failpoints")]
    let _scenario = qaprox_fault::Scenario::setup("serve.backend=never");
    #[cfg(feature = "failpoints")]
    let evals_start = qaprox_fault::evals("serve.backend");

    // first submission: full pipeline (synthesize, simulate, persist)
    let first = done(
        run_spec(
            Some(&store),
            &JobSpec::Run(spec("tfim")),
            &ExecCtl::default(),
        )
        .unwrap(),
    );
    assert_eq!(first.get_str("kind"), Some("run"));
    assert_eq!(first.get_bool("cached"), Some(false));
    assert_eq!(first.get_bool("certified"), Some(false));

    #[cfg(feature = "failpoints")]
    {
        assert!(
            qaprox_fault::evals("serve.backend") > evals_start,
            "the first run must reach the backend"
        );
        assert_eq!(qaprox_fault::fires("serve.backend"), 0, "unarmed site");
    }

    let stats_mid = store.stats();
    #[cfg(feature = "failpoints")]
    let evals_mid = qaprox_fault::evals("serve.backend");

    // resubmit as `tfim-r`: a commuting reorder of the same reference.
    // Different circuit text, different cache keys everywhere — but the
    // QA5xx checker certifies the pair at bound 0, so the stored result is
    // reused outright.
    let second = done(
        run_spec(
            Some(&store),
            &JobSpec::Run(spec("tfim-r")),
            &ExecCtl::default(),
        )
        .unwrap(),
    );
    assert_eq!(second.get_bool("cached"), Some(false), "own key was a miss");
    assert_eq!(second.get_bool("certified"), Some(true));
    assert!(second.get_str("certified_from").is_some());
    assert!(
        second.get_f64("equiv_bound").unwrap() < 1e-12,
        "a pure commuting reorder certifies at bound 0, got {:?}",
        second.get_f64("equiv_bound")
    );

    // the payload rows are bit-identical to the first run's
    assert_eq!(
        second.get("rows").unwrap().to_string(),
        first.get("rows").unwrap().to_string(),
        "certified reuse must return the stored rows verbatim"
    );
    assert_eq!(
        second.get_f64("ref_score").unwrap().to_bits(),
        first.get_f64("ref_score").unwrap().to_bits()
    );

    // zero backend invocations for the certified answer
    #[cfg(feature = "failpoints")]
    assert_eq!(
        qaprox_fault::evals("serve.backend"),
        evals_mid,
        "certified fast path must never touch a backend"
    );
    // and zero synthesis: no new population (or partial) appeared; the only
    // store growth is the result re-filed under the new key
    let stats_end = store.stats();
    assert_eq!(
        stats_end.entries.0, stats_mid.entries.0,
        "no new population"
    );
    assert_eq!(stats_end.entries.1, stats_mid.entries.1, "no new partial");
    assert_eq!(
        stats_end.entries.2,
        stats_mid.entries.2 + 1,
        "the reused result is re-filed under the new spec's key"
    );

    // a third identical submission is now a plain cache hit
    let third = done(
        run_spec(
            Some(&store),
            &JobSpec::Run(spec("tfim-r")),
            &ExecCtl::default(),
        )
        .unwrap(),
    );
    assert_eq!(third.get_bool("cached"), Some(true));
    assert_eq!(
        third.get("rows").unwrap().to_string(),
        first.get("rows").unwrap().to_string()
    );
}

#[test]
fn epsilon_runs_score_certified_rows_without_simulating_them() {
    // storeless ε-run: any candidate the checker certifies against the
    // reference carries a static upper-bound score and the certified flag
    let out = obtain_run(None, &spec("tfim"), &ExecCtl::default()).unwrap();
    assert!(out.certified.is_none(), "no store, so no fast path");
    assert!(
        out.result.reference_qasm.is_some(),
        "ε-runs keep the reference"
    );
    for row in &out.result.rows {
        assert!(row.score >= 0.0 && row.score <= 1.0);
        if row.certified {
            // a certified score is ref_score padded by at most ε
            assert!(row.score <= (out.result.ref_score + 0.05 + 1e-12).min(1.0));
        }
    }
}

#[test]
fn distant_references_are_not_certified() {
    let store = tmp_store("nomatch");
    let first = done(
        run_spec(
            Some(&store),
            &JobSpec::Run(spec("tfim")),
            &ExecCtl::default(),
        )
        .unwrap(),
    );
    assert_eq!(first.get_bool("certified"), Some(false));

    // grover shares every synthesis/backend knob (same equiv tag) but its
    // reference is far from tfim's: the checker must refuse to reuse
    let second = done(
        run_spec(
            Some(&store),
            &JobSpec::Run(spec("grover")),
            &ExecCtl::default(),
        )
        .unwrap(),
    );
    assert_eq!(second.get_bool("certified"), Some(false));
    assert_eq!(second.get_bool("cached"), Some(false));
}
