//! Chaos property test (requires `--features failpoints`).
//!
//! Many seeded random failpoint schedules against a mixed synth/run
//! workload. The property under test is *liveness plus accounting*, not any
//! particular outcome:
//!
//! * no deadlock — every `wait` returns within its bound and `shutdown`
//!   joins;
//! * no lost or duplicated job ids — every accepted id is unique and still
//!   queryable at the end;
//! * every job terminates — the final state is terminal
//!   (done / failed / degraded / cancelled / timed-out), never stuck in
//!   queued/running.
//!
//! `QAPROX_QUICK=1` trims the schedule count for smoke runs (CI).
#![cfg(feature = "failpoints")]

use qaprox_fault::Scenario;
use qaprox_serve::{
    breaker, JobSpec, JobState, RetryPolicy, RunSpec, Scheduler, SchedulerConfig, Submitted,
    SynthSpec, WatchdogConfig,
};
use qaprox_store::json::Json;
use qaprox_store::Store;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(180);

fn tiny(seed: u64) -> SynthSpec {
    SynthSpec {
        workload: "tfim".into(),
        qubits: 2,
        steps: 2,
        max_cnots: 3,
        max_nodes: 20,
        max_hs: 0.4,
        seed,
        deadline_ms: None,
    }
}

/// One seeded fault schedule: every instrumented layer misbehaves with some
/// probability, each from its own deterministic stream.
fn fault_spec(seed: u64) -> String {
    format!(
        "store.read=prob:0.25;seed={}->error,\
         store.write=prob:0.15;seed={}->torn,\
         hardware.shot=prob:0.3;seed={}->error,\
         serve.worker.pre_exec=prob:0.2;seed={}->error,\
         synth.round=prob:0.002;seed={}->panic",
        seed,
        seed.wrapping_add(1),
        seed.wrapping_add(2),
        seed.wrapping_add(3),
        seed.wrapping_add(4),
    )
}

#[test]
fn seeded_fault_schedules_never_lose_or_wedge_jobs() {
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v != "0");
    let schedules: u64 = if quick { 12 } else { 100 };

    for chaos_seed in 0..schedules {
        breaker::reset_all(); // isolate breaker state between schedules
        let store_dir =
            std::env::temp_dir().join(format!("qaprox-chaos-{chaos_seed}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        let store = Arc::new(Store::open(&store_dir).unwrap());
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 2,
                checkpoint_every: 5,
                // fast retries: chaos runs many schedules
                retry: RetryPolicy {
                    max_attempts: 4,
                    base_ms: 1,
                    cap_ms: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
            Some(store),
        )
        .unwrap();

        // arm AFTER startup so setup itself is deterministic
        let _scenario = Scenario::setup(&fault_spec(chaos_seed * 101));

        // mixed workload: four synth jobs, two run jobs (distinct specs)
        let mut specs: Vec<JobSpec> = (0..4)
            .map(|i| JobSpec::Synth(tiny(chaos_seed * 10 + i)))
            .collect();
        for i in 0..2 {
            specs.push(JobSpec::Run(RunSpec {
                synth: tiny(chaos_seed * 10 + i),
                device: "ourense".into(),
                cx_error: Some(0.1),
                hardware: false,
                job_seed: chaos_seed,
                epsilon: None,
                ..Default::default()
            }));
        }

        let mut accepted = Vec::new();
        for spec in specs {
            match sched.submit(spec) {
                Ok(Submitted::Accepted(id)) => accepted.push(id),
                Ok(Submitted::Deduped(id)) => assert!(
                    accepted.contains(&id),
                    "schedule {chaos_seed}: dedup pointed at an unknown id {id}"
                ),
                Ok(Submitted::Rejected) => {} // backpressure is a legal outcome
                // admission control is not configured in this schedule
                Ok(Submitted::Overloaded { .. }) => {
                    panic!("schedule {chaos_seed}: overloaded with admission disabled")
                }
                // the enqueue failpoint is not armed, so submission errors
                // can only be validation — and these specs are valid
                Err(e) => panic!("schedule {chaos_seed}: submit failed: {e}"),
            }
        }

        let mut unique = accepted.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            accepted.len(),
            "schedule {chaos_seed}: duplicated job ids {accepted:?}"
        );

        for &id in &accepted {
            let view = sched
                .wait(id, WAIT)
                .unwrap_or_else(|| panic!("schedule {chaos_seed}: job {id} lost"));
            assert!(
                view.state.is_terminal(),
                "schedule {chaos_seed}: job {id} wedged in {:?}",
                view.state
            );
            match &view.state {
                JobState::Done | JobState::Degraded => assert!(
                    view.result.is_some(),
                    "schedule {chaos_seed}: job {id} finished without a payload"
                ),
                JobState::Failed(_) | JobState::Cancelled | JobState::TimedOut => {}
                other => panic!("schedule {chaos_seed}: job {id} non-terminal {other:?}"),
            }
        }

        // no deadlock: shutdown joins the pool
        sched.shutdown();
        let _ = std::fs::remove_dir_all(&store_dir);
    }
}

/// Wide trajectory jobs ride the same `serve.backend` failpoint as narrow
/// runs: an injected backend outage is retried until the job completes, the
/// evaluation counter proves the trajectory path actually reached the
/// backend, and a resubmission answered from the result cache leaves the
/// counter untouched.
#[test]
fn trajectory_jobs_count_backend_invocations_and_survive_outages() {
    breaker::reset_all();
    let store_dir = std::env::temp_dir().join(format!("qaprox-chaos-traj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = Arc::new(Store::open(&store_dir).unwrap());
    let sched = Scheduler::start(
        SchedulerConfig {
            workers: 1,
            retry: RetryPolicy {
                max_attempts: 4,
                base_ms: 1,
                cap_ms: 5,
                ..Default::default()
            },
            ..Default::default()
        },
        Some(store),
    )
    .unwrap();

    // one injected outage on the first backend call, then clean passes that
    // keep the evaluation counter running
    let _scenario = Scenario::setup("serve.backend=after:0");
    let evals_start = qaprox_fault::evals("serve.backend");

    let spec = JobSpec::Run(RunSpec {
        synth: SynthSpec {
            workload: "tfim".into(),
            qubits: 8, // wide: past the synthesis cap, still cheap to simulate
            steps: 3,
            max_cnots: 3,
            max_nodes: 20,
            max_hs: 0.4,
            seed: 0,
            deadline_ms: None,
        },
        device: "toronto".into(),
        backend: Some("trajectory".into()),
        shots: Some(16),
        ..Default::default()
    });
    let id = match sched.submit(spec.clone()).unwrap() {
        Submitted::Accepted(id) => id,
        other => panic!("trajectory job not accepted: {other:?}"),
    };
    let view = sched.wait(id, WAIT).expect("trajectory job lost");
    assert!(
        matches!(view.state, JobState::Done),
        "outage must be retried to completion, got {:?}",
        view.state
    );
    let evals_done = qaprox_fault::evals("serve.backend");
    assert!(
        evals_done >= evals_start + 2,
        "outage + retry must both reach the backend failpoint \
         ({evals_start} -> {evals_done})"
    );

    // resubmit: the result cache answers without touching the backend
    let id2 = match sched.submit(spec).unwrap() {
        Submitted::Accepted(id) => id,
        Submitted::Deduped(id) => id,
        other => panic!("resubmit rejected: {other:?}"),
    };
    let view2 = sched.wait(id2, WAIT).expect("resubmitted job lost");
    assert!(matches!(view2.state, JobState::Done), "{:?}", view2.state);
    assert_eq!(
        qaprox_fault::evals("serve.backend"),
        evals_done,
        "a cached trajectory result must not re-invoke the backend"
    );

    sched.shutdown();
    let _ = std::fs::remove_dir_all(&store_dir);
}

/// The seeded overload schedule from the robustness acceptance bar: one
/// trajectory job stalled by a `traj.shot` sleep (the watchdog must
/// quarantine it), one job submitted with an already-expired deadline (shed
/// before it consumes any backend evaluation), and a flood of healthy jobs
/// queued behind them. Afterwards the accounting must balance
/// (submitted = completed + shed + quarantined + degraded) and a restart on
/// the same journal must restore the casualties as terminal — NOT re-run
/// them — so a poison circuit cannot crash-loop recovery replay.
#[test]
fn overload_schedule_sheds_quarantines_and_balances_accounting() {
    breaker::reset_all();
    let base = std::env::temp_dir().join(format!("qaprox-chaos-overload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store = Arc::new(Store::open(base.join("store")).unwrap());
    let cfg = SchedulerConfig {
        workers: 1, // deterministic dispatch order: stall, then shed, then flood
        journal_dir: Some(base.join("journal")),
        // the budget must clear a legitimate wide trajectory job (tens of
        // milliseconds) by a wide margin, and the injected stall must clear
        // the budget by another
        watchdog: WatchdogConfig {
            stall_timeout: Some(Duration::from_millis(1000)),
            poll_interval: Duration::from_millis(10),
            ..Default::default()
        },
        ..Default::default()
    };
    let sched = Scheduler::start(cfg.clone(), Some(Arc::clone(&store))).unwrap();

    // the first trajectory shot anywhere sleeps far past the watchdog
    // budget, then the `after:0` trigger disarms so every later shot runs
    // clean; `serve.backend=never` fires nothing but keeps that failpoint's
    // evaluation counter live (unarmed points do not count)
    let _scenario = Scenario::setup("traj.shot=after:0->sleep:3000,serve.backend=never");
    let evals_start = qaprox_fault::evals("serve.backend");

    let wide = |seed: u64, deadline_ms: Option<u64>| {
        JobSpec::Run(RunSpec {
            synth: SynthSpec {
                workload: "tfim".into(),
                qubits: 8, // wide: past the synthesis cap, still cheap
                steps: 3,
                max_cnots: 3,
                max_nodes: 20,
                max_hs: 0.4,
                seed,
                deadline_ms,
            },
            device: "toronto".into(),
            backend: Some("trajectory".into()),
            shots: Some(16),
            ..Default::default()
        })
    };
    let submit = |spec: JobSpec| match sched.submit(spec).unwrap() {
        Submitted::Accepted(id) => id,
        other => panic!("overload-schedule job not accepted: {other:?}"),
    };

    let stalled = submit(wide(0, None));
    // expired on arrival: waits behind the stalled job, shed at dispatch
    let expired = submit(wide(1, Some(0)));
    let flood: Vec<u64> = (2..6).map(|seed| submit(wide(seed, None))).collect();

    // the stalled job lands quarantined with the watchdog's verdict
    let view = sched.wait(stalled, WAIT).expect("stalled job lost");
    match &view.state {
        JobState::Quarantined(reason) => assert!(
            reason.contains("stalled"),
            "quarantine verdict must name the stall: {reason}"
        ),
        other => panic!("stalled job must be quarantined, got {other:?}"),
    }
    // the expired job is shed without ever starting
    let view = sched.wait(expired, WAIT).expect("expired job lost");
    assert_eq!(view.state, JobState::Shed);
    // the flood drains to completion once the stalled job is condemned
    for &id in &flood {
        let view = sched.wait(id, WAIT).expect("flood job lost");
        assert_eq!(view.state, JobState::Done, "flood job {id} did not finish");
    }

    // exactly one backend evaluation for the stalled job (condemned in the
    // shot loop, after the counting failpoint) plus one per flood job — the
    // shed job consumed zero
    assert_eq!(
        qaprox_fault::evals("serve.backend") - evals_start,
        1 + flood.len() as u64,
        "the shed job must consume zero backend evaluations"
    );

    // accounting balances: submitted = completed + shed + quarantined
    let stats = sched.stats();
    assert_eq!(stats.get_u64("submitted"), Some(2 + flood.len() as u64));
    assert_eq!(stats.get_u64("completed"), Some(flood.len() as u64));
    assert_eq!(stats.get_u64("shed"), Some(1));
    assert_eq!(stats.get_u64("quarantined"), Some(1));
    assert_eq!(stats.get_u64("degraded"), Some(0));
    assert_eq!(stats.get_u64("queued_cost"), Some(0));

    sched.shutdown();

    // restart on the same journal: both casualties come back terminal and
    // queryable, nothing is re-enqueued, and the backend counter stays put
    let evals_before_restart = qaprox_fault::evals("serve.backend");
    let sched = Scheduler::start(cfg, Some(store)).unwrap();
    let report = sched.recovery_report().expect("journal configured");
    assert_eq!(
        report.get_u64("restored_terminal"),
        Some(2 + flood.len() as u64)
    );
    let reenqueued = report.get("reenqueued").and_then(Json::as_arr).unwrap();
    assert!(reenqueued.is_empty(), "nothing to re-run: {reenqueued:?}");
    match &sched.job(stalled).expect("quarantined job restored").state {
        JobState::Quarantined(reason) => assert!(
            reason.contains("stalled"),
            "restart must restore the quarantine verdict: {reason}"
        ),
        other => panic!("quarantined job restored as {other:?}"),
    }
    assert_eq!(
        sched.job(expired).expect("shed job restored").state,
        JobState::Shed
    );
    assert_eq!(
        qaprox_fault::evals("serve.backend"),
        evals_before_restart,
        "recovery replay must not re-run a quarantined job"
    );
    sched.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
