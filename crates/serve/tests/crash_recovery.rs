//! Crash-recovery integration test (requires `--features failpoints`).
//!
//! The scenario the journal exists for: a worker dies mid-synthesis (here:
//! an injected panic, which the scheduler deliberately does NOT journal —
//! a dead process appends nothing), the process restarts on the same
//! journal + store directories, the lost job is re-enqueued under its
//! original id, resumes from the last store checkpoint, and — because
//! resume is replay-based — finishes with a payload bit-identical to a run
//! that never crashed.
#![cfg(feature = "failpoints")]

use qaprox_fault::Scenario;
use qaprox_serve::{JobSpec, JobState, Scheduler, SchedulerConfig, Submitted, SynthSpec};
use qaprox_store::json::Json;
use qaprox_store::Store;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(120);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qaprox-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> JobSpec {
    JobSpec::Synth(SynthSpec {
        workload: "tfim".into(),
        qubits: 2,
        steps: 2,
        max_cnots: 3,
        max_nodes: 25,
        max_hs: 0.4,
        seed: 11,
        deadline_ms: None,
    })
}

fn cfg(journal: PathBuf) -> SchedulerConfig {
    SchedulerConfig {
        workers: 1,
        checkpoint_every: 1,
        journal_dir: Some(journal),
        ..Default::default()
    }
}

/// The synthesis content of a payload, with provenance fields (`cached`,
/// `resumed_from`) stripped: those legitimately differ between a crashed-
/// and-recovered run and an uninterrupted one.
fn essence(payload: &Json) -> String {
    let Json::Obj(fields) = payload else {
        panic!("payload is not an object: {payload}");
    };
    Json::Obj(
        fields
            .iter()
            .filter(|(k, _)| k != "cached" && k != "resumed_from")
            .cloned()
            .collect(),
    )
    .to_string()
}

#[test]
fn recovered_job_resumes_from_checkpoint_and_matches_the_no_crash_run() {
    let journal_dir = tmp_dir("journal");
    let store_dir = tmp_dir("store");

    // Life A: the worker panics mid-synthesis (this spec runs exactly two
    // expansion rounds; `after:1` lets round 1 checkpoint and kills round 2)
    // — an emulated process crash.
    {
        let scenario = Scenario::setup("synth.round=after:1->panic");
        let store = Arc::new(Store::open(&store_dir).unwrap());
        let sched = Scheduler::start(cfg(journal_dir.clone()), Some(store)).unwrap();
        let id = match sched.submit(spec()).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert_eq!(id, 1);
        let view = sched.wait(id, WAIT).unwrap();
        match view.state {
            JobState::Failed(msg) => {
                assert!(
                    msg.contains("injected"),
                    "expected the injected crash: {msg}"
                )
            }
            other => panic!("expected the injected crash, got {other:?}"),
        }
        drop(scenario); // disarm before the recovery run
        sched.shutdown();
    }

    // Life B: same journal + store. The crash was never journaled, so the
    // job replays as unfinished, re-enqueues under id 1, and resumes from
    // the persisted checkpoint.
    let recovered = {
        let store = Arc::new(Store::open(&store_dir).unwrap());
        let sched = Scheduler::start(cfg(journal_dir), Some(store)).unwrap();
        let report = sched.recovery_report().unwrap();
        let reenqueued = report.get("reenqueued").and_then(Json::as_arr).unwrap();
        assert_eq!(reenqueued.len(), 1, "{report}");
        assert_eq!(reenqueued[0].get_u64("id"), Some(1));
        assert!(
            reenqueued[0].get_u64("checkpoint").unwrap() > 0,
            "the crash left a journaled checkpoint: {report}"
        );
        let view = sched.wait(1, WAIT).unwrap();
        assert_eq!(view.state, JobState::Done);
        let payload = view.result.unwrap();
        assert!(
            payload.get_u64("resumed_from").unwrap() > 0,
            "the recovered run resumed, not restarted: {payload}"
        );
        sched.shutdown();
        payload
    };

    // Life C: the same spec, fresh directories, no crash — the control run.
    let uninterrupted = {
        let store = Arc::new(Store::open(tmp_dir("control-store")).unwrap());
        let sched = Scheduler::start(cfg(tmp_dir("control-journal")), Some(store)).unwrap();
        let id = match sched.submit(spec()).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::Done);
        let payload = view.result.unwrap();
        sched.shutdown();
        payload
    };

    assert_eq!(
        essence(&recovered),
        essence(&uninterrupted),
        "replay resume must be bit-identical to the uninterrupted run"
    );
}
