//! Job specifications and their content-address fingerprints.
//!
//! A [`JobSpec`] is the wire-level description of one unit of work: either
//! synthesize a population ([`SynthSpec`]) or synthesize-and-execute it on a
//! backend ([`RunSpec`]). Specs deliberately mirror the `qaprox synth` /
//! `qaprox run` CLI options so a spec, a command line, and a cache key all
//! describe the same computation. Fingerprints are canonical `k=v;` strings
//! (floats printed `{:.17e}`) and feed the store's 128-bit keys.

use qaprox::prelude::*;
use qaprox_sim::{TrajectoryBackend, DEFAULT_TRAJECTORY_SHOTS};
use qaprox_store::json::Json;
use qaprox_store::key::{population_key, result_key, Key};
use qaprox_synth::InstantiateConfig;

/// Widest circuit synthesis (and the density-matrix backend) accepts: both
/// need the dense `2^n x 2^n` target unitary. Run jobs wider than this take
/// the trajectory-only wide path (TFIM workloads, no synthesis).
pub const MAX_SYNTH_QUBITS: usize = 6;

/// A synthesis job: workload + synthesis budget + seed.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Reference workload: `tfim`, `grover`, or `toffoli`.
    pub workload: String,
    /// Circuit width (2..=6 for synthesis; trajectory-backed run jobs may
    /// go wider, see [`RunSpec::reference_circuit`]).
    pub qubits: usize,
    /// TFIM timestep count (ignored by other workloads).
    pub steps: usize,
    /// QSearch CNOT cap.
    pub max_cnots: usize,
    /// QSearch node budget.
    pub max_nodes: usize,
    /// Selection threshold on HS distance.
    pub max_hs: f64,
    /// Instantiation seed.
    pub seed: u64,
    /// Optional client deadline: a wall-clock budget in milliseconds,
    /// measured from submission. The scheduler sheds the job (without
    /// dispatching it) once the budget lapses, and workers propagate the
    /// remaining budget as a cancellation deadline so expired work stops at
    /// shot/wave granularity. The deadline describes *when* the answer is
    /// still wanted, not *what* is computed — it is deliberately excluded
    /// from every fingerprint and store key.
    pub deadline_ms: Option<u64>,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            workload: "tfim".into(),
            qubits: 3,
            steps: 6,
            max_cnots: 6,
            max_nodes: 150,
            max_hs: 0.12,
            seed: 0,
            deadline_ms: None,
        }
    }
}

/// An execution job: a synthesis spec plus the backend to score it on.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// What to synthesize.
    pub synth: SynthSpec,
    /// Device calibration name (`ourense`, `rome`, ...).
    pub device: String,
    /// Optional uniform CNOT-error override.
    pub cx_error: Option<f64>,
    /// Use the hardware-emulation backend.
    pub hardware: bool,
    /// Seed for the backend's stochastic noise channels.
    pub job_seed: u64,
    /// Backend override: `Some("trajectory")` scores on the Monte-Carlo
    /// trajectory backend (`2^n` per shot) instead of the `4^n` density
    /// matrix. Required — and the only valid value — for wide runs
    /// (`qubits > MAX_SYNTH_QUBITS`). `None` keeps the pre-trajectory
    /// behaviour and cache keys.
    pub backend: Option<String>,
    /// Trajectory shot count (`None` = [`DEFAULT_TRAJECTORY_SHOTS`]).
    /// Ignored unless `backend` is set.
    pub shots: Option<usize>,
    /// ε-equivalence tolerance. `Some` opts the run into the QA5xx
    /// certified machinery: candidates proven within ε of the reference are
    /// scored statically (no backend), and a resubmission whose reference is
    /// provably equivalent to an already-stored run's is answered from the
    /// store without synthesizing or simulating at all. `None` (the
    /// default) keeps the exact pre-certification behaviour and cache keys.
    pub epsilon: Option<f64>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            synth: SynthSpec::default(),
            device: "ourense".into(),
            cx_error: None,
            hardware: false,
            job_seed: 0,
            backend: None,
            shots: None,
            epsilon: None,
        }
    }
}

/// One unit of work the service schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Synthesize a population.
    Synth(SynthSpec),
    /// Synthesize and execute on a backend.
    Run(RunSpec),
}

/// Swaps adjacent instruction pairs with disjoint qubit support in one
/// greedy left-to-right pass. The output implements the same noisy channel
/// as the input (channels on disjoint subsystems commute) but serializes to
/// different QASM, so it content-addresses differently everywhere.
pub fn commuting_reorder(c: &Circuit) -> Circuit {
    let mut insts: Vec<qaprox_circuit::Instruction> = c.instructions().to_vec();
    let mut i = 0;
    while i + 1 < insts.len() {
        let disjoint = insts[i]
            .qubits
            .iter()
            .all(|q| !insts[i + 1].qubits.contains(q));
        if disjoint {
            insts.swap(i, i + 1);
            i += 2;
        } else {
            i += 1;
        }
    }
    let mut out = Circuit::new(c.num_qubits());
    for inst in &insts {
        out.push(inst.gate.clone(), &inst.qubits);
    }
    out
}

impl SynthSpec {
    /// Builds the reference circuit (mirrors the CLI's workload options).
    /// Caps at [`MAX_SYNTH_QUBITS`]: synthesis jobs need the dense target
    /// unitary. Wide TFIM references exist for trajectory-backed run jobs —
    /// see [`SynthSpec::wide_reference_circuit`].
    pub fn reference_circuit(&self) -> Result<Circuit, String> {
        if !(2..=MAX_SYNTH_QUBITS).contains(&self.qubits) {
            return Err(format!("supported qubits range is 2..={MAX_SYNTH_QUBITS}"));
        }
        self.build_reference()
    }

    /// Builds a wide reference circuit for the trajectory path. Only the
    /// TFIM workloads scale: their circuits are `O(qubits * steps)` gates
    /// and nothing on the wide path ever forms the `2^n` unitary.
    pub fn wide_reference_circuit(&self) -> Result<Circuit, String> {
        if !(2..=65).contains(&self.qubits) {
            return Err("supported qubits range is 2..=65".into());
        }
        match self.workload.as_str() {
            "tfim" | "tfim-r" => self.build_reference(),
            other => Err(format!(
                "workload '{other}' caps at {MAX_SYNTH_QUBITS} qubits; only tfim/tfim-r scale wider"
            )),
        }
    }

    /// The wide-run candidate set: the same TFIM evolution Trotterized with
    /// every shallower step count `1..steps`. This replaces synthesis on the
    /// wide path (QSearch cannot target a `2^27` unitary) while keeping the
    /// paper's depth/accuracy trade-off: fewer Trotter steps pay less noise
    /// but approximate the evolution more coarsely. `hs_distance` is 0.0 on
    /// every candidate — there is no dense target to measure against.
    pub fn wide_population_circuits(&self) -> Result<Vec<ApproxCircuit>, String> {
        self.wide_reference_circuit()?;
        if self.steps < 2 {
            return Err("wide runs need steps >= 2 so truncation yields candidates".into());
        }
        let params = TfimParams::paper_defaults(self.qubits);
        Ok((1..self.steps)
            .map(|s| {
                let mut c = tfim_circuit(&params, s);
                if self.workload == "tfim-r" {
                    c = commuting_reorder(&c);
                }
                ApproxCircuit::new(c, 0.0)
            })
            .collect())
    }

    fn build_reference(&self) -> Result<Circuit, String> {
        match self.workload.as_str() {
            "tfim" => {
                let params = TfimParams::paper_defaults(self.qubits);
                Ok(tfim_circuit(&params, self.steps))
            }
            // `tfim` with a deterministic commuting reorder: a distinct
            // workload (different circuit text, different cache keys) whose
            // noisy channel is *provably identical* to `tfim`'s — the QA5xx
            // checker certifies the pair at bound 0, which is what exercises
            // the serve certified fast path end to end
            "tfim-r" => {
                let params = TfimParams::paper_defaults(self.qubits);
                Ok(commuting_reorder(&tfim_circuit(&params, self.steps)))
            }
            "grover" => {
                let target = (1usize << self.qubits) - 1;
                let iters = qaprox_algos::grover::optimal_iterations(self.qubits);
                Ok(grover_circuit(self.qubits, target, iters))
            }
            "toffoli" => Ok(mct_reference(self.qubits)),
            #[cfg(test)]
            "__panic" => panic!("injected panic for scheduler isolation tests"),
            other => Err(format!(
                "unknown workload '{other}' (tfim|tfim-r|grover|toffoli)"
            )),
        }
    }

    /// The workflow this spec describes (the CLI's defaults, seeded).
    pub fn workflow(&self) -> Workflow {
        Workflow {
            topology: Topology::linear(self.qubits),
            engine: Engine::QSearch(QSearchConfig {
                max_cnots: self.max_cnots,
                max_nodes: self.max_nodes,
                beam_width: 4,
                instantiate: InstantiateConfig {
                    starts: 2,
                    seed: self.seed,
                    ..Default::default()
                },
                ..Default::default()
            }),
            max_hs: self.max_hs,
        }
    }

    /// Canonical config fingerprint (everything but target and seed, which
    /// hash separately in [`population_key`]).
    pub fn fingerprint(&self) -> String {
        format!(
            "synth/v1;workload={};qubits={};steps={};max_cnots={};max_nodes={};max_hs={:.17e};beam=4;starts=2",
            self.workload, self.qubits, self.steps, self.max_cnots, self.max_nodes, self.max_hs
        )
    }

    /// The store key for this spec's population.
    pub fn population_key(&self) -> Result<Key, String> {
        let reference = self.reference_circuit()?;
        let target = Workflow::target_unitary(&reference);
        Ok(population_key(&target, &self.fingerprint(), self.seed))
    }

    /// JSON form (spec fields only; the `op` tag belongs to the envelope).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("workload".to_string(), Json::Str(self.workload.clone())),
            ("qubits".to_string(), Json::Num(self.qubits as f64)),
            ("steps".to_string(), Json::Num(self.steps as f64)),
            ("max_cnots".to_string(), Json::Num(self.max_cnots as f64)),
            ("max_nodes".to_string(), Json::Num(self.max_nodes as f64)),
            ("max_hs".to_string(), Json::Num(self.max_hs)),
            ("seed".to_string(), Json::Num(self.seed as f64)),
        ];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".into(), Json::Num(ms as f64)));
        }
        Json::Obj(fields)
    }

    /// Reads spec fields from a JSON object, defaulting absent ones.
    pub fn from_json(v: &Json) -> Result<SynthSpec, String> {
        let d = SynthSpec::default();
        Ok(SynthSpec {
            workload: v.get_str("workload").unwrap_or(&d.workload).to_string(),
            qubits: v.get_usize("qubits").unwrap_or(d.qubits),
            steps: v.get_usize("steps").unwrap_or(d.steps),
            max_cnots: v.get_usize("max_cnots").unwrap_or(d.max_cnots),
            max_nodes: v.get_usize("max_nodes").unwrap_or(d.max_nodes),
            max_hs: v.get_f64("max_hs").unwrap_or(d.max_hs),
            seed: v.get_u64("seed").unwrap_or(d.seed),
            deadline_ms: v.get_u64("deadline_ms"),
        })
    }
}

impl RunSpec {
    /// True when the spec is wider than the synthesis/density-matrix cap
    /// and takes the trajectory-only wide path.
    pub fn is_wide(&self) -> bool {
        self.synth.qubits > MAX_SYNTH_QUBITS
    }

    /// Effective trajectory shot count (only meaningful with `backend` set).
    pub fn effective_shots(&self) -> usize {
        self.shots.unwrap_or(DEFAULT_TRAJECTORY_SHOTS).max(1)
    }

    /// The reference circuit this run scores against: the synthesis-width
    /// reference normally, the wide TFIM reference on the trajectory path.
    /// A wide spec without `backend = trajectory` is an error — nothing
    /// else can execute it.
    pub fn reference_circuit(&self) -> Result<Circuit, String> {
        if self.is_wide() {
            if self.backend.as_deref() != Some("trajectory") {
                return Err(format!(
                    "qubits={} needs backend=trajectory (the density matrix caps at {MAX_SYNTH_QUBITS} qubits)",
                    self.synth.qubits
                ));
            }
            self.synth.wide_reference_circuit()
        } else {
            self.synth.reference_circuit()
        }
    }

    /// The induced (and possibly cx-error-overridden) calibration this spec
    /// runs on — shared by the backend and the static analyzer. Narrow specs
    /// induce the identity slice `0..qubits` (unchanged keys); wide specs
    /// induce along a connected path through the device topology when one
    /// exists, so chained TFIM interactions land on real coupled edges.
    pub fn calibration(&self) -> Result<qaprox_device::Calibration, String> {
        let cal = devices::by_name(&self.device)
            .ok_or_else(|| format!("unknown device '{}'", self.device))?;
        if self.synth.qubits > cal.topology.num_qubits() {
            return Err(format!(
                "device {} has too few qubits for qubits={}",
                self.device, self.synth.qubits
            ));
        }
        let sites: Vec<usize> = if self.is_wide() {
            // heavy-hex has no Hamiltonian path, so a full-device request
            // falls back to identity order; the noise model's avg-error
            // fallback covers any non-adjacent chain link
            cal.topology
                .connected_path(self.synth.qubits)
                .unwrap_or_else(|| (0..self.synth.qubits).collect())
        } else {
            (0..self.synth.qubits).collect()
        };
        let mut induced = cal.induced(&sites);
        if let Some(eps) = self.cx_error {
            induced = induced.with_uniform_cx_error(eps);
        }
        Ok(induced)
    }

    /// Builds the backend this spec scores on (mirrors the CLI).
    pub fn backend(&self) -> Result<Backend, String> {
        let model = NoiseModel::from_calibration(self.calibration()?);
        match self.backend.as_deref() {
            None => Ok(if self.hardware {
                Backend::Hardware(HardwareBackend::new(model))
            } else {
                Backend::Noisy(model)
            }),
            Some("trajectory") => {
                if self.hardware {
                    return Err("backend=trajectory conflicts with hardware=true".into());
                }
                Ok(Backend::Trajectory(TrajectoryBackend::with_shots(
                    model,
                    self.effective_shots(),
                )))
            }
            Some(other) => Err(format!("unknown backend '{other}' (trajectory)")),
        }
    }

    /// Fingerprint of the reference circuit's static analysis under this
    /// spec's calibration. Folded into [`RunSpec::result_key`] so cached
    /// results are keyed by the predicted fidelity too: a new estimator (or
    /// changed calibration math) makes old artifacts unreachable instead of
    /// silently stale.
    pub fn analysis_fingerprint(&self) -> Result<String, String> {
        let reference = self.reference_circuit()?;
        let cal = self.calibration()?;
        let report = qaprox_verify::analyze(&reference, &cal, &Default::default());
        Ok(report.fingerprint())
    }

    /// Canonical backend fingerprint. The trajectory override (and its
    /// effective shot count) folds in only when set, so every pre-trajectory
    /// artifact keeps its key.
    pub fn backend_fingerprint(&self) -> String {
        let cx = match self.cx_error {
            Some(e) => format!("{e:.17e}"),
            None => "none".into(),
        };
        let mut fp = format!(
            "backend/v1;device={};cx_error={cx};hardware={}",
            self.device, self.hardware
        );
        if let Some(b) = &self.backend {
            fp.push_str(&format!(";backend={b};shots={}", self.effective_shots()));
        }
        fp
    }

    /// Wide specs content-address their "population" from the reference
    /// circuit's QASM text: the `2^n x 2^n` target unitary that
    /// [`SynthSpec::population_key`] hashes cannot exist at 27+ qubits.
    /// Narrow specs never take this path, so pre-existing keys are stable.
    fn wide_population_key(&self) -> Result<Key, String> {
        let reference = self.reference_circuit()?;
        let qasm = qaprox_circuit::qasm::to_qasm(&reference);
        let mut h = qaprox_linalg::hashing::Hash128::new();
        h.update(b"qaprox-serve/wide-pop/v1\0");
        h.update(qasm.as_bytes());
        h.update(b"\0");
        h.update(self.synth.fingerprint().as_bytes());
        h.update(b"\0");
        h.update_u64(self.synth.seed);
        let (hi, lo) = h.finish();
        Ok(Key { hi, lo })
    }

    /// The store key for this spec's execution result. `epsilon` folds in
    /// only when set, so pre-certification artifacts keep their keys.
    pub fn result_key(&self) -> Result<Key, String> {
        let pop = if self.is_wide() {
            self.wide_population_key()?
        } else {
            self.synth.population_key()?
        };
        let mut fp = format!(
            "{};{}",
            self.backend_fingerprint(),
            self.analysis_fingerprint()?
        );
        if let Some(eps) = self.epsilon {
            fp.push_str(&format!(";epsilon={eps:.17e}"));
        }
        Ok(result_key(&pop, &fp, self.job_seed))
    }

    /// Grouping tag for the certified fast path: everything that must match
    /// *exactly* for a stored result to be reusable — synthesis knobs,
    /// backend, both seeds. The workload identity (`workload`, `steps`) is
    /// deliberately excluded: whether two references are interchangeable is
    /// exactly what the equivalence checker decides at lookup time.
    pub fn equiv_tag(&self) -> String {
        format!(
            "equiv/v1;qubits={};max_cnots={};max_nodes={};max_hs={:.17e};seed={};{};job_seed={}",
            self.synth.qubits,
            self.synth.max_cnots,
            self.synth.max_nodes,
            self.synth.max_hs,
            self.synth.seed,
            self.backend_fingerprint(),
            self.job_seed
        )
    }

    /// JSON form (spec fields only).
    pub fn to_json(&self) -> Json {
        let mut fields = match self.synth.to_json() {
            Json::Obj(f) => f,
            _ => unreachable!("synth spec serializes to an object"),
        };
        fields.push(("device".into(), Json::Str(self.device.clone())));
        if let Some(e) = self.cx_error {
            fields.push(("cx_error".into(), Json::Num(e)));
        }
        fields.push(("hardware".into(), Json::Bool(self.hardware)));
        fields.push(("job_seed".into(), Json::Num(self.job_seed as f64)));
        if let Some(b) = &self.backend {
            fields.push(("backend".into(), Json::Str(b.clone())));
        }
        if let Some(s) = self.shots {
            fields.push(("shots".into(), Json::Num(s as f64)));
        }
        if let Some(eps) = self.epsilon {
            fields.push(("epsilon".into(), Json::Num(eps)));
        }
        Json::Obj(fields)
    }

    /// Reads spec fields from a JSON object, defaulting absent ones.
    pub fn from_json(v: &Json) -> Result<RunSpec, String> {
        let d = RunSpec::default();
        Ok(RunSpec {
            synth: SynthSpec::from_json(v)?,
            device: v.get_str("device").unwrap_or(&d.device).to_string(),
            cx_error: v.get_f64("cx_error"),
            hardware: v.get_bool("hardware").unwrap_or(d.hardware),
            job_seed: v.get_u64("job_seed").unwrap_or(d.job_seed),
            backend: v.get_str("backend").map(str::to_string),
            shots: v.get_usize("shots"),
            epsilon: v.get_f64("epsilon"),
        })
    }
}

impl JobSpec {
    /// Validates the spec eagerly (so bad submissions fail at submit time,
    /// not inside a worker).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            JobSpec::Synth(s) => s.reference_circuit().map(|_| ()),
            JobSpec::Run(r) => {
                r.reference_circuit()?;
                r.backend().map(|_| ())
            }
        }
    }

    /// The spec's store key (population key for synth, result key for run).
    pub fn key(&self) -> Result<Key, String> {
        match self {
            JobSpec::Synth(s) => s.population_key(),
            JobSpec::Run(r) => r.result_key(),
        }
    }

    /// The client's wall-clock budget in milliseconds, when one was set
    /// (see [`SynthSpec::deadline_ms`]).
    pub fn deadline_ms(&self) -> Option<u64> {
        match self {
            JobSpec::Synth(s) => s.deadline_ms,
            JobSpec::Run(r) => r.synth.deadline_ms,
        }
    }

    /// Admission class this job is priced under: `synth` (search-bound),
    /// `run` (narrow synth-and-score), or `wide` (trajectory-only, the
    /// expensive one).
    pub fn class(&self) -> &'static str {
        match self {
            JobSpec::Synth(_) => "synth",
            JobSpec::Run(r) if r.is_wide() => "wide",
            JobSpec::Run(_) => "run",
        }
    }

    /// Static admission price in abstract amplitude-op units — the same
    /// O(gates) quantities the QA4xx predictor reads, never a simulation:
    ///
    /// * trajectory runs: `gates × shots × 2^qubits × candidates` (the shot
    ///   loop's work; wide specs price all `steps-1` Trotter candidates);
    /// * density-matrix / hardware runs: `gates × 4^qubits`;
    /// * synthesis: `max_nodes × 4^qubits` (each search node instantiates
    ///   against the dense target).
    ///
    /// Saturating arithmetic: an absurd spec prices as `u64::MAX` and is
    /// rejected by any finite budget rather than wrapping into a cheap one.
    pub fn predicted_cost(&self) -> Result<u64, String> {
        match self {
            JobSpec::Synth(s) => {
                let dim = 1u64 << s.qubits.min(31);
                Ok((s.max_nodes.max(1) as u64).saturating_mul(dim.saturating_mul(dim)))
            }
            JobSpec::Run(r) => {
                let gates = r.reference_circuit()?.len().max(1) as u64;
                let dim = 1u64 << r.synth.qubits.min(62);
                if r.backend.as_deref() == Some("trajectory") {
                    let shots = r.effective_shots() as u64;
                    let candidates = if r.is_wide() {
                        r.synth.steps.saturating_sub(1).max(1) as u64
                    } else {
                        1
                    };
                    Ok(gates
                        .saturating_mul(shots)
                        .saturating_mul(dim)
                        .saturating_mul(candidates))
                } else {
                    Ok(gates.saturating_mul(dim).saturating_mul(dim))
                }
            }
        }
    }

    /// Peak state-arena bytes this job can pin at once — what the runaway
    /// watchdog's memory sentinel judges against its budget. Trajectory runs
    /// pin up to one `2^qubits` complex state per candidate in the batch
    /// arena (the `TrajectoryBatch` cap may split groups further, but the
    /// sentinel prices the uncapped ask); exact paths pin the `4^qubits`
    /// density matrix / dense unitary.
    pub fn estimated_arena_bytes(&self) -> u64 {
        let per_amp = std::mem::size_of::<qaprox_linalg::Complex64>() as u64;
        match self {
            JobSpec::Synth(s) => {
                let dim = 1u64 << s.qubits.min(31);
                dim.saturating_mul(dim).saturating_mul(per_amp)
            }
            JobSpec::Run(r) => {
                let dim = 1u64 << r.synth.qubits.min(62);
                if r.backend.as_deref() == Some("trajectory") {
                    let candidates = if r.is_wide() {
                        r.synth.steps.saturating_sub(1).max(1) as u64
                    } else {
                        1
                    };
                    dim.saturating_mul(candidates).saturating_mul(per_amp)
                } else {
                    dim.saturating_mul(dim).saturating_mul(per_amp)
                }
            }
        }
    }

    /// A canonical fingerprint for in-flight deduplication.
    pub fn dedup_fingerprint(&self) -> String {
        match self {
            JobSpec::Synth(s) => format!("synth:{};seed={}", s.fingerprint(), s.seed),
            JobSpec::Run(r) => {
                let mut fp = format!(
                    "run:{};seed={};{};job_seed={}",
                    r.synth.fingerprint(),
                    r.synth.seed,
                    r.backend_fingerprint(),
                    r.job_seed
                );
                if let Some(eps) = r.epsilon {
                    fp.push_str(&format!(";epsilon={eps:.17e}"));
                }
                fp
            }
        }
    }

    /// JSON form including the `op` tag (the request-envelope shape).
    pub fn to_json(&self) -> Json {
        match self {
            JobSpec::Synth(s) => {
                let mut fields = vec![("op".to_string(), Json::Str("synth".into()))];
                if let Json::Obj(rest) = s.to_json() {
                    fields.extend(rest);
                }
                Json::Obj(fields)
            }
            JobSpec::Run(r) => {
                let mut fields = vec![("op".to_string(), Json::Str("run".into()))];
                if let Json::Obj(rest) = r.to_json() {
                    fields.extend(rest);
                }
                Json::Obj(fields)
            }
        }
    }

    /// Reads a spec from a request envelope (dispatching on `op`).
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        match v.get_str("op") {
            Some("synth") => Ok(JobSpec::Synth(SynthSpec::from_json(v)?)),
            Some("run") => Ok(JobSpec::Run(RunSpec::from_json(v)?)),
            Some(other) => Err(format!("'{other}' is not a job op (synth|run)")),
            None => Err("missing 'op' field".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        let synth = JobSpec::Synth(SynthSpec {
            workload: "grover".into(),
            qubits: 2,
            max_hs: 0.25,
            seed: 9,
            ..Default::default()
        });
        let run = JobSpec::Run(RunSpec {
            synth: SynthSpec::default(),
            device: "rome".into(),
            cx_error: Some(0.05),
            hardware: true,
            job_seed: 3,
            backend: None,
            shots: None,
            epsilon: Some(0.1),
        });
        let wide = JobSpec::Run(RunSpec {
            synth: SynthSpec {
                qubits: 27,
                steps: 4,
                ..Default::default()
            },
            device: "toronto".into(),
            cx_error: None,
            hardware: false,
            job_seed: 1,
            backend: Some("trajectory".into()),
            shots: Some(64),
            epsilon: None,
        });
        for spec in [synth, run, wide] {
            let text = spec.to_json().to_string();
            let back = JobSpec::from_json(&qaprox_store::json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn keys_are_stable_and_sensitive() {
        let spec = SynthSpec {
            qubits: 2,
            steps: 2,
            ..Default::default()
        };
        let k1 = spec.population_key().unwrap();
        assert_eq!(spec.population_key().unwrap(), k1);
        let mut other = spec.clone();
        other.seed = 1;
        assert_ne!(other.population_key().unwrap(), k1);
        let mut other = spec.clone();
        other.max_nodes += 1;
        assert_ne!(other.population_key().unwrap(), k1);

        let run = RunSpec {
            synth: spec,
            ..Default::default()
        };
        let rk = run.result_key().unwrap();
        let mut other = run.clone();
        other.cx_error = Some(0.1);
        assert_ne!(other.result_key().unwrap(), rk);
        let mut other = run.clone();
        other.job_seed = 7;
        assert_ne!(other.result_key().unwrap(), rk);
    }

    #[test]
    fn result_keys_record_the_predicted_fidelity_fingerprint() {
        let run = RunSpec {
            synth: SynthSpec {
                qubits: 2,
                steps: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let fp = run.analysis_fingerprint().unwrap();
        assert!(fp.starts_with("analyze/v1;bound="), "{fp}");
        // a noisier device changes the predicted fidelity, hence the key,
        // even when the backend fingerprint would also differ
        let mut noisier = run.clone();
        noisier.cx_error = Some(0.2);
        assert_ne!(noisier.analysis_fingerprint().unwrap(), fp);
    }

    #[test]
    fn epsilon_changes_keys_only_when_set() {
        let run = RunSpec {
            synth: SynthSpec {
                qubits: 2,
                steps: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let base_key = run.result_key().unwrap();
        let base_dedup = JobSpec::Run(run.clone()).dedup_fingerprint();
        let mut eps = run.clone();
        eps.epsilon = Some(0.1);
        assert_ne!(eps.result_key().unwrap(), base_key);
        assert_ne!(JobSpec::Run(eps.clone()).dedup_fingerprint(), base_dedup);
        // but the equivalence tag ignores ε and the workload identity: the
        // reordered workload lands in the same reuse class
        let mut reordered = eps.clone();
        reordered.synth.workload = "tfim-r".into();
        assert_eq!(reordered.equiv_tag(), eps.equiv_tag());
        assert_ne!(
            reordered.result_key().unwrap(),
            eps.result_key().unwrap(),
            "distinct workloads must still content-address apart"
        );
    }

    #[test]
    fn trajectory_backend_changes_keys_only_when_set() {
        let run = RunSpec {
            synth: SynthSpec {
                qubits: 2,
                steps: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let base_key = run.result_key().unwrap();
        let base_dedup = JobSpec::Run(run.clone()).dedup_fingerprint();
        assert!(
            !run.backend_fingerprint().contains(";backend="),
            "an unset backend must leave the fingerprint untouched"
        );
        let mut traj = run.clone();
        traj.backend = Some("trajectory".into());
        assert_ne!(traj.result_key().unwrap(), base_key);
        assert_ne!(JobSpec::Run(traj.clone()).dedup_fingerprint(), base_dedup);
        // the shot count is part of the computation, so part of the key...
        let mut more = traj.clone();
        more.shots = Some(4096);
        assert_ne!(more.result_key().unwrap(), traj.result_key().unwrap());
        // ...but spelling out the default names the same job
        let mut explicit = traj.clone();
        explicit.shots = Some(DEFAULT_TRAJECTORY_SHOTS);
        assert_eq!(explicit.result_key().unwrap(), traj.result_key().unwrap());
    }

    #[test]
    fn wide_specs_require_trajectory_and_key_without_a_target() {
        let mut wide = RunSpec {
            synth: SynthSpec {
                qubits: 27,
                steps: 3,
                ..Default::default()
            },
            device: "toronto".into(),
            ..Default::default()
        };
        assert!(
            JobSpec::Run(wide.clone()).validate().is_err(),
            "wide runs without the trajectory backend must be rejected"
        );
        wide.backend = Some("trajectory".into());
        wide.shots = Some(8);
        JobSpec::Run(wide.clone()).validate().unwrap();

        // keys are stable and sensitive without ever forming a 2^27 target
        let k = JobSpec::Run(wide.clone()).key().unwrap();
        assert_eq!(JobSpec::Run(wide.clone()).key().unwrap(), k);
        let mut other = wide.clone();
        other.synth.steps = 4;
        assert_ne!(JobSpec::Run(other).key().unwrap(), k);

        // only the TFIM workloads scale wide
        let mut grover = wide.clone();
        grover.synth.workload = "grover".into();
        assert!(JobSpec::Run(grover).validate().is_err());
        // hardware emulation conflicts with the trajectory override
        let mut conflicted = wide.clone();
        conflicted.hardware = true;
        assert!(JobSpec::Run(conflicted).validate().is_err());
        // synthesis jobs never widen: there is no 2^27 target to search for
        assert!(JobSpec::Synth(wide.synth.clone()).validate().is_err());
    }

    #[test]
    fn wide_calibration_prefers_a_connected_path() {
        let wide = RunSpec {
            synth: SynthSpec {
                qubits: 20,
                steps: 2,
                ..Default::default()
            },
            device: "toronto".into(),
            backend: Some("trajectory".into()),
            ..Default::default()
        };
        let cal = wide.calibration().unwrap();
        assert_eq!(cal.qubits.len(), 20);
        // a 20-site path exists on heavy-hex 27, so every chain link is a
        // real coupled edge of the device
        for pair in (0..20).collect::<Vec<_>>().windows(2) {
            assert!(
                cal.edge(pair[0], pair[1]).is_some() || cal.edge(pair[1], pair[0]).is_some(),
                "induced chain link {pair:?} must be a coupled edge"
            );
        }
    }

    #[test]
    fn reordered_tfim_is_a_commuted_permutation_of_tfim() {
        for qubits in [2usize, 3] {
            let spec = SynthSpec {
                qubits,
                steps: 2,
                ..Default::default()
            };
            let mut reordered = spec.clone();
            reordered.workload = "tfim-r".into();
            let a = spec.reference_circuit().unwrap();
            let b = reordered.reference_circuit().unwrap();
            assert_eq!(a.len(), b.len());
            assert_ne!(
                a.instructions(),
                b.instructions(),
                "the reorder must actually move something"
            );
            // same unitary: only disjoint-support neighbours were swapped
            assert!(a.unitary().approx_eq(&b.unitary(), 1e-12));
        }
    }

    #[test]
    fn deadlines_round_trip_but_never_touch_keys() {
        let run = RunSpec {
            synth: SynthSpec {
                qubits: 2,
                steps: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut hurried = run.clone();
        hurried.synth.deadline_ms = Some(250);
        // the deadline travels the wire...
        let text = JobSpec::Run(hurried.clone()).to_json().to_string();
        let back = JobSpec::from_json(&qaprox_store::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.deadline_ms(), Some(250));
        // ...but is computation-irrelevant: identical keys, fingerprints,
        // and dedup class as the undeadlined job
        assert_eq!(hurried.result_key().unwrap(), run.result_key().unwrap());
        assert_eq!(hurried.synth.fingerprint(), run.synth.fingerprint());
        assert_eq!(
            JobSpec::Run(hurried.clone()).dedup_fingerprint(),
            JobSpec::Run(run.clone()).dedup_fingerprint()
        );
        assert_eq!(hurried.equiv_tag(), run.equiv_tag());
        // absent field stays absent through a round trip
        let text = JobSpec::Run(run.clone()).to_json().to_string();
        assert!(!text.contains("deadline_ms"), "{text}");
    }

    #[test]
    fn predicted_cost_prices_classes_sensibly() {
        let synth = JobSpec::Synth(SynthSpec {
            qubits: 2,
            steps: 2,
            ..Default::default()
        });
        assert_eq!(synth.class(), "synth");
        assert!(synth.predicted_cost().unwrap() > 0);

        let run = JobSpec::Run(RunSpec {
            synth: SynthSpec {
                qubits: 2,
                steps: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        assert_eq!(run.class(), "run");

        let wide = JobSpec::Run(RunSpec {
            synth: SynthSpec {
                qubits: 27,
                steps: 4,
                ..Default::default()
            },
            device: "toronto".into(),
            backend: Some("trajectory".into()),
            shots: Some(16),
            ..Default::default()
        });
        assert_eq!(wide.class(), "wide");
        let base = wide.predicted_cost().unwrap();
        // cost scales linearly with the shot budget...
        let mut pricier = match &wide {
            JobSpec::Run(r) => r.clone(),
            _ => unreachable!(),
        };
        pricier.shots = Some(32);
        assert_eq!(JobSpec::Run(pricier).predicted_cost().unwrap(), base * 2);
        // ...and the arena ask covers all Trotter candidates at 2^27 amps
        assert_eq!(wide.estimated_arena_bytes(), 3 * (1u64 << 27) * 16);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let bad = JobSpec::Synth(SynthSpec {
            workload: "frobnicate".into(),
            ..Default::default()
        });
        assert!(bad.validate().is_err());
        let bad = JobSpec::Synth(SynthSpec {
            qubits: 9,
            ..Default::default()
        });
        assert!(bad.validate().is_err());
        let bad = JobSpec::Run(RunSpec {
            device: "nowhere".into(),
            ..Default::default()
        });
        assert!(bad.validate().is_err());
        assert!(JobSpec::Synth(SynthSpec::default()).validate().is_ok());
    }
}
