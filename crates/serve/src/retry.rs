//! Deterministic retry with exponential backoff and seeded jitter.
//!
//! Both sides of the service retry transient failures: workers retry
//! failpoint-classified transient errors (injected faults, flaky store
//! reads, emulated backend drops) before degrading, and clients retry
//! `backpressure: true` rejections before surfacing a typed error. Retry
//! storms synchronize when every retrier sleeps the same schedule, so each
//! delay is jittered — but from the in-repo SplitMix64, keyed by `(seed,
//! attempt)`, so a policy's full schedule is a pure function of its fields
//! and unit-testable against fixed values.

use qaprox_linalg::random::{Rng, SplitMix64};
use std::time::Duration;

/// A bounded exponential-backoff-with-jitter schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Backoff base: the un-jittered first delay, milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per failed attempt.
    pub factor: f64,
    /// Ceiling on the un-jittered delay, milliseconds.
    pub cap_ms: u64,
    /// Jitter stream seed; equal seeds give equal schedules.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_ms: 10,
            factor: 2.0,
            cap_ms: 2_000,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `retry` (1-based: `delay_ms(1)` is
    /// slept after the first failure). Deterministic: the jitter draw is
    /// keyed by `(seed, retry)`, not by call order.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        let exp = self.factor.powi(retry.saturating_sub(1) as i32);
        let raw = ((self.base_ms as f64) * exp).min(self.cap_ms as f64);
        let mut rng = SplitMix64::seed_from_u64(
            self.seed ^ (retry as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        // half-open jitter in [0.5, 1.0): desynchronizes retriers while
        // keeping the delay within a factor of two of the nominal backoff
        (raw * (0.5 + 0.5 * rng.gen::<f64>())) as u64
    }

    /// The full schedule: one delay per possible retry.
    pub fn schedule(&self) -> Vec<u64> {
        (1..self.max_attempts).map(|r| self.delay_ms(r)).collect()
    }

    /// Runs `op` up to `max_attempts` times, sleeping the schedule between
    /// attempts. Only errors `retryable` accepts are retried; the rest (and
    /// the final exhausted error) return immediately. `op` receives the
    /// 1-based attempt number.
    pub fn run<T>(
        &self,
        retryable: impl Fn(&str) -> bool,
        mut op: impl FnMut(u32) -> Result<T, String>,
    ) -> Result<T, String> {
        let attempts = self.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 1..=attempts {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if attempt < attempts && retryable(&e) => {
                    std::thread::sleep(Duration::from_millis(self.delay_ms(attempt)));
                    last = e;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn fast(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_ms: 1,
            factor: 2.0,
            cap_ms: 3,
            seed,
        }
    }

    #[test]
    fn schedule_is_a_fixed_function_of_the_policy() {
        // Pinned values: changing the backoff math is a behavior change and
        // must show up here.
        let policy = RetryPolicy {
            max_attempts: 6,
            base_ms: 100,
            factor: 2.0,
            cap_ms: 1_000,
            seed: 42,
        };
        assert_eq!(policy.schedule(), vec![57, 137, 279, 415, 598]);
        // deterministic: same policy, same schedule, any call order
        assert_eq!(policy.delay_ms(3), 279);
        assert_eq!(policy.schedule(), vec![57, 137, 279, 415, 598]);
        // a different seed re-jitters but stays in [raw/2, raw)
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(other.schedule(), vec![57, 137, 279, 415, 598]);
        for (i, d) in other.schedule().iter().enumerate() {
            let raw = (100.0 * 2.0f64.powi(i as i32)).min(1_000.0);
            assert!(
                (*d as f64) >= raw * 0.5 && (*d as f64) < raw,
                "{d} vs {raw}"
            );
        }
    }

    #[test]
    fn run_retries_transient_errors_until_success() {
        let calls = Cell::new(0u32);
        let out = fast(1).run(
            |e| e.starts_with("transient"),
            |attempt| {
                calls.set(calls.get() + 1);
                assert_eq!(attempt, calls.get());
                if attempt < 3 {
                    Err("transient: flaky".into())
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out, Ok(3));
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn run_gives_up_after_max_attempts_and_on_permanent_errors() {
        let calls = Cell::new(0u32);
        let out: Result<(), String> = fast(1).run(
            |e| e.starts_with("transient"),
            |_| {
                calls.set(calls.get() + 1);
                Err("transient: always".into())
            },
        );
        assert_eq!(out.unwrap_err(), "transient: always");
        assert_eq!(calls.get(), 4, "max_attempts bounds the loop");

        calls.set(0);
        let out: Result<(), String> = fast(1).run(
            |e| e.starts_with("transient"),
            |_| {
                calls.set(calls.get() + 1);
                Err("fatal: bad spec".into())
            },
        );
        assert_eq!(out.unwrap_err(), "fatal: bad spec");
        assert_eq!(calls.get(), 1, "permanent errors never retry");
    }
}
