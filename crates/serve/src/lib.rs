//! # qaprox-serve
//!
//! A long-lived job service over the content-addressed store.
//!
//! Synthesis dominates every experiment's wall clock, and identical targets
//! recur constantly (the same workload at the same settings across figure
//! sweeps). This crate turns the one-shot CLI pipeline into a service:
//!
//! * [`spec`] — [`JobSpec`]: wire-level job descriptions that mirror the
//!   `qaprox synth` / `qaprox run` options and define the cache keys;
//! * [`exec`] — cache-first execution: store hit → answer immediately;
//!   partial checkpoint → resume with the remaining node budget; miss →
//!   synthesize, streaming checkpoints so a killed job resumes, not
//!   restarts;
//! * [`scheduler`] — a worker pool with a bounded queue (backpressure),
//!   in-flight dedup, cooperative cancellation, per-job timeouts, panic
//!   isolation, client deadlines (expired jobs shed before dispatch),
//!   cost-based admission control, and runaway-job watchdogs that
//!   quarantine stalled or over-budget jobs;
//! * [`server`] / [`client`] — newline-delimited JSON over
//!   `std::net::TcpListener`, ops `synth`, `run`, `status`, `result`,
//!   `cancel`, `stats`, `recover`, `shutdown`.
//!
//! Robustness (documented in `docs/FAULTS.md`):
//!
//! * [`journal`] — a durable append-only NDJSON write-ahead log of job
//!   transitions; a scheduler opened on the same journal directory replays
//!   it, re-enqueues lost jobs, and resumes synthesis from the last store
//!   checkpoint;
//! * [`retry`] — deterministic exponential backoff with seeded jitter, used
//!   by workers for transient faults and by clients for backpressure;
//! * [`breaker`] — per-backend circuit breakers (closed → open → half-open)
//!   that stop a failing backend from absorbing every worker's retry budget.
//!
//! The protocol and store layout are documented in `docs/SERVE.md`.

pub mod breaker;
pub mod client;
pub mod exec;
pub mod journal;
pub mod retry;
pub mod scheduler;
pub mod server;
pub mod spec;

pub use breaker::BreakerConfig;
pub use client::{Client, ClientError};
pub use exec::{
    obtain_population, obtain_run, run_spec, ExecCtl, ExecResult, PopulationOutcome, RunOutcome,
};
pub use journal::{Journal, ReplayedJournal};
pub use retry::RetryPolicy;
pub use scheduler::{
    AdmissionConfig, JobState, JobView, Scheduler, SchedulerConfig, Submitted, WatchdogConfig,
};
pub use server::{Server, ServerConfig};
pub use spec::{JobSpec, RunSpec, SynthSpec, MAX_SYNTH_QUBITS};
