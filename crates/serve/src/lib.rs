//! # qaprox-serve
//!
//! A long-lived job service over the content-addressed store.
//!
//! Synthesis dominates every experiment's wall clock, and identical targets
//! recur constantly (the same workload at the same settings across figure
//! sweeps). This crate turns the one-shot CLI pipeline into a service:
//!
//! * [`spec`] — [`JobSpec`]: wire-level job descriptions that mirror the
//!   `qaprox synth` / `qaprox run` options and define the cache keys;
//! * [`exec`] — cache-first execution: store hit → answer immediately;
//!   partial checkpoint → resume with the remaining node budget; miss →
//!   synthesize, streaming checkpoints so a killed job resumes, not
//!   restarts;
//! * [`scheduler`] — a worker pool with a bounded queue (backpressure),
//!   in-flight dedup, cooperative cancellation, per-job timeouts, and
//!   panic isolation;
//! * [`server`] / [`client`] — newline-delimited JSON over
//!   `std::net::TcpListener`, ops `synth`, `run`, `status`, `result`,
//!   `cancel`, `stats`, `shutdown`.
//!
//! The protocol and store layout are documented in `docs/SERVE.md`.

pub mod client;
pub mod exec;
pub mod scheduler;
pub mod server;
pub mod spec;

pub use client::Client;
pub use exec::{obtain_population, obtain_run, run_spec, ExecCtl, ExecResult, PopulationOutcome};
pub use scheduler::{JobState, JobView, Scheduler, SchedulerConfig, Submitted};
pub use server::{Server, ServerConfig};
pub use spec::{JobSpec, RunSpec, SynthSpec};
