//! The worker-pool scheduler.
//!
//! A fixed pool of worker threads drains a bounded FIFO queue of jobs.
//! Guarantees:
//!
//! * **backpressure** — a full queue rejects new submissions immediately
//!   (the server surfaces this as `backpressure: true`) instead of growing
//!   without bound;
//! * **dedup** — a submission identical to a queued/running job returns the
//!   existing job id instead of queueing duplicate work (identical *after*
//!   one completes hits the store instead);
//! * **cancellation** — `cancel` flips the job's atomic flag; synthesis
//!   notices at the next round boundary and suspends with a checkpoint;
//! * **timeout** — each job gets a deadline; overruns suspend the same way
//!   and the job reports `timed-out`;
//! * **panic isolation** — a panicking job poisons nothing: the worker
//!   catches the unwind, marks the job failed, and moves on;
//! * **durability** — with [`SchedulerConfig::journal_dir`] set, every job
//!   transition is appended to the [`crate::journal`] WAL; a scheduler
//!   started on the same directory replays it, restores finished jobs'
//!   results, and re-enqueues (same ids) whatever never reached a terminal
//!   state — synthesis then resumes from the last store checkpoint;
//! * **retry + degradation** — workers retry transient failures through the
//!   configured [`RetryPolicy`]; when retries exhaust, the job degrades to
//!   the best available fallback (see [`crate::exec::degraded_payload`])
//!   instead of failing outright, reporting `degraded` with a flagged
//!   payload;
//! * **deadline shedding** — a job carrying a client deadline
//!   ([`crate::spec::SynthSpec::deadline_ms`]) that lapses while queued is
//!   `shed` before dispatch: it never touches a worker or the backend, and
//!   running jobs propagate the remaining budget as a cancellation deadline
//!   checked at shot/wave granularity;
//! * **admission control** — with [`AdmissionConfig`] budgets set, every
//!   submission is priced by the static predictor
//!   ([`JobSpec::predicted_cost`]) and anything exceeding its per-class cap
//!   (or overflowing the summed queued-cost budget) is rejected
//!   [`Submitted::Overloaded`] with a `retry_after_ms` hint;
//! * **runaway watchdogs** — with [`WatchdogConfig`] armed, a sentinel
//!   thread cancels and **quarantines** running jobs that hold a worker
//!   past the stall budget, and jobs whose predicted arena ask exceeds the
//!   memory budget quarantine at dispatch. `quarantined` is terminal and
//!   journaled, so recovery replay never re-runs a poison job.

use crate::breaker::BreakerConfig;
use crate::exec::{degraded_payload, run_spec, ExecCtl, ExecResult};
use crate::journal::{self, Journal};
use crate::retry::RetryPolicy;
use crate::spec::JobSpec;
use qaprox_store::json::Json;
use qaprox_store::Store;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Bounded queue length; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Per-job wall-clock budget (None = unbounded).
    pub job_timeout: Option<Duration>,
    /// Checkpoint cadence in synthesis nodes (0 = only on suspension).
    pub checkpoint_every: usize,
    /// Journal directory (None = no durability).
    pub journal_dir: Option<PathBuf>,
    /// Worker-side retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-backend circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Admission-control budgets (all `None` = admission disabled).
    pub admission: AdmissionConfig,
    /// Runaway-job watchdog budgets (all `None` = watchdog disabled).
    pub watchdog: WatchdogConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
            job_timeout: None,
            checkpoint_every: 20,
            journal_dir: None,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            admission: AdmissionConfig::default(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Admission-control budgets, priced with the static cost predictor
/// ([`JobSpec::predicted_cost`]). A `None` field disables that gate; with
/// every budget unset (the default) submissions skip pricing entirely, so
/// the layer costs nothing when idle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Cap on a single synthesis job's predicted cost.
    pub max_synth_cost: Option<u64>,
    /// Cap on a single (non-wide) run job's predicted cost.
    pub max_run_cost: Option<u64>,
    /// Cap on a single wide trajectory job's predicted cost.
    pub max_wide_cost: Option<u64>,
    /// Cap on the summed predicted cost of everything currently queued;
    /// beyond it new work is turned away with backpressure instead of
    /// queueing without bound.
    pub max_queued_cost: Option<u64>,
    /// Retry hint carried by [`Submitted::Overloaded`].
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_synth_cost: None,
            max_run_cost: None,
            max_wide_cost: None,
            max_queued_cost: None,
            retry_after_ms: 250,
        }
    }
}

impl AdmissionConfig {
    /// True when any budget is configured (pricing happens at submit).
    pub fn enabled(&self) -> bool {
        self.max_synth_cost.is_some()
            || self.max_run_cost.is_some()
            || self.max_wide_cost.is_some()
            || self.max_queued_cost.is_some()
    }

    fn class_cap(&self, class: &str) -> Option<u64> {
        match class {
            "synth" => self.max_synth_cost,
            "wide" => self.max_wide_cost,
            _ => self.max_run_cost,
        }
    }
}

/// Runaway-job watchdog budgets. The stall sentinel runs on its own thread
/// (spawned only when [`WatchdogConfig::stall_timeout`] is set) and
/// quarantines any job holding a worker past the budget; the memory
/// sentinel prices each job's arena ask at dispatch and quarantines
/// over-budget jobs without running them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Wall-clock a running job may hold a worker before it is cancelled
    /// and quarantined (`None` = no stall sentinel, no watchdog thread).
    pub stall_timeout: Option<Duration>,
    /// Largest predicted arena footprint
    /// ([`JobSpec::estimated_arena_bytes`]) allowed to dispatch.
    pub max_arena_bytes: Option<u64>,
    /// Stall-sentinel scan cadence.
    pub poll_interval: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            stall_timeout: None,
            max_arena_bytes: None,
            poll_interval: Duration::from_millis(10),
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the payload is available via `result`.
    Done,
    /// Failed with an error message.
    Failed(String),
    /// Cancelled by request (suspended with a checkpoint if it was running).
    Cancelled,
    /// Exceeded its deadline (suspended with a checkpoint).
    TimedOut,
    /// Retries exhausted; a fallback payload (flagged `degraded: true`) is
    /// available via `result`.
    Degraded,
    /// Client deadline lapsed while queued; the job was dropped before
    /// dispatch and never touched a worker or the backend.
    Shed,
    /// A watchdog sentinel condemned the job (wall-clock stall or an
    /// over-budget arena ask). Terminal and journaled: recovery replay
    /// restores it queryable but never re-runs it, so a poison circuit
    /// cannot crash-loop the scheduler.
    Quarantined(String),
}

impl JobState {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
            JobState::Degraded => "degraded",
            JobState::Shed => "shed",
            JobState::Quarantined(_) => "quarantined",
        }
    }

    /// True once the job can never run again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    result: Option<Json>,
    fingerprint: String,
    /// Client deadline, stamped at submission from the spec's relative TTL.
    deadline: Option<Instant>,
    /// When a worker dispatched it (the stall sentinel's clock).
    started: Option<Instant>,
    /// Set by a watchdog sentinel; the worker resolves the outcome to
    /// `Quarantined` regardless of how execution unwound.
    quarantine_reason: Option<String>,
    /// Predicted cost at admission (0 when admission is disabled).
    cost: u64,
}

impl Job {
    fn queued(spec: JobSpec, fingerprint: String, deadline: Option<Instant>, cost: u64) -> Job {
        Job {
            spec,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            result: None,
            fingerprint,
            deadline,
            started: None,
            quarantine_reason: None,
            cost,
        }
    }
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    timed_out: u64,
    rejected: u64,
    deduped: u64,
    degraded: u64,
    shed: u64,
    quarantined: u64,
    overloaded: u64,
}

struct State {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    inflight: HashMap<String, u64>,
    next_id: u64,
    stopping: bool,
    counters: Counters,
    /// Summed predicted cost of everything in `queue` (maintained only
    /// while admission is enabled; otherwise stays 0).
    queued_cost: u64,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    job_done: Condvar,
    // dedicated wake-up so the sentinel never steals a worker's notify_one
    watchdog_wake: Condvar,
    store: Option<Arc<Store>>,
    journal: Option<Journal>,
    recovery: Option<Json>,
    cfg: SchedulerConfig,
}

/// What `submit` decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Queued as a new job.
    Accepted(u64),
    /// Identical to an in-flight job; its id is returned instead.
    Deduped(u64),
    /// The queue is full; retry later.
    Rejected,
    /// Admission control turned the job away: it exceeded its class budget
    /// or would overflow the queued-cost budget. Retry after the hint.
    Overloaded {
        /// Suggested client backoff before resubmitting.
        retry_after_ms: u64,
    },
}

/// A point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// Response payload, present once `Done` (or `Degraded`).
    pub result: Option<Json>,
}

/// The worker-pool scheduler. Dropping it shuts the pool down.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// One journal-replayed job, accumulated in record order.
#[derive(Default)]
struct Rebuilt {
    spec: Option<JobSpec>,
    terminal: Option<(JobState, Option<Json>)>,
    checkpoint_nodes: usize,
}

impl Scheduler {
    /// Starts the pool. With a journal directory configured, replays the
    /// journal first: finished jobs get their states and payloads restored
    /// (queryable as before the restart), unfinished ones are re-enqueued
    /// under their original ids, in id order.
    pub fn start(cfg: SchedulerConfig, store: Option<Arc<Store>>) -> Result<Scheduler, String> {
        let mut state = State {
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            inflight: HashMap::new(),
            next_id: 1,
            stopping: false,
            counters: Counters::default(),
            queued_cost: 0,
        };
        let mut journal = None;
        let mut recovery = None;
        if let Some(dir) = &cfg.journal_dir {
            let replayed = journal::replay(dir)?;
            // BTreeMap: replay visits jobs in id order, so re-enqueueing
            // preserves the original submission order
            let mut seen: BTreeMap<u64, Rebuilt> = BTreeMap::new();
            for rec in &replayed.records {
                let (Some(event), Some(id)) = (rec.get_str("event"), rec.get_u64("job")) else {
                    continue;
                };
                let r = seen.entry(id).or_default();
                match event {
                    "submit" => r.spec = rec.get("spec").and_then(|s| JobSpec::from_json(s).ok()),
                    "checkpoint" => {
                        r.checkpoint_nodes = rec.get_usize("nodes").unwrap_or(r.checkpoint_nodes)
                    }
                    "done" => r.terminal = Some((JobState::Done, rec.get("payload").cloned())),
                    "degraded" => {
                        r.terminal = Some((JobState::Degraded, rec.get("payload").cloned()))
                    }
                    "failed" => {
                        let e = rec.get_str("error").unwrap_or("unknown failure");
                        r.terminal = Some((JobState::Failed(e.to_string()), None));
                    }
                    "cancelled" => r.terminal = Some((JobState::Cancelled, None)),
                    "timed-out" => r.terminal = Some((JobState::TimedOut, None)),
                    "shed" => r.terminal = Some((JobState::Shed, None)),
                    "quarantined" => {
                        let e = rec.get_str("error").unwrap_or("quarantined");
                        r.terminal = Some((JobState::Quarantined(e.to_string()), None));
                    }
                    _ => {} // "start" and future event kinds carry no state
                }
            }
            let mut reenqueued = Vec::new();
            let mut restored_terminal = 0u64;
            for (id, r) in &seen {
                state.next_id = state.next_id.max(id + 1);
                let Some(spec) = &r.spec else { continue };
                let fingerprint = spec.dedup_fingerprint();
                match &r.terminal {
                    Some((js, payload)) => {
                        restored_terminal += 1;
                        let mut job = Job::queued(spec.clone(), fingerprint, None, 0);
                        job.state = js.clone();
                        job.result = payload.clone();
                        state.jobs.insert(*id, job);
                    }
                    None => {
                        // deadlines are relative TTLs, so a re-enqueued job's
                        // budget restarts at recovery time (the downtime is
                        // not charged against the client)
                        let deadline = spec
                            .deadline_ms()
                            .map(|ms| Instant::now() + Duration::from_millis(ms));
                        let cost = if cfg.admission.enabled() {
                            spec.predicted_cost().unwrap_or(0)
                        } else {
                            0
                        };
                        state.queued_cost = state.queued_cost.saturating_add(cost);
                        state.jobs.insert(
                            *id,
                            Job::queued(spec.clone(), fingerprint.clone(), deadline, cost),
                        );
                        state.inflight.entry(fingerprint).or_insert(*id);
                        state.queue.push_back(*id);
                        reenqueued.push(Json::obj(vec![
                            ("id", Json::Num(*id as f64)),
                            ("checkpoint", Json::Num(r.checkpoint_nodes as f64)),
                        ]));
                    }
                }
            }
            state.counters.submitted = reenqueued.len() as u64;
            recovery = Some(Json::obj(vec![
                ("journal", Json::Str(dir.display().to_string())),
                ("records", Json::Num(replayed.records.len() as f64)),
                ("skipped_lines", Json::Num(replayed.skipped_lines as f64)),
                ("jobs_seen", Json::Num(seen.len() as f64)),
                ("restored_terminal", Json::Num(restored_terminal as f64)),
                ("reenqueued", Json::Arr(reenqueued)),
            ]));
            journal = Some(Journal::open(dir)?);
        }
        let inner = Arc::new(Inner {
            state: Mutex::new(state),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            watchdog_wake: Condvar::new(),
            store,
            journal,
            recovery,
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qaprox-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        // the stall sentinel only exists when a stall budget is configured —
        // an idle robustness layer must cost nothing
        let watchdog = inner.cfg.watchdog.stall_timeout.is_some().then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("qaprox-watchdog".into())
                .spawn(move || watchdog_loop(&inner))
                .expect("spawn watchdog")
        });
        Ok(Scheduler {
            inner,
            workers,
            watchdog,
        })
    }

    /// What startup replayed from the journal (None when journal-less).
    pub fn recovery_report(&self) -> Option<Json> {
        self.inner.recovery.clone()
    }

    /// Submits a job; validation errors are returned before queueing.
    pub fn submit(&self, spec: JobSpec) -> Result<Submitted, String> {
        spec.validate()?;
        // Failpoint `serve.scheduler.enqueue`: submission machinery failing
        // before the job becomes visible (transient → clients retry).
        qaprox_fault::fail_point!("serve.scheduler.enqueue", |_action| {
            Err(qaprox_fault::injected_error("serve.scheduler.enqueue"))
        });
        let fingerprint = spec.dedup_fingerprint();
        let mut st = self.inner.state.lock().expect("scheduler state poisoned");
        if st.stopping {
            return Err("scheduler is shutting down".into());
        }
        if let Some(&id) = st.inflight.get(&fingerprint) {
            st.counters.deduped += 1;
            return Ok(Submitted::Deduped(id));
        }
        // admission control: price the job with the static predictor and
        // turn it away if it busts its class budget or would overflow the
        // queued-cost budget. With no budgets configured this whole block
        // is skipped — no pricing on the hot path.
        let adm = &self.inner.cfg.admission;
        let cost = if adm.enabled() {
            // validation already built the reference circuit, so pricing
            // cannot fail; an unpriceable job under admission is rejected
            let cost = spec.predicted_cost().unwrap_or(u64::MAX);
            let over_class = adm.class_cap(spec.class()).is_some_and(|cap| cost > cap);
            let over_queue = adm
                .max_queued_cost
                .is_some_and(|cap| st.queued_cost.saturating_add(cost) > cap);
            if over_class || over_queue {
                st.counters.overloaded += 1;
                return Ok(Submitted::Overloaded {
                    retry_after_ms: adm.retry_after_ms,
                });
            }
            cost
        } else {
            0
        };
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            st.counters.rejected += 1;
            return Ok(Submitted::Rejected);
        }
        let id = st.next_id;
        // durable before visible: if the WAL cannot record the submission,
        // the job must not exist
        if let Some(j) = &self.inner.journal {
            j.append(&journal::submit_event(id, &spec))?;
        }
        let deadline = spec
            .deadline_ms()
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        st.next_id += 1;
        st.counters.submitted += 1;
        st.queued_cost = st.queued_cost.saturating_add(cost);
        st.jobs
            .insert(id, Job::queued(spec, fingerprint.clone(), deadline, cost));
        st.inflight.insert(fingerprint, id);
        st.queue.push_back(id);
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            st.queue.len() <= self.inner.cfg.queue_capacity,
            "strict-invariants: queue over capacity"
        );
        drop(st);
        self.inner.work_ready.notify_one();
        Ok(Submitted::Accepted(id))
    }

    /// A snapshot of one job, if it exists.
    pub fn job(&self, id: u64) -> Option<JobView> {
        let st = self.inner.state.lock().expect("scheduler state poisoned");
        st.jobs.get(&id).map(|j| JobView {
            id,
            state: j.state.clone(),
            result: j.result.clone(),
        })
    }

    /// Requests cancellation. Queued jobs cancel immediately; running jobs
    /// suspend at their next synthesis round. Returns false for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let mut guard = self.inner.state.lock().expect("scheduler state poisoned");
        let st = &mut *guard;
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel.store(true, Ordering::Relaxed);
                st.inflight.remove(&job.fingerprint);
                st.queue.retain(|&q| q != id);
                st.queued_cost = st.queued_cost.saturating_sub(job.cost);
                st.counters.cancelled += 1;
                // an explicit cancel is durable (unlike shutdown-drain
                // cancels, which a restart re-enqueues)
                if !st.stopping {
                    if let Some(j) = &self.inner.journal {
                        let _ = j.append(&journal::terminal_event(id, "cancelled", None, None));
                    }
                }
                drop(guard);
                self.inner.job_done.notify_all();
                true
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job reaches a terminal state (or the timeout).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobView> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("scheduler state poisoned");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(j) if j.state.is_terminal() => {
                    return Some(JobView {
                        id,
                        state: j.state.clone(),
                        result: j.result.clone(),
                    })
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return self.snapshot_locked(&st, id);
            }
            let (guard, _) = self
                .inner
                .job_done
                .wait_timeout(st, deadline - now)
                .expect("scheduler state poisoned");
            st = guard;
        }
    }

    fn snapshot_locked(&self, st: &State, id: u64) -> Option<JobView> {
        st.jobs.get(&id).map(|j| JobView {
            id,
            state: j.state.clone(),
            result: j.result.clone(),
        })
    }

    /// Scheduler + store statistics as a JSON payload.
    pub fn stats(&self) -> Json {
        let st = self.inner.state.lock().expect("scheduler state poisoned");
        let c = &st.counters;
        let mut fields = vec![
            ("workers".to_string(), Json::Num(self.workers.len() as f64)),
            ("queued".to_string(), Json::Num(st.queue.len() as f64)),
            (
                "running".to_string(),
                Json::Num(
                    st.jobs
                        .values()
                        .filter(|j| j.state == JobState::Running)
                        .count() as f64,
                ),
            ),
            ("submitted".to_string(), Json::Num(c.submitted as f64)),
            ("completed".to_string(), Json::Num(c.completed as f64)),
            ("failed".to_string(), Json::Num(c.failed as f64)),
            ("cancelled".to_string(), Json::Num(c.cancelled as f64)),
            ("timed_out".to_string(), Json::Num(c.timed_out as f64)),
            ("rejected".to_string(), Json::Num(c.rejected as f64)),
            ("deduped".to_string(), Json::Num(c.deduped as f64)),
            ("degraded".to_string(), Json::Num(c.degraded as f64)),
            ("shed".to_string(), Json::Num(c.shed as f64)),
            ("quarantined".to_string(), Json::Num(c.quarantined as f64)),
            ("overloaded".to_string(), Json::Num(c.overloaded as f64)),
            ("queued_cost".to_string(), Json::Num(st.queued_cost as f64)),
            (
                "breakers".to_string(),
                Json::Arr(
                    crate::breaker::states_all()
                        .into_iter()
                        .map(|(name, state)| {
                            Json::obj(vec![
                                ("name", Json::Str(name)),
                                ("state", Json::Str(state.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(store) = &self.inner.store {
            let s = store.stats();
            fields.push((
                "store".to_string(),
                Json::obj(vec![
                    ("hits", Json::Num(s.hits as f64)),
                    ("misses", Json::Num(s.misses as f64)),
                    ("puts", Json::Num(s.puts as f64)),
                    ("populations", Json::Num(s.entries.0 as f64)),
                    ("partials", Json::Num(s.entries.1 as f64)),
                    ("results", Json::Num(s.entries.2 as f64)),
                    ("total_bytes", Json::Num(s.total_bytes as f64)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Stops accepting work, cancels running jobs, and joins the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut guard = self.inner.state.lock().expect("scheduler state poisoned");
        let st = &mut *guard;
        st.stopping = true;
        // drain the queue: queued jobs become cancelled — NOT journaled, so
        // a restart on the same journal re-enqueues them
        while let Some(id) = st.queue.pop_front() {
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                st.inflight.remove(&job.fingerprint);
                st.counters.cancelled += 1;
            }
        }
        st.queued_cost = 0;
        // running jobs get their cancel flags flipped
        for job in st.jobs.values() {
            if job.state == JobState::Running {
                job.cancel.store(true, Ordering::Relaxed);
            }
        }
        drop(guard);
        self.inner.work_ready.notify_all();
        self.inner.job_done.notify_all();
        self.inner.watchdog_wake.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

/// The stall sentinel: scans running jobs on a fixed cadence and condemns
/// any that have held a worker past the stall budget — the cancel flag
/// stops the backend at its next shot/round boundary, and the quarantine
/// marker makes the worker resolve the outcome to `Quarantined` no matter
/// how execution unwound.
fn watchdog_loop(inner: &Arc<Inner>) {
    let Some(stall) = inner.cfg.watchdog.stall_timeout else {
        return;
    };
    let tick = inner
        .cfg
        .watchdog
        .poll_interval
        .max(Duration::from_millis(1));
    let mut guard = inner.state.lock().expect("scheduler state poisoned");
    loop {
        if guard.stopping {
            return;
        }
        let now = Instant::now();
        for job in guard.jobs.values_mut() {
            if job.state == JobState::Running
                && job.quarantine_reason.is_none()
                && job.started.is_some_and(|t| now.duration_since(t) > stall)
            {
                job.quarantine_reason = Some(format!(
                    "stalled: held a worker past the {}ms watchdog budget",
                    stall.as_millis()
                ));
                job.cancel.store(true, Ordering::Relaxed);
            }
        }
        // begin_shutdown notifies watchdog_wake, so shutdown stays prompt
        let (g, _) = inner
            .watchdog_wake
            .wait_timeout(guard, tick)
            .expect("scheduler state poisoned");
        guard = g;
    }
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        let (id, spec, cancel, job_deadline) = {
            let mut guard = inner.state.lock().expect("scheduler state poisoned");
            loop {
                if guard.stopping {
                    return;
                }
                let Some(id) = guard.queue.pop_front() else {
                    guard = inner
                        .work_ready
                        .wait(guard)
                        .expect("scheduler state poisoned");
                    continue;
                };
                let st = &mut *guard;
                let job = st.jobs.get_mut(&id).expect("queued job exists");
                st.queued_cost = st.queued_cost.saturating_sub(job.cost);
                // deadline shed: a job whose client deadline lapsed while it
                // waited never dispatches — no worker time, no backend evals
                if job.deadline.is_some_and(|d| Instant::now() >= d) {
                    job.state = JobState::Shed;
                    st.inflight.remove(&job.fingerprint);
                    st.counters.shed += 1;
                    if !st.stopping {
                        if let Some(j) = &inner.journal {
                            let _ = j.append(&journal::terminal_event(id, "shed", None, None));
                        }
                    }
                    inner.job_done.notify_all();
                    continue;
                }
                // memory sentinel: an arena ask over the watchdog budget is
                // condemned before it can take the process down
                if let Some(cap) = inner.cfg.watchdog.max_arena_bytes {
                    let ask = job.spec.estimated_arena_bytes();
                    if ask > cap {
                        let reason = format!(
                            "arena ask of {ask} bytes exceeds the {cap}-byte watchdog budget"
                        );
                        job.state = JobState::Quarantined(reason.clone());
                        st.inflight.remove(&job.fingerprint);
                        st.counters.quarantined += 1;
                        if !st.stopping {
                            if let Some(j) = &inner.journal {
                                let _ = j.append(&journal::terminal_event(
                                    id,
                                    "quarantined",
                                    None,
                                    Some(&reason),
                                ));
                            }
                        }
                        inner.job_done.notify_all();
                        continue;
                    }
                }
                job.state = JobState::Running;
                job.started = Some(Instant::now());
                break (id, job.spec.clone(), Arc::clone(&job.cancel), job.deadline);
            }
        };

        if let Some(j) = &inner.journal {
            let _ = j.append(&journal::event("start", id));
        }
        let on_checkpoint = inner.journal.as_ref().map(|_| {
            let inner = Arc::clone(inner);
            Arc::new(move |nodes: usize| {
                if let Some(j) = &inner.journal {
                    let _ = j.append(&journal::checkpoint_event(id, nodes));
                }
            }) as Arc<dyn Fn(usize) + Send + Sync>
        });
        // the effective deadline is the tighter of the operator's per-job
        // timeout and the client's submitted deadline
        let timeout_deadline = inner.cfg.job_timeout.map(|t| Instant::now() + t);
        let deadline = match (timeout_deadline, job_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let ctl = ExecCtl {
            cancel: Some(Arc::clone(&cancel)),
            deadline,
            node_budget: None,
            checkpoint_every: inner.cfg.checkpoint_every,
            on_checkpoint,
            breaker: inner.cfg.breaker.clone(),
        };
        let store = inner.store.as_deref();
        let spec_for_run = spec.clone();
        // Confine each job to a fair share of the process thread cap: with
        // `workers` jobs running side by side, letting every job's nested
        // par_map* claim the full cap oversubscribes the host `workers`-fold
        // (measurably slower on the cold path, see
        // artifacts/serve_throughput.csv).
        let share = qaprox_linalg::parallel::max_threads() / inner.cfg.workers.max(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            qaprox_linalg::parallel::with_thread_budget(share, || {
                // transient failures (injected faults, flaky store reads,
                // emulated backend drops, open circuit breakers) retry on
                // the deterministic backoff schedule before degrading
                inner.cfg.retry.run(qaprox_fault::is_transient, |_attempt| {
                    // Failpoint `serve.worker.pre_exec`: a worker failing to
                    // set a job up (transient → retried).
                    qaprox_fault::fail_point!("serve.worker.pre_exec", |_action| {
                        Err(qaprox_fault::injected_error("serve.worker.pre_exec"))
                    });
                    let result = run_spec(store, &spec_for_run, &ctl);
                    // Failpoint `serve.worker.complete` (panic action): a
                    // crash AFTER execution but BEFORE the state update and
                    // terminal journal record land — the classic
                    // recovery-window crash.
                    qaprox_fault::fail_point!("serve.worker.complete");
                    result
                })
            })
        }));

        // Resolve the outcome (including the degradation fallback, which
        // reads the store) BEFORE taking the state lock.
        let mut injected_crash = false;
        let (state, result) = match outcome {
            Ok(Ok(ExecResult::Done(payload))) => (JobState::Done, Some(payload)),
            Ok(Ok(ExecResult::Suspended)) => {
                if cancel.load(Ordering::Relaxed) {
                    (JobState::Cancelled, None)
                } else {
                    (JobState::TimedOut, None)
                }
            }
            Ok(Err(e)) => {
                let fallback = if qaprox_fault::is_transient(&e) {
                    degraded_payload(store, &spec, &e)
                } else {
                    None
                };
                match fallback {
                    Some(payload) => (JobState::Degraded, Some(payload)),
                    None => (JobState::Failed(e), None),
                }
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                injected_crash = qaprox_fault::is_injected_panic(msg);
                (JobState::Failed(format!("job panicked: {msg}")), None)
            }
        };

        let mut guard = inner.state.lock().expect("scheduler state poisoned");
        let st = &mut *guard;
        if st.jobs.contains_key(&id) {
            // a watchdog verdict overrides whatever execution produced:
            // however the condemned job unwound (suspended, failed, even
            // finished between the flag flip and here), it is quarantined
            let quarantine = st
                .jobs
                .get_mut(&id)
                .and_then(|j| j.quarantine_reason.take());
            let (state, result) = match quarantine {
                Some(reason) => (JobState::Quarantined(reason), None),
                None => (state, result),
            };
            match state {
                JobState::Done => st.counters.completed += 1,
                JobState::Failed(_) => st.counters.failed += 1,
                JobState::Cancelled => st.counters.cancelled += 1,
                JobState::TimedOut => st.counters.timed_out += 1,
                JobState::Degraded => st.counters.degraded += 1,
                JobState::Quarantined(_) => st.counters.quarantined += 1,
                _ => {}
            }
            // Journal the terminal transition — EXCEPT for emulated crashes
            // (an injected panic stands in for the process dying, and a dead
            // process appends nothing) and during shutdown drain (those jobs
            // re-enqueue on restart).
            if !st.stopping && !injected_crash {
                if let Some(j) = &inner.journal {
                    let record = match &state {
                        JobState::Done => {
                            journal::terminal_event(id, "done", result.as_ref(), None)
                        }
                        JobState::Degraded => {
                            journal::terminal_event(id, "degraded", result.as_ref(), None)
                        }
                        JobState::Failed(e) => journal::terminal_event(id, "failed", None, Some(e)),
                        JobState::Cancelled => journal::terminal_event(id, "cancelled", None, None),
                        JobState::TimedOut => journal::terminal_event(id, "timed-out", None, None),
                        JobState::Shed => journal::terminal_event(id, "shed", None, None),
                        JobState::Quarantined(reason) => {
                            journal::terminal_event(id, "quarantined", None, Some(reason))
                        }
                        JobState::Queued | JobState::Running => unreachable!("terminal only"),
                    };
                    let _ = j.append(&record);
                    if j.needs_rotation() {
                        // compact to the live (non-terminal) jobs; finished
                        // jobs' results live in the store, their history is
                        // no longer needed for recovery
                        let live: Vec<Json> = st
                            .jobs
                            .iter()
                            .filter(|(&jid, job)| jid != id && !job.state.is_terminal())
                            .map(|(&jid, job)| journal::submit_event(jid, &job.spec))
                            .collect();
                        let _ = j.rotate(&live);
                    }
                }
            }
            let job = st.jobs.get_mut(&id).expect("job still present");
            job.state = state;
            job.result = result;
            st.inflight.remove(&job.fingerprint);
        }
        drop(guard);
        inner.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SynthSpec;
    use std::path::PathBuf;

    fn tmp_dir(prefix: &str, tag: &str) -> PathBuf {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "qaprox-serve-{prefix}-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tmp_store(tag: &str) -> Arc<Store> {
        Arc::new(Store::open(tmp_dir("sched", tag)).unwrap())
    }

    fn tiny(seed: u64) -> JobSpec {
        JobSpec::Synth(SynthSpec {
            workload: "tfim".into(),
            qubits: 2,
            steps: 2,
            max_cnots: 3,
            max_nodes: 20,
            max_hs: 0.4,
            seed,
            deadline_ms: None,
        })
    }

    fn tiny_with_deadline(seed: u64, deadline_ms: u64) -> JobSpec {
        let JobSpec::Synth(mut s) = tiny(seed) else {
            unreachable!()
        };
        s.deadline_ms = Some(deadline_ms);
        JobSpec::Synth(s)
    }

    const WAIT: Duration = Duration::from_secs(120);

    #[test]
    fn jobs_complete_and_expose_results() {
        let sched = Scheduler::start(SchedulerConfig::default(), Some(tmp_store("basic"))).unwrap();
        let id = match sched.submit(tiny(0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::Done);
        let payload = view.result.unwrap();
        assert_eq!(payload.get_str("kind"), Some("synth"));
        assert_eq!(payload.get_bool("cached"), Some(false));
        assert!(sched.recovery_report().is_none(), "no journal configured");
        sched.shutdown();
    }

    #[test]
    fn identical_inflight_submissions_dedup() {
        // one worker so the first job occupies it while we resubmit
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                ..Default::default()
            },
            Some(tmp_store("dedup")),
        )
        .unwrap();
        let a = sched.submit(tiny(0)).unwrap();
        let b = sched.submit(tiny(0)).unwrap();
        let id = match a {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert_eq!(b, Submitted::Deduped(id));
        let stats = sched.stats();
        assert_eq!(stats.get_u64("deduped"), Some(1));
        sched.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                queue_capacity: 2,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // distinct seeds defeat dedup; capacity 2 → some must be rejected
        let outcomes: Vec<Submitted> = (0..12).map(|s| sched.submit(tiny(s)).unwrap()).collect();
        assert!(outcomes.contains(&Submitted::Rejected), "{outcomes:?}");
        assert!(sched.stats().get_u64("rejected").unwrap() > 0);
        sched.shutdown();
    }

    #[test]
    fn thirty_two_concurrent_submissions_settle_cleanly() {
        let sched = Arc::new(
            Scheduler::start(
                SchedulerConfig {
                    workers: 4,
                    queue_capacity: 16,
                    ..Default::default()
                },
                Some(tmp_store("load")),
            )
            .unwrap(),
        );
        let handles: Vec<_> = (0..32u64)
            .map(|i| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.submit(tiny(i % 8)).unwrap())
            })
            .collect();
        let outcomes: Vec<Submitted> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let mut ids: Vec<u64> = outcomes
            .iter()
            .filter_map(|o| match o {
                Submitted::Accepted(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(!ids.is_empty());
        let accepted = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), accepted, "accepted ids must be unique");

        // every accepted job settles into a terminal state; none is lost
        for id in &ids {
            let view = sched
                .wait(*id, WAIT)
                .unwrap_or_else(|| panic!("job {id} lost"));
            assert!(
                matches!(view.state, JobState::Done),
                "job {id} ended {:?}",
                view.state
            );
        }
        // deduped references point at real jobs
        for o in &outcomes {
            if let Submitted::Deduped(id) = o {
                assert!(sched.wait(*id, WAIT).is_some());
            }
        }
        let stats = Arc::try_unwrap(sched)
            .map(|s| {
                let st = s.stats();
                s.shutdown();
                st
            })
            .unwrap_or_else(|_| panic!("scheduler still shared"));
        let done = stats.get_u64("completed").unwrap();
        assert_eq!(done as usize, accepted, "all accepted jobs completed");
    }

    #[test]
    fn cancel_stops_a_queued_job() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // occupy the worker, then queue a second job and cancel it
        let _busy = sched.submit(tiny(100)).unwrap();
        let id = match sched.submit(tiny(101)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert!(sched.cancel(id));
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::Cancelled);
        assert!(!sched.cancel(id), "terminal jobs cannot re-cancel");
        assert!(!sched.cancel(9999), "unknown ids report false");
        sched.shutdown();
    }

    #[test]
    fn panicking_job_is_isolated_and_reported() {
        let sched = Scheduler::start(SchedulerConfig::default(), None).unwrap();
        let boom = JobSpec::Synth(SynthSpec {
            workload: "__panic".into(),
            qubits: 2,
            ..Default::default()
        });
        // validation runs the reference builder, which panics for __panic —
        // submit must therefore bypass validation to reach the worker; use
        // the panic-free path: queue it directly via a crafted spec clone.
        let id = {
            let mut st = sched.inner.state.lock().unwrap();
            let id = st.next_id;
            st.next_id += 1;
            st.counters.submitted += 1;
            st.jobs
                .insert(id, Job::queued(boom, "boom".into(), None, 0));
            st.inflight.insert("boom".into(), id);
            st.queue.push_back(id);
            drop(st);
            sched.inner.work_ready.notify_one();
            id
        };
        let view = sched.wait(id, WAIT).unwrap();
        match view.state {
            JobState::Failed(msg) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        // the pool survives: a normal job still completes afterwards
        let ok = match sched.submit(tiny(7)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert_eq!(sched.wait(ok, WAIT).unwrap().state, JobState::Done);
        sched.shutdown();
    }

    #[test]
    fn tight_timeout_suspends_the_job() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                job_timeout: Some(Duration::from_millis(0)),
                checkpoint_every: 1,
                ..Default::default()
            },
            Some(tmp_store("timeout")),
        )
        .unwrap();
        let id = match sched.submit(tiny(0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::TimedOut);
        sched.shutdown();
    }

    #[test]
    fn journaled_scheduler_restores_finished_jobs_across_restart() {
        let journal_dir = tmp_dir("journal", "restore");
        let store = tmp_store("journal-restore");
        let cfg = SchedulerConfig {
            workers: 1,
            journal_dir: Some(journal_dir.clone()),
            ..Default::default()
        };
        let (id, payload) = {
            let sched = Scheduler::start(cfg.clone(), Some(Arc::clone(&store))).unwrap();
            let id = match sched.submit(tiny(0)).unwrap() {
                Submitted::Accepted(id) => id,
                other => panic!("{other:?}"),
            };
            let view = sched.wait(id, WAIT).unwrap();
            assert_eq!(view.state, JobState::Done);
            sched.shutdown();
            (id, view.result.unwrap())
        };

        // restart on the same journal: the finished job is queryable again
        let sched = Scheduler::start(cfg, Some(store)).unwrap();
        let report = sched.recovery_report().expect("journal configured");
        assert_eq!(report.get_u64("jobs_seen"), Some(1));
        assert_eq!(report.get_u64("restored_terminal"), Some(1));
        assert_eq!(report.get_u64("skipped_lines"), Some(0));
        let view = sched.job(id).expect("job restored");
        assert_eq!(view.state, JobState::Done);
        assert_eq!(
            view.result.unwrap().to_string(),
            payload.to_string(),
            "restored payload is bit-identical"
        );
        // ids continue past the recovered ones
        match sched.submit(tiny(1)).unwrap() {
            Submitted::Accepted(new_id) => assert!(new_id > id),
            other => panic!("{other:?}"),
        }
        sched.shutdown();
    }

    #[test]
    fn expired_deadline_jobs_shed_before_dispatch() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                ..Default::default()
            },
            Some(tmp_store("shed")),
        )
        .unwrap();
        // occupy the worker so the deadlined job must wait in the queue;
        // a 0 ms TTL is expired the moment it could dispatch
        let _busy = sched.submit(tiny(100)).unwrap();
        let id = match sched.submit(tiny_with_deadline(101, 0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::Shed);
        assert!(view.result.is_none(), "shed jobs produce nothing");
        let stats = sched.stats();
        assert_eq!(stats.get_u64("shed"), Some(1));
        sched.shutdown();
    }

    #[test]
    fn admission_prices_jobs_against_class_budgets() {
        // a zero class budget turns every synth job away ...
        let sched = Scheduler::start(
            SchedulerConfig {
                admission: AdmissionConfig {
                    max_synth_cost: Some(0),
                    ..Default::default()
                },
                ..Default::default()
            },
            None,
        )
        .unwrap();
        assert_eq!(
            sched.submit(tiny(0)).unwrap(),
            Submitted::Overloaded {
                retry_after_ms: 250
            }
        );
        assert_eq!(sched.stats().get_u64("overloaded"), Some(1));
        assert_eq!(sched.stats().get_u64("submitted"), Some(0));
        sched.shutdown();

        // ... while a generous one admits the same job
        let sched = Scheduler::start(
            SchedulerConfig {
                admission: AdmissionConfig {
                    max_synth_cost: Some(u64::MAX),
                    ..Default::default()
                },
                ..Default::default()
            },
            Some(tmp_store("admit")),
        )
        .unwrap();
        let id = match sched.submit(tiny(0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert_eq!(sched.wait(id, WAIT).unwrap().state, JobState::Done);
        sched.shutdown();
    }

    #[test]
    fn queued_cost_budget_applies_backpressure() {
        let sched = Scheduler::start(
            SchedulerConfig {
                admission: AdmissionConfig {
                    max_queued_cost: Some(0),
                    retry_after_ms: 7,
                    ..Default::default()
                },
                ..Default::default()
            },
            None,
        )
        .unwrap();
        // every synth job has positive predicted cost, so a zero queue
        // budget rejects the very first submission with the configured hint
        assert_eq!(
            sched.submit(tiny(0)).unwrap(),
            Submitted::Overloaded { retry_after_ms: 7 }
        );
        sched.shutdown();
    }

    #[test]
    fn oversized_arena_asks_quarantine_at_dispatch() {
        let sched = Scheduler::start(
            SchedulerConfig {
                watchdog: WatchdogConfig {
                    max_arena_bytes: Some(0),
                    ..Default::default()
                },
                ..Default::default()
            },
            Some(tmp_store("arena")),
        )
        .unwrap();
        let id = match sched.submit(tiny(0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        match view.state {
            JobState::Quarantined(reason) => assert!(reason.contains("arena"), "{reason}"),
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert_eq!(sched.stats().get_u64("quarantined"), Some(1));
        sched.shutdown();
    }

    #[test]
    fn quarantined_and_shed_jobs_restore_without_reenqueue() {
        let journal_dir = tmp_dir("journal", "quarantine");
        // hand-write a journal: job 1 was quarantined, job 2 shed, job 3
        // crashed mid-run (submit + start, no terminal record)
        {
            let j = Journal::open(&journal_dir).unwrap();
            j.append(&journal::submit_event(1, &tiny(3))).unwrap();
            j.append(&journal::event("start", 1)).unwrap();
            j.append(&journal::terminal_event(
                1,
                "quarantined",
                None,
                Some("stalled: test verdict"),
            ))
            .unwrap();
            j.append(&journal::submit_event(2, &tiny(4))).unwrap();
            j.append(&journal::terminal_event(2, "shed", None, None))
                .unwrap();
            j.append(&journal::submit_event(3, &tiny(5))).unwrap();
            j.append(&journal::event("start", 3)).unwrap();
        }
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                journal_dir: Some(journal_dir),
                ..Default::default()
            },
            Some(tmp_store("journal-quarantine")),
        )
        .unwrap();
        let report = sched.recovery_report().unwrap();
        assert_eq!(report.get_u64("restored_terminal"), Some(2));
        let reenqueued = report.get("reenqueued").and_then(Json::as_arr).unwrap();
        assert_eq!(reenqueued.len(), 1, "only the crashed job re-runs");
        assert_eq!(reenqueued[0].get_u64("id"), Some(3));

        // the quarantined job is queryable with its verdict, and stays put
        let view = sched.job(1).expect("quarantined job restored");
        assert_eq!(
            view.state,
            JobState::Quarantined("stalled: test verdict".into())
        );
        assert_eq!(sched.job(2).unwrap().state, JobState::Shed);
        // the re-enqueued job completes under its original id
        assert_eq!(sched.wait(3, WAIT).unwrap().state, JobState::Done);
        // the poison job was never re-run: still quarantined afterwards
        assert_eq!(
            sched.job(1).unwrap().state,
            JobState::Quarantined("stalled: test verdict".into())
        );
        // a fresh identical submission is NOT deduped onto the quarantined
        // job — terminal jobs hold no inflight slot
        match sched.submit(tiny(3)).unwrap() {
            Submitted::Accepted(id) => assert!(id > 3),
            other => panic!("{other:?}"),
        }
        sched.shutdown();
    }

    #[test]
    fn unfinished_journal_entries_reenqueue_and_complete() {
        let journal_dir = tmp_dir("journal", "reenqueue");
        // hand-write a journal whose job never reached a terminal state
        // (the classic crash: submit + start, then nothing)
        {
            let j = Journal::open(&journal_dir).unwrap();
            j.append(&journal::submit_event(1, &tiny(3))).unwrap();
            j.append(&journal::event("start", 1)).unwrap();
        }
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                journal_dir: Some(journal_dir),
                ..Default::default()
            },
            Some(tmp_store("journal-reenqueue")),
        )
        .unwrap();
        let report = sched.recovery_report().unwrap();
        let reenqueued = report.get("reenqueued").and_then(Json::as_arr).unwrap();
        assert_eq!(reenqueued.len(), 1);
        assert_eq!(reenqueued[0].get_u64("id"), Some(1));
        // the lost job runs to completion under its original id
        let view = sched.wait(1, WAIT).unwrap();
        assert_eq!(view.state, JobState::Done);
        assert_eq!(view.result.unwrap().get_str("kind"), Some("synth"));
        sched.shutdown();
    }
}
