//! The worker-pool scheduler.
//!
//! A fixed pool of worker threads drains a bounded FIFO queue of jobs.
//! Guarantees:
//!
//! * **backpressure** — a full queue rejects new submissions immediately
//!   (the server surfaces this as `backpressure: true`) instead of growing
//!   without bound;
//! * **dedup** — a submission identical to a queued/running job returns the
//!   existing job id instead of queueing duplicate work (identical *after*
//!   one completes hits the store instead);
//! * **cancellation** — `cancel` flips the job's atomic flag; synthesis
//!   notices at the next round boundary and suspends with a checkpoint;
//! * **timeout** — each job gets a deadline; overruns suspend the same way
//!   and the job reports `timed-out`;
//! * **panic isolation** — a panicking job poisons nothing: the worker
//!   catches the unwind, marks the job failed, and moves on.

use crate::exec::{run_spec, ExecCtl, ExecResult};
use crate::spec::JobSpec;
use qaprox_store::json::Json;
use qaprox_store::Store;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads.
    pub workers: usize,
    /// Bounded queue length; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Per-job wall-clock budget (None = unbounded).
    pub job_timeout: Option<Duration>,
    /// Checkpoint cadence in synthesis nodes (0 = only on suspension).
    pub checkpoint_every: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            queue_capacity: 64,
            job_timeout: None,
            checkpoint_every: 20,
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the payload is available via `result`.
    Done,
    /// Failed with an error message.
    Failed(String),
    /// Cancelled by request (suspended with a checkpoint if it was running).
    Cancelled,
    /// Exceeded its deadline (suspended with a checkpoint).
    TimedOut,
}

impl JobState {
    /// The wire name of this state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed-out",
        }
    }

    /// True once the job can never run again.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

struct Job {
    spec: JobSpec,
    state: JobState,
    cancel: Arc<AtomicBool>,
    result: Option<Json>,
    fingerprint: String,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    timed_out: u64,
    rejected: u64,
    deduped: u64,
}

struct State {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, Job>,
    inflight: HashMap<String, u64>,
    next_id: u64,
    stopping: bool,
    counters: Counters,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    job_done: Condvar,
    store: Option<Arc<Store>>,
    cfg: SchedulerConfig,
}

/// What `submit` decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submitted {
    /// Queued as a new job.
    Accepted(u64),
    /// Identical to an in-flight job; its id is returned instead.
    Deduped(u64),
    /// The queue is full; retry later.
    Rejected,
}

/// A point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// Response payload, present once `Done`.
    pub result: Option<Json>,
}

/// The worker-pool scheduler. Dropping it shuts the pool down.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Scheduler {
    /// Starts the pool.
    pub fn start(cfg: SchedulerConfig, store: Option<Arc<Store>>) -> Scheduler {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                inflight: HashMap::new(),
                next_id: 1,
                stopping: false,
                counters: Counters::default(),
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            store,
            cfg,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qaprox-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Scheduler { inner, workers }
    }

    /// Submits a job; validation errors are returned before queueing.
    pub fn submit(&self, spec: JobSpec) -> Result<Submitted, String> {
        spec.validate()?;
        let fingerprint = spec.dedup_fingerprint();
        let mut st = self.inner.state.lock().expect("scheduler state poisoned");
        if st.stopping {
            return Err("scheduler is shutting down".into());
        }
        if let Some(&id) = st.inflight.get(&fingerprint) {
            st.counters.deduped += 1;
            return Ok(Submitted::Deduped(id));
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            st.counters.rejected += 1;
            return Ok(Submitted::Rejected);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.counters.submitted += 1;
        st.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
                result: None,
                fingerprint: fingerprint.clone(),
            },
        );
        st.inflight.insert(fingerprint, id);
        st.queue.push_back(id);
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            st.queue.len() <= self.inner.cfg.queue_capacity,
            "strict-invariants: queue over capacity"
        );
        drop(st);
        self.inner.work_ready.notify_one();
        Ok(Submitted::Accepted(id))
    }

    /// A snapshot of one job, if it exists.
    pub fn job(&self, id: u64) -> Option<JobView> {
        let st = self.inner.state.lock().expect("scheduler state poisoned");
        st.jobs.get(&id).map(|j| JobView {
            id,
            state: j.state.clone(),
            result: j.result.clone(),
        })
    }

    /// Requests cancellation. Queued jobs cancel immediately; running jobs
    /// suspend at their next synthesis round. Returns false for unknown or
    /// already-terminal jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let mut guard = self.inner.state.lock().expect("scheduler state poisoned");
        let st = &mut *guard;
        let Some(job) = st.jobs.get_mut(&id) else {
            return false;
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                job.cancel.store(true, Ordering::Relaxed);
                st.inflight.remove(&job.fingerprint);
                st.queue.retain(|&q| q != id);
                st.counters.cancelled += 1;
                drop(guard);
                self.inner.job_done.notify_all();
                true
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job reaches a terminal state (or the timeout).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobView> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("scheduler state poisoned");
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(j) if j.state.is_terminal() => {
                    return Some(JobView {
                        id,
                        state: j.state.clone(),
                        result: j.result.clone(),
                    })
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return self.snapshot_locked(&st, id);
            }
            let (guard, _) = self
                .inner
                .job_done
                .wait_timeout(st, deadline - now)
                .expect("scheduler state poisoned");
            st = guard;
        }
    }

    fn snapshot_locked(&self, st: &State, id: u64) -> Option<JobView> {
        st.jobs.get(&id).map(|j| JobView {
            id,
            state: j.state.clone(),
            result: j.result.clone(),
        })
    }

    /// Scheduler + store statistics as a JSON payload.
    pub fn stats(&self) -> Json {
        let st = self.inner.state.lock().expect("scheduler state poisoned");
        let c = &st.counters;
        let mut fields = vec![
            ("workers".to_string(), Json::Num(self.workers.len() as f64)),
            ("queued".to_string(), Json::Num(st.queue.len() as f64)),
            (
                "running".to_string(),
                Json::Num(
                    st.jobs
                        .values()
                        .filter(|j| j.state == JobState::Running)
                        .count() as f64,
                ),
            ),
            ("submitted".to_string(), Json::Num(c.submitted as f64)),
            ("completed".to_string(), Json::Num(c.completed as f64)),
            ("failed".to_string(), Json::Num(c.failed as f64)),
            ("cancelled".to_string(), Json::Num(c.cancelled as f64)),
            ("timed_out".to_string(), Json::Num(c.timed_out as f64)),
            ("rejected".to_string(), Json::Num(c.rejected as f64)),
            ("deduped".to_string(), Json::Num(c.deduped as f64)),
        ];
        if let Some(store) = &self.inner.store {
            let s = store.stats();
            fields.push((
                "store".to_string(),
                Json::obj(vec![
                    ("hits", Json::Num(s.hits as f64)),
                    ("misses", Json::Num(s.misses as f64)),
                    ("puts", Json::Num(s.puts as f64)),
                    ("populations", Json::Num(s.entries.0 as f64)),
                    ("partials", Json::Num(s.entries.1 as f64)),
                    ("results", Json::Num(s.entries.2 as f64)),
                    ("total_bytes", Json::Num(s.total_bytes as f64)),
                ]),
            ));
        }
        Json::Obj(fields)
    }

    /// Stops accepting work, cancels running jobs, and joins the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        let mut guard = self.inner.state.lock().expect("scheduler state poisoned");
        let st = &mut *guard;
        st.stopping = true;
        // drain the queue: queued jobs become cancelled
        while let Some(id) = st.queue.pop_front() {
            if let Some(job) = st.jobs.get_mut(&id) {
                job.state = JobState::Cancelled;
                st.inflight.remove(&job.fingerprint);
                st.counters.cancelled += 1;
            }
        }
        // running jobs get their cancel flags flipped
        for job in st.jobs.values() {
            if job.state == JobState::Running {
                job.cancel.store(true, Ordering::Relaxed);
            }
        }
        drop(guard);
        self.inner.work_ready.notify_all();
        self.inner.job_done.notify_all();
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let (id, spec, cancel) = {
            let mut st = inner.state.lock().expect("scheduler state poisoned");
            loop {
                if st.stopping {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let job = st.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    break (id, job.spec.clone(), Arc::clone(&job.cancel));
                }
                st = inner.work_ready.wait(st).expect("scheduler state poisoned");
            }
        };

        let ctl = ExecCtl {
            cancel: Some(Arc::clone(&cancel)),
            deadline: inner.cfg.job_timeout.map(|t| Instant::now() + t),
            node_budget: None,
            checkpoint_every: inner.cfg.checkpoint_every,
        };
        let store = inner.store.as_deref();
        let spec_for_run = spec.clone();
        // Confine each job to a fair share of the process thread cap: with
        // `workers` jobs running side by side, letting every job's nested
        // par_map* claim the full cap oversubscribes the host `workers`-fold
        // (measurably slower on the cold path, see
        // artifacts/serve_throughput.csv).
        let share = qaprox_linalg::parallel::max_threads() / inner.cfg.workers.max(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            qaprox_linalg::parallel::with_thread_budget(share, || {
                run_spec(store, &spec_for_run, &ctl)
            })
        }));

        let mut guard = inner.state.lock().expect("scheduler state poisoned");
        let st = &mut *guard;
        if st.jobs.contains_key(&id) {
            let (state, result) = match outcome {
                Ok(Ok(ExecResult::Done(payload))) => (JobState::Done, Some(payload)),
                Ok(Ok(ExecResult::Suspended)) => {
                    if cancel.load(Ordering::Relaxed) {
                        (JobState::Cancelled, None)
                    } else {
                        (JobState::TimedOut, None)
                    }
                }
                Ok(Err(e)) => (JobState::Failed(e), None),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| payload.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    (JobState::Failed(format!("job panicked: {msg}")), None)
                }
            };
            match state {
                JobState::Done => st.counters.completed += 1,
                JobState::Failed(_) => st.counters.failed += 1,
                JobState::Cancelled => st.counters.cancelled += 1,
                JobState::TimedOut => st.counters.timed_out += 1,
                _ => {}
            }
            let job = st.jobs.get_mut(&id).expect("job still present");
            job.state = state;
            job.result = result;
            st.inflight.remove(&job.fingerprint);
        }
        drop(guard);
        inner.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SynthSpec;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> Arc<Store> {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("qaprox-serve-sched-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Arc::new(Store::open(dir).unwrap())
    }

    fn tiny(seed: u64) -> JobSpec {
        JobSpec::Synth(SynthSpec {
            workload: "tfim".into(),
            qubits: 2,
            steps: 2,
            max_cnots: 3,
            max_nodes: 20,
            max_hs: 0.4,
            seed,
        })
    }

    const WAIT: Duration = Duration::from_secs(120);

    #[test]
    fn jobs_complete_and_expose_results() {
        let sched = Scheduler::start(SchedulerConfig::default(), Some(tmp_store("basic")));
        let id = match sched.submit(tiny(0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::Done);
        let payload = view.result.unwrap();
        assert_eq!(payload.get_str("kind"), Some("synth"));
        assert_eq!(payload.get_bool("cached"), Some(false));
        sched.shutdown();
    }

    #[test]
    fn identical_inflight_submissions_dedup() {
        // one worker so the first job occupies it while we resubmit
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                ..Default::default()
            },
            Some(tmp_store("dedup")),
        );
        let a = sched.submit(tiny(0)).unwrap();
        let b = sched.submit(tiny(0)).unwrap();
        let id = match a {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert_eq!(b, Submitted::Deduped(id));
        let stats = sched.stats();
        assert_eq!(stats.get_u64("deduped"), Some(1));
        sched.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                queue_capacity: 2,
                ..Default::default()
            },
            None,
        );
        // distinct seeds defeat dedup; capacity 2 → some must be rejected
        let outcomes: Vec<Submitted> = (0..12).map(|s| sched.submit(tiny(s)).unwrap()).collect();
        assert!(outcomes.contains(&Submitted::Rejected), "{outcomes:?}");
        assert!(sched.stats().get_u64("rejected").unwrap() > 0);
        sched.shutdown();
    }

    #[test]
    fn thirty_two_concurrent_submissions_settle_cleanly() {
        let sched = Arc::new(Scheduler::start(
            SchedulerConfig {
                workers: 4,
                queue_capacity: 16,
                ..Default::default()
            },
            Some(tmp_store("load")),
        ));
        let handles: Vec<_> = (0..32u64)
            .map(|i| {
                let sched = Arc::clone(&sched);
                std::thread::spawn(move || sched.submit(tiny(i % 8)).unwrap())
            })
            .collect();
        let outcomes: Vec<Submitted> = handles.into_iter().map(|h| h.join().unwrap()).collect();

        let mut ids: Vec<u64> = outcomes
            .iter()
            .filter_map(|o| match o {
                Submitted::Accepted(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(!ids.is_empty());
        let accepted = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), accepted, "accepted ids must be unique");

        // every accepted job settles into a terminal state; none is lost
        for id in &ids {
            let view = sched
                .wait(*id, WAIT)
                .unwrap_or_else(|| panic!("job {id} lost"));
            assert!(
                matches!(view.state, JobState::Done),
                "job {id} ended {:?}",
                view.state
            );
        }
        // deduped references point at real jobs
        for o in &outcomes {
            if let Submitted::Deduped(id) = o {
                assert!(sched.wait(*id, WAIT).is_some());
            }
        }
        let stats = Arc::try_unwrap(sched)
            .map(|s| {
                let st = s.stats();
                s.shutdown();
                st
            })
            .unwrap_or_else(|_| panic!("scheduler still shared"));
        let done = stats.get_u64("completed").unwrap();
        assert_eq!(done as usize, accepted, "all accepted jobs completed");
    }

    #[test]
    fn cancel_stops_a_queued_job() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                ..Default::default()
            },
            None,
        );
        // occupy the worker, then queue a second job and cancel it
        let _busy = sched.submit(tiny(100)).unwrap();
        let id = match sched.submit(tiny(101)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert!(sched.cancel(id));
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::Cancelled);
        assert!(!sched.cancel(id), "terminal jobs cannot re-cancel");
        assert!(!sched.cancel(9999), "unknown ids report false");
        sched.shutdown();
    }

    #[test]
    fn panicking_job_is_isolated_and_reported() {
        let sched = Scheduler::start(SchedulerConfig::default(), None);
        let boom = JobSpec::Synth(SynthSpec {
            workload: "__panic".into(),
            qubits: 2,
            ..Default::default()
        });
        // validation runs the reference builder, which panics for __panic —
        // submit must therefore bypass validation to reach the worker; use
        // the panic-free path: queue it directly via a crafted spec clone.
        let id = {
            let mut st = sched.inner.state.lock().unwrap();
            let id = st.next_id;
            st.next_id += 1;
            st.counters.submitted += 1;
            st.jobs.insert(
                id,
                Job {
                    spec: boom,
                    state: JobState::Queued,
                    cancel: Arc::new(AtomicBool::new(false)),
                    result: None,
                    fingerprint: "boom".into(),
                },
            );
            st.inflight.insert("boom".into(), id);
            st.queue.push_back(id);
            drop(st);
            sched.inner.work_ready.notify_one();
            id
        };
        let view = sched.wait(id, WAIT).unwrap();
        match view.state {
            JobState::Failed(msg) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected failure, got {other:?}"),
        }
        // the pool survives: a normal job still completes afterwards
        let ok = match sched.submit(tiny(7)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        assert_eq!(sched.wait(ok, WAIT).unwrap().state, JobState::Done);
        sched.shutdown();
    }

    #[test]
    fn tight_timeout_suspends_the_job() {
        let sched = Scheduler::start(
            SchedulerConfig {
                workers: 1,
                job_timeout: Some(Duration::from_millis(0)),
                checkpoint_every: 1,
                ..Default::default()
            },
            Some(tmp_store("timeout")),
        );
        let id = match sched.submit(tiny(0)).unwrap() {
            Submitted::Accepted(id) => id,
            other => panic!("{other:?}"),
        };
        let view = sched.wait(id, WAIT).unwrap();
        assert_eq!(view.state, JobState::TimedOut);
        sched.shutdown();
    }
}
