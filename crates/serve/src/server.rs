//! The TCP job service.
//!
//! Wire protocol: newline-delimited JSON over TCP (one request object per
//! line, one response object per line, in order). Requests carry an `op`:
//!
//! | op         | fields                         | response                         |
//! |------------|--------------------------------|----------------------------------|
//! | `synth`    | [`SynthSpec`] fields           | `{ok, id, key, deduped}` or backpressure |
//! | `run`      | [`RunSpec`] fields             | same                             |
//! | `status`   | `id`                           | `{ok, id, state}`                |
//! | `result`   | `id`                           | `{ok, id, state, result}`        |
//! | `cancel`   | `id`                           | `{ok, cancelled}`                |
//! | `stats`    | —                              | scheduler + store counters       |
//! | `recover`  | —                              | what startup replayed from the journal |
//! | `shutdown` | —                              | `{ok: true}` then the server stops |
//!
//! Errors are `{ok: false, error: "..."}`; a full queue additionally sets
//! `backpressure: true` so clients know to retry rather than give up, and
//! an admission-control rejection sets `overloaded: true` plus a
//! `retry_after_ms` backoff hint.
//! See `docs/SERVE.md` for the full protocol description.

use crate::scheduler::{Scheduler, SchedulerConfig, Submitted};
use crate::spec::JobSpec;
use qaprox_store::json::{parse, Json};
use qaprox_store::Store;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Scheduler knobs.
    pub scheduler: SchedulerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// A running job service.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    scheduler: Arc<Scheduler>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds, starts the scheduler, and begins accepting connections.
    pub fn start(cfg: ServerConfig, store: Option<Arc<Store>>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let scheduler =
            Arc::new(Scheduler::start(cfg.scheduler, store).map_err(std::io::Error::other)?);
        let stop = Arc::new(AtomicBool::new(false));

        let accept_thread = {
            let scheduler = Arc::clone(&scheduler);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("qaprox-serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        // Failpoint `serve.server.accept` (panic/sleep): the
                        // accept loop hiccuping; connections are dropped,
                        // never half-served.
                        qaprox_fault::fail_point!("serve.server.accept");
                        let Ok(stream) = conn else { continue };
                        let scheduler = Arc::clone(&scheduler);
                        let stop = Arc::clone(&stop);
                        // one thread per connection: clients are few (CLI,
                        // CI, benches) and connections are short-lived
                        let _ = std::thread::Builder::new()
                            .name("qaprox-serve-conn".into())
                            .spawn(move || handle_connection(stream, &scheduler, &stop));
                    }
                })?
        };

        Ok(Server {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            scheduler,
        })
    }

    /// The bound address (real port even when configured with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Direct access to the scheduler (in-process submission, stats).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// True once a client issued `shutdown` (the accept loop has stopped).
    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Blocks until a client issues `shutdown`.
    pub fn wait_for_shutdown(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting, shuts the scheduler down, and joins the threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // wake the blocked accept() with a throwaway connection
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn err_response(msg: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.into())),
    ])
}

fn handle_connection(stream: TcpStream, scheduler: &Scheduler, stop: &Arc<AtomicBool>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse(&line) {
            Ok(request) => handle_request(&request, scheduler, stop),
            Err(e) => err_response(&format!("bad request json: {e}")),
        };
        // Failpoint `serve.server.reply` (panic/sleep): a connection dying
        // between the state change and the reply — the client must cope
        // with a dropped connection after a possibly-applied request.
        qaprox_fault::fail_point!("serve.server.reply");
        let mut text = response.to_string();
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if stop.load(Ordering::Relaxed) {
            // wake the accept loop (blocked in accept()) so it observes the
            // stop flag; our local address IS the server's listening address
            if let Ok(addr) = writer.local_addr() {
                let _ = TcpStream::connect(addr);
            }
            break;
        }
    }
}

fn handle_request(request: &Json, scheduler: &Scheduler, stop: &Arc<AtomicBool>) -> Json {
    match request.get_str("op") {
        Some("synth") | Some("run") => {
            let spec = match JobSpec::from_json(request) {
                Ok(s) => s,
                Err(e) => return err_response(&e),
            };
            let key = match spec.key() {
                Ok(k) => k.hex(),
                Err(e) => return err_response(&e),
            };
            match scheduler.submit(spec) {
                Ok(Submitted::Accepted(id)) => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("id", Json::Num(id as f64)),
                    ("key", Json::Str(key)),
                    ("deduped", Json::Bool(false)),
                ]),
                Ok(Submitted::Deduped(id)) => Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("id", Json::Num(id as f64)),
                    ("key", Json::Str(key)),
                    ("deduped", Json::Bool(true)),
                ]),
                Ok(Submitted::Rejected) => Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str("queue full".into())),
                    ("backpressure", Json::Bool(true)),
                ]),
                Ok(Submitted::Overloaded { retry_after_ms }) => Json::obj(vec![
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str("overloaded".into())),
                    ("overloaded", Json::Bool(true)),
                    ("retry_after_ms", Json::Num(retry_after_ms as f64)),
                ]),
                Err(e) => err_response(&e),
            }
        }
        Some("status") => match request.get_u64("id").and_then(|id| scheduler.job(id)) {
            Some(view) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("id", Json::Num(view.id as f64)),
                ("state", Json::Str(view.state.name().into())),
            ]),
            None => err_response("unknown job id"),
        },
        Some("result") => match request.get_u64("id").and_then(|id| scheduler.job(id)) {
            Some(view) => {
                let mut fields = vec![
                    ("id".to_string(), Json::Num(view.id as f64)),
                    ("state".to_string(), Json::Str(view.state.name().into())),
                ];
                match view.result {
                    Some(payload) => {
                        fields.insert(0, ("ok".to_string(), Json::Bool(true)));
                        fields.push(("result".to_string(), payload));
                    }
                    None => {
                        fields.insert(0, ("ok".to_string(), Json::Bool(false)));
                        let why = match &view.state {
                            crate::scheduler::JobState::Failed(e) => e.clone(),
                            crate::scheduler::JobState::Quarantined(reason) => {
                                format!("job quarantined: {reason}")
                            }
                            s if s.is_terminal() => format!("job {}", s.name()),
                            _ => "not finished".to_string(),
                        };
                        fields.push(("error".to_string(), Json::Str(why)));
                    }
                }
                Json::Obj(fields)
            }
            None => err_response("unknown job id"),
        },
        Some("cancel") => match request.get_u64("id") {
            Some(id) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("cancelled", Json::Bool(scheduler.cancel(id))),
            ]),
            None => err_response("cancel needs an id"),
        },
        Some("stats") => {
            let mut fields = vec![("ok".to_string(), Json::Bool(true))];
            if let Json::Obj(rest) = scheduler.stats() {
                fields.extend(rest);
            }
            Json::Obj(fields)
        }
        Some("recover") => match scheduler.recovery_report() {
            Some(report) => {
                let mut fields = vec![("ok".to_string(), Json::Bool(true))];
                if let Json::Obj(rest) = report {
                    fields.extend(rest);
                }
                Json::Obj(fields)
            }
            None => err_response("server is running without a journal"),
        },
        Some("shutdown") => {
            stop.store(true, Ordering::Relaxed);
            Json::obj(vec![("ok", Json::Bool(true))])
        }
        Some(other) => err_response(&format!("unknown op '{other}'")),
        None => err_response("missing 'op' field"),
    }
}
