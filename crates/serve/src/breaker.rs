//! Per-backend circuit breakers.
//!
//! A backend that starts failing (an emulated device dropping jobs, a store
//! volume going bad) should not absorb every worker's full retry budget on
//! every job. Each backend fingerprint gets a breaker:
//!
//! * **closed** — calls pass through; outcomes land in a sliding window.
//!   When at least [`BreakerConfig::window`] outcomes are recorded and the
//!   failure count reaches [`BreakerConfig::failure_threshold`], the
//!   breaker opens.
//! * **open** — the next [`BreakerConfig::cooldown`] calls are rejected
//!   immediately with a transient error (cheap, no backend work), then the
//!   breaker moves to half-open.
//! * **half-open** — exactly one probe call passes through; success closes
//!   the breaker (window reset), failure re-opens it.
//!
//! Transitions count *calls*, not wall-clock time, so breaker behavior in
//! tests and chaos runs is deterministic under any scheduling.

use std::collections::{HashMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// Breaker tuning. One config applies to the whole process registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding-window length (outcomes).
    pub window: usize,
    /// Failures within the window that open the breaker.
    pub failure_threshold: usize,
    /// Rejected calls before an open breaker allows a half-open probe.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            failure_threshold: 4,
            cooldown: 3,
        }
    }
}

#[derive(Debug)]
enum BreakerState {
    Closed { recent: VecDeque<bool> },
    Open { rejected: u32 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
}

impl Breaker {
    fn new(cfg: BreakerConfig) -> Breaker {
        Breaker {
            cfg,
            state: BreakerState::Closed {
                recent: VecDeque::new(),
            },
        }
    }

    /// Returns an error when the call must be rejected; otherwise the caller
    /// may proceed (and must report the outcome via `record`).
    fn admit(&mut self, name: &str) -> Result<(), String> {
        match &mut self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => Ok(()),
            BreakerState::Open { rejected } => {
                if *rejected < self.cfg.cooldown {
                    *rejected += 1;
                    Err(format!(
                        "{} circuit open for {name} ({}/{} cooldown)",
                        qaprox_fault::TRANSIENT_PREFIX,
                        rejected,
                        self.cfg.cooldown
                    ))
                } else {
                    self.state = BreakerState::HalfOpen;
                    Ok(())
                }
            }
        }
    }

    fn record(&mut self, success: bool) {
        match &mut self.state {
            BreakerState::Closed { recent } => {
                recent.push_back(success);
                while recent.len() > self.cfg.window {
                    recent.pop_front();
                }
                let failures = recent.iter().filter(|ok| !**ok).count();
                if recent.len() >= self.cfg.window && failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open { rejected: 0 };
                }
            }
            BreakerState::HalfOpen => {
                self.state = if success {
                    BreakerState::Closed {
                        recent: VecDeque::new(),
                    }
                } else {
                    BreakerState::Open { rejected: 0 }
                };
            }
            BreakerState::Open { .. } => {} // late result of an earlier call
        }
    }

    fn state_name(&self) -> &'static str {
        match self.state {
            BreakerState::Closed { .. } => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

fn registry() -> &'static Mutex<HashMap<String, Breaker>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Breaker>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Runs `f` through the breaker registered for `name` (created closed on
/// first use with `cfg`). Open-state rejections carry the transient prefix
/// so the worker retry loop drives the cooldown toward the half-open probe.
pub fn call<T>(
    name: &str,
    cfg: &BreakerConfig,
    f: impl FnOnce() -> Result<T, String>,
) -> Result<T, String> {
    {
        let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
        let breaker = reg
            .entry(name.to_string())
            .or_insert_with(|| Breaker::new(cfg.clone()));
        breaker.admit(name)?;
    }
    // run without holding the registry lock: other backends stay live
    let out = f();
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(breaker) = reg.get_mut(name) {
        breaker.record(out.is_ok());
    }
    out
}

/// The named breaker's state (`closed` / `open` / `half-open`), or `closed`
/// when it has never been used.
pub fn state(name: &str) -> &'static str {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(name).map_or("closed", Breaker::state_name)
}

/// Every breaker the process has touched, as `(name, state)` pairs sorted
/// by name — what the `stats` wire op reports so operators can see which
/// backends are currently being rejected without probing each by name.
pub fn states_all() -> Vec<(String, &'static str)> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<(String, &'static str)> = reg
        .iter()
        .map(|(name, b)| (name.clone(), b.state_name()))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Drops every breaker (tests; the registry is process-global).
pub fn reset_all() {
    registry().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BreakerConfig {
        BreakerConfig {
            window: 4,
            failure_threshold: 2,
            cooldown: 2,
        }
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let name = "test.walk";
        reset_all();
        let cfg = tiny();
        let fail = || call::<()>(name, &cfg, || Err("boom".into()));
        let ok = || call(name, &cfg, || Ok(1u32));

        // under window: failures pass through while observations accumulate
        assert_eq!(fail().unwrap_err(), "boom");
        assert_eq!(ok().unwrap(), 1);
        assert_eq!(fail().unwrap_err(), "boom");
        assert_eq!(ok().unwrap(), 1);
        assert_eq!(state(name), "open", "2 failures in a window of 4");

        // open: cooldown calls reject fast with a transient message
        for _ in 0..2 {
            let err = ok().unwrap_err();
            assert!(qaprox_fault::is_transient(&err), "{err}");
            assert!(err.contains(name), "{err}");
        }
        // next call is the half-open probe; success closes the breaker
        assert_eq!(ok().unwrap(), 1);
        assert_eq!(state(name), "closed");

        // the window was reset: two fresh failures alone cannot re-open
        assert_eq!(fail().unwrap_err(), "boom");
        assert_eq!(fail().unwrap_err(), "boom");
        assert_eq!(state(name), "closed", "window not yet full after reset");
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let name = "test.reopen";
        reset_all();
        let cfg = tiny();
        for _ in 0..2 {
            let _ = call::<()>(name, &cfg, || Err("boom".into()));
            let _ = call(name, &cfg, || Ok(()));
        }
        assert_eq!(state(name), "open");
        for _ in 0..2 {
            let _ = call(name, &cfg, || Ok(()));
        }
        // probe fails → straight back to open, full cooldown again
        let err = call::<()>(name, &cfg, || Err("still down".into())).unwrap_err();
        assert_eq!(err, "still down");
        assert_eq!(state(name), "open");
        let err = call(name, &cfg, || Ok(())).unwrap_err();
        assert!(qaprox_fault::is_transient(&err), "{err}");
    }

    #[test]
    fn states_all_lists_touched_breakers_sorted() {
        reset_all();
        let cfg = tiny();
        let _ = call("test.b", &cfg, || Ok(()));
        for _ in 0..4 {
            let _ = call::<()>("test.a", &cfg, || Err("x".into()));
        }
        let states = states_all();
        assert_eq!(
            states,
            vec![
                ("test.a".to_string(), "open"),
                ("test.b".to_string(), "closed")
            ]
        );
    }

    #[test]
    fn breakers_are_isolated_per_name() {
        reset_all();
        let cfg = tiny();
        for _ in 0..4 {
            let _ = call::<()>("test.iso.bad", &cfg, || Err("x".into()));
        }
        assert_eq!(state("test.iso.bad"), "open");
        assert_eq!(state("test.iso.good"), "closed");
        assert_eq!(call("test.iso.good", &cfg, || Ok(7)).unwrap(), 7);
    }
}
