//! A small NDJSON client for the job service (used by `qaprox submit`, the
//! CI smoke test, and the throughput bench).

use crate::retry::RetryPolicy;
use crate::spec::JobSpec;
use qaprox_store::json::{parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What went wrong talking to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The queue stayed full through every retry; `attempts` submissions
    /// were made before giving up.
    Backpressure {
        /// Submission attempts made (≥ 1).
        attempts: u32,
    },
    /// Admission control turned the job away through every retry; the
    /// server's last backoff hint rides along.
    Overloaded {
        /// The server's `retry_after_ms` hint from the final rejection.
        retry_after_ms: u64,
    },
    /// A connect or read deadline lapsed (see [`Client::connect_timeout`]);
    /// distinct from [`ClientError::Protocol`] so callers can retry
    /// timeouts without string-matching.
    Timeout(String),
    /// The server rejected the request (bad spec, unknown job, ...).
    Remote(String),
    /// Transport or framing trouble (connection dropped, bad JSON).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Backpressure { attempts } => {
                write!(f, "queue full after {attempts} submission attempts")
            }
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms}ms")
            }
            ClientError::Timeout(e) => write!(f, "timeout: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
        }
    }
}

fn is_io_timeout(e: &std::io::Error) -> bool {
    // SO_RCVTIMEO expiry surfaces as WouldBlock on Unix, TimedOut elsewhere
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

impl std::error::Error for ClientError {}

/// A connected client. One request/response pair per call, in order.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    retry: RetryPolicy,
}

impl Client {
    /// Connects to a running service (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let read_half = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
            retry: RetryPolicy::default(),
        })
    }

    /// Connects with explicit connect and read deadlines, so a dead or
    /// unresponsive server surfaces as the typed [`ClientError::Timeout`]
    /// instead of an indefinite hang. The read deadline applies to every
    /// subsequent request on this client.
    pub fn connect_timeout(
        addr: &str,
        connect: Duration,
        read: Duration,
    ) -> Result<Client, ClientError> {
        let sock = addr
            .to_socket_addrs()
            .map_err(|e| ClientError::Protocol(format!("resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| ClientError::Protocol(format!("resolve {addr}: no addresses")))?;
        let stream = TcpStream::connect_timeout(&sock, connect).map_err(|e| {
            if is_io_timeout(&e) {
                ClientError::Timeout(format!("connect {addr}: no answer within {connect:?}"))
            } else {
                ClientError::Protocol(format!("connect {addr}: {e}"))
            }
        })?;
        stream
            .set_read_timeout(Some(read))
            .and_then(|()| stream.set_write_timeout(Some(read)))
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| ClientError::Protocol(e.to_string()))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer: stream,
            retry: RetryPolicy::default(),
        })
    }

    /// Replaces the backpressure retry policy (`max_attempts: 1` disables
    /// retrying entirely).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Client {
        self.retry = retry;
        self
    }

    /// Sends one request object and reads one response object.
    pub fn request(&mut self, request: &Json) -> Result<Json, String> {
        self.request_typed(request).map_err(|e| e.to_string())
    }

    /// [`Client::request`] with the typed error (timeouts distinguished).
    pub fn request_typed(&mut self, request: &Json) -> Result<Json, ClientError> {
        let mut text = request.to_string();
        text.push('\n');
        self.writer
            .write_all(text.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| {
                if is_io_timeout(&e) {
                    ClientError::Timeout(format!("send: {e}"))
                } else {
                    ClientError::Protocol(format!("send: {e}"))
                }
            })?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(|e| {
            if is_io_timeout(&e) {
                ClientError::Timeout("recv: no response within the read deadline".into())
            } else {
                ClientError::Protocol(format!("recv: {e}"))
            }
        })?;
        if n == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        parse(&line).map_err(|e| ClientError::Protocol(format!("bad response json: {e}")))
    }

    /// Submits a job; returns `(id, key, deduped)`. Backpressure rejections
    /// (`backpressure: true`) are retried through the client's
    /// [`RetryPolicy`]; when the queue stays full the typed
    /// [`ClientError::Backpressure`] reports how many attempts were made —
    /// callers no longer have to string-match `"queue full"`. Admission
    /// rejections (`overloaded: true`) retry the same way, honoring the
    /// server's `retry_after_ms` hint when it exceeds the policy's delay,
    /// and exhaust into the typed [`ClientError::Overloaded`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<(u64, String, bool), ClientError> {
        let policy = self.retry.clone();
        let max = policy.max_attempts.max(1);
        for attempt in 1..=max {
            let resp = self.request_typed(&spec.to_json())?;
            if resp.get_bool("ok") == Some(true) {
                return Ok((
                    resp.get_u64("id")
                        .ok_or_else(|| ClientError::Protocol("response missing id".into()))?,
                    resp.get_str("key").unwrap_or_default().to_string(),
                    resp.get_bool("deduped").unwrap_or(false),
                ));
            }
            if resp.get_bool("backpressure") == Some(true) {
                if attempt < max {
                    std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                    continue;
                }
                return Err(ClientError::Backpressure { attempts: attempt });
            }
            if resp.get_bool("overloaded") == Some(true) {
                let hint = resp.get_u64("retry_after_ms").unwrap_or(0);
                if attempt < max {
                    std::thread::sleep(Duration::from_millis(hint.max(policy.delay_ms(attempt))));
                    continue;
                }
                return Err(ClientError::Overloaded {
                    retry_after_ms: hint,
                });
            }
            return Err(ClientError::Remote(
                resp.get_str("error")
                    .unwrap_or("submission failed")
                    .to_string(),
            ));
        }
        Err(ClientError::Backpressure { attempts: max })
    }

    /// Current state name of a job.
    pub fn status(&mut self, id: u64) -> Result<String, String> {
        let resp = self.request(&Json::obj(vec![
            ("op", Json::Str("status".into())),
            ("id", Json::Num(id as f64)),
        ]))?;
        resp.get_str("state")
            .map(str::to_string)
            .ok_or_else(|| resp.get_str("error").unwrap_or("no state").to_string())
    }

    /// Fetches a finished job's payload (error if not finished).
    pub fn result(&mut self, id: u64) -> Result<Json, String> {
        let resp = self.request(&Json::obj(vec![
            ("op", Json::Str("result".into())),
            ("id", Json::Num(id as f64)),
        ]))?;
        if resp.get_bool("ok") == Some(true) {
            resp.get("result")
                .cloned()
                .ok_or_else(|| "response missing result".into())
        } else {
            Err(resp.get_str("error").unwrap_or("no result").to_string())
        }
    }

    /// Polls until the job finishes, then returns its payload. A `degraded`
    /// job has a payload too (with `"degraded": true`), so it is treated
    /// like `done`.
    pub fn wait_for_result(&mut self, id: u64, timeout: Duration) -> Result<Json, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let state = self.status(id)?;
            match state.as_str() {
                "done" | "degraded" => return self.result(id),
                "queued" | "running" => {
                    if Instant::now() >= deadline {
                        return Err(format!("timed out waiting for job {id} ({state})"));
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                other => return Err(format!("job {id} ended {other}")),
            }
        }
    }

    /// Requests job cancellation; true if the job was actually cancellable.
    pub fn cancel(&mut self, id: u64) -> Result<bool, String> {
        let resp = self.request(&Json::obj(vec![
            ("op", Json::Str("cancel".into())),
            ("id", Json::Num(id as f64)),
        ]))?;
        Ok(resp.get_bool("cancelled").unwrap_or(false))
    }

    /// Scheduler + store statistics.
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(&Json::obj(vec![("op", Json::Str("stats".into()))]))
    }

    /// What the server replayed from its journal at startup (`ok: false`
    /// when the server runs without a journal).
    pub fn recover(&mut self) -> Result<Json, String> {
        self.request(&Json::obj(vec![("op", Json::Str("recover".into()))]))
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        let resp = self.request(&Json::obj(vec![("op", Json::Str("shutdown".into()))]))?;
        if resp.get_bool("ok") == Some(true) {
            Ok(())
        } else {
            Err("shutdown rejected".into())
        }
    }
}
