//! Cache-first job execution.
//!
//! The execution layer sits between a [`JobSpec`] and the store:
//!
//! * **synth** — look up the population by key; on miss, recover any partial
//!   checkpoint and resume with the remaining node budget, streaming fresh
//!   checkpoints as synthesis rounds complete; persist the finished
//!   population (which clears the partial).
//! * **run** — look up the result by key; on miss, obtain the population
//!   (cache-first, as above), execute it on the spec's backend via the
//!   order-preserving [`Backend::probabilities_batch`], and persist the
//!   scored rows.
//!
//! Both paths honor an [`ExecCtl`]: cooperative cancellation, a deadline,
//! and a node budget (the scheduler's per-job timeout and the resume tests
//! both use the same suspension path). A suspended job leaves a checkpoint
//! behind and reports [`ExecResult::Suspended`].

use crate::breaker::BreakerConfig;
use crate::spec::{JobSpec, RunSpec, SynthSpec};
use qaprox::prelude::*;
use qaprox::{GenerateControl, ResumeMode};
use qaprox_linalg::Matrix;
use qaprox_store::json::Json;
use qaprox_store::key::Key;
use qaprox_store::{
    PartialCheckpoint, PopulationArtifact, ResultArtifact, ResultRow, Store, StoreError,
};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Execution control: all fields optional; default = run to completion.
#[derive(Clone, Default)]
pub struct ExecCtl {
    /// Cooperative cancel flag (the scheduler's per-job flag).
    pub cancel: Option<Arc<AtomicBool>>,
    /// Hard deadline; checked between synthesis rounds.
    pub deadline: Option<Instant>,
    /// Stop after this many *fresh* nodes (test seam for deterministic
    /// suspension; production jobs leave it `None`).
    pub node_budget: Option<usize>,
    /// Persist a partial checkpoint every this many fresh nodes (0 =
    /// only on suspension).
    pub checkpoint_every: usize,
    /// Called with the absolute node count whenever a partial checkpoint
    /// lands in the store (the scheduler journals it).
    pub on_checkpoint: Option<Arc<dyn Fn(usize) + Send + Sync>>,
    /// Circuit-breaker tuning for backend execution.
    pub breaker: BreakerConfig,
}

impl std::fmt::Debug for ExecCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecCtl")
            .field("cancel", &self.cancel)
            .field("deadline", &self.deadline)
            .field("node_budget", &self.node_budget)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("on_checkpoint", &self.on_checkpoint.is_some())
            .field("breaker", &self.breaker)
            .finish()
    }
}

impl ExecCtl {
    fn interrupted(&self, fresh_nodes: usize) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.node_budget.is_some_and(|b| fresh_nodes >= b)
    }

    /// The backend gate: checked immediately before (and after) backend
    /// execution, so a job cancelled or past its deadline consumes zero
    /// backend evaluations and never persists partial rows.
    fn backend_gate(&self) -> Result<(), String> {
        if self.interrupted(0) {
            Err(SUSPENDED_SENTINEL.into())
        } else {
            Ok(())
        }
    }
}

/// How a population was obtained.
#[derive(Debug, Clone)]
pub struct PopulationOutcome {
    /// The population's store key.
    pub key: Key,
    /// The (possibly partial) population.
    pub population: Population,
    /// True when the finished artifact came straight from the store.
    pub cached: bool,
    /// Node credit recovered from a partial checkpoint (0 = fresh run).
    pub resumed_from: usize,
    /// True when the run stopped early; a checkpoint was persisted.
    pub suspended: bool,
}

/// What executing a spec produced.
#[derive(Debug, Clone)]
pub enum ExecResult {
    /// The finished response payload.
    Done(Json),
    /// Stopped early by cancel/deadline/budget; resumable via the store.
    Suspended,
}

/// How a run result was obtained.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The result's store key (this spec's own key).
    pub key: Key,
    /// The scored result.
    pub result: ResultArtifact,
    /// True when the artifact came straight from the store under this
    /// spec's own key.
    pub cached: bool,
    /// Set when the certified fast path answered: the *source* result key
    /// and the certified equivalence bound that justified the reuse. No
    /// synthesis and no backend call happened.
    pub certified: Option<(Key, f64)>,
    /// The population outcome (absent on cache/certified hits).
    pub population: Option<PopulationOutcome>,
    /// Trajectory health summary, present only when the backend aborted
    /// shots (NaN / norm drift). Fully-aborted candidates are degraded to
    /// the worst score instead of emitting corrupt rows.
    pub health: Option<Json>,
}

fn ignore_corruption<T>(r: Result<Option<T>, StoreError>) -> Result<Option<T>, String> {
    match r {
        Ok(v) => Ok(v),
        // the store already evicted the corrupt artifact; treat as a miss
        Err(StoreError::Corrupt(_)) => Ok(None),
        Err(e) => Err(e.to_string()),
    }
}

/// Obtains the population for `spec`, cache-first, resuming any partial.
pub fn obtain_population(
    store: Option<&Store>,
    spec: &SynthSpec,
    ctl: &ExecCtl,
) -> Result<PopulationOutcome, String> {
    let reference = spec.reference_circuit()?;
    let target = Workflow::target_unitary(&reference);
    let key = qaprox_store::key::population_key(&target, &spec.fingerprint(), spec.seed);

    if let Some(store) = store {
        if let Some(art) = ignore_corruption(store.get_population(&key))? {
            return Ok(PopulationOutcome {
                key,
                population: Population {
                    circuits: art.circuits,
                    minimal_hs: art.minimal_hs,
                    explored: art.explored,
                    // artifacts predate memo counters; a cache hit ran no
                    // synthesis, so zeroed stats are also the truth
                    stats: Default::default(),
                },
                cached: true,
                resumed_from: 0,
                suspended: false,
            });
        }
    }

    let partial = match store {
        Some(store) => ignore_corruption(store.get_partial(&key))?,
        None => None,
    };
    let (prior, credit) = match partial {
        Some(p) => (p.circuits, p.nodes_done),
        None => (Vec::new(), 0),
    };

    // Replay resume: the run keeps its full budget and original seed, warms
    // the memo from the prior checkpoint, and streams FULL absolute
    // snapshots — so a resumed run is bit-identical to an uninterrupted one
    // and checkpoints never need prior-merging. `latest` tracks the newest
    // snapshot so suspension can persist rounds the throttle skipped.
    let latest: RefCell<Option<(usize, Vec<ApproxCircuit>)>> = RefCell::new(None);
    let last_persisted = RefCell::new(credit);
    let generation = {
        let checkpoint = |nodes: usize, stream: &[ApproxCircuit]| {
            *latest.borrow_mut() = Some((nodes, stream.to_vec()));
            if let Some(store) = store {
                // saturating: under replay the absolute count starts below
                // the recovered credit, and a shorter prefix must never
                // overwrite a longer checkpoint
                let due = ctl.checkpoint_every > 0
                    && nodes.saturating_sub(*last_persisted.borrow()) >= ctl.checkpoint_every;
                if due {
                    let part = PartialCheckpoint {
                        circuits: stream.to_vec(),
                        nodes_done: nodes,
                    };
                    if store.put_partial(&key, &part).is_ok() {
                        *last_persisted.borrow_mut() = nodes;
                        if let Some(hook) = &ctl.on_checkpoint {
                            hook(nodes);
                        }
                    }
                }
            }
        };
        let cancel = || {
            let fresh = latest
                .borrow()
                .as_ref()
                .map_or(0, |(n, _)| n.saturating_sub(credit));
            ctl.interrupted(fresh)
        };
        spec.workflow().generate_with(
            &target,
            GenerateControl {
                prior,
                nodes_credit: credit,
                resume: ResumeMode::Replay,
                cancel: Some(Box::new(cancel)),
                checkpoint: Some(Box::new(checkpoint)),
            },
        )
    };

    if generation.completed {
        if let Some(store) = store {
            let art = PopulationArtifact {
                circuits: generation.population.circuits.clone(),
                minimal_hs: generation.population.minimal_hs.clone(),
                explored: generation.population.explored,
            };
            // tagged by target so graceful degradation can find sibling
            // populations (other configs/seeds, same unitary)
            store
                .put_population_tagged(&key, &art, Some(&qaprox_store::key::target_tag(&target)))
                .map_err(|e| e.to_string())?;
        }
    } else if let Some(store) = store {
        // persist the final snapshot so the next attempt resumes from here
        if let Some((nodes, stream)) = latest.into_inner() {
            if nodes > *last_persisted.borrow() {
                let part = PartialCheckpoint {
                    circuits: stream,
                    nodes_done: nodes,
                };
                store.put_partial(&key, &part).map_err(|e| e.to_string())?;
            }
        }
    }

    Ok(PopulationOutcome {
        key,
        suspended: !generation.completed,
        cached: false,
        resumed_from: credit,
        population: generation.population,
    })
}

/// Scans the store for a result whose reference circuit is provably
/// ε-equivalent to this spec's under its calibration. Returns the source
/// key, the artifact, and the certified bound. Pure static analysis —
/// no synthesis, no simulation.
fn certified_lookup(
    store: &Store,
    spec: &RunSpec,
    epsilon: f64,
) -> Result<Option<(Key, ResultArtifact, f64)>, String> {
    let reference = spec.reference_circuit()?;
    let cal = spec.calibration()?;
    let opts = qaprox_verify::EquivOptions {
        epsilon,
        ..Default::default()
    };
    for source in store.results_tagged(&spec.equiv_tag()) {
        let Some(res) = ignore_corruption(store.get_result(&source))? else {
            continue;
        };
        let Some(qasm) = &res.reference_qasm else {
            continue;
        };
        let Ok(stored_ref) = qaprox_circuit::from_qasm(qasm) else {
            continue;
        };
        if stored_ref.num_qubits() != reference.num_qubits() {
            continue;
        }
        let report = qaprox_verify::check_equivalence(&reference, &stored_ref, &cal, &opts);
        if report.certified() {
            return Ok(Some((source, res, report.bound)));
        }
    }
    Ok(None)
}

/// Obtains the scored result for `spec`, cache-first.
///
/// With [`RunSpec::epsilon`] set, two QA5xx layers kick in before any
/// expensive work:
///
/// 1. **certified fast path** — on a key miss, any stored result in the
///    same [`RunSpec::equiv_tag`] class whose reference is *provably*
///    ε-equivalent under this calibration is returned as-is (and re-filed
///    under this spec's key), skipping synthesis and the backend entirely;
/// 2. **bound-first scoring** — when the run does execute, candidates the
///    checker certifies against the reference get a static upper-bound
///    score (`ref_score + bound`, rows marked `certified`) and only the
///    undecided band goes to the density-matrix backend.
pub fn obtain_run(
    store: Option<&Store>,
    spec: &RunSpec,
    ctl: &ExecCtl,
) -> Result<RunOutcome, String> {
    let key = spec.result_key()?;
    if let Some(store) = store {
        if let Some(res) = ignore_corruption(store.get_result(&key))? {
            return Ok(RunOutcome {
                key,
                result: res,
                cached: true,
                certified: None,
                population: None,
                health: None,
            });
        }
        // the certified fast path needs dense-unitary equivalence checking,
        // which wide widths cannot afford; wide runs rely on plain key hits
        if let Some(eps) = spec.epsilon.filter(|_| !spec.is_wide()) {
            if let Some((source, res, bound)) = certified_lookup(store, spec, eps)? {
                // re-file under this spec's key (keeping the source's
                // reference so future equivalence checks stay grounded in
                // the circuit the rows were actually scored against): the
                // next identical submission is a plain cache hit
                store
                    .put_result_tagged(&key, &res, Some(&spec.equiv_tag()))
                    .map_err(|e| e.to_string())?;
                return Ok(RunOutcome {
                    key,
                    result: res,
                    cached: false,
                    certified: Some((source, bound)),
                    population: None,
                    health: None,
                });
            }
        }
    }

    if spec.is_wide() {
        return obtain_run_wide(store, spec, key, ctl);
    }

    let pop = obtain_population(store, &spec.synth, ctl)?;
    if pop.suspended {
        return Err(SUSPENDED_SENTINEL.into());
    }
    if pop.population.circuits.is_empty() {
        return Err("selection kept no circuits; raise max_hs or max_cnots".into());
    }

    let reference = spec.reference_circuit()?;
    let mut backend = spec.backend()?;
    if let Some(flag) = &ctl.cancel {
        // the scheduler's cancel flag (and the watchdog's) reaches the
        // trajectory shot loop: a condemned job stops at the next shot
        backend = backend.with_cancel(Arc::clone(flag));
    }
    let cal = spec.calibration()?;

    // static pre-rank: order candidates by the O(gates) noise-budget score
    // (best first) before any O(4^n) density-matrix work, so rows come out
    // in the analyzer's preference order and consumers can truncate cheaply
    let ranked = qaprox_synth::rank_by_predicted(&pop.population.circuits, &cal);

    // ε-aware runs try to discharge each candidate statically first; the
    // bound (when it certifies) replaces the simulated score outright
    let bounds: Vec<Option<f64>> = match spec.epsilon {
        None => vec![None; ranked.len()],
        Some(eps) => {
            let opts = qaprox_verify::EquivOptions {
                epsilon: eps,
                ..Default::default()
            };
            ranked
                .iter()
                .map(|(ap, _)| {
                    let report =
                        qaprox_verify::check_equivalence(&ap.circuit, &reference, &cal, &opts);
                    report.certified().then_some(report.bound)
                })
                .collect()
        }
    };
    let undecided: Vec<Circuit> = ranked
        .iter()
        .zip(&bounds)
        .filter(|(_, b)| b.is_none())
        .map(|((ap, _), _)| ap.circuit.clone())
        .collect();

    // a cancelled or deadline-expired job must consume ZERO backend
    // evaluations — the gate sits before the failpoint that counts them
    ctl.backend_gate()?;
    // Failpoint `serve.backend`: evaluated once per job that reaches the
    // backend, so tests can count invocations (a certified answer must
    // leave the counter untouched); `error` injects a backend outage.
    qaprox_fault::fail_point!("serve.backend", |_action| {
        Err(qaprox_fault::injected_error("serve.backend"))
    });

    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let ref_probs = backend.probabilities(&reference, spec.job_seed);
    let ref_score = qaprox_metrics::total_variation(&ref_probs, &ideal);
    // backend execution goes through the per-backend circuit breaker: a
    // backend that keeps failing rejects fast instead of absorbing every
    // worker's full retry budget
    let (probs, healths) = crate::breaker::call(&spec.backend_fingerprint(), &ctl.breaker, || {
        backend.probabilities_batch_health(&undecided)
    })?;
    // interrupted mid-execution (watchdog cancel, deadline): suspend
    // without persisting rows averaged over a truncated shot loop
    ctl.backend_gate()?;
    let mut simulated = probs.iter().zip(&healths);
    let rows: Vec<ResultRow> = ranked
        .iter()
        .zip(&bounds)
        .map(|((ap, predicted), bound)| {
            let (score, certified) = match bound {
                // `score` is TV-to-ideal, 1-Lipschitz in the output
                // distribution, so the certified bound caps how far the
                // candidate's score can sit above the reference's
                Some(b) => ((ref_score + b).min(1.0), true),
                None => {
                    let (p, h) = simulated.next().expect("one batch row per undecided");
                    if degraded_candidate(h) {
                        // every shot aborted (NaN / norm drift): degrade to
                        // the worst score instead of emitting a corrupt row
                        (1.0, false)
                    } else {
                        (qaprox_metrics::total_variation(p, &ideal), false)
                    }
                }
            };
            ResultRow {
                cnots: ap.cnots,
                hs_distance: ap.hs_distance,
                predicted: *predicted,
                score,
                certified,
            }
        })
        .collect();

    let result = ResultArtifact {
        ref_score,
        rows,
        // the reference rides along only on ε-aware runs: it is what makes
        // this artifact reusable by the certified fast path later
        reference_qasm: spec
            .epsilon
            .map(|_| qaprox_circuit::qasm::to_qasm(&reference)),
    };
    if let Some(store) = store {
        let tag = spec.epsilon.map(|_| spec.equiv_tag());
        store
            .put_result_tagged(&key, &result, tag.as_deref())
            .map_err(|e| e.to_string())?;
    }
    Ok(RunOutcome {
        key,
        result,
        cached: false,
        certified: None,
        population: Some(pop),
        health: health_summary(&healths),
    })
}

/// The wide-run path (`qubits > MAX_SYNTH_QUBITS`, trajectory backend).
///
/// No synthesis happens here — QSearch needs the dense target unitary,
/// which does not fit at 27+ qubits. Instead the candidate set is the same
/// TFIM evolution Trotterized with every shallower step count (the paper's
/// depth/accuracy trade-off in its rawest form), pre-ranked by the same
/// O(gates) analyzer, and scored on the trajectory backend against the
/// ideal statevector. The batch call below lands on the executor's
/// shot-batched trajectory fast path ([`qaprox_sim::TrajectoryBatch`]): all
/// candidates advance through the shot loop together with one shared state
/// reset per shot, bit-identical to scoring them one at a time. Results
/// cache under the spec's own key exactly like narrow runs.
fn obtain_run_wide(
    store: Option<&Store>,
    spec: &RunSpec,
    key: Key,
    ctl: &ExecCtl,
) -> Result<RunOutcome, String> {
    let reference = spec.reference_circuit()?;
    let mut backend = spec.backend()?;
    if let Some(flag) = &ctl.cancel {
        backend = backend.with_cancel(Arc::clone(flag));
    }
    let cal = spec.calibration()?;
    let candidates = spec.synth.wide_population_circuits()?;
    let ranked = qaprox_synth::rank_by_predicted(&candidates, &cal);
    let batch: Vec<Circuit> = ranked.iter().map(|(ap, _)| ap.circuit.clone()).collect();

    // same gate, same placement as the narrow path: a cancelled or expired
    // job reaches neither the counting failpoint nor the backend
    ctl.backend_gate()?;
    // same failpoint, same placement as the narrow path: evaluated once per
    // job that reaches the backend, so chaos tests can count trajectory jobs
    qaprox_fault::fail_point!("serve.backend", |_action| {
        Err(qaprox_fault::injected_error("serve.backend"))
    });

    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let ref_probs = backend.probabilities(&reference, spec.job_seed);
    let ref_score = qaprox_metrics::total_variation(&ref_probs, &ideal);
    let (probs, healths) = crate::breaker::call(&spec.backend_fingerprint(), &ctl.breaker, || {
        backend.probabilities_batch_health(&batch)
    })?;
    ctl.backend_gate()?;
    let rows: Vec<ResultRow> = ranked
        .iter()
        .zip(probs.iter().zip(&healths))
        .map(|((ap, predicted), (p, h))| ResultRow {
            cnots: ap.cnots,
            hs_distance: ap.hs_distance,
            predicted: *predicted,
            score: if degraded_candidate(h) {
                1.0
            } else {
                qaprox_metrics::total_variation(p, &ideal)
            },
            certified: false,
        })
        .collect();

    let result = ResultArtifact {
        ref_score,
        rows,
        // no certified fast path at wide widths, so no reference rides along
        reference_qasm: None,
    };
    if let Some(store) = store {
        store
            .put_result_tagged(&key, &result, None)
            .map_err(|e| e.to_string())?;
    }
    Ok(RunOutcome {
        key,
        result,
        cached: false,
        certified: None,
        population: None,
        health: health_summary(&healths),
    })
}

// An error-channel marker for "the synthesis stage suspended" inside
// obtain_run, folded back into ExecResult::Suspended by run_spec.
const SUSPENDED_SENTINEL: &str = "__qaprox_serve_suspended__";

/// A candidate whose every shot aborted has no usable probability row.
fn degraded_candidate(h: &qaprox_sim::HealthReport) -> bool {
    h.clean_shots == 0 && h.aborted_shots > 0
}

/// Folds per-candidate trajectory health into a payload-ready summary.
/// `None` when every shot was clean, so healthy runs' payloads stay
/// bit-identical to pre-sentinel builds.
fn health_summary(healths: &[qaprox_sim::HealthReport]) -> Option<Json> {
    let mut total = qaprox_sim::HealthReport::default();
    for h in healths {
        total.merge(h);
    }
    if total.aborted_shots == 0 && !total.cancelled {
        return None;
    }
    let degraded = healths.iter().filter(|h| degraded_candidate(h)).count();
    Some(Json::obj(vec![
        ("clean_shots", Json::Num(total.clean_shots as f64)),
        ("aborted_shots", Json::Num(total.aborted_shots as f64)),
        ("nan_events", Json::Num(total.nan_events as f64)),
        (
            "norm_drift_events",
            Json::Num(total.norm_drift_events as f64),
        ),
        ("degraded_candidates", Json::Num(degraded as f64)),
    ]))
}

fn population_payload(pop: &PopulationOutcome) -> Json {
    let circuits: Vec<Json> = pop
        .population
        .circuits
        .iter()
        .map(|ap| {
            Json::obj(vec![
                ("cnots", Json::Num(ap.cnots as f64)),
                ("hs_distance", Json::Num(ap.hs_distance)),
                ("gates", Json::Num(ap.circuit.len() as f64)),
                ("depth", Json::Num(ap.circuit.depth() as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("kind", Json::Str("synth".into())),
        ("key", Json::Str(pop.key.hex())),
        ("cached", Json::Bool(pop.cached)),
        ("resumed_from", Json::Num(pop.resumed_from as f64)),
        ("explored", Json::Num(pop.population.explored as f64)),
        (
            "minimal_hs",
            Json::Num(pop.population.minimal_hs.hs_distance),
        ),
        (
            "minimal_cnots",
            Json::Num(pop.population.minimal_hs.cnots as f64),
        ),
        ("circuits", Json::Arr(circuits)),
    ])
}

/// Executes one spec end to end, returning the response payload.
pub fn run_spec(
    store: Option<&Store>,
    spec: &JobSpec,
    ctl: &ExecCtl,
) -> Result<ExecResult, String> {
    match spec {
        JobSpec::Synth(s) => {
            let pop = obtain_population(store, s, ctl)?;
            if pop.suspended {
                return Ok(ExecResult::Suspended);
            }
            Ok(ExecResult::Done(population_payload(&pop)))
        }
        JobSpec::Run(r) => match obtain_run(store, r, ctl) {
            Ok(out) => {
                let result = &out.result;
                let rows: Vec<Json> = result
                    .rows
                    .iter()
                    .map(|row| {
                        let mut cells = vec![
                            Json::Num(row.cnots as f64),
                            Json::Num(row.hs_distance),
                            Json::Num(row.predicted),
                            Json::Num(row.score),
                        ];
                        if row.certified {
                            cells.push(Json::Bool(true));
                        }
                        Json::Arr(cells)
                    })
                    .collect();
                let wins = result
                    .rows
                    .iter()
                    .filter(|row| row.score < result.ref_score)
                    .count();
                // the reference circuit's static analysis rides along with
                // every run result (cached ones included — it's O(gates))
                let analysis_report = qaprox_verify::analyze(
                    &r.reference_circuit()?,
                    &r.calibration()?,
                    &Default::default(),
                );
                let analysis = qaprox_store::json::parse(&analysis_report.to_json())
                    .map_err(|e| e.to_string())?;
                let mut fields = vec![
                    ("kind".to_string(), Json::Str("run".into())),
                    ("key".to_string(), Json::Str(out.key.hex())),
                    ("cached".to_string(), Json::Bool(out.cached)),
                    (
                        "population_cached".to_string(),
                        Json::Bool(out.population.as_ref().is_some_and(|p| p.cached)),
                    ),
                    ("certified".to_string(), Json::Bool(out.certified.is_some())),
                ];
                if let Some((source, bound)) = &out.certified {
                    fields.push(("certified_from".to_string(), Json::Str(source.hex())));
                    fields.push(("equiv_bound".to_string(), Json::Num(*bound)));
                }
                if let Some(health) = &out.health {
                    fields.push(("health".to_string(), health.clone()));
                }
                fields.extend([
                    ("ref_score".to_string(), Json::Num(result.ref_score)),
                    ("wins".to_string(), Json::Num(wins as f64)),
                    ("analysis".to_string(), analysis),
                    ("rows".to_string(), Json::Arr(rows)),
                ]);
                Ok(ExecResult::Done(Json::Obj(fields)))
            }
            Err(e) if e == SUSPENDED_SENTINEL => Ok(ExecResult::Suspended),
            Err(e) => Err(e),
        },
    }
}

/// The best (lowest minimal HS distance) decodable population stored for
/// this target under ANY synthesis config/seed (see `Store::populations_tagged`).
fn best_tagged_population(store: &Store, target: &Matrix) -> Option<(Key, PopulationArtifact)> {
    let tag = qaprox_store::key::target_tag(target);
    let mut best: Option<(Key, PopulationArtifact)> = None;
    for key in store.populations_tagged(&tag) {
        if let Ok(Some(art)) = ignore_corruption(store.get_population(&key)) {
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| art.minimal_hs.hs_distance < b.minimal_hs.hs_distance);
            if better {
                best = Some((key, art));
            }
        }
    }
    best
}

fn push_degraded_fields(payload: Json, degraded_from: Option<String>, error: &str) -> Json {
    let Json::Obj(mut fields) = payload else {
        return payload;
    };
    fields.push(("degraded".to_string(), Json::Bool(true)));
    if let Some(key) = degraded_from {
        fields.push(("degraded_from".to_string(), Json::Str(key)));
    }
    fields.push(("error".to_string(), Json::Str(error.to_string())));
    Json::Obj(fields)
}

/// The graceful-degradation fallback, built when a job exhausts its retry
/// budget on transient faults. Best-effort, never an error:
///
/// * **synth** — the best store-cached population for the *same target*
///   under any config/seed (`degraded_from` names its key);
/// * **run** — the static `analyze` noise-budget prediction, plus
///   predicted-only rows when a fallback population exists.
///
/// `None` means nothing useful is available (no store, no sibling
/// population) and the job should fail outright.
pub fn degraded_payload(store: Option<&Store>, spec: &JobSpec, error: &str) -> Option<Json> {
    match spec {
        JobSpec::Synth(s) => {
            let store = store?;
            let reference = s.reference_circuit().ok()?;
            let target = Workflow::target_unitary(&reference);
            let (source, art) = best_tagged_population(store, &target)?;
            let pop = PopulationOutcome {
                key: source,
                population: Population {
                    circuits: art.circuits,
                    minimal_hs: art.minimal_hs,
                    explored: art.explored,
                    stats: Default::default(),
                },
                cached: true,
                resumed_from: 0,
                suspended: false,
            };
            Some(push_degraded_fields(
                population_payload(&pop),
                Some(source.hex()),
                error,
            ))
        }
        JobSpec::Run(r) => {
            let reference = r.reference_circuit().ok()?;
            let cal = r.calibration().ok()?;
            let report = qaprox_verify::analyze(&reference, &cal, &Default::default());
            let analysis = qaprox_store::json::parse(&report.to_json()).ok()?;
            // never form the target unitary at wide widths: the degraded
            // answer there is the O(gates) prediction, standing alone
            let fallback = if r.is_wide() {
                None
            } else {
                let target = Workflow::target_unitary(&reference);
                store.and_then(|s| best_tagged_population(s, &target))
            };
            let mut degraded_from = None;
            let rows: Vec<Json> = match &fallback {
                Some((source, art)) => {
                    degraded_from = Some(source.hex());
                    qaprox_synth::rank_by_predicted(&art.circuits, &cal)
                        .iter()
                        .map(|(ap, predicted)| {
                            Json::Arr(vec![
                                Json::Num(ap.cnots as f64),
                                Json::Num(ap.hs_distance),
                                Json::Num(*predicted),
                            ])
                        })
                        .collect()
                }
                None => Vec::new(),
            };
            Some(push_degraded_fields(
                Json::obj(vec![
                    ("kind", Json::Str("run".into())),
                    ("predicted_only", Json::Bool(true)),
                    ("analysis", analysis),
                    ("rows", Json::Arr(rows)),
                ]),
                degraded_from,
                error,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> Store {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("qaprox-serve-exec-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn tiny_synth(seed: u64) -> SynthSpec {
        SynthSpec {
            workload: "tfim".into(),
            qubits: 2,
            steps: 2,
            max_cnots: 3,
            max_nodes: 25,
            max_hs: 0.4,
            seed,
            deadline_ms: None,
        }
    }

    #[test]
    fn identical_resubmit_hits_the_store_with_no_new_synthesis() {
        let store = tmp_store("hit");
        let spec = tiny_synth(0);
        let first = obtain_population(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(!first.cached && !first.suspended);

        let second = obtain_population(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(second.cached, "resubmit must come from the store");
        // no new synthesis nodes: explored is identical, not incremented
        assert_eq!(second.population.explored, first.population.explored);
        assert_eq!(
            second.population.circuits.len(),
            first.population.circuits.len()
        );
        let stats = store.stats();
        assert!(stats.hits >= 1, "stats must record the hit: {stats:?}");
        assert!(stats.puts >= 1);
    }

    #[test]
    fn suspended_synthesis_resumes_from_the_checkpoint() {
        let store = tmp_store("resume");
        let spec = tiny_synth(1);

        // force suspension after a handful of fresh nodes
        let ctl = ExecCtl {
            node_budget: Some(4),
            checkpoint_every: 1,
            ..Default::default()
        };
        let first = obtain_population(Some(&store), &spec, &ctl).unwrap();
        assert!(first.suspended, "budget must suspend the run");
        assert!(!first.cached);
        let key = first.key;
        let part = store
            .get_partial(&key)
            .unwrap()
            .expect("checkpoint persisted");
        assert!(part.nodes_done >= 4);
        assert!(!part.circuits.is_empty());

        // the resumed run picks up the credit and completes
        let second = obtain_population(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(!second.suspended && !second.cached);
        assert_eq!(second.resumed_from, part.nodes_done);
        assert!(
            second.population.explored <= spec.max_nodes + 4,
            "credit bounds total work: {}",
            second.population.explored
        );
        // completion clears the checkpoint and persists the population
        assert!(store.get_partial(&key).unwrap().is_none());
        let third = obtain_population(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(third.cached);
    }

    #[test]
    fn run_results_cache_and_report_reference_score() {
        let store = tmp_store("run");
        let spec = RunSpec {
            synth: tiny_synth(2),
            device: "ourense".into(),
            cx_error: Some(0.1),
            ..Default::default()
        };
        let out = obtain_run(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(!out.cached);
        assert!(out.population.is_some());
        assert!(out.result.ref_score > 0.0, "noise must cost the reference");
        assert!(!out.result.rows.is_empty());
        // without epsilon nothing is certified and no reference is stored
        assert!(out.certified.is_none());
        assert!(out.result.reference_qasm.is_none());
        assert!(out.result.rows.iter().all(|r| !r.certified));

        let second = obtain_run(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(second.cached, "second run must hit the result cache");
        assert!(
            second.population.is_none(),
            "a result hit skips synthesis entirely"
        );
        assert_eq!(second.key, out.key);
        assert_eq!(second.result.rows, out.result.rows);
    }

    #[test]
    fn run_rows_come_out_pre_ranked_by_predicted_score() {
        let spec = RunSpec {
            synth: tiny_synth(5),
            device: "ourense".into(),
            cx_error: Some(0.08),
            ..Default::default()
        };
        let result = obtain_run(None, &spec, &ExecCtl::default()).unwrap().result;
        assert!(
            result
                .rows
                .windows(2)
                .all(|w| w[0].predicted >= w[1].predicted),
            "rows must be sorted by predicted score desc: {:?}",
            result.rows.iter().map(|r| r.predicted).collect::<Vec<_>>()
        );
        assert!(result
            .rows
            .iter()
            .all(|r| r.predicted > 0.0 && r.predicted <= 1.0));
    }

    #[test]
    fn wide_trajectory_run_skips_synthesis_and_scores_truncations() {
        let store = tmp_store("wide");
        let spec = RunSpec {
            synth: SynthSpec {
                workload: "tfim".into(),
                qubits: 8, // past MAX_SYNTH_QUBITS, still cheap to simulate
                steps: 3,
                ..Default::default()
            },
            device: "toronto".into(),
            backend: Some("trajectory".into()),
            shots: Some(32),
            ..Default::default()
        };
        let out = obtain_run(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(!out.cached);
        assert!(out.population.is_none(), "wide runs never synthesize");
        assert_eq!(out.result.rows.len(), 2, "steps 1 and 2 truncations");
        assert!(out
            .result
            .rows
            .iter()
            .all(|r| r.hs_distance == 0.0 && !r.certified));
        assert!(out.result.ref_score > 0.0, "noise must cost the reference");
        assert!(
            out.result
                .rows
                .windows(2)
                .all(|w| w[0].predicted >= w[1].predicted),
            "wide rows come out pre-ranked like narrow ones"
        );

        let second = obtain_run(Some(&store), &spec, &ExecCtl::default()).unwrap();
        assert!(second.cached, "wide results cache under the spec key");
        assert_eq!(second.result.rows, out.result.rows);

        // the same spec runs end to end through the service entry point
        match run_spec(None, &JobSpec::Run(spec), &ExecCtl::default()).unwrap() {
            ExecResult::Done(payload) => {
                assert_eq!(payload.get_str("kind"), Some("run"));
                assert!(payload.get("analysis").is_some());
            }
            ExecResult::Suspended => panic!("nothing suspends a wide run"),
        }
    }

    #[test]
    fn storeless_execution_still_works() {
        let spec = JobSpec::Synth(tiny_synth(3));
        match run_spec(None, &spec, &ExecCtl::default()).unwrap() {
            ExecResult::Done(payload) => {
                assert_eq!(payload.get_str("kind"), Some("synth"));
                assert_eq!(payload.get_bool("cached"), Some(false));
                assert!(payload.get("circuits").is_some());
            }
            ExecResult::Suspended => panic!("nothing to suspend a storeless run"),
        }
    }

    #[test]
    fn cancelled_job_reports_suspension() {
        let store = tmp_store("cancel");
        let flag = Arc::new(AtomicBool::new(true)); // cancelled before it starts
        let ctl = ExecCtl {
            cancel: Some(flag),
            ..Default::default()
        };
        let spec = JobSpec::Synth(tiny_synth(4));
        match run_spec(Some(&store), &spec, &ctl).unwrap() {
            ExecResult::Suspended => {}
            ExecResult::Done(_) => panic!("pre-cancelled job must suspend"),
        }
    }
}
