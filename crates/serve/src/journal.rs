//! The durable job journal: an append-only NDJSON write-ahead log.
//!
//! Every job-lifecycle transition the scheduler wants to survive a process
//! death is appended as one line:
//!
//! ```text
//! {"crc":"<hash128 hex of payload>","payload":"<record JSON as a string>"}
//! ```
//!
//! Records are JSON objects with an `event` field — `submit` (carries the
//! full spec), `start`, `checkpoint` (synthesis progress marker), and the
//! terminal events `done` / `degraded` (carry the payload), `failed`,
//! `cancelled`, `timed-out`. On restart [`replay`] returns every intact
//! record in order; the scheduler rebuilds its job table from them and
//! re-enqueues whatever never reached a terminal state (see
//! `Scheduler::start`).
//!
//! Durability properties:
//!
//! * **checksummed lines** — a record is only replayed when its payload
//!   hashes to the recorded `crc`, so a line torn by a crash mid-append is
//!   detected, not misparsed;
//! * **truncated-tail tolerance** — replay stops at the first damaged line
//!   and reports how many lines it skipped; everything before the tear is
//!   kept (append-only means damage can only be a tail);
//! * **atomic rotation** — segments are named `seg-NNNNNN.ndjson`; when the
//!   active segment exceeds [`SEGMENT_CAP`] records the scheduler rewrites
//!   the live-job snapshot into the next segment via tmp + rename and
//!   deletes the older ones, so the journal's size is bounded by live state,
//!   not by history.

use qaprox_linalg::hashing::hash128_hex;
use qaprox_store::json::{parse, Json};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Records per segment before the scheduler compacts (see module docs).
pub const SEGMENT_CAP: usize = 512;

fn segment_name(index: u64) -> String {
    format!("seg-{index:06}.ndjson")
}

/// Sorted indexes of the segments present in `dir`.
fn segment_indexes(dir: &Path) -> Result<Vec<u64>, String> {
    let mut found = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(found),
        Err(e) => return Err(format!("journal dir {}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".ndjson"))
        {
            if let Ok(index) = num.parse::<u64>() {
                found.push(index);
            }
        }
    }
    found.sort_unstable();
    Ok(found)
}

fn encode_line(record: &Json) -> String {
    let payload = record.to_string();
    let line = Json::obj(vec![
        ("crc", Json::Str(hash128_hex(payload.as_bytes()))),
        ("payload", Json::Str(payload)),
    ]);
    let mut text = line.to_string();
    text.push('\n');
    text
}

fn decode_line(line: &str) -> Option<Json> {
    let envelope = parse(line).ok()?;
    let crc = envelope.get_str("crc")?;
    let payload = envelope.get_str("payload")?;
    if crc != hash128_hex(payload.as_bytes()) {
        return None;
    }
    parse(payload).ok()
}

struct Active {
    seg: u64,
    file: std::fs::File,
    records: usize,
}

/// An open journal (the writing side; [`replay`] is a free function so
/// recovery can read a directory before any writer exists).
pub struct Journal {
    dir: PathBuf,
    active: Mutex<Active>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("dir", &self.dir).finish()
    }
}

impl Journal {
    /// Opens (creating if needed) the journal in `dir`, continuing the
    /// highest existing segment.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Journal, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| format!("journal dir: {e}"))?;
        let seg = segment_indexes(&dir)?.last().copied().unwrap_or(0);
        let path = dir.join(segment_name(seg));
        // count intact records so the rotation cadence survives a reopen
        let records = match std::fs::read_to_string(&path) {
            Ok(text) => text.lines().filter(|l| decode_line(l).is_some()).count(),
            Err(_) => 0,
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("journal segment {}: {e}", path.display()))?;
        Ok(Journal {
            dir,
            active: Mutex::new(Active { seg, file, records }),
        })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record (checksummed, flushed before returning).
    pub fn append(&self, record: &Json) -> Result<(), String> {
        // Failpoint `serve.journal.append`: a WAL write failing (disk full,
        // volume gone). Submissions surface this to the caller.
        qaprox_fault::fail_point!("serve.journal.append", |_action| {
            Err(qaprox_fault::injected_error("serve.journal.append"))
        });
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let text = encode_line(record);
        active
            .file
            .write_all(text.as_bytes())
            .and_then(|()| active.file.flush())
            .map_err(|e| format!("journal append: {e}"))?;
        active.records += 1;
        Ok(())
    }

    /// True once the active segment passed [`SEGMENT_CAP`] records — the
    /// scheduler should [`Journal::rotate`] with a live-job snapshot.
    pub fn needs_rotation(&self) -> bool {
        self.active
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .records
            >= SEGMENT_CAP
    }

    /// Compacts: writes `live` (the caller's snapshot of still-relevant
    /// records) as the next segment via tmp + rename, switches appends to
    /// it, and deletes the older segments.
    pub fn rotate(&self, live: &[Json]) -> Result<(), String> {
        // Failpoint `serve.journal.rotate`: compaction failing mid-way. The
        // scheduler tolerates this (the old segment keeps growing).
        qaprox_fault::fail_point!("serve.journal.rotate", |_action| {
            Err(qaprox_fault::injected_error("serve.journal.rotate"))
        });
        let mut active = self.active.lock().unwrap_or_else(|e| e.into_inner());
        let next = active.seg + 1;
        let tmp = self.dir.join(format!(".seg-{next:06}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| format!("journal rotate: {e}"))?;
            for record in live {
                f.write_all(encode_line(record).as_bytes())
                    .map_err(|e| format!("journal rotate: {e}"))?;
            }
            f.sync_all().map_err(|e| format!("journal rotate: {e}"))?;
        }
        let path = self.dir.join(segment_name(next));
        std::fs::rename(&tmp, &path).map_err(|e| format!("journal rotate: {e}"))?;
        active.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("journal rotate: {e}"))?;
        let old = active.seg;
        active.seg = next;
        active.records = live.len();
        drop(active);
        for index in segment_indexes(&self.dir)? {
            if index <= old {
                let _ = std::fs::remove_file(self.dir.join(segment_name(index)));
            }
        }
        Ok(())
    }
}

/// What [`replay`] recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedJournal {
    /// Every intact record, in append order.
    pub records: Vec<Json>,
    /// Lines dropped at the damaged tail (0 for a clean journal).
    pub skipped_lines: usize,
}

/// Reads every intact record from the journal in `dir`. Stops at the first
/// damaged line (torn tail, CRC mismatch) and counts the remainder as
/// skipped. A missing directory replays empty.
pub fn replay(dir: &Path) -> Result<ReplayedJournal, String> {
    let mut out = ReplayedJournal {
        records: Vec::new(),
        skipped_lines: 0,
    };
    let mut damaged = false;
    for index in segment_indexes(dir)? {
        let path = dir.join(segment_name(index));
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("journal segment {}: {e}", path.display())),
        };
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            if damaged {
                out.skipped_lines += 1;
                continue;
            }
            match decode_line(line) {
                Some(record) => out.records.push(record),
                None => {
                    damaged = true;
                    out.skipped_lines += 1;
                }
            }
        }
    }
    Ok(out)
}

// ---- record constructors (the scheduler's vocabulary) ----------------------

/// `{"event": <kind>, "job": <id>}`.
pub fn event(kind: &str, id: u64) -> Json {
    Json::obj(vec![
        ("event", Json::Str(kind.into())),
        ("job", Json::Num(id as f64)),
    ])
}

/// The submit record: carries the full op-tagged spec for re-enqueueing.
pub fn submit_event(id: u64, spec: &crate::spec::JobSpec) -> Json {
    Json::obj(vec![
        ("event", Json::Str("submit".into())),
        ("job", Json::Num(id as f64)),
        ("spec", spec.to_json()),
    ])
}

/// The checkpoint record: synthesis reached `nodes` persisted nodes.
pub fn checkpoint_event(id: u64, nodes: usize) -> Json {
    Json::obj(vec![
        ("event", Json::Str("checkpoint".into())),
        ("job", Json::Num(id as f64)),
        ("nodes", Json::Num(nodes as f64)),
    ])
}

/// A terminal record; `done` / `degraded` carry the payload, `failed` the
/// error message.
pub fn terminal_event(id: u64, state: &str, payload: Option<&Json>, error: Option<&str>) -> Json {
    let mut fields = vec![
        ("event".to_string(), Json::Str(state.into())),
        ("job".to_string(), Json::Num(id as f64)),
    ];
    if let Some(p) = payload {
        fields.push(("payload".to_string(), p.clone()));
    }
    if let Some(e) = error {
        fields.push(("error".to_string(), Json::Str(e.into())));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobSpec, SynthSpec};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qaprox-journal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn spec(seed: u64) -> JobSpec {
        JobSpec::Synth(SynthSpec {
            qubits: 2,
            steps: 2,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        {
            let j = Journal::open(&dir).unwrap();
            j.append(&submit_event(1, &spec(0))).unwrap();
            j.append(&event("start", 1)).unwrap();
            j.append(&checkpoint_event(1, 40)).unwrap();
        }
        {
            // reopen appends to the same segment
            let j = Journal::open(&dir).unwrap();
            j.append(&terminal_event(1, "done", Some(&Json::Bool(true)), None))
                .unwrap();
        }
        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.skipped_lines, 0);
        assert_eq!(replayed.records.len(), 4);
        assert_eq!(replayed.records[0].get_str("event"), Some("submit"));
        let spec_json = replayed.records[0].get("spec").unwrap();
        assert_eq!(JobSpec::from_json(spec_json).unwrap(), spec(0));
        assert_eq!(replayed.records[2].get_u64("nodes"), Some(40));
        assert_eq!(replayed.records[3].get("payload"), Some(&Json::Bool(true)));
    }

    #[test]
    fn torn_tail_is_tolerated_and_counted() {
        let dir = tmp_dir("torn");
        {
            let j = Journal::open(&dir).unwrap();
            j.append(&event("start", 1)).unwrap();
            j.append(&event("start", 2)).unwrap();
        }
        // a crash mid-append leaves half a line; later lines (from a buggy
        // writer) must not resurrect past the tear
        let seg = dir.join(segment_name(0));
        let mut text = std::fs::read_to_string(&seg).unwrap();
        let half = encode_line(&event("start", 3));
        text.push_str(&half[..half.len() / 2]);
        text.push('\n');
        text.push_str(&encode_line(&event("start", 4)));
        std::fs::write(&seg, text).unwrap();

        let replayed = replay(&dir).unwrap();
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.skipped_lines, 2, "torn line + everything after");

        // a crc mismatch (bit rot) is damage too
        let dir2 = tmp_dir("crc");
        let j = Journal::open(&dir2).unwrap();
        j.append(&event("start", 1)).unwrap();
        let seg = dir2.join(segment_name(0));
        let tampered = std::fs::read_to_string(&seg)
            .unwrap()
            .replace("start", "stop!");
        std::fs::write(&seg, tampered).unwrap();
        let replayed = replay(&dir2).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.skipped_lines, 1);
    }

    #[test]
    fn rotation_compacts_to_the_live_snapshot() {
        let dir = tmp_dir("rotate");
        let j = Journal::open(&dir).unwrap();
        for id in 1..=5 {
            j.append(&submit_event(id, &spec(id))).unwrap();
        }
        assert!(!j.needs_rotation(), "cap is {SEGMENT_CAP}");
        // compact down to two live jobs
        let live = vec![submit_event(4, &spec(4)), submit_event(5, &spec(5))];
        j.rotate(&live).unwrap();
        assert_eq!(segment_indexes(&dir).unwrap(), vec![1], "old segment gone");
        // appends continue into the rotated segment
        j.append(&event("start", 4)).unwrap();
        let replayed = replay(&dir).unwrap();
        let events: Vec<_> = replayed
            .records
            .iter()
            .map(|r| (r.get_str("event").unwrap().to_string(), r.get_u64("job")))
            .collect();
        assert_eq!(
            events,
            vec![
                ("submit".to_string(), Some(4)),
                ("submit".to_string(), Some(5)),
                ("start".to_string(), Some(4)),
            ]
        );
    }

    #[test]
    fn missing_directory_replays_empty() {
        let dir = tmp_dir("absent");
        let replayed = replay(&dir).unwrap();
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.skipped_lines, 0);
    }
}
