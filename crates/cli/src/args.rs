//! Minimal argument parsing (no external dependencies): `--key value` and
//! `--flag` pairs after a subcommand.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options; bare `--flag`s map to `"true"`.
    pub options: BTreeMap<String, String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
}

/// Flags that never take a value — without this list the parser would
/// swallow a following positional as the flag's value
/// (`lint --strict-connectivity file.qasm` must keep `file.qasm`).
const BOOLEAN_FLAGS: &[&str] = &[
    "hardware",
    "strict-connectivity",
    "no-store",
    "no-wait",
    "no-relaxation",
    "no-readout",
    "stats",
];

/// Parses an argument list (excluding the program name).
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = argv.into_iter().peekable();
    match iter.next() {
        Some(cmd) if !cmd.starts_with("--") => args.command = cmd,
        Some(flag) => return Err(format!("expected a subcommand before '{flag}'")),
        None => return Err("missing subcommand".into()),
    }
    while let Some(tok) = iter.next() {
        if let Some(key) = tok.strip_prefix("--") {
            if key.is_empty() {
                return Err("empty option name '--'".into());
            }
            // value if the next token is not another option
            let value = match iter.peek() {
                _ if BOOLEAN_FLAGS.contains(&key) => "true".to_string(),
                Some(next) if !next.starts_with("--") => iter.next().unwrap(),
                _ => "true".to_string(),
            };
            if args.options.insert(key.to_string(), value).is_some() {
                return Err(format!("duplicate option --{key}"));
            }
        } else {
            args.positional.push(tok);
        }
    }
    Ok(args)
}

impl Args {
    /// Typed option lookup with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse '{raw}'")),
        }
    }

    /// String option lookup with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.options
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// True when `--key` was given (any value but "false").
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).map(|v| v != "false").unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn of(v: &[&str]) -> Result<Args, String> {
        parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = of(&["synth", "--qubits", "3", "--device", "toronto", "--verbose"]).unwrap();
        assert_eq!(a.command, "synth");
        assert_eq!(a.get_or("qubits", 0usize).unwrap(), 3);
        assert_eq!(a.str_or("device", "x"), "toronto");
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn rejects_missing_subcommand() {
        assert!(of(&[]).is_err());
        assert!(of(&["--flag"]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_bad_values() {
        assert!(of(&["run", "--n", "1", "--n", "2"]).is_err());
        let a = of(&["run", "--n", "abc"]).unwrap();
        assert!(a.get_or("n", 0usize).is_err());
    }

    #[test]
    fn positional_arguments_collect() {
        let a = of(&["show", "file1", "file2", "--k", "v"]).unwrap();
        assert_eq!(a.positional, vec!["file1", "file2"]);
    }

    #[test]
    fn boolean_flags_do_not_swallow_positionals() {
        let a = of(&["lint", "--strict-connectivity", "file.qasm"]).unwrap();
        assert!(a.flag("strict-connectivity"));
        assert_eq!(a.positional, vec!["file.qasm"]);
        let b = of(&["run", "--hardware", "--device", "rome"]).unwrap();
        assert!(b.flag("hardware"));
        assert_eq!(b.str_or("device", "x"), "rome");
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = of(&["run"]).unwrap();
        assert_eq!(a.get_or("steps", 21usize).unwrap(), 21);
        assert_eq!(a.str_or("device", "ourense"), "ourense");
    }
}
