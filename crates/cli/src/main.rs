//! `qaprox` — the command-line face of the approximate-circuit toolkit.
//!
//! ```text
//! qaprox synth    --workload tfim|tfim-r|grover|toffoli --qubits N [--steps K]
//!                 [--max-cnots D] [--max-hs T]        synthesize + list population
//! qaprox run      --workload ... --device NAME [--hardware] [--cx-error E]
//!                 [--steps K] [--epsilon E]            evaluate population vs reference
//! qaprox serve    [--addr H:P] [--workers N] [--queue N]
//!                 [--timeout-secs T] [--journal DIR]   start the TCP job service
//! qaprox submit   --op synth|run [--addr H:P] [--no-wait]
//!                 [synth/run options]                  submit a job, print the result
//! qaprox store    stats | gc --max-bytes N             inspect/trim the artifact store
//! qaprox devices                                       list calibration snapshots
//! qaprox report   --device NAME                        print the noise report
//! qaprox show     --workload ... [--steps K]           dump the reference as QASM
//! qaprox lint     FILE... [--format text|json] [--device NAME]
//!                 [--allow/--warn/--deny CODE,...]     static analysis
//! qaprox analyze  [FILE...] [--device NAME] [--min-fidelity F]
//!                                                      static noise-budget estimate
//! qaprox equiv    A.qasm B.qasm [--device NAME] [--epsilon E]
//!                                                      certified noisy equivalence check
//! ```
//!
//! The analysis subcommands (`lint`, `analyze`, `equiv`) share an exit-code
//! contract: 1 operational failure, 2 bad command-line arguments, 3
//! deny-level findings — so CI can tell "found problems" from "could not
//! run".
//!
//! Global options: `--jobs N` caps worker threads (default `QAPROX_THREADS`,
//! then all cores); `--store DIR` / `--no-store` select the content-addressed
//! artifact store (default `QAPROX_STORE`, then `.qaprox-store`) that makes
//! `synth`/`run` cache-first. See `docs/SERVE.md` for the service protocol.
//!
//! Every subcommand prints CSV-ish rows; see `docs/TUTORIAL.md` for the API
//! behind each step.

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "help" {
        print!("{}", commands::USAGE);
        return;
    }
    let parsed = match args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(e) = commands::dispatch(&parsed) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
