//! Subcommand implementations.

use crate::args::Args;
use qaprox::prelude::*;
use qaprox_synth::InstantiateConfig;

/// Help text.
pub const USAGE: &str = "\
qaprox - approximate quantum circuits on noisy devices

USAGE:
  qaprox <subcommand> [--option value]...

SUBCOMMANDS:
  synth     synthesize an approximate-circuit population for a workload
              --workload tfim|grover|toffoli   (default tfim)
              --qubits N                       (default 3)
              --steps K      TFIM timestep     (default 6)
              --max-cnots D                    (default 6)
              --max-hs T     selection cutoff  (default 0.12)
  run       evaluate the population against the reference under noise
              (synth options plus:)
              --device NAME  ourense|rome|santiago|toronto|manhattan
              --cx-error E   override uniform CNOT error
              --hardware     use the hardware-emulation backend
  devices   list the built-in calibration snapshots
  report    print a device noise report (--device NAME)
  show      dump the reference circuit as QASM (workload options)
  lint      statically analyze QASM files for defects (exit 1 on errors)
              qaprox lint FILE... [--format text|json]
              --device NAME  check connectivity + calibration sanity
              --strict-connectivity  treat coupling violations as errors
              --allow/--warn/--deny CODE[,CODE...]  adjust lint levels
  help      this text
";

/// Routes a parsed command line.
pub fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "synth" => cmd_synth(args),
        "run" => cmd_run(args),
        "devices" => cmd_devices(),
        "report" => cmd_report(args),
        "show" => cmd_show(args),
        "lint" => cmd_lint(args),
        "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

/// Builds the reference circuit for the requested workload.
fn reference_circuit(args: &Args) -> Result<Circuit, String> {
    let workload = args.str_or("workload", "tfim");
    let qubits: usize = args.get_or("qubits", 3)?;
    if !(2..=6).contains(&qubits) {
        return Err("supported --qubits range is 2..=6".into());
    }
    match workload.as_str() {
        "tfim" => {
            let steps: usize = args.get_or("steps", 6)?;
            let params = TfimParams::paper_defaults(qubits);
            Ok(tfim_circuit(&params, steps))
        }
        "grover" => {
            let target = (1usize << qubits) - 1;
            let iters = qaprox_algos::grover::optimal_iterations(qubits);
            Ok(grover_circuit(qubits, target, iters))
        }
        "toffoli" => Ok(mct_reference(qubits)),
        other => Err(format!("unknown workload '{other}' (tfim|grover|toffoli)")),
    }
}

fn workflow_from(args: &Args, qubits: usize) -> Result<Workflow, String> {
    let max_cnots: usize = args.get_or("max-cnots", 6)?;
    let max_hs: f64 = args.get_or("max-hs", 0.12)?;
    Ok(Workflow {
        topology: Topology::linear(qubits),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots,
            max_nodes: args.get_or("max-nodes", 150)?,
            beam_width: 4,
            instantiate: InstantiateConfig {
                starts: 2,
                ..Default::default()
            },
            ..Default::default()
        }),
        max_hs,
    })
}

fn cmd_synth(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    let qubits = reference.num_qubits();
    let wf = workflow_from(args, qubits)?;
    let target = Workflow::target_unitary(&reference);
    let pop = wf.generate(&target);
    println!(
        "# reference: {} gates, {} CNOTs; explored {} candidates, kept {}",
        reference.len(),
        reference.cx_count(),
        pop.explored,
        pop.circuits.len()
    );
    println!("cnots,hs_distance,gates,depth");
    for ap in &pop.circuits {
        println!(
            "{},{:.5},{},{}",
            ap.cnots,
            ap.hs_distance,
            ap.circuit.len(),
            ap.circuit.depth()
        );
    }
    println!(
        "# minimal-HS: {} CNOTs at {:.2e}",
        pop.minimal_hs.cnots, pop.minimal_hs.hs_distance
    );
    Ok(())
}

fn backend_from(args: &Args, qubits: usize) -> Result<Backend, String> {
    let device = args.str_or("device", "ourense");
    let cal = devices::by_name(&device).ok_or_else(|| format!("unknown device '{device}'"))?;
    if qubits > cal.topology.num_qubits() {
        return Err(format!(
            "device {device} has too few qubits for --qubits {qubits}"
        ));
    }
    let mut induced = cal.induced(&(0..qubits).collect::<Vec<_>>());
    if let Some(raw) = args.options.get("cx-error") {
        let eps: f64 = raw
            .parse()
            .map_err(|_| format!("--cx-error: cannot parse '{raw}'"))?;
        induced = induced.with_uniform_cx_error(eps);
    }
    let model = NoiseModel::from_calibration(induced);
    Ok(if args.flag("hardware") {
        Backend::Hardware(HardwareBackend::new(model))
    } else {
        Backend::Noisy(model)
    })
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    let qubits = reference.num_qubits();
    let wf = workflow_from(args, qubits)?;
    let backend = backend_from(args, qubits)?;

    let target = Workflow::target_unitary(&reference);
    let pop = wf.generate(&target);
    if pop.circuits.is_empty() {
        return Err("selection kept no circuits; raise --max-hs or --max-cnots".into());
    }

    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let ref_probs = backend.probabilities(&reference, 0);
    let ref_tvd = qaprox_metrics::total_variation(&ref_probs, &ideal);
    println!(
        "# reference: {} CNOTs, TVD to ideal under noise = {ref_tvd:.4}",
        reference.cx_count()
    );

    let scored = execute_and_score(&pop.circuits, &backend, |_, probs| {
        qaprox_metrics::total_variation(probs, &ideal)
    });
    println!("cnots,hs_distance,tvd_to_ideal,beats_reference");
    let mut wins = 0usize;
    for s in &scored {
        let beats = s.score < ref_tvd;
        wins += beats as usize;
        println!("{},{:.5},{:.4},{}", s.cnots, s.hs_distance, s.score, beats);
    }
    println!(
        "# {wins}/{} approximate circuits beat the exact reference",
        scored.len()
    );
    Ok(())
}

fn cmd_devices() -> Result<(), String> {
    println!("machine,qubits,avg_cx_error,avg_readout_error");
    for cal in devices::all_devices() {
        println!(
            "{},{},{:.5},{:.5}",
            cal.machine,
            cal.topology.num_qubits(),
            cal.avg_cx_error(),
            cal.avg_readout_error()
        );
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let device = args.str_or("device", "toronto");
    let cal = devices::by_name(&device).ok_or_else(|| format!("unknown device '{device}'"))?;
    print!("{}", qaprox_device::render_report(&cal));
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    print!("{}", qaprox_circuit::qasm::to_qasm(&reference));
    Ok(())
}

/// Builds a [`LintConfig`](qaprox_verify::LintConfig) from
/// `--allow/--warn/--deny CODE[,CODE...]` and `--strict-connectivity`.
fn lint_config_from(args: &Args) -> Result<qaprox_verify::LintConfig, String> {
    use qaprox_verify::{LintCode, LintConfig, LintLevel};
    let mut cfg = if args.flag("strict-connectivity") {
        LintConfig::strict_connectivity()
    } else {
        LintConfig::new()
    };
    for (key, level) in [
        ("allow", LintLevel::Allow),
        ("warn", LintLevel::Warn),
        ("deny", LintLevel::Deny),
    ] {
        if let Some(raw) = args.options.get(key) {
            for tok in raw.split(',') {
                let code = LintCode::parse(tok.trim())
                    .ok_or_else(|| format!("--{key}: unknown lint code '{}'", tok.trim()))?;
                cfg.set(code, level);
            }
        }
    }
    Ok(cfg)
}

/// Statically analyzes QASM files (and optionally a device calibration) and
/// reports diagnostics; returns `Err` — i.e. a non-zero exit — when any
/// deny-level finding is produced.
fn cmd_lint(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("lint: give at least one QASM file".into());
    }
    let cfg = lint_config_from(args)?;
    let format = args.str_or("format", "text");
    if !matches!(format.as_str(), "text" | "json") {
        return Err(format!("--format: expected text|json, got '{format}'"));
    }
    let calibration = match args.options.get("device") {
        Some(name) => {
            Some(devices::by_name(name).ok_or_else(|| format!("unknown device '{name}'"))?)
        }
        None => None,
    };

    let mut total_errors = 0usize;
    for path in &args.positional {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let raw = qaprox_circuit::from_qasm_lenient(&text)
            .map_err(|e| format!("{path}: parse error: {e}"))?;
        let mut report = qaprox_verify::lint_instructions(
            raw.num_qubits,
            &raw.instructions,
            calibration.as_ref().map(|cal| &cal.topology),
            &cfg,
        );
        if let Some(cal) = &calibration {
            report.extend(qaprox_verify::lint_calibration(cal, &cfg));
        }
        total_errors += report.error_count();
        match format.as_str() {
            "json" => println!("{}", report.to_json()),
            _ => {
                println!("# {path}");
                print!("{}", report.to_text());
            }
        }
    }
    if total_errors > 0 {
        Err(format!("lint found {total_errors} error(s)"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(v: &[&str]) -> Result<(), String> {
        dispatch(&parse(v.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn devices_and_report_succeed() {
        assert!(run(&["devices"]).is_ok());
        assert!(run(&["report", "--device", "ourense"]).is_ok());
        assert!(run(&["report", "--device", "nope"]).is_err());
    }

    #[test]
    fn show_emits_qasm_for_all_workloads() {
        for w in ["tfim", "grover", "toffoli"] {
            assert!(
                run(&["show", "--workload", w, "--qubits", "3"]).is_ok(),
                "{w}"
            );
        }
        assert!(run(&["show", "--workload", "unknown"]).is_err());
    }

    #[test]
    fn synth_small_population() {
        assert!(run(&[
            "synth",
            "--workload",
            "tfim",
            "--qubits",
            "2",
            "--steps",
            "2",
            "--max-cnots",
            "3",
            "--max-nodes",
            "25",
            "--max-hs",
            "0.4",
        ])
        .is_ok());
    }

    #[test]
    fn run_small_end_to_end() {
        assert!(run(&[
            "run",
            "--workload",
            "tfim",
            "--qubits",
            "2",
            "--steps",
            "3",
            "--max-cnots",
            "3",
            "--max-nodes",
            "25",
            "--max-hs",
            "0.4",
            "--device",
            "ourense",
            "--cx-error",
            "0.1",
        ])
        .is_ok());
    }

    fn temp_qasm(name: &str, body: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn lint_passes_clean_circuits() {
        let p = temp_qasm(
            "qaprox_lint_clean.qasm",
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        );
        assert!(run(&["lint", &p]).is_ok());
        assert!(run(&["lint", &p, "--format", "json"]).is_ok());
        assert!(run(&["lint", &p, "--device", "ourense"]).is_ok());
    }

    #[test]
    fn lint_fails_on_defects_and_respects_levels() {
        let p = temp_qasm(
            "qaprox_lint_bad.qasm",
            "qreg q[2];\nh q[7];\ncx q[0],q[0];\n",
        );
        let e = run(&["lint", &p]).unwrap_err();
        assert!(e.contains("error"), "{e}");
        // demoting both codes to allow silences the failure
        assert!(run(&["lint", &p, "--allow", "QA101,QA102"]).is_ok());
        // an unknown code is rejected up front
        assert!(run(&["lint", &p, "--deny", "QA999"]).is_err());
    }

    #[test]
    fn lint_strict_connectivity_flags_unrouted_gates() {
        // ourense has no (0,4) edge: warn by default, error under --strict-connectivity
        let p = temp_qasm("qaprox_lint_conn.qasm", "qreg q[5];\ncx q[0],q[4];\n");
        assert!(run(&["lint", &p, "--device", "ourense"]).is_ok());
        assert!(run(&["lint", &p, "--device", "ourense", "--strict-connectivity"]).is_err());
    }

    #[test]
    fn lint_rejects_bad_usage() {
        assert!(run(&["lint"]).is_err());
        assert!(run(&["lint", "/nonexistent/file.qasm"]).is_err());
        let p = temp_qasm("qaprox_lint_fmt.qasm", "qreg q[1];\nx q[0];\n");
        assert!(run(&["lint", &p, "--format", "yaml"]).is_err());
    }

    #[test]
    fn run_rejects_bad_inputs() {
        assert!(run(&["run", "--qubits", "9"]).is_err());
        assert!(run(&["run", "--device", "nowhere"]).is_err());
        assert!(run(&["frobnicate"]).is_err());
    }
}
