//! Subcommand implementations.

use crate::args::Args;
use qaprox::prelude::*;
use qaprox_serve::{Client, ExecCtl, JobSpec, RunSpec, SynthSpec};
use qaprox_serve::{SchedulerConfig, Server, ServerConfig};
use qaprox_store::json::Json;
use qaprox_store::Store;
use std::sync::Arc;
use std::time::Duration;

/// How a failed invocation should terminate. The static-analysis
/// subcommands (`lint`, `analyze`, `equiv`) distinguish "the tool found
/// deny-level defects" (exit 3) from "the tool itself failed" (exit 1) so CI
/// can gate on findings without swallowing operational errors; argument
/// parse errors exit 2 (handled in `main`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Operational failure: bad usage, unreadable file, unknown device,
    /// backend error. Exit code 1.
    Failure(String),
    /// The command ran to completion and produced deny-level findings.
    /// Exit code 3.
    Findings(String),
}

impl CliError {
    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Failure(_) => 1,
            CliError::Findings(_) => 3,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Failure(msg)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Failure(m) | CliError::Findings(m) => f.write_str(m),
        }
    }
}

/// Help text.
pub const USAGE: &str = "\
qaprox - approximate quantum circuits on noisy devices

USAGE:
  qaprox <subcommand> [--option value]...

EXIT CODES:
  0  success          1  operational failure
  2  bad arguments    3  deny-level findings (lint/analyze/equiv)

GLOBAL OPTIONS:
  --jobs N        cap worker threads
                  (precedence: --jobs, then QAPROX_JOBS env, then
                  QAPROX_THREADS env, then all cores)
  --store DIR     artifact-store root (default: QAPROX_STORE env, then .qaprox-store)
  --no-store      disable the artifact store (synth/run recompute from scratch)

SUBCOMMANDS:
  synth     synthesize an approximate-circuit population for a workload
              --workload tfim|tfim-r|grover|toffoli   (default tfim)
                             (tfim-r: tfim under a commuting reorder --
                              same physics, different cache keys)
              --qubits N                       (default 3)
              --steps K      TFIM timestep     (default 6)
              --max-cnots D                    (default 6)
              --max-hs T     selection cutoff  (default 0.12)
              --max-nodes N  search budget     (default 150)
              --seed S       instantiation seed (default 0)
              --stats        print synthesis perf counters (memo hits/misses)
  run       evaluate the population against the reference under noise
              (synth options plus:)
              --device NAME  ourense|rome|santiago|toronto|manhattan
              --cx-error E   override uniform CNOT error
              --hardware     use the hardware-emulation backend
              --backend B    trajectory: score on the Monte-Carlo trajectory
                             backend (2^n per shot instead of the 4^n density
                             matrix); required for --qubits above 6, which
                             unlocks the 27q/65q devices (docs/SIM.md)
                             (default: QAPROX_BACKEND env, then density)
              --shots N      trajectory shot count (default 512)
              --job-seed S   backend noise seed (default 0)
              --epsilon E    certify candidates at closeness E before
                             simulating; enables the store's certified
                             fast path (see docs/EQUIV.md, docs/SERVE.md)
  serve     start the TCP job service (blocks until a client sends shutdown)
              --addr HOST:PORT                 (default 127.0.0.1:7878)
              --workers N    worker threads    (default 2)
              --queue N      queue capacity    (default 64)
              --timeout-secs T  per-job wall-clock budget (default: none)
              --max-queued-cost N  admission control: reject submissions
                             once the queue's predicted cost exceeds N
                             (overloaded responses carry a retry hint)
              --stall-timeout-secs T  watchdog: quarantine a job that
                             holds a worker past T seconds
              --journal DIR  durable job journal: replayed on restart,
                             lost jobs re-enqueue and resume from their
                             last store checkpoint (see docs/FAULTS.md)
  submit    submit a job to a running service and print its result
              --addr HOST:PORT                 (default 127.0.0.1:7878)
              --op synth|run                   (default synth)
              (synth/run options as above)
              --no-wait      print the job id and return immediately
              --timeout-secs T  wait budget    (default 600)
              --deadline-ms T  job freshness TTL: the service sheds the
                             job instead of running it once T elapses
  store     inspect the artifact store
              qaprox store stats               cache counters and sizes
              qaprox store gc --max-bytes N    evict least-recently-used artifacts
  devices   list the built-in calibration snapshots
  report    print a device noise report (--device NAME)
  show      dump the reference circuit as QASM (workload options)
  lint      statically analyze QASM files for defects (exit 3 on errors)
              qaprox lint PATH... [--format text|json]
              (a directory PATH is scanned recursively for *.qasm files)
              --device NAME  check connectivity + calibration sanity;
                             implies --strict-connectivity unless QA106 is
                             explicitly re-leveled via --allow/--warn/--deny
              --strict-connectivity  treat coupling violations as errors
              --allow/--warn/--deny CODE[,CODE...]  adjust lint levels
              (includes the QA6xx commutation pass: QA601 commutation-enabled
               cancellation, QA602 commutation-enabled rotation merge,
               QA603 commuting reorder shortens the schedule)
  analyze   static noise-budget estimate for a circuit (no simulation)
              qaprox analyze [PATH...] [--format text|json]
              (no PATH: analyze the workload reference; workload options apply)
              --device NAME  calibration snapshot     (default ourense)
              --cx-error E   override uniform CNOT error
              --min-fidelity F        flag QA401 below this bound
              --min-qubit-fidelity F  flag QA402 below this per-qubit budget
              --check-shots N  cross-check the static prediction against an
                               N-shot trajectory simulation (prints the
                               simulated TVD and classical fidelity next to
                               the static bound, plus a per-file health
                               summary when numerical sentinels aborted
                               shots; --job-seed applies; multiple files of
                               one width share a shot-batched pass)
              --no-relaxation  ignore T1/T2 during idle+gate windows
              --no-readout     ignore measurement error
              --allow/--warn/--deny CODE[,CODE...]  adjust lint levels
  equiv     certified noisy equivalence check between two circuits
              qaprox equiv A.qasm B.qasm [--format text|json]
              --device NAME   calibration snapshot    (default ourense)
              --cx-error E    override uniform CNOT error
              --epsilon E     closeness target        (default 0.1)
              --no-relaxation ignore T1/T2 in the noise terms
              --ideal-max-qubits N  width cap for the exact ideal-TV pass
                                    (default 12; 0 disables)
              --allow/--warn/--deny CODE[,CODE...]  adjust lint levels
              (QA501 epsilon-equivalence violated [deny], QA502 undecidable
               [warn], QA503 noise dominates approximation [warn];
               commutation-equivalent reorders are discharged at the
               certified reorder noise charge, see docs/EQUIV.md)
  help      this text
";

/// Routes a parsed command line.
pub fn dispatch(args: &Args) -> Result<(), CliError> {
    apply_jobs(args)?;
    match args.command.as_str() {
        "synth" => cmd_synth(args).map_err(CliError::from),
        "run" => cmd_run(args).map_err(CliError::from),
        "serve" => cmd_serve(args).map_err(CliError::from),
        "submit" => cmd_submit(args).map_err(CliError::from),
        "store" => cmd_store(args).map_err(CliError::from),
        "devices" => cmd_devices().map_err(CliError::from),
        "report" => cmd_report(args).map_err(CliError::from),
        "show" => cmd_show(args).map_err(CliError::from),
        "lint" => cmd_lint(args),
        "analyze" => cmd_analyze(args),
        "equiv" => cmd_equiv(args),
        "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Failure(format!(
            "unknown subcommand '{other}'\n\n{USAGE}"
        ))),
    }
}

/// Applies the global `--jobs N` thread cap before any computation starts.
fn apply_jobs(args: &Args) -> Result<(), String> {
    if let Some(raw) = args.options.get("jobs") {
        let n: usize = raw
            .parse()
            .map_err(|_| format!("--jobs: cannot parse '{raw}'"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".into());
        }
        qaprox_linalg::parallel::set_max_threads(n);
    }
    Ok(())
}

/// Resolves the artifact store: `--no-store` disables it; otherwise the root
/// comes from `--store DIR`, then `QAPROX_STORE`, then `.qaprox-store`.
fn store_from(args: &Args) -> Result<Option<Store>, String> {
    if args.flag("no-store") {
        return Ok(None);
    }
    let root = match args.options.get("store") {
        Some(dir) => dir.clone(),
        None => std::env::var("QAPROX_STORE").unwrap_or_else(|_| ".qaprox-store".into()),
    };
    Store::open(&root)
        .map(Some)
        .map_err(|e| format!("cannot open store '{root}': {e}"))
}

/// Builds a [`SynthSpec`] from the shared workload/synthesis options.
fn synth_spec_from(args: &Args) -> Result<SynthSpec, String> {
    let d = SynthSpec::default();
    Ok(SynthSpec {
        workload: args.str_or("workload", &d.workload),
        qubits: args.get_or("qubits", d.qubits)?,
        steps: args.get_or("steps", d.steps)?,
        max_cnots: args.get_or("max-cnots", d.max_cnots)?,
        max_nodes: args.get_or("max-nodes", d.max_nodes)?,
        max_hs: args.get_or("max-hs", d.max_hs)?,
        seed: args.get_or("seed", d.seed)?,
        // a client-side freshness TTL, honored by the service scheduler
        // (expired jobs are shed before dispatch); local runs ignore it
        deadline_ms: match args.options.get("deadline-ms") {
            Some(raw) => Some(
                raw.parse()
                    .map_err(|_| format!("--deadline-ms: cannot parse '{raw}'"))?,
            ),
            None => None,
        },
    })
}

/// Builds a [`RunSpec`] from the synth options plus the backend options.
fn run_spec_from(args: &Args) -> Result<RunSpec, String> {
    let d = RunSpec::default();
    let cx_error = match args.options.get("cx-error") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--cx-error: cannot parse '{raw}'"))?,
        ),
        None => None,
    };
    let epsilon = match args.options.get("epsilon") {
        Some(raw) => {
            let eps: f64 = raw
                .parse()
                .map_err(|_| format!("--epsilon: cannot parse '{raw}'"))?;
            if eps.is_nan() || eps < 0.0 {
                return Err(format!("--epsilon: must be non-negative, got {eps}"));
            }
            Some(eps)
        }
        None => None,
    };
    // --backend wins over the QAPROX_BACKEND env (mirrors --store/QAPROX_STORE)
    let backend = match args.options.get("backend") {
        Some(b) => Some(b.clone()),
        None => std::env::var("QAPROX_BACKEND")
            .ok()
            .filter(|b| !b.is_empty()),
    };
    let shots = match args.options.get("shots") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| format!("--shots: cannot parse '{raw}'"))?,
        ),
        None => None,
    };
    Ok(RunSpec {
        synth: synth_spec_from(args)?,
        device: args.str_or("device", &d.device),
        cx_error,
        hardware: args.flag("hardware"),
        job_seed: args.get_or("job-seed", d.job_seed)?,
        backend,
        shots,
        epsilon,
    })
}

/// Builds the reference circuit for the requested workload. Delegates to
/// the serve-side spec so the CLI and the service agree on every workload,
/// including the wide (> 6 qubit) TFIM references that only the trajectory
/// path can execute but `show`/`analyze` can still inspect statically.
fn reference_circuit(args: &Args) -> Result<Circuit, String> {
    let spec = synth_spec_from(args)?;
    if spec.qubits > qaprox_serve::MAX_SYNTH_QUBITS {
        spec.wide_reference_circuit()
    } else {
        spec.reference_circuit()
    }
}

fn cache_note(cached: bool, resumed_from: usize, key_hex: &str, store: Option<&Store>) -> String {
    match (store, cached, resumed_from) {
        (None, ..) => "# store: disabled".to_string(),
        (Some(_), true, _) => format!("# store: hit key={key_hex}"),
        (Some(_), false, 0) => format!("# store: miss key={key_hex}"),
        (Some(_), false, n) => format!("# store: miss key={key_hex} (resumed from {n} nodes)"),
    }
}

fn cmd_synth(args: &Args) -> Result<(), String> {
    let spec = synth_spec_from(args)?;
    let reference = spec.reference_circuit()?;
    let store = store_from(args)?;
    let pop = qaprox_serve::obtain_population(store.as_ref(), &spec, &ExecCtl::default())?;
    println!(
        "{}",
        cache_note(pop.cached, pop.resumed_from, &pop.key.hex(), store.as_ref())
    );
    println!(
        "# reference: {} gates, {} CNOTs; explored {} candidates, kept {}",
        reference.len(),
        reference.cx_count(),
        pop.population.explored,
        pop.population.circuits.len()
    );
    println!("cnots,hs_distance,gates,depth");
    for ap in &pop.population.circuits {
        println!(
            "{},{:.5},{},{}",
            ap.cnots,
            ap.hs_distance,
            ap.circuit.len(),
            ap.circuit.depth()
        );
    }
    println!(
        "# minimal-HS: {} CNOTs at {:.2e}",
        pop.population.minimal_hs.cnots, pop.population.minimal_hs.hs_distance
    );
    if args.flag("stats") {
        let s = &pop.population.stats;
        let total = s.memo_hits + s.memo_misses;
        let rate = if total > 0 {
            100.0 * s.memo_hits as f64 / total as f64
        } else {
            0.0
        };
        println!(
            "# stats: memo_hits={} memo_misses={} hit_rate={rate:.1}%",
            s.memo_hits, s.memo_misses
        );
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let spec = run_spec_from(args)?;
    let reference = spec.reference_circuit()?;
    spec.backend()?; // fail fast on a bad device before any synthesis
    let store = store_from(args)?;
    let out = qaprox_serve::obtain_run(store.as_ref(), &spec, &ExecCtl::default())?;
    let (key, result, cached, pop) = (out.key, out.result, out.cached, out.population);
    println!(
        "{}",
        cache_note(
            cached,
            pop.as_ref().map_or(0, |p| p.resumed_from),
            &key.hex(),
            store.as_ref()
        )
    );
    if let Some((source, bound)) = &out.certified {
        println!(
            "# certified: reused result {} (equivalence bound {:.3e}, no simulation)",
            source.hex(),
            bound
        );
    }
    println!(
        "# reference: {} CNOTs, TVD to ideal under noise = {:.4}",
        reference.cx_count(),
        result.ref_score
    );
    let analysis = qaprox_verify::analyze(&reference, &spec.calibration()?, &Default::default());
    println!(
        "# analysis: fidelity_bound={:.4} esp={:.4} cnot_critical_path={:.0} depth={}",
        analysis.fidelity_bound, analysis.esp, analysis.cnot_critical_path, analysis.depth
    );
    println!("cnots,hs_distance,predicted,tvd_to_ideal,beats_reference");
    let mut wins = 0usize;
    for row in &result.rows {
        let beats = row.score < result.ref_score;
        wins += beats as usize;
        println!(
            "{},{:.5},{:.4},{:.4},{}",
            row.cnots, row.hs_distance, row.predicted, row.score, beats
        );
    }
    println!(
        "# {wins}/{} approximate circuits beat the exact reference",
        result.rows.len()
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let store = store_from(args)?.map(Arc::new);
    let d = SchedulerConfig::default();
    let workers: usize = args.get_or("workers", d.workers)?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let scheduler = SchedulerConfig {
        workers,
        queue_capacity: args.get_or("queue", d.queue_capacity)?,
        job_timeout: match args.options.get("timeout-secs") {
            Some(raw) => {
                Some(Duration::from_secs(raw.parse().map_err(|_| {
                    format!("--timeout-secs: cannot parse '{raw}'")
                })?))
            }
            None => None,
        },
        checkpoint_every: d.checkpoint_every,
        journal_dir: args.options.get("journal").map(std::path::PathBuf::from),
        retry: d.retry,
        breaker: d.breaker,
        admission: qaprox_serve::AdmissionConfig {
            max_queued_cost: match args.options.get("max-queued-cost") {
                Some(raw) => Some(
                    raw.parse()
                        .map_err(|_| format!("--max-queued-cost: cannot parse '{raw}'"))?,
                ),
                None => None,
            },
            ..Default::default()
        },
        watchdog: qaprox_serve::WatchdogConfig {
            stall_timeout: match args.options.get("stall-timeout-secs") {
                Some(raw) => {
                    Some(Duration::from_secs(raw.parse().map_err(|_| {
                        format!("--stall-timeout-secs: cannot parse '{raw}'")
                    })?))
                }
                None => None,
            },
            ..Default::default()
        },
    };
    let journaled = scheduler.journal_dir.clone();
    let cfg = ServerConfig {
        addr: args.str_or("addr", "127.0.0.1:7878"),
        scheduler,
    };
    let server = Server::start(cfg, store).map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "# qaprox-serve listening on {} ({workers} workers)",
        server.local_addr()
    );
    if let Some(dir) = journaled {
        let report = server
            .scheduler()
            .recovery_report()
            .unwrap_or(Json::Bool(false));
        println!("# journal at {}: recovery {report}", dir.display());
    }
    server.wait_for_shutdown();
    Ok(())
}

/// Renders a service response payload in the same CSV-ish shape the local
/// `synth`/`run` subcommands print.
fn print_payload(payload: &Json) -> Result<(), String> {
    if payload.get_bool("degraded") == Some(true) {
        println!(
            "# DEGRADED result (fallback from {}): {}",
            payload
                .get_str("degraded_from")
                .unwrap_or("static analysis"),
            payload.get_str("error").unwrap_or("retries exhausted"),
        );
    }
    match payload.get_str("kind") {
        Some("synth") => {
            println!(
                "# key={} cached={} resumed_from={} explored={}",
                payload.get_str("key").unwrap_or("?"),
                payload.get_bool("cached").unwrap_or(false),
                payload.get_u64("resumed_from").unwrap_or(0),
                payload.get_u64("explored").unwrap_or(0),
            );
            println!("cnots,hs_distance,gates,depth");
            if let Some(Json::Arr(rows)) = payload.get("circuits") {
                for row in rows {
                    println!(
                        "{},{:.5},{},{}",
                        row.get_u64("cnots").unwrap_or(0),
                        row.get_f64("hs_distance").unwrap_or(f64::NAN),
                        row.get_u64("gates").unwrap_or(0),
                        row.get_u64("depth").unwrap_or(0),
                    );
                }
            }
            println!(
                "# minimal-HS: {} CNOTs at {:.2e}",
                payload.get_u64("minimal_cnots").unwrap_or(0),
                payload.get_f64("minimal_hs").unwrap_or(f64::NAN),
            );
            Ok(())
        }
        Some("run") => {
            let ref_score = payload.get_f64("ref_score").unwrap_or(f64::NAN);
            println!(
                "# key={} cached={} population_cached={}",
                payload.get_str("key").unwrap_or("?"),
                payload.get_bool("cached").unwrap_or(false),
                payload.get_bool("population_cached").unwrap_or(false),
            );
            println!("# reference TVD to ideal under noise = {ref_score:.4}");
            if let Some(analysis) = payload.get("analysis") {
                println!(
                    "# analysis: fidelity_bound={:.4} esp={:.4} cnot_critical_path={:.0} depth={}",
                    analysis.get_f64("fidelity_bound").unwrap_or(f64::NAN),
                    analysis.get_f64("esp").unwrap_or(f64::NAN),
                    analysis.get_f64("cnot_critical_path").unwrap_or(f64::NAN),
                    analysis.get_u64("depth").unwrap_or(0),
                );
            }
            println!("cnots,hs_distance,predicted,tvd_to_ideal,beats_reference");
            let mut total = 0usize;
            if let Some(Json::Arr(rows)) = payload.get("rows") {
                total = rows.len();
                for row in rows {
                    if let Json::Arr(cells) = row {
                        if let [Json::Num(cnots), Json::Num(hs), Json::Num(predicted), Json::Num(score)] =
                            &cells[..]
                        {
                            println!(
                                "{},{hs:.5},{predicted:.4},{score:.4},{}",
                                *cnots as usize,
                                *score < ref_score
                            );
                        }
                    }
                }
            }
            println!(
                "# {}/{total} approximate circuits beat the exact reference",
                payload.get_u64("wins").unwrap_or(0)
            );
            Ok(())
        }
        other => Err(format!("unexpected payload kind {other:?}: {payload}")),
    }
}

fn cmd_submit(args: &Args) -> Result<(), String> {
    let spec = match args.str_or("op", "synth").as_str() {
        "synth" => JobSpec::Synth(synth_spec_from(args)?),
        "run" => JobSpec::Run(run_spec_from(args)?),
        other => return Err(format!("--op: expected synth|run, got '{other}'")),
    };
    let addr = args.str_or("addr", "127.0.0.1:7878");
    let mut client = Client::connect(&addr)?;
    let (id, key, deduped) = client.submit(&spec).map_err(|e| e.to_string())?;
    println!("# job id={id} key={key} deduped={deduped}");
    if args.flag("no-wait") {
        return Ok(());
    }
    let timeout = Duration::from_secs(args.get_or("timeout-secs", 600u64)?);
    let payload = client.wait_for_result(id, timeout)?;
    print_payload(&payload)
}

fn cmd_store(args: &Args) -> Result<(), String> {
    let store = store_from(args)?
        .ok_or_else(|| "store commands need a store (drop --no-store)".to_string())?;
    match args.positional.first().map(String::as_str) {
        Some("stats") => {
            let s = store.stats();
            println!("hits,misses,puts,populations,partials,results,total_bytes");
            println!(
                "{},{},{},{},{},{},{}",
                s.hits, s.misses, s.puts, s.entries.0, s.entries.1, s.entries.2, s.total_bytes
            );
            Ok(())
        }
        Some("gc") => {
            let raw = args
                .options
                .get("max-bytes")
                .ok_or("store gc needs --max-bytes N")?;
            let max_bytes: u64 = raw
                .parse()
                .map_err(|_| format!("--max-bytes: cannot parse '{raw}'"))?;
            let report = store.gc(max_bytes).map_err(|e| e.to_string())?;
            println!("evicted,reclaimed_bytes,remaining_bytes");
            println!(
                "{},{},{}",
                report.evicted, report.reclaimed_bytes, report.remaining_bytes
            );
            Ok(())
        }
        Some(other) => Err(format!("store: expected stats|gc, got '{other}'")),
        None => Err("store: give a subcommand (stats|gc)".into()),
    }
}

fn cmd_devices() -> Result<(), String> {
    println!("machine,qubits,avg_cx_error,avg_readout_error");
    for cal in devices::all_devices() {
        println!(
            "{},{},{:.5},{:.5}",
            cal.machine,
            cal.topology.num_qubits(),
            cal.avg_cx_error(),
            cal.avg_readout_error()
        );
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let device = args.str_or("device", "toronto");
    let cal = devices::by_name(&device).ok_or_else(|| format!("unknown device '{device}'"))?;
    print!("{}", qaprox_device::render_report(&cal));
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    print!("{}", qaprox_circuit::qasm::to_qasm(&reference));
    Ok(())
}

/// Builds a [`LintConfig`](qaprox_verify::LintConfig) from
/// `--allow/--warn/--deny CODE[,CODE...]` and `--strict-connectivity`.
///
/// Giving `--device` implies strict connectivity (QA106 at deny): a lint run
/// against a concrete coupling map is a routing check, and an unrouted gate
/// can never execute there. An explicit QA106 entry in `--allow/--warn/--deny`
/// overrides the implication.
fn lint_config_from(args: &Args) -> Result<qaprox_verify::LintConfig, String> {
    use qaprox_verify::{LintCode, LintConfig, LintLevel};
    let mut cfg = if args.flag("strict-connectivity") {
        LintConfig::strict_connectivity()
    } else {
        LintConfig::new()
    };
    let mut qa106_explicit = false;
    for (key, level) in [
        ("allow", LintLevel::Allow),
        ("warn", LintLevel::Warn),
        ("deny", LintLevel::Deny),
    ] {
        if let Some(raw) = args.options.get(key) {
            for tok in raw.split(',') {
                let code = LintCode::parse(tok.trim())
                    .ok_or_else(|| format!("--{key}: unknown lint code '{}'", tok.trim()))?;
                qa106_explicit |= code == LintCode::ConnectivityViolation;
                cfg.set(code, level);
            }
        }
    }
    if args.options.contains_key("device") && !qa106_explicit {
        cfg.set(LintCode::ConnectivityViolation, LintLevel::Deny);
    }
    Ok(cfg)
}

/// Expands lint/analyze positionals: a directory is scanned recursively for
/// `*.qasm` files (sorted for stable output), anything else passes through.
fn expand_qasm_paths(positional: &[String]) -> Result<Vec<String>, String> {
    fn walk(dir: &std::path::Path, out: &mut Vec<String>) -> Result<(), String> {
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("cannot read '{}': {e}", dir.display()))?;
        let mut paths: Vec<_> = entries
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("cannot read '{}': {e}", dir.display()))?;
        paths.sort();
        for p in paths {
            if p.is_dir() {
                walk(&p, out)?;
            } else if p.extension().is_some_and(|x| x == "qasm") {
                out.push(p.to_string_lossy().into_owned());
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    for path in positional {
        if std::path::Path::new(path).is_dir() {
            let before = files.len();
            walk(std::path::Path::new(path), &mut files)?;
            if files.len() == before {
                return Err(format!("no .qasm files under '{path}'"));
            }
        } else {
            files.push(path.clone());
        }
    }
    Ok(files)
}

/// Statically analyzes QASM files (and optionally a device calibration) and
/// reports diagnostics; returns `Err` — i.e. a non-zero exit — when any
/// deny-level finding is produced. Directory arguments are scanned
/// recursively for `*.qasm` files.
fn cmd_lint(args: &Args) -> Result<(), CliError> {
    if args.positional.is_empty() {
        return Err(CliError::Failure(
            "lint: give at least one QASM file or directory".into(),
        ));
    }
    let cfg = lint_config_from(args)?;
    let format = args.str_or("format", "text");
    if !matches!(format.as_str(), "text" | "json") {
        return Err(CliError::Failure(format!(
            "--format: expected text|json, got '{format}'"
        )));
    }
    let calibration = match args.options.get("device") {
        Some(name) => {
            Some(devices::by_name(name).ok_or_else(|| format!("unknown device '{name}'"))?)
        }
        None => None,
    };

    let mut total_errors = 0usize;
    for path in &expand_qasm_paths(&args.positional)? {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let raw = qaprox_circuit::from_qasm_lenient(&text)
            .map_err(|e| format!("{path}: parse error: {e}"))?;
        let mut report = qaprox_verify::lint_program(
            raw.num_qubits,
            raw.num_clbits,
            &raw.instructions,
            &raw.measures,
            calibration.as_ref().map(|cal| &cal.topology),
            &cfg,
        );
        if let Some(cal) = &calibration {
            report.extend(qaprox_verify::lint_calibration(cal, &cfg));
        }
        total_errors += report.error_count();
        match format.as_str() {
            "json" => println!("{}", report.to_json()),
            _ => {
                println!("# {path}");
                print!("{}", report.to_text());
            }
        }
    }
    if total_errors > 0 {
        Err(CliError::Findings(format!(
            "lint found {total_errors} error(s)"
        )))
    } else {
        Ok(())
    }
}

/// Builds [`AnalyzeOptions`](qaprox_verify::AnalyzeOptions) from the
/// `--no-relaxation/--no-readout/--min-fidelity/--min-qubit-fidelity` flags.
fn analyze_options_from(args: &Args) -> Result<qaprox_verify::AnalyzeOptions, String> {
    let threshold = |key: &str| -> Result<Option<f64>, String> {
        match args.options.get(key) {
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: cannot parse '{raw}'")),
            None => Ok(None),
        }
    };
    Ok(qaprox_verify::AnalyzeOptions {
        include_relaxation: !args.flag("no-relaxation"),
        include_readout: !args.flag("no-readout"),
        min_fidelity: threshold("min-fidelity")?,
        min_qubit_fidelity: threshold("min-qubit-fidelity")?,
    })
}

/// Static noise-budget estimate (`qaprox analyze`): no simulation, just the
/// dataflow analyses plus the abstract success-probability interpreter from
/// `qaprox-verify`. Analyzes QASM files when paths are given, the workload
/// reference circuit otherwise. Exits non-zero when any deny-level finding
/// fires (e.g. `--min-fidelity` with QA401 at deny).
fn cmd_analyze(args: &Args) -> Result<(), CliError> {
    let cfg = lint_config_from(args)?;
    let opts = analyze_options_from(args)?;
    let format = args.str_or("format", "text");
    if !matches!(format.as_str(), "text" | "json") {
        return Err(CliError::Failure(format!(
            "--format: expected text|json, got '{format}'"
        )));
    }
    let (device, cal) = calibration_from(args)?;

    let circuits: Vec<(String, Circuit)> = if args.positional.is_empty() {
        vec![(
            format!("{} reference", args.str_or("workload", "tfim")),
            reference_circuit(args)?,
        )]
    } else {
        let mut v = Vec::new();
        for path in expand_qasm_paths(&args.positional)? {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            let circuit = qaprox_circuit::from_qasm(&text)
                .map_err(|e| format!("{path}: parse error: {e}"))?;
            v.push((path, circuit));
        }
        v
    };

    for (name, circuit) in &circuits {
        if circuit.num_qubits() > cal.topology.num_qubits() {
            return Err(CliError::Failure(format!(
                "{name}: {} qubits exceed device '{device}' ({} qubits)",
                circuit.num_qubits(),
                cal.topology.num_qubits()
            )));
        }
    }

    // the dynamic cross-check runs up front as one shot-batched trajectory
    // pass per circuit width (per-file results are looked up below), so an
    // analyze sweep over many QASM files pays one shot loop, not one each
    let check_shots: Option<usize> = match args.options.get("check-shots") {
        Some(raw) => {
            let shots: usize = raw
                .parse()
                .map_err(|_| format!("--check-shots: cannot parse '{raw}'"))?;
            if shots == 0 {
                return Err(CliError::Failure("--check-shots must be at least 1".into()));
            }
            Some(shots)
        }
        None => None,
    };
    let checks = match check_shots {
        Some(shots) => Some(trajectory_check_all(&circuits, &cal, shots, args)?),
        None => None,
    };

    let mut total_errors = 0usize;
    for (i, (name, circuit)) in circuits.iter().enumerate() {
        let report = qaprox_verify::analyze_with_config(circuit, &cal, &opts, &cfg);
        total_errors += report.findings.error_count();
        match format.as_str() {
            "json" => println!("{}", report.to_json()),
            _ => {
                println!("# {name}");
                print!("{}", report.to_text());
            }
        }
        if let (Some(shots), Some(checks)) = (check_shots, &checks) {
            let (tvd, fidelity, health) = checks[i];
            match format.as_str() {
                "json" => println!(
                    "{}",
                    Json::obj(vec![
                        ("trajectory_shots", Json::Num(shots as f64)),
                        ("tvd_to_ideal", Json::Num(tvd)),
                        ("classical_fidelity", Json::Num(fidelity)),
                        ("static_fidelity_bound", Json::Num(report.fidelity_bound)),
                        ("healthy", Json::Bool(health.is_healthy())),
                        ("clean_shots", Json::Num(health.clean_shots as f64)),
                        ("aborted_shots", Json::Num(health.aborted_shots as f64)),
                        ("nan_events", Json::Num(health.nan_events as f64)),
                        (
                            "norm_drift_events",
                            Json::Num(health.norm_drift_events as f64),
                        ),
                    ])
                ),
                _ => {
                    println!(
                        "# trajectory check ({shots} shots): tvd_to_ideal={tvd:.4} \
                         classical_fidelity={fidelity:.4} vs static fidelity_bound={:.4}",
                        report.fidelity_bound
                    );
                    if !health.is_healthy() {
                        println!(
                            "# trajectory check DEGRADED: {}/{shots} shots aborted \
                             (nan={}, norm_drift={}) — the averages above use only \
                             the {} clean shots",
                            health.aborted_shots,
                            health.nan_events,
                            health.norm_drift_events,
                            health.clean_shots
                        );
                    }
                }
            }
        }
    }
    if total_errors > 0 {
        Err(CliError::Findings(format!(
            "analyze found {total_errors} error(s)"
        )))
    } else {
        Ok(())
    }
}

/// The `analyze --check-shots N` dynamic cross-check, batched: circuits are
/// grouped by width and every group is simulated in one shot-batched
/// trajectory pass
/// ([`qaprox_sim::TrajectoryBackend::probabilities_batch_seeded_health`]),
/// each row bit-identical to the solo `probabilities(c, job_seed)` call it
/// replaces. Returns `(tvd_to_ideal, classical_fidelity, health)` per
/// circuit, in input order; the [`qaprox_sim::HealthReport`] says how many
/// shots the numerical sentinels aborted, so a file whose shots all failed
/// is surfaced instead of silently scored from an empty average. The
/// classical (Bhattacharyya) fidelity between the noisy and ideal
/// distributions is directly comparable to the analyzer's `fidelity_bound`
/// — the simulated value should sit at or above the sound static bound,
/// shot noise aside.
fn trajectory_check_all(
    circuits: &[(String, Circuit)],
    cal: &qaprox_device::Calibration,
    shots: usize,
    args: &Args,
) -> Result<Vec<(f64, f64, qaprox_sim::HealthReport)>, String> {
    let model = qaprox_sim::NoiseModel::from_calibration(cal.clone());
    let backend = qaprox_sim::TrajectoryBackend::with_shots(model, shots);
    let job_seed: u64 = args.get_or("job-seed", 0u64)?;
    let mut by_width: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, (_, c)) in circuits.iter().enumerate() {
        by_width.entry(c.num_qubits()).or_default().push(i);
    }
    let mut out = vec![(0.0, 0.0, qaprox_sim::HealthReport::default()); circuits.len()];
    for idxs in by_width.values() {
        let refs: Vec<&Circuit> = idxs.iter().map(|&i| &circuits[i].1).collect();
        let (rows, healths) = backend.probabilities_batch_seeded_health(&refs, job_seed)?;
        for ((&i, noisy), health) in idxs.iter().zip(&rows).zip(healths) {
            let ideal = qaprox_sim::statevector::probabilities(&circuits[i].1);
            let tvd = qaprox_metrics::total_variation(noisy, &ideal);
            let bhatt: f64 = noisy.iter().zip(&ideal).map(|(p, q)| (p * q).sqrt()).sum();
            out[i] = (tvd, bhatt * bhatt, health);
        }
    }
    Ok(out)
}

/// Resolves `--device` (default ourense) plus the optional `--cx-error`
/// override into a calibration snapshot.
fn calibration_from(args: &Args) -> Result<(String, qaprox_device::Calibration), String> {
    let device = args.str_or("device", "ourense");
    let mut cal = devices::by_name(&device).ok_or_else(|| format!("unknown device '{device}'"))?;
    if let Some(raw) = args.options.get("cx-error") {
        let eps: f64 = raw
            .parse()
            .map_err(|_| format!("--cx-error: cannot parse '{raw}'"))?;
        cal = cal.with_uniform_cx_error(eps);
    }
    Ok((device, cal))
}

/// Certified noisy equivalence check (`qaprox equiv A.qasm B.qasm`): the
/// QA5xx abstract interpreter from `qaprox-verify`, no simulation. Exits 3
/// when any deny-level finding fires (QA501 by default).
fn cmd_equiv(args: &Args) -> Result<(), CliError> {
    if args.positional.len() != 2 {
        return Err(CliError::Failure(
            "equiv: give exactly two QASM files to compare".into(),
        ));
    }
    let cfg = lint_config_from(args)?;
    let format = args.str_or("format", "text");
    if !matches!(format.as_str(), "text" | "json") {
        return Err(CliError::Failure(format!(
            "--format: expected text|json, got '{format}'"
        )));
    }
    let (device, cal) = calibration_from(args)?;
    let epsilon: f64 = match args.options.get("epsilon") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--epsilon: cannot parse '{raw}'"))?,
        None => 0.1,
    };
    if epsilon.is_nan() || epsilon < 0.0 {
        return Err(CliError::Failure(format!(
            "--epsilon: must be non-negative, got {epsilon}"
        )));
    }
    let ideal_max: usize = match args.options.get("ideal-max-qubits") {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--ideal-max-qubits: cannot parse '{raw}'"))?,
        None => 12,
    };

    let mut circuits = Vec::new();
    for path in &args.positional {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let circuit =
            qaprox_circuit::from_qasm(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
        circuits.push(circuit);
    }
    let (a, b) = (&circuits[0], &circuits[1]);
    if a.num_qubits() != b.num_qubits() {
        return Err(CliError::Failure(format!(
            "equiv: width mismatch: '{}' has {} qubit(s), '{}' has {}",
            args.positional[0],
            a.num_qubits(),
            args.positional[1],
            b.num_qubits()
        )));
    }
    if a.num_qubits() > cal.topology.num_qubits() {
        return Err(CliError::Failure(format!(
            "{} qubits exceed device '{device}' ({} qubits)",
            a.num_qubits(),
            cal.topology.num_qubits()
        )));
    }

    let opts = qaprox_verify::EquivOptions {
        epsilon,
        include_relaxation: !args.flag("no-relaxation"),
        ideal_tv_max_qubits: ideal_max,
    };
    let report = qaprox_verify::check_equivalence_with_config(a, b, &cal, &opts, &cfg);
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => {
            println!("# {} vs {}", args.positional[0], args.positional[1]);
            print!("{}", report.to_text());
        }
    }
    let errors = report.findings.error_count();
    if errors > 0 {
        Err(CliError::Findings(format!("equiv found {errors} error(s)")))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(v: &[&str]) -> Result<(), CliError> {
        dispatch(&parse(v.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn devices_and_report_succeed() {
        assert!(run(&["devices"]).is_ok());
        assert!(run(&["report", "--device", "ourense"]).is_ok());
        assert!(run(&["report", "--device", "nope"]).is_err());
    }

    #[test]
    fn show_emits_qasm_for_all_workloads() {
        for w in ["tfim", "tfim-r", "grover", "toffoli"] {
            assert!(
                run(&["show", "--workload", w, "--qubits", "3"]).is_ok(),
                "{w}"
            );
        }
        assert!(run(&["show", "--workload", "unknown"]).is_err());
    }

    fn temp_store(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("qaprox-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    const TINY: &[&str] = &[
        "--workload",
        "tfim",
        "--qubits",
        "2",
        "--steps",
        "2",
        "--max-cnots",
        "3",
        "--max-nodes",
        "25",
        "--max-hs",
        "0.4",
    ];

    fn with_tiny(front: &[&str], back: &[&str]) -> Vec<&'static str> {
        // leak is fine in tests; keeps the call sites readable
        let mut v: Vec<&str> = front.to_vec();
        v.extend_from_slice(TINY);
        v.extend_from_slice(back);
        v.iter()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .collect()
    }

    #[test]
    fn synth_small_population_without_store() {
        assert!(run(&with_tiny(&["synth"], &["--no-store"])).is_ok());
    }

    #[test]
    fn synth_populates_and_then_hits_the_store() {
        let dir = temp_store("synth");
        assert!(run(&with_tiny(&["synth"], &["--store", &dir])).is_ok());
        assert!(run(&with_tiny(&["synth"], &["--store", &dir])).is_ok());
        let stats = qaprox_store::Store::open(&dir).unwrap().stats();
        assert!(stats.puts >= 1, "{stats:?}");
        assert!(stats.hits >= 1, "second invocation must hit: {stats:?}");
    }

    #[test]
    fn run_small_end_to_end() {
        let dir = temp_store("run");
        let tail = ["--device", "ourense", "--cx-error", "0.1", "--store"];
        let mut back: Vec<&str> = tail.to_vec();
        back.push(&dir);
        assert!(run(&with_tiny(&["run"], &back)).is_ok());
        // the result itself is now cached
        assert!(run(&with_tiny(&["run"], &back)).is_ok());
        let stats = qaprox_store::Store::open(&dir).unwrap().stats();
        assert!(stats.entries.2 >= 1, "a result artifact exists: {stats:?}");
        assert!(stats.hits >= 1, "{stats:?}");
    }

    #[test]
    fn store_stats_and_gc_commands() {
        let dir = temp_store("storecmd");
        assert!(run(&with_tiny(&["synth"], &["--store", &dir])).is_ok());
        assert!(run(&["store", "stats", "--store", &dir]).is_ok());
        assert!(run(&["store", "gc", "--max-bytes", "0", "--store", &dir]).is_ok());
        let stats = qaprox_store::Store::open(&dir).unwrap().stats();
        assert_eq!(stats.total_bytes, 0, "gc to zero empties the store");
        // usage errors
        assert!(run(&["store", "gc", "--store", &dir]).is_err());
        assert!(run(&["store", "frobnicate", "--store", &dir]).is_err());
        assert!(run(&["store", "stats", "--no-store"]).is_err());
    }

    #[test]
    fn submit_round_trips_through_a_live_server() {
        let store = std::sync::Arc::new(qaprox_store::Store::open(temp_store("submit")).unwrap());
        let server =
            qaprox_serve::Server::start(qaprox_serve::ServerConfig::default(), Some(store))
                .unwrap();
        let addr = server.local_addr().to_string();
        assert!(run(&with_tiny(&["submit"], &["--addr", &addr])).is_ok());
        // resubmit: served from the store this time
        assert!(run(&with_tiny(&["submit"], &["--addr", &addr])).is_ok());
        let mut back: Vec<&str> = vec!["--addr", &addr, "--op", "run", "--cx-error", "0.1"];
        back.push("--no-wait");
        assert!(run(&with_tiny(&["submit"], &back)).is_ok());
        assert!(run(&["submit", "--addr", &addr, "--op", "frobnicate"]).is_err());
        server.shutdown();
    }

    #[test]
    fn submit_reports_connection_failures() {
        // a port nothing listens on
        let e = run(&["submit", "--addr", "127.0.0.1:1", "--no-wait"]).unwrap_err();
        assert!(e.to_string().contains("connect"), "{e}");
    }

    #[test]
    fn jobs_flag_validates_and_applies() {
        assert!(run(&["devices", "--jobs", "0"]).is_err());
        assert!(run(&["devices", "--jobs", "abc"]).is_err());
        assert!(run(&["devices", "--jobs", "2"]).is_ok());
        assert_eq!(qaprox_linalg::parallel::max_threads(), 2);
        qaprox_linalg::parallel::set_max_threads(0); // restore the default
    }

    #[test]
    fn serve_rejects_bad_options() {
        assert!(run(&["serve", "--workers", "0", "--no-store"]).is_err());
        assert!(run(&["serve", "--timeout-secs", "abc", "--no-store"]).is_err());
        assert!(run(&["serve", "--max-queued-cost", "abc", "--no-store"]).is_err());
        assert!(run(&["serve", "--stall-timeout-secs", "abc", "--no-store"]).is_err());
        assert!(run(&["serve", "--addr", "256.0.0.1:99999", "--no-store"]).is_err());
    }

    fn temp_qasm(name: &str, body: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn lint_passes_clean_circuits() {
        let p = temp_qasm(
            "qaprox_lint_clean.qasm",
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        );
        assert!(run(&["lint", &p]).is_ok());
        assert!(run(&["lint", &p, "--format", "json"]).is_ok());
        assert!(run(&["lint", &p, "--device", "ourense"]).is_ok());
    }

    #[test]
    fn lint_fails_on_defects_and_respects_levels() {
        let p = temp_qasm(
            "qaprox_lint_bad.qasm",
            "qreg q[2];\nh q[7];\ncx q[0],q[0];\n",
        );
        let e = run(&["lint", &p]).unwrap_err();
        assert!(e.to_string().contains("error"), "{e}");
        assert_eq!(e.exit_code(), 3, "findings map to the findings exit code");
        // demoting both codes to allow silences the failure
        assert!(run(&["lint", &p, "--allow", "QA101,QA102"]).is_ok());
        // an unknown code is rejected up front
        assert!(run(&["lint", &p, "--deny", "QA999"]).is_err());
    }

    #[test]
    fn lint_strict_connectivity_flags_unrouted_gates() {
        // ourense has no (0,4) edge: --device now implies strict connectivity,
        // so the unrouted gate errors unless QA106 is explicitly demoted
        let p = temp_qasm("qaprox_lint_conn.qasm", "qreg q[5];\ncx q[0],q[4];\n");
        assert!(run(&["lint", &p, "--device", "ourense"]).is_err());
        assert!(run(&["lint", &p, "--device", "ourense", "--warn", "QA106"]).is_ok());
        assert!(run(&["lint", &p, "--device", "ourense", "--strict-connectivity"]).is_err());
        // without a device there is no coupling map to violate
        assert!(run(&["lint", &p]).is_ok());
    }

    #[test]
    fn lint_recurses_directories_and_reports_dataflow_codes() {
        let dir = std::env::temp_dir().join(format!("qaprox-lint-dir-{}", std::process::id()));
        let sub = dir.join("nested");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(
            dir.join("clean.qasm"),
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        )
        .unwrap();
        // h;h cancels: QA302 fires (warn by default, deniable)
        std::fs::write(sub.join("pair.qasm"), "qreg q[1];\nh q[0];\nh q[0];\n").unwrap();
        std::fs::write(sub.join("notes.txt"), "not qasm").unwrap();
        let d = dir.to_string_lossy().into_owned();
        assert!(run(&["lint", &d]).is_ok());
        assert!(run(&["lint", &d, "--deny", "QA302"]).is_err());
        // a directory without any .qasm files is a usage error
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        let e = empty.to_string_lossy().into_owned();
        assert!(run(&["lint", &e]).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lint_understands_measurement_programs() {
        // gate after final measurement (QA304) + unread clbit via out-of-range
        // measure target (QA306) both surface through the CLI
        let p = temp_qasm(
            "qaprox_lint_meas.qasm",
            "qreg q[2];\ncreg c[1];\nmeasure q[0] -> c[0];\nx q[0];\n",
        );
        assert!(run(&["lint", &p]).is_ok());
        assert!(run(&["lint", &p, "--deny", "QA304"]).is_err());
    }

    #[test]
    fn analyze_reference_circuit_and_thresholds() {
        assert!(run(&["analyze", "--qubits", "3", "--steps", "2"]).is_ok());
        assert!(run(&["analyze", "--format", "json"]).is_ok());
        // an impossible fidelity floor at deny level fails the command
        assert!(run(&["analyze", "--min-fidelity", "1.5", "--deny", "QA401"]).is_err());
        // same floor at the default warn level merely reports
        assert!(run(&["analyze", "--min-fidelity", "1.5"]).is_ok());
        assert!(run(&["analyze", "--device", "nowhere"]).is_err());
        assert!(run(&["analyze", "--format", "yaml"]).is_err());
        assert!(run(&["analyze", "--cx-error", "abc"]).is_err());
    }

    #[test]
    fn analyze_qasm_files_and_relaxation_toggle() {
        let p = temp_qasm(
            "qaprox_analyze.qasm",
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\n",
        );
        assert!(run(&["analyze", &p]).is_ok());
        assert!(run(&["analyze", &p, "--no-relaxation", "--no-readout"]).is_ok());
        assert!(run(&["analyze", &p, "--cx-error", "0.2", "--format", "json"]).is_ok());
        // a 6-qubit circuit exceeds 5-qubit ourense but fits 27-qubit toronto
        let big = temp_qasm("qaprox_analyze_big.qasm", "qreg q[6];\nh q[0];\n");
        assert!(run(&["analyze", &big, "--device", "ourense"]).is_err());
        assert!(run(&["analyze", &big, "--device", "toronto"]).is_ok());
    }

    #[test]
    fn lint_rejects_bad_usage() {
        assert!(run(&["lint"]).is_err());
        assert!(run(&["lint", "/nonexistent/file.qasm"]).is_err());
        let p = temp_qasm("qaprox_lint_fmt.qasm", "qreg q[1];\nx q[0];\n");
        assert!(run(&["lint", &p, "--format", "yaml"]).is_err());
    }

    #[test]
    fn run_rejects_bad_inputs() {
        assert!(run(&["run", "--qubits", "9"]).is_err());
        assert!(run(&["run", "--device", "nowhere"]).is_err());
        assert!(run(&["frobnicate"]).is_err());
        // trajectory-specific usage errors
        assert!(run(&["run", "--backend", "frobnicate", "--no-store"]).is_err());
        assert!(run(&["run", "--backend", "trajectory", "--hardware", "--no-store"]).is_err());
        assert!(run(&["run", "--shots", "abc", "--no-store"]).is_err());
        // wide widths still need the trajectory backend...
        assert!(run(&["run", "--qubits", "8", "--device", "toronto", "--no-store"]).is_err());
        // ...and a device wide enough to hold them
        assert!(run(&[
            "run",
            "--qubits",
            "8",
            "--backend",
            "trajectory",
            "--device",
            "ourense",
            "--no-store"
        ])
        .is_err());
    }

    #[test]
    fn run_trajectory_backend_narrow_and_wide() {
        // narrow: the trajectory backend scores a synthesized population
        assert!(run(&with_tiny(
            &["run"],
            &["--backend", "trajectory", "--shots", "16", "--no-store"]
        ))
        .is_ok());
        // wide: past the synthesis cap, straight to Trotter truncations on
        // the 27-qubit heavy-hex device (tiny shot count keeps it fast)
        assert!(run(&[
            "run",
            "--workload",
            "tfim",
            "--qubits",
            "8",
            "--steps",
            "2",
            "--backend",
            "trajectory",
            "--shots",
            "8",
            "--device",
            "toronto",
            "--no-store",
        ])
        .is_ok());
        // show/analyze inspect the wide reference statically
        assert!(run(&[
            "show",
            "--workload",
            "tfim",
            "--qubits",
            "27",
            "--steps",
            "2"
        ])
        .is_ok());
        assert!(run(&["analyze", "--qubits", "27", "--steps", "2", "--device", "toronto"]).is_ok());
    }

    #[test]
    fn backend_env_var_applies_when_flag_absent() {
        let args = parse(["run", "--qubits", "2"].iter().map(|s| s.to_string())).unwrap();
        std::env::set_var("QAPROX_BACKEND", "trajectory");
        let spec = run_spec_from(&args).unwrap();
        std::env::remove_var("QAPROX_BACKEND");
        assert_eq!(spec.backend.as_deref(), Some("trajectory"));
        // the explicit flag wins over the env
        let args = parse(["run", "--backend", "other"].iter().map(|s| s.to_string())).unwrap();
        std::env::set_var("QAPROX_BACKEND", "trajectory");
        let spec = run_spec_from(&args).unwrap();
        std::env::remove_var("QAPROX_BACKEND");
        assert_eq!(spec.backend.as_deref(), Some("other"));
        // and no flag, no env means the default density-matrix path
        let args = parse(["run"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(run_spec_from(&args).unwrap().backend, None);
    }

    #[test]
    fn analyze_check_shots_cross_checks_the_prediction() {
        assert!(run(&[
            "analyze",
            "--qubits",
            "3",
            "--steps",
            "2",
            "--check-shots",
            "64"
        ])
        .is_ok());
        assert!(run(&[
            "analyze",
            "--qubits",
            "3",
            "--steps",
            "2",
            "--check-shots",
            "32",
            "--format",
            "json"
        ])
        .is_ok());
        assert!(run(&["analyze", "--check-shots", "abc"]).is_err());
        assert!(run(&["analyze", "--check-shots", "0"]).is_err());
    }

    #[test]
    fn analyze_check_shots_batches_across_files() {
        // three files, two widths: the cross-check groups by width and runs
        // one shot-batched trajectory pass per group
        let a = temp_qasm("qaprox_ck_a.qasm", "qreg q[2];\nh q[0];\ncx q[0],q[1];\n");
        let b = temp_qasm("qaprox_ck_b.qasm", "qreg q[2];\nx q[0];\n");
        let c = temp_qasm(
            "qaprox_ck_c.qasm",
            "qreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n",
        );
        assert!(run(&["analyze", &a, &b, &c, "--check-shots", "16"]).is_ok());
    }

    #[test]
    fn check_shots_health_reports_count_every_clean_shot() {
        let args = parse(
            ["analyze", "--qubits", "2", "--steps", "2"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        let (_, cal) = calibration_from(&args).unwrap();
        let circuit = reference_circuit(&args).unwrap();
        let checks = trajectory_check_all(&[("ref".to_string(), circuit)], &cal, 8, &args).unwrap();
        let (tvd, fidelity, health) = checks[0];
        // a healthy run surfaces a full-budget report, not a silent drop
        assert!(health.is_healthy());
        assert_eq!(health.clean_shots, 8);
        assert_eq!(health.aborted_shots, 0);
        assert!((0.0..=1.0).contains(&tvd));
        assert!(fidelity > 0.0);
    }

    #[test]
    fn equiv_certifies_identical_files_and_flags_distant_pairs() {
        let a = temp_qasm(
            "qaprox_equiv_a.qasm",
            "qreg q[2];\nh q[0];\ncx q[0],q[1];\n",
        );
        let b = temp_qasm("qaprox_equiv_b.qasm", "qreg q[2];\nx q[0];\nx q[1];\n");
        assert!(run(&["equiv", &a, &a]).is_ok());
        assert!(run(&["equiv", &a, &a, "--format", "json"]).is_ok());
        // a provable violation is deny-level by default (QA501)
        let e = run(&["equiv", &a, &b, "--epsilon", "0.01", "--cx-error", "0.0"]).unwrap_err();
        assert!(matches!(e, CliError::Findings(_)), "{e}");
        // demoting QA501 turns the same run into a warning-only pass
        assert!(run(&[
            "equiv",
            &a,
            &b,
            "--epsilon",
            "0.01",
            "--cx-error",
            "0.0",
            "--warn",
            "QA501"
        ])
        .is_ok());
    }

    #[test]
    fn equiv_rejects_bad_usage() {
        let a = temp_qasm("qaprox_equiv_usage.qasm", "qreg q[1];\nx q[0];\n");
        let wide = temp_qasm("qaprox_equiv_wide.qasm", "qreg q[2];\nx q[0];\n");
        assert!(matches!(
            run(&["equiv", &a]).unwrap_err(),
            CliError::Failure(_)
        ));
        assert!(matches!(
            run(&["equiv", &a, &wide]).unwrap_err(),
            CliError::Failure(_)
        ));
        assert!(run(&["equiv", &a, &a, "--format", "yaml"]).is_err());
        assert!(run(&["equiv", &a, &a, "--epsilon", "abc"]).is_err());
        assert!(run(&["equiv", &a, &a, "--epsilon", "-1"]).is_err());
        assert!(run(&["equiv", &a, &a, "--device", "nowhere"]).is_err());
        assert!(run(&["equiv", &a, "/nonexistent/b.qasm"]).is_err());
    }

    /// The exit-code contract for every static-analysis subcommand: findings
    /// exit 3, operational failures exit 1 — consistently across
    /// lint/analyze/equiv.
    #[test]
    fn static_analysis_exit_codes_are_consistent() {
        let bad = temp_qasm("qaprox_exit_bad.qasm", "qreg q[2];\nh q[7];\n");
        let clean = temp_qasm("qaprox_exit_clean.qasm", "qreg q[1];\nx q[0];\n");
        let wide2 = temp_qasm("qaprox_exit_wide.qasm", "qreg q[1];\nh q[0];\n");

        // findings -> exit 3
        assert_eq!(run(&["lint", &bad]).unwrap_err().exit_code(), 3);
        assert_eq!(
            run(&[
                "analyze",
                &clean,
                "--min-fidelity",
                "1.5",
                "--deny",
                "QA401"
            ])
            .unwrap_err()
            .exit_code(),
            3
        );
        assert_eq!(
            run(&[
                "equiv",
                &clean,
                &wide2,
                "--epsilon",
                "0.0",
                "--cx-error",
                "0.0"
            ])
            .unwrap_err()
            .exit_code(),
            3
        );

        // operational failures -> exit 1
        assert_eq!(
            run(&["lint", "/nonexistent.qasm"]).unwrap_err().exit_code(),
            1
        );
        assert_eq!(
            run(&["analyze", "--device", "nowhere"])
                .unwrap_err()
                .exit_code(),
            1
        );
        assert_eq!(run(&["equiv", &clean]).unwrap_err().exit_code(), 1);
    }
}
