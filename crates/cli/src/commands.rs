//! Subcommand implementations.

use crate::args::Args;
use qaprox::prelude::*;
use qaprox_synth::InstantiateConfig;

/// Help text.
pub const USAGE: &str = "\
qaprox - approximate quantum circuits on noisy devices

USAGE:
  qaprox <subcommand> [--option value]...

SUBCOMMANDS:
  synth     synthesize an approximate-circuit population for a workload
              --workload tfim|grover|toffoli   (default tfim)
              --qubits N                       (default 3)
              --steps K      TFIM timestep     (default 6)
              --max-cnots D                    (default 6)
              --max-hs T     selection cutoff  (default 0.12)
  run       evaluate the population against the reference under noise
              (synth options plus:)
              --device NAME  ourense|rome|santiago|toronto|manhattan
              --cx-error E   override uniform CNOT error
              --hardware     use the hardware-emulation backend
  devices   list the built-in calibration snapshots
  report    print a device noise report (--device NAME)
  show      dump the reference circuit as QASM (workload options)
  help      this text
";

/// Routes a parsed command line.
pub fn dispatch(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "synth" => cmd_synth(args),
        "run" => cmd_run(args),
        "devices" => cmd_devices(),
        "report" => cmd_report(args),
        "show" => cmd_show(args),
        "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'\n\n{USAGE}")),
    }
}

/// Builds the reference circuit for the requested workload.
fn reference_circuit(args: &Args) -> Result<Circuit, String> {
    let workload = args.str_or("workload", "tfim");
    let qubits: usize = args.get_or("qubits", 3)?;
    if !(2..=6).contains(&qubits) {
        return Err("supported --qubits range is 2..=6".into());
    }
    match workload.as_str() {
        "tfim" => {
            let steps: usize = args.get_or("steps", 6)?;
            let params = TfimParams::paper_defaults(qubits);
            Ok(tfim_circuit(&params, steps))
        }
        "grover" => {
            let target = (1usize << qubits) - 1;
            let iters = qaprox_algos::grover::optimal_iterations(qubits);
            Ok(grover_circuit(qubits, target, iters))
        }
        "toffoli" => Ok(mct_reference(qubits)),
        other => Err(format!("unknown workload '{other}' (tfim|grover|toffoli)")),
    }
}

fn workflow_from(args: &Args, qubits: usize) -> Result<Workflow, String> {
    let max_cnots: usize = args.get_or("max-cnots", 6)?;
    let max_hs: f64 = args.get_or("max-hs", 0.12)?;
    Ok(Workflow {
        topology: Topology::linear(qubits),
        engine: Engine::QSearch(QSearchConfig {
            max_cnots,
            max_nodes: args.get_or("max-nodes", 150)?,
            beam_width: 4,
            instantiate: InstantiateConfig { starts: 2, ..Default::default() },
            ..Default::default()
        }),
        max_hs,
    })
}

fn cmd_synth(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    let qubits = reference.num_qubits();
    let wf = workflow_from(args, qubits)?;
    let target = Workflow::target_unitary(&reference);
    let pop = wf.generate(&target);
    println!(
        "# reference: {} gates, {} CNOTs; explored {} candidates, kept {}",
        reference.len(),
        reference.cx_count(),
        pop.explored,
        pop.circuits.len()
    );
    println!("cnots,hs_distance,gates,depth");
    for ap in &pop.circuits {
        println!(
            "{},{:.5},{},{}",
            ap.cnots,
            ap.hs_distance,
            ap.circuit.len(),
            ap.circuit.depth()
        );
    }
    println!(
        "# minimal-HS: {} CNOTs at {:.2e}",
        pop.minimal_hs.cnots, pop.minimal_hs.hs_distance
    );
    Ok(())
}

fn backend_from(args: &Args, qubits: usize) -> Result<Backend, String> {
    let device = args.str_or("device", "ourense");
    let cal = devices::by_name(&device).ok_or_else(|| format!("unknown device '{device}'"))?;
    if qubits > cal.topology.num_qubits() {
        return Err(format!("device {device} has too few qubits for --qubits {qubits}"));
    }
    let mut induced = cal.induced(&(0..qubits).collect::<Vec<_>>());
    if let Some(raw) = args.options.get("cx-error") {
        let eps: f64 = raw
            .parse()
            .map_err(|_| format!("--cx-error: cannot parse '{raw}'"))?;
        induced = induced.with_uniform_cx_error(eps);
    }
    let model = NoiseModel::from_calibration(induced);
    Ok(if args.flag("hardware") {
        Backend::Hardware(HardwareBackend::new(model))
    } else {
        Backend::Noisy(model)
    })
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    let qubits = reference.num_qubits();
    let wf = workflow_from(args, qubits)?;
    let backend = backend_from(args, qubits)?;

    let target = Workflow::target_unitary(&reference);
    let pop = wf.generate(&target);
    if pop.circuits.is_empty() {
        return Err("selection kept no circuits; raise --max-hs or --max-cnots".into());
    }

    let ideal = qaprox_sim::statevector::probabilities(&reference);
    let ref_probs = backend.probabilities(&reference, 0);
    let ref_tvd = qaprox_metrics::total_variation(&ref_probs, &ideal);
    println!(
        "# reference: {} CNOTs, TVD to ideal under noise = {ref_tvd:.4}",
        reference.cx_count()
    );

    let scored = execute_and_score(&pop.circuits, &backend, |_, probs| {
        qaprox_metrics::total_variation(probs, &ideal)
    });
    println!("cnots,hs_distance,tvd_to_ideal,beats_reference");
    let mut wins = 0usize;
    for s in &scored {
        let beats = s.score < ref_tvd;
        wins += beats as usize;
        println!("{},{:.5},{:.4},{}", s.cnots, s.hs_distance, s.score, beats);
    }
    println!(
        "# {wins}/{} approximate circuits beat the exact reference",
        scored.len()
    );
    Ok(())
}

fn cmd_devices() -> Result<(), String> {
    println!("machine,qubits,avg_cx_error,avg_readout_error");
    for cal in devices::all_devices() {
        println!(
            "{},{},{:.5},{:.5}",
            cal.machine,
            cal.topology.num_qubits(),
            cal.avg_cx_error(),
            cal.avg_readout_error()
        );
    }
    Ok(())
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let device = args.str_or("device", "toronto");
    let cal = devices::by_name(&device).ok_or_else(|| format!("unknown device '{device}'"))?;
    print!("{}", qaprox_device::render_report(&cal));
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let reference = reference_circuit(args)?;
    print!("{}", qaprox_circuit::qasm::to_qasm(&reference));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn run(v: &[&str]) -> Result<(), String> {
        dispatch(&parse(v.iter().map(|s| s.to_string())).unwrap())
    }

    #[test]
    fn devices_and_report_succeed() {
        assert!(run(&["devices"]).is_ok());
        assert!(run(&["report", "--device", "ourense"]).is_ok());
        assert!(run(&["report", "--device", "nope"]).is_err());
    }

    #[test]
    fn show_emits_qasm_for_all_workloads() {
        for w in ["tfim", "grover", "toffoli"] {
            assert!(run(&["show", "--workload", w, "--qubits", "3"]).is_ok(), "{w}");
        }
        assert!(run(&["show", "--workload", "unknown"]).is_err());
    }

    #[test]
    fn synth_small_population() {
        assert!(run(&[
            "synth", "--workload", "tfim", "--qubits", "2", "--steps", "2",
            "--max-cnots", "3", "--max-nodes", "25", "--max-hs", "0.4",
        ])
        .is_ok());
    }

    #[test]
    fn run_small_end_to_end() {
        assert!(run(&[
            "run", "--workload", "tfim", "--qubits", "2", "--steps", "3",
            "--max-cnots", "3", "--max-nodes", "25", "--max-hs", "0.4",
            "--device", "ourense", "--cx-error", "0.1",
        ])
        .is_ok());
    }

    #[test]
    fn run_rejects_bad_inputs() {
        assert!(run(&["run", "--qubits", "9"]).is_err());
        assert!(run(&["run", "--device", "nowhere"]).is_err());
        assert!(run(&["frobnicate"]).is_err());
    }
}
