//! Deterministic failpoint registry for the qaprox service stack.
//!
//! The paper's pipeline talks to flaky physical backends: IBM jobs fail
//! transiently, queues reject work, calibrations drift mid-run. Testing the
//! service layer's reaction to those failures requires *provoking* them on
//! purpose, reproducibly. This crate provides named failpoints — code sites
//! that can be armed at runtime to inject an error return, a panic, a delay,
//! or a torn write — with triggering driven by the in-repo SplitMix64 RNG so
//! a chaos schedule is a pure function of its seed.
//!
//! # Zero cost when disabled
//!
//! The `fail_point!` macros are defined twice, gated on this crate's
//! `failpoints` feature. Without the feature every expansion is an empty
//! block: the registry is never consulted, the handler closure is never
//! constructed, and instrumented code compiles exactly as if the macro were
//! not there. Cargo feature unification means enabling `failpoints` on any
//! crate in the build graph arms every instrumented site at once.
//!
//! # Spec grammar (`QAPROX_FAILPOINTS`)
//!
//! ```text
//! spec     := point (',' point)*
//! point    := name '=' trigger ('->' action)?
//! trigger  := 'always' | 'never' | 'after:' N | 'prob:' P (';seed=' S)?
//! action   := 'error' | 'panic' | 'torn' | 'sleep:' MS
//! ```
//!
//! `P` accepts both `0.3` and `p0.3`. `after:N` passes the first `N`
//! evaluations, fires exactly once on evaluation `N+1`, then disarms —
//! the shape used to crash a job at a known checkpoint. `prob:P` fires each
//! evaluation independently with probability `P` from a per-point SplitMix64
//! stream (seeded by `S`, or by a stable hash of the point name when
//! omitted). The default action is `error`.
//!
//! Example: `store.write=prob:p0.1;seed=7->torn,synth.round=after:2->panic`.

use qaprox_linalg::hashing::hash128;
use qaprox_linalg::random::{Rng, SplitMix64};
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Return an injected error from the instrumented function (the
    /// `fail_point!(name, handler)` form maps this to the site's error type).
    Error,
    /// Panic with [`INJECTED_PANIC_MARKER`] in the message. Sites treat this
    /// as an emulated process crash.
    Panic,
    /// Sleep for the given number of milliseconds, then continue normally.
    Sleep(u64),
    /// Corrupt the write in progress (only meaningful at write sites, which
    /// handle it explicitly; elsewhere it behaves like [`FaultAction::Error`]).
    Torn,
}

/// When an armed failpoint fires.
#[derive(Debug, Clone)]
enum Trigger {
    Always,
    Never,
    /// Pass the first `pass` evaluations, fire once, then disarm.
    After {
        pass: u64,
        fired: bool,
    },
    /// Fire each evaluation independently with probability `p`.
    Prob {
        p: f64,
        rng: SplitMix64,
    },
}

#[derive(Debug, Clone)]
struct Point {
    trigger: Trigger,
    action: FaultAction,
    evals: u64,
    fires: u64,
}

fn registry() -> &'static Mutex<HashMap<String, Point>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Point>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_registry() -> MutexGuard<'static, HashMap<String, Point>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Marker carried by every injected panic message. Catch-unwind sites use it
/// to distinguish an emulated crash from a genuine engine bug.
pub const INJECTED_PANIC_MARKER: &str = "qaprox-fault injected panic";

/// Prefix that classifies an error message as transient (retryable).
pub const TRANSIENT_PREFIX: &str = "transient:";

/// The error message an [`FaultAction::Error`] injection produces at `name`.
/// Carries [`TRANSIENT_PREFIX`] so retry layers classify it as retryable.
pub fn injected_error(name: &str) -> String {
    format!("{TRANSIENT_PREFIX} injected fault at {name}")
}

/// True when an error message is classified transient (worth retrying).
pub fn is_transient(msg: &str) -> bool {
    msg.contains(TRANSIENT_PREFIX)
}

/// Panics with the injected-crash marker. Called by the `fail_point!`
/// expansion; public only for the macro.
pub fn panic_now(name: &str) -> ! {
    panic!("{INJECTED_PANIC_MARKER} at {name}");
}

/// Sleeps `ms` milliseconds. Called by the `fail_point!` expansion; public
/// only for the macro.
pub fn sleep_now(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// True when a panic payload came from an injected [`FaultAction::Panic`].
pub fn is_injected_panic(msg: &str) -> bool {
    msg.contains(INJECTED_PANIC_MARKER)
}

fn parse_action(s: &str) -> Result<FaultAction, String> {
    if let Some(ms) = s.strip_prefix("sleep:") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("invalid sleep duration {ms:?}"))?;
        return Ok(FaultAction::Sleep(ms));
    }
    match s {
        "error" => Ok(FaultAction::Error),
        "panic" => Ok(FaultAction::Panic),
        "torn" => Ok(FaultAction::Torn),
        other => Err(format!("unknown fault action {other:?}")),
    }
}

fn parse_trigger(s: &str, name: &str) -> Result<Trigger, String> {
    let mut parts = s.split(';');
    let head = parts.next().unwrap_or("");
    let mut seed: Option<u64> = None;
    for extra in parts {
        if let Some(v) = extra.strip_prefix("seed=") {
            seed = Some(v.parse().map_err(|_| format!("invalid seed {v:?}"))?);
        } else {
            return Err(format!("unknown trigger option {extra:?}"));
        }
    }
    if head == "always" {
        return Ok(Trigger::Always);
    }
    if head == "never" || head == "off" {
        return Ok(Trigger::Never);
    }
    if let Some(n) = head.strip_prefix("after:") {
        let pass: u64 = n.parse().map_err(|_| format!("invalid count {n:?}"))?;
        return Ok(Trigger::After { pass, fired: false });
    }
    if let Some(p) = head.strip_prefix("prob:") {
        let p = p.strip_prefix('p').unwrap_or(p);
        let p: f64 = p
            .parse()
            .map_err(|_| format!("invalid probability {p:?}"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} outside [0, 1]"));
        }
        // Stable per-name default seed so unseeded specs are still
        // deterministic run to run.
        let seed = seed.unwrap_or_else(|| hash128(name.as_bytes()).0);
        return Ok(Trigger::Prob {
            p,
            rng: SplitMix64::seed_from_u64(seed),
        });
    }
    Err(format!("unknown trigger {head:?}"))
}

fn parse_point(item: &str) -> Result<(String, Point), String> {
    let (name, rest) = item
        .split_once('=')
        .ok_or_else(|| format!("failpoint spec {item:?} missing '='"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("failpoint spec {item:?} has an empty name"));
    }
    let (trigger, action) = match rest.split_once("->") {
        Some((t, a)) => (parse_trigger(t.trim(), name)?, parse_action(a.trim())?),
        None => (parse_trigger(rest.trim(), name)?, FaultAction::Error),
    };
    Ok((
        name.to_string(),
        Point {
            trigger,
            action,
            evals: 0,
            fires: 0,
        },
    ))
}

/// Arms the failpoints described by `spec` (see the module docs for the
/// grammar), merging into whatever is already configured. Returns the number
/// of points parsed.
pub fn configure(spec: &str) -> Result<usize, String> {
    let mut parsed = Vec::new();
    for item in spec.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        parsed.push(parse_point(item)?);
    }
    let mut reg = lock_registry();
    let n = parsed.len();
    for (name, point) in parsed {
        reg.insert(name, point);
    }
    Ok(n)
}

/// Arms failpoints from the `QAPROX_FAILPOINTS` environment variable.
/// Returns how many were configured (0 when the variable is unset or empty).
pub fn configure_from_env() -> Result<usize, String> {
    match std::env::var("QAPROX_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => configure(&spec),
        _ => Ok(0),
    }
}

/// Disarms every failpoint and forgets all counters.
pub fn clear() {
    lock_registry().clear();
}

/// Evaluates the failpoint `name`: returns the action to take when it fires,
/// `None` when it passes (or is not armed). Called by the `fail_point!`
/// expansion; callers outside the macro are tests and diagnostics.
pub fn eval(name: &str) -> Option<FaultAction> {
    let mut reg = lock_registry();
    let point = reg.get_mut(name)?;
    point.evals += 1;
    let evals = point.evals;
    let fire = match &mut point.trigger {
        Trigger::Always => true,
        Trigger::Never => false,
        Trigger::After { pass, fired } => {
            if *fired || evals <= *pass {
                false
            } else {
                *fired = true;
                true
            }
        }
        Trigger::Prob { p, rng } => rng.gen::<f64>() < *p,
    };
    if fire {
        point.fires += 1;
        Some(point.action.clone())
    } else {
        None
    }
}

/// How many times `name` has been evaluated since it was armed.
pub fn evals(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |p| p.evals)
}

/// How many times `name` has fired since it was armed.
pub fn fires(name: &str) -> u64 {
    lock_registry().get(name).map_or(0, |p| p.fires)
}

/// Names of all armed failpoints, sorted.
pub fn armed() -> Vec<String> {
    let mut names: Vec<String> = lock_registry().keys().cloned().collect();
    names.sort();
    names
}

/// RAII guard for fault-injection tests. The registry is process-global and
/// Rust runs tests concurrently, so every test that arms failpoints must
/// serialize through this guard: `Scenario::setup` takes a global lock,
/// clears the registry, arms `spec`, and disarms everything again on drop.
pub struct Scenario {
    _guard: MutexGuard<'static, ()>,
}

static SCENARIO_LOCK: Mutex<()> = Mutex::new(());

impl Scenario {
    /// Serializes the calling test, then arms exactly the points in `spec`.
    pub fn setup(spec: &str) -> Scenario {
        let guard = SCENARIO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        configure(spec).expect("invalid failpoint spec");
        Scenario { _guard: guard }
    }

    /// Re-arms mid-scenario (e.g. disarm a crash before a restart) without
    /// releasing the serialization lock.
    pub fn rearm(&self, spec: &str) {
        clear();
        configure(spec).expect("invalid failpoint spec");
    }
}

impl Drop for Scenario {
    fn drop(&mut self) {
        clear();
    }
}

/// Evaluates the failpoint `name` and acts on the result.
///
/// * `fail_point!("site")` — panic and sleep actions are honored; error and
///   torn actions are ignored (the site has no error channel).
/// * `fail_point!("site", handler)` — additionally, error and torn actions
///   `return handler(action)` from the enclosing function; the handler maps
///   the action to the site's return type (use [`injected_error`] for the
///   message so retry layers see a transient failure).
///
/// With the `failpoints` feature disabled both forms expand to an empty
/// block.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{
        match $crate::eval($name) {
            Some($crate::FaultAction::Panic) => $crate::panic_now($name),
            Some($crate::FaultAction::Sleep(ms)) => $crate::sleep_now(ms),
            Some(_) | None => {}
        }
    }};
    ($name:expr, $handler:expr) => {{
        match $crate::eval($name) {
            Some($crate::FaultAction::Panic) => $crate::panic_now($name),
            Some($crate::FaultAction::Sleep(ms)) => $crate::sleep_now(ms),
            Some(action) => return ($handler)(action),
            None => {}
        }
    }};
}

/// No-op expansion: the `failpoints` feature is off, so instrumented sites
/// compile to nothing.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {{}};
    ($name:expr, $handler:expr) => {{}};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_fires_with_default_error_action() {
        let _s = Scenario::setup("a=always");
        assert_eq!(eval("a"), Some(FaultAction::Error));
        assert_eq!(eval("a"), Some(FaultAction::Error));
        assert_eq!((evals("a"), fires("a")), (2, 2));
        assert_eq!(eval("unarmed"), None);
    }

    #[test]
    fn after_n_passes_then_fires_exactly_once() {
        let _s = Scenario::setup("a=after:2->panic");
        assert_eq!(eval("a"), None);
        assert_eq!(eval("a"), None);
        assert_eq!(eval("a"), Some(FaultAction::Panic));
        for _ in 0..10 {
            assert_eq!(eval("a"), None, "after:N must disarm once fired");
        }
        assert_eq!(fires("a"), 1);
    }

    #[test]
    fn prob_streams_are_seed_deterministic() {
        let run = |spec: &str| -> Vec<bool> {
            let _s = Scenario::setup(spec);
            (0..64).map(|_| eval("a").is_some()).collect()
        };
        let first = run("a=prob:p0.3;seed=7");
        assert_eq!(first, run("a=prob:0.3;seed=7"), "p-prefix form is equal");
        assert_ne!(first, run("a=prob:0.3;seed=8"), "seed changes the stream");
        let fired = first.iter().filter(|f| **f).count();
        assert!(
            (5..=30).contains(&fired),
            "p=0.3 over 64 draws, got {fired}"
        );
        // unseeded specs fall back to a stable per-name seed
        assert_eq!(run("a=prob:0.3"), run("a=prob:0.3"));
    }

    #[test]
    fn specs_parse_actions_options_and_reject_garbage() {
        let _s = Scenario::setup("a=never, b=always->sleep:5, c=prob:0.5;seed=1->torn");
        assert_eq!(eval("a"), None);
        assert_eq!(eval("b"), Some(FaultAction::Sleep(5)));
        assert_eq!(armed(), vec!["a", "b", "c"]);
        for bad in [
            "noequals",
            "x=sometimes",
            "x=prob:1.5",
            "x=after:many",
            "x=always->explode",
            "x=prob:0.5;jitter=2",
            "=always",
        ] {
            assert!(configure(bad).is_err(), "{bad:?} should be rejected");
        }
        // empty items are tolerated (trailing commas, unset env var)
        assert_eq!(configure("").unwrap(), 0);
    }

    #[test]
    fn transient_classification_round_trips() {
        assert!(is_transient(&injected_error("store.read")));
        assert!(injected_error("store.read").contains("store.read"));
        assert!(!is_transient("queue full"));
        assert!(is_injected_panic(&format!("{INJECTED_PANIC_MARKER} at x")));
        assert!(!is_injected_panic("index out of bounds"));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn enabled_macro_returns_through_the_handler() {
        let _s = Scenario::setup("site=after:1");
        let call = || -> Result<u32, String> {
            fail_point!("site", |_| Err(injected_error("site")));
            Ok(7)
        };
        assert_eq!(call(), Ok(7));
        let err = call().unwrap_err();
        assert!(is_transient(&err), "{err}");
        assert_eq!(call(), Ok(7), "after:1 disarms after firing");
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn enabled_macro_panics_with_the_crash_marker() {
        let _s = Scenario::setup("site=always->panic");
        let result = std::panic::catch_unwind(|| fail_point!("site"));
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(is_injected_panic(&msg), "{msg}");
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn disabled_macro_never_consults_the_registry() {
        let _s = Scenario::setup("site=always");
        let call = || -> Result<u32, String> {
            fail_point!("site", |_| Err(injected_error("site")));
            Ok(7)
        };
        assert_eq!(call(), Ok(7));
        assert_eq!(evals("site"), 0, "disabled macros must cost nothing");
    }
}
