//! Property-based tests for the workload generators.

use proptest::prelude::*;
use qaprox_algos::grover::{grover_circuit, oracle};
use qaprox_algos::mct::{mct_reference, mct_unitary, mcx, sqrt_unitary_2x2};
use qaprox_algos::tfim::{tfim_circuit, FieldSchedule, TfimParams};
use qaprox_circuit::Circuit;
use qaprox_linalg::random::haar_unitary;
use qaprox_metrics::{hs_distance, magnetization, probabilities};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tfim_circuit_cnot_count_formula(n in 2usize..5, steps in 1usize..12) {
        let p = TfimParams::paper_defaults(n);
        let c = tfim_circuit(&p, steps);
        prop_assert_eq!(c.cx_count(), 2 * (n - 1) * steps);
    }

    #[test]
    fn tfim_magnetization_stays_physical(n in 2usize..4, steps in 1usize..15,
                                          h in 0.0f64..3.0, dt in 0.01f64..0.3) {
        let p = TfimParams { num_qubits: n, j: 1.0, dt, schedule: FieldSchedule::Constant(h) };
        let c = tfim_circuit(&p, steps);
        let m = magnetization(&probabilities(&c.statevector()));
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&m));
    }

    #[test]
    fn grover_oracle_is_diagonal_with_single_flip(target in 0usize..8) {
        let mut c = Circuit::new(3);
        oracle(&mut c, target);
        let u = c.unitary();
        for col in 0..8 {
            let expect = if col == target { -1.0 } else { 1.0 };
            prop_assert!((u[(col, col)].re - expect).abs() < 1e-8);
            for row in 0..8 {
                if row != col {
                    prop_assert!(u[(row, col)].abs() < 1e-8);
                }
            }
        }
    }

    #[test]
    fn grover_amplifies_any_target(target in 0usize..8) {
        let c = grover_circuit(3, target, 2);
        let p = probabilities(&c.statevector());
        prop_assert!(p[target] > 0.9, "target {target}: {p:?}");
    }

    #[test]
    fn sqrt_unitary_squares_back_for_haar(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(2, &mut rng);
        let v = sqrt_unitary_2x2(&u);
        prop_assert!(v.is_unitary(1e-9));
        prop_assert!(v.matmul(&v).approx_eq(&u, 1e-8));
    }

    #[test]
    fn mcx_truth_table_on_random_inputs(n in 3usize..5, input_seed in 0usize..1000) {
        let dim = 1usize << n;
        let input = input_seed % dim;
        let mut c = Circuit::new(n);
        let controls: Vec<usize> = (0..n - 1).collect();
        mcx(&mut c, &controls, n - 1);
        let sv = qaprox_sim::statevector::run_from_basis(&c, input);
        let controls_mask = dim / 2 - 1;
        let expect = if input & controls_mask == controls_mask {
            input ^ (dim / 2)
        } else {
            input
        };
        prop_assert!(
            (sv[expect].abs() - 1.0).abs() < 1e-7,
            "input {input:0width$b} should map to {expect:0width$b}",
            width = n
        );
    }
}

#[test]
fn mct_reference_matches_unitary_for_all_widths() {
    for n in 2..=5 {
        let d = hs_distance(&mct_reference(n).unitary(), &mct_unitary(n));
        assert!(d < 1e-7, "{n}-qubit MCT distance {d}");
    }
}
