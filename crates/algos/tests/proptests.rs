//! Property-style tests for the workload generators, driven by the in-repo
//! seeded RNG.

use qaprox_algos::grover::{grover_circuit, oracle};
use qaprox_algos::mct::{mct_reference, mct_unitary, mcx, sqrt_unitary_2x2};
use qaprox_algos::tfim::{tfim_circuit, FieldSchedule, TfimParams};
use qaprox_circuit::Circuit;
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_metrics::{hs_distance, magnetization, probabilities};

const CASES: usize = 32;

#[test]
fn tfim_circuit_cnot_count_formula() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..5);
        let steps = rng.gen_range(1usize..12);
        let p = TfimParams::paper_defaults(n);
        let c = tfim_circuit(&p, steps);
        assert_eq!(c.cx_count(), 2 * (n - 1) * steps);
    }
}

#[test]
fn tfim_magnetization_stays_physical() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..4);
        let steps = rng.gen_range(1usize..15);
        let h = rng.gen_range(0.0..3.0);
        let dt = rng.gen_range(0.01..0.3);
        let p = TfimParams {
            num_qubits: n,
            j: 1.0,
            dt,
            schedule: FieldSchedule::Constant(h),
        };
        let c = tfim_circuit(&p, steps);
        let m = magnetization(&probabilities(&c.statevector()));
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&m));
    }
}

#[test]
fn grover_oracle_is_diagonal_with_single_flip() {
    for target in 0usize..8 {
        let mut c = Circuit::new(3);
        oracle(&mut c, target);
        let u = c.unitary();
        for col in 0..8 {
            let expect = if col == target { -1.0 } else { 1.0 };
            assert!((u[(col, col)].re - expect).abs() < 1e-8);
            for row in 0..8 {
                if row != col {
                    assert!(u[(row, col)].abs() < 1e-8);
                }
            }
        }
    }
}

#[test]
fn grover_amplifies_any_target() {
    for target in 0usize..8 {
        let c = grover_circuit(3, target, 2);
        let p = probabilities(&c.statevector());
        assert!(p[target] > 0.9, "target {target}: {p:?}");
    }
}

#[test]
fn sqrt_unitary_squares_back_for_haar() {
    for seed in 0..CASES as u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = haar_unitary(2, &mut rng);
        let v = sqrt_unitary_2x2(&u);
        assert!(v.is_unitary(1e-9));
        assert!(v.matmul(&v).approx_eq(&u, 1e-8));
    }
}

#[test]
fn mcx_truth_table_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..5);
        let dim = 1usize << n;
        let input = rng.gen_range(0..dim);
        let mut c = Circuit::new(n);
        let controls: Vec<usize> = (0..n - 1).collect();
        mcx(&mut c, &controls, n - 1);
        let sv = qaprox_sim::statevector::run_from_basis(&c, input);
        let controls_mask = dim / 2 - 1;
        let expect = if input & controls_mask == controls_mask {
            input ^ (dim / 2)
        } else {
            input
        };
        assert!(
            (sv[expect].abs() - 1.0).abs() < 1e-7,
            "input {input:0width$b} should map to {expect:0width$b}",
            width = n
        );
    }
}

#[test]
fn mct_reference_matches_unitary_for_all_widths() {
    for n in 2..=5 {
        let d = hs_distance(&mct_reference(n).unitary(), &mct_unitary(n));
        assert!(d < 1e-7, "{n}-qubit MCT distance {d}");
    }
}
