//! Quantum Fourier transform — an extra CNOT-heavy workload beyond the
//! paper's three, used by examples and ablation benches.

use qaprox_circuit::{Circuit, Gate};

/// Builds the n-qubit QFT (with final bit-reversal swaps).
pub fn qft_circuit(num_qubits: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for i in (0..num_qubits).rev() {
        c.h(i);
        for j in (0..i).rev() {
            let angle = std::f64::consts::PI / (1 << (i - j)) as f64;
            c.push(Gate::CP(angle), &[j, i]);
        }
    }
    for q in 0..num_qubits / 2 {
        c.swap(q, num_qubits - 1 - q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::matrix::Matrix;
    use qaprox_linalg::Complex64;
    use qaprox_metrics::hs_distance;

    fn dft_matrix(n: usize) -> Matrix {
        let dim = 1usize << n;
        let mut m = Matrix::zeros(dim, dim);
        let norm = 1.0 / (dim as f64).sqrt();
        for i in 0..dim {
            for j in 0..dim {
                let phase = std::f64::consts::TAU * (i * j) as f64 / dim as f64;
                m[(i, j)] = Complex64::cis(phase) * norm;
            }
        }
        m
    }

    #[test]
    fn qft_matches_dft_matrix() {
        for n in [1usize, 2, 3, 4] {
            let c = qft_circuit(n);
            let d = hs_distance(&c.unitary(), &dft_matrix(n));
            assert!(d < 1e-10, "{n}-qubit QFT distance {d}");
        }
    }

    #[test]
    fn qft_on_ground_state_is_uniform() {
        let c = qft_circuit(3);
        let p: Vec<f64> = c.statevector().iter().map(|z| z.norm_sqr()).collect();
        for &x in &p {
            assert!((x - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_two_qubit_cost() {
        // n(n-1)/2 controlled phases + floor(n/2) swaps
        let c = qft_circuit(4);
        assert_eq!(c.two_qubit_count(), 6 + 2);
    }
}
