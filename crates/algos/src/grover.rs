//! Grover's search algorithm.
//!
//! The paper's Fig. 5/14 workload: 3-qubit search for the marked state
//! `|111>` over eight "boxes", scored by the probability of measuring the
//! marked bitstring. The oracle and diffuser use the no-ancilla
//! multi-controlled Z from [`crate::mct`], so the reference circuit is
//! CNOT-heavy exactly as in the paper.

use crate::mct::mcz;
use qaprox_circuit::Circuit;

/// The theoretically optimal iteration count `round(pi/4 sqrt(2^n))` (at
/// least 1).
pub fn optimal_iterations(num_qubits: usize) -> usize {
    let n = (1usize << num_qubits) as f64;
    ((std::f64::consts::FRAC_PI_4 * n.sqrt()).floor() as usize).max(1)
}

/// Appends the phase oracle marking `target`: flips the sign of `|target>`.
pub fn oracle(circuit: &mut Circuit, target: usize) {
    let n = circuit.num_qubits();
    assert!(target < (1 << n), "marked state out of range");
    // X on every 0-bit so the all-ones pattern corresponds to `target`
    for q in 0..n {
        if (target >> q) & 1 == 0 {
            circuit.x(q);
        }
    }
    let controls: Vec<usize> = (0..n - 1).collect();
    mcz(circuit, &controls, n - 1);
    for q in 0..n {
        if (target >> q) & 1 == 0 {
            circuit.x(q);
        }
    }
}

/// Appends the diffuser (inversion about the mean).
pub fn diffuser(circuit: &mut Circuit) {
    let n = circuit.num_qubits();
    for q in 0..n {
        circuit.h(q);
        circuit.x(q);
    }
    let controls: Vec<usize> = (0..n - 1).collect();
    mcz(circuit, &controls, n - 1);
    for q in 0..n {
        circuit.x(q);
        circuit.h(q);
    }
}

/// Builds the full Grover circuit searching for `target` with the given
/// number of iterations.
pub fn grover_circuit(num_qubits: usize, target: usize, iterations: usize) -> Circuit {
    assert!(num_qubits >= 2, "Grover needs at least 2 qubits");
    let mut c = Circuit::new(num_qubits);
    for q in 0..num_qubits {
        c.h(q);
    }
    for _ in 0..iterations {
        oracle(&mut c, target);
        diffuser(&mut c);
    }
    c
}

/// The paper's workload: 3 qubits, marked state `|111>`, optimal iterations.
pub fn paper_grover() -> Circuit {
    grover_circuit(3, 0b111, optimal_iterations(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::probabilities;

    #[test]
    fn optimal_iterations_for_small_sizes() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(3), 2);
        assert_eq!(optimal_iterations(4), 3);
    }

    #[test]
    fn two_qubit_grover_is_exact() {
        // n=2 with 1 iteration finds the target with probability 1
        for target in 0..4 {
            let c = grover_circuit(2, target, 1);
            let p = probabilities(&c.statevector());
            assert!((p[target] - 1.0).abs() < 1e-10, "target {target}: {p:?}");
        }
    }

    #[test]
    fn three_qubit_grover_amplifies_target() {
        let c = paper_grover();
        let p = probabilities(&c.statevector());
        assert!(
            p[0b111] > 0.9,
            "2 iterations on 3 qubits reach ~0.945: {}",
            p[0b111]
        );
        // all other outcomes share the remainder equally
        for (i, &pi) in p.iter().enumerate() {
            if i != 0b111 {
                assert!(pi < 0.02, "non-target {i} too likely: {pi}");
            }
        }
    }

    #[test]
    fn oracle_flips_only_target_phase() {
        let mut c = Circuit::new(3);
        oracle(&mut c, 0b010);
        let u = c.unitary();
        for col in 0..8 {
            let expect = if col == 0b010 { -1.0 } else { 1.0 };
            assert!(
                (u[(col, col)].re - expect).abs() < 1e-8,
                "diag[{col}] = {:?}",
                u[(col, col)]
            );
        }
    }

    #[test]
    fn reference_circuit_is_cnot_heavy() {
        let c = paper_grover();
        // 2 iterations x (oracle + diffuser) x 6-CNOT MCZ = 24 CNOTs minimum
        assert!(c.cx_count() >= 20, "got {}", c.cx_count());
    }

    #[test]
    fn different_targets_give_different_circuits() {
        let a = grover_circuit(3, 0b111, 2);
        let b = grover_circuit(3, 0b000, 2);
        let pa = probabilities(&a.statevector());
        let pb = probabilities(&b.statevector());
        assert!(pa[0b111] > 0.9);
        assert!(pb[0b000] > 0.9);
    }

    #[test]
    fn overrotation_reduces_success() {
        // 4 iterations on 3 qubits overshoots the optimum of 2
        let good = probabilities(&grover_circuit(3, 0b111, 2).statevector())[0b111];
        let over = probabilities(&grover_circuit(3, 0b111, 4).statevector())[0b111];
        assert!(
            over < good,
            "overshoot {over} should underperform optimum {good}"
        );
    }
}
