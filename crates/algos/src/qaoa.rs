//! QAOA circuits for MaxCut — the workload of the paper's Related-Work
//! discussion ([20]: approximate QAOA circuits with fewer CNOTs outperform
//! deeper ones). Provides another CNOT-heavy circuit family for the
//! approximation pipeline.
//!
//! `p` alternating layers of the cost unitary `exp(-i gamma sum_{(i,j)} Z_i Z_j / 2)`
//! (one CNOT-RZ-CNOT sandwich per edge) and the mixer `exp(-i beta sum_i X_i)`.

use qaprox_circuit::Circuit;

/// An undirected MaxCut instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxCutGraph {
    /// Number of vertices (qubits).
    pub num_vertices: usize,
    /// Undirected edges.
    pub edges: Vec<(usize, usize)>,
}

impl MaxCutGraph {
    /// A cycle graph `0-1-...-(n-1)-0`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        MaxCutGraph {
            num_vertices: n,
            edges,
        }
    }

    /// A path graph `0-1-...-(n-1)`.
    pub fn path(n: usize) -> Self {
        assert!(n >= 2, "path needs at least 2 vertices");
        MaxCutGraph {
            num_vertices: n,
            edges: (0..n - 1).map(|i| (i, i + 1)).collect(),
        }
    }

    /// Cut value of an assignment (bit `i` of `assignment` = side of vertex `i`).
    pub fn cut_value(&self, assignment: usize) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| ((assignment >> a) ^ (assignment >> b)) & 1 == 1)
            .count()
    }

    /// The maximum cut value (exhaustive — instances here are small).
    pub fn max_cut(&self) -> usize {
        (0..(1usize << self.num_vertices))
            .map(|a| self.cut_value(a))
            .max()
            .unwrap_or(0)
    }

    /// Expected cut value of a measurement distribution.
    pub fn expected_cut(&self, probs: &[f64]) -> f64 {
        assert_eq!(
            probs.len(),
            1 << self.num_vertices,
            "distribution size mismatch"
        );
        probs
            .iter()
            .enumerate()
            .map(|(a, &p)| p * self.cut_value(a) as f64)
            .sum()
    }
}

/// Builds the depth-`p` QAOA circuit with per-layer angles
/// (`gammas.len() == betas.len() == p`).
pub fn qaoa_circuit(graph: &MaxCutGraph, gammas: &[f64], betas: &[f64]) -> Circuit {
    assert_eq!(
        gammas.len(),
        betas.len(),
        "need one (gamma, beta) pair per layer"
    );
    let n = graph.num_vertices;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for (&gamma, &beta) in gammas.iter().zip(betas) {
        for &(a, b) in &graph.edges {
            // exp(-i gamma Z_a Z_b / 2): CNOT - RZ(gamma) - CNOT
            c.cx(a, b);
            c.rz(gamma, b);
            c.cx(a, b);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// A coarse deterministic grid search for good `p = 1` angles, returning
/// `(gamma, beta, expected_cut)`. Good enough to produce a meaningful
/// reference circuit for approximation studies.
pub fn tune_p1(graph: &MaxCutGraph, grid: usize) -> (f64, f64, f64) {
    let mut best = (0.0, 0.0, -1.0);
    for gi in 1..grid {
        for bi in 1..grid {
            let gamma = std::f64::consts::PI * gi as f64 / grid as f64;
            let beta = std::f64::consts::FRAC_PI_2 * bi as f64 / grid as f64;
            let c = qaoa_circuit(graph, &[gamma], &[beta]);
            let probs: Vec<f64> = c.statevector().iter().map(|z| z.norm_sqr()).collect();
            let cut = graph.expected_cut(&probs);
            if cut > best.2 {
                best = (gamma, beta, cut);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_values_on_the_triangle() {
        let g = MaxCutGraph::cycle(3);
        assert_eq!(g.cut_value(0b000), 0);
        assert_eq!(g.cut_value(0b001), 2);
        assert_eq!(g.max_cut(), 2);
    }

    #[test]
    fn even_cycle_max_cut_is_edge_count() {
        let g = MaxCutGraph::cycle(4);
        assert_eq!(g.max_cut(), 4);
        assert_eq!(g.cut_value(0b0101), 4);
    }

    #[test]
    fn qaoa_circuit_structure() {
        let g = MaxCutGraph::cycle(4);
        let c = qaoa_circuit(&g, &[0.5, 0.3], &[0.2, 0.1]);
        // 2 layers x 4 edges x 2 CNOTs
        assert_eq!(c.cx_count(), 16);
        assert_eq!(c.num_qubits(), 4);
    }

    #[test]
    fn zero_angles_give_uniform_superposition() {
        let g = MaxCutGraph::path(3);
        let c = qaoa_circuit(&g, &[0.0], &[0.0]);
        let probs: Vec<f64> = c.statevector().iter().map(|z| z.norm_sqr()).collect();
        for &p in &probs {
            assert!((p - 0.125).abs() < 1e-12);
        }
        // uniform distribution's expected cut = half the edges
        assert!((g.expected_cut(&probs) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn tuned_p1_beats_random_guessing() {
        let g = MaxCutGraph::cycle(4);
        let (_, _, cut) = tune_p1(&g, 12);
        let uniform_cut = g.edges.len() as f64 / 2.0;
        assert!(
            cut > uniform_cut + 0.4,
            "tuned QAOA ({cut:.3}) should clearly beat uniform ({uniform_cut})"
        );
    }

    #[test]
    fn expected_cut_is_bounded_by_max_cut() {
        let g = MaxCutGraph::cycle(5);
        let (gamma, beta, cut) = tune_p1(&g, 10);
        assert!(cut <= g.max_cut() as f64 + 1e-9);
        let c = qaoa_circuit(&g, &[gamma], &[beta]);
        assert!(c.cx_count() == 2 * g.edges.len());
    }
}
