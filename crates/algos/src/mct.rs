//! Multi-controlled gates without ancilla qubits.
//!
//! The paper's Toffoli study uses Qiskit's no-ancilla `mcx`, whose CNOT
//! count grows quickly with the number of controls — that growth is exactly
//! what makes approximate circuits attractive (Obs. 4). We implement the
//! classic Barenco et al. recursion over controlled square roots:
//!
//! `C^k(U) = C(V; c_k, t) . C^{k-1}X(c_1..c_{k-1}; c_k) . C(V^dag; c_k, t)
//!  . C^{k-1}X(...) . C^{k-1}(V; c_1..c_{k-1}, t)` with `V^2 = U`,
//! bottoming out in the textbook 6-CNOT Toffoli and the 2-CNOT controlled-U.

use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::{zyz_decompose, Complex64};

/// Appends a controlled one-qubit unitary using the ABC construction
/// (2 CNOTs + one-qubit rotations).
pub fn controlled_unitary(circuit: &mut Circuit, control: usize, target: usize, u: &Matrix) {
    let zyz = zyz_decompose(u);
    // U = e^{i alpha} U3(theta, phi, lambda)
    //   = e^{i (alpha + (phi+lambda)/2)} Rz(phi) Ry(theta) Rz(lambda)
    let (beta, gamma, delta) = (zyz.phi, zyz.theta, zyz.lambda);
    let phase = zyz.alpha + (beta + delta) / 2.0;

    // C = Rz((delta - beta)/2), B = Ry(-gamma/2) Rz(-(delta+beta)/2),
    // A = Rz(beta) Ry(gamma/2); A X B X C = Rz(beta)Ry(gamma)Rz(delta), ABC = I.
    circuit.rz((delta - beta) / 2.0, target);
    circuit.cx(control, target);
    circuit.rz(-(delta + beta) / 2.0, target);
    circuit.ry(-gamma / 2.0, target);
    circuit.cx(control, target);
    circuit.ry(gamma / 2.0, target);
    circuit.rz(beta, target);
    // conditional global phase lives on the control
    if phase.abs() > 1e-15 {
        circuit.push(Gate::P(phase), &[control]);
    }
}

/// Principal square root of a 2x2 unitary (via eigendecomposition).
pub fn sqrt_unitary_2x2(u: &Matrix) -> Matrix {
    assert_eq!((u.rows(), u.cols()), (2, 2), "expected 2x2 unitary");
    let a = u[(0, 0)];
    let b = u[(0, 1)];
    let c = u[(1, 0)];
    let d = u[(1, 1)];
    let tr = a + d;
    let det = a * d - b * c;
    // eigenvalues: roots of l^2 - tr l + det
    let disc = (tr * tr - det * 4.0).sqrt();
    let l1 = (tr + disc) * 0.5;
    let l2 = (tr - disc) * 0.5;
    if (l1 - l2).abs() < 1e-12 {
        // U = l I (scalar): sqrt is sqrt(l) I
        return Matrix::identity(2).scale(l1.sqrt());
    }
    // eigenvector for l1: columns of (U - l2 I); for l2: columns of (U - l1 I)
    let pick_vec = |lam_other: Complex64| -> (Complex64, Complex64) {
        let m00 = a - lam_other;
        let m10 = c;
        let m01 = b;
        let m11 = d - lam_other;
        // choose the larger column for stability
        let col0 = m00.norm_sqr() + m10.norm_sqr();
        let col1 = m01.norm_sqr() + m11.norm_sqr();
        let (x, y) = if col0 >= col1 { (m00, m10) } else { (m01, m11) };
        let n = (x.norm_sqr() + y.norm_sqr()).sqrt();
        (x / n, y / n)
    };
    let (v1x, v1y) = pick_vec(l2);
    let (v2x, v2y) = pick_vec(l1);
    let s1 = l1.sqrt();
    let s2 = l2.sqrt();
    // V = s1 * v1 v1^dag + s2 * v2 v2^dag
    let mut out = Matrix::zeros(2, 2);
    for (s, (x, y)) in [(s1, (v1x, v1y)), (s2, (v2x, v2y))] {
        out[(0, 0)] += s * x * x.conj();
        out[(0, 1)] += s * x * y.conj();
        out[(1, 0)] += s * y * x.conj();
        out[(1, 1)] += s * y * y.conj();
    }
    out
}

/// Appends the textbook 6-CNOT Toffoli (`CCX`) with controls `c1, c2`.
pub fn ccx(circuit: &mut Circuit, c1: usize, c2: usize, target: usize) {
    circuit.h(target);
    circuit.cx(c2, target);
    circuit.push(Gate::Tdg, &[target]);
    circuit.cx(c1, target);
    circuit.push(Gate::T, &[target]);
    circuit.cx(c2, target);
    circuit.push(Gate::Tdg, &[target]);
    circuit.cx(c1, target);
    circuit.push(Gate::T, &[c2]);
    circuit.push(Gate::T, &[target]);
    circuit.h(target);
    circuit.cx(c1, c2);
    circuit.push(Gate::T, &[c1]);
    circuit.push(Gate::Tdg, &[c2]);
    circuit.cx(c1, c2);
}

/// Appends a multi-controlled one-qubit unitary (no ancilla) via the
/// Barenco square-root recursion.
pub fn mcu(circuit: &mut Circuit, controls: &[usize], target: usize, u: &Matrix) {
    match controls.len() {
        0 => {
            circuit.push(Gate::Unitary1(Box::new(u.clone())), &[target]);
        }
        1 => controlled_unitary(circuit, controls[0], target, u),
        _ => {
            let (rest, last) = controls.split_at(controls.len() - 1);
            let ck = last[0];
            let v = sqrt_unitary_2x2(u);
            controlled_unitary(circuit, ck, target, &v);
            mcx(circuit, rest, ck);
            controlled_unitary(circuit, ck, target, &v.adjoint());
            mcx(circuit, rest, ck);
            mcu(circuit, rest, target, &v);
        }
    }
}

/// Appends a multi-controlled X (no ancilla). Uses the 6-CNOT Toffoli for
/// two controls and the square-root recursion above.
pub fn mcx(circuit: &mut Circuit, controls: &[usize], target: usize) {
    match controls.len() {
        0 => {
            circuit.x(target);
        }
        1 => {
            circuit.cx(controls[0], target);
        }
        2 => ccx(circuit, controls[0], controls[1], target),
        _ => mcu(circuit, controls, target, &Gate::X.matrix()),
    }
}

/// Appends a multi-controlled Z (no ancilla): `H(t) . MCX . H(t)`.
pub fn mcz(circuit: &mut Circuit, controls: &[usize], target: usize) {
    circuit.h(target);
    mcx(circuit, controls, target);
    circuit.h(target);
}

/// Builds a standalone `n`-qubit multi-controlled Toffoli reference circuit:
/// controls `0..n-1`, target `n-1` — the paper's "Qiskit mcx without
/// ancilla" comparator.
pub fn mct_reference(num_qubits: usize) -> Circuit {
    assert!(num_qubits >= 2, "Toffoli needs at least 2 qubits");
    let mut c = Circuit::new(num_qubits);
    let controls: Vec<usize> = (0..num_qubits - 1).collect();
    mcx(&mut c, &controls, num_qubits - 1);
    c
}

/// The ideal `n`-qubit MCX unitary as a permutation matrix (test oracle and
/// synthesis target).
pub fn mct_unitary(num_qubits: usize) -> Matrix {
    let dim = 1usize << num_qubits;
    let mut m = Matrix::zeros(dim, dim);
    let control_mask = dim / 2 - 1; // bits 0..n-2
    let target_bit = dim / 2; // bit n-1
    for col in 0..dim {
        let row = if col & control_mask == control_mask {
            col ^ target_bit
        } else {
            col
        };
        m[(row, col)] = Complex64::ONE;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;
    use qaprox_metrics::hs_distance;

    #[test]
    fn sqrt_unitary_squares_back() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30 {
            let u = haar_unitary(2, &mut rng);
            let v = sqrt_unitary_2x2(&u);
            assert!(v.is_unitary(1e-10), "sqrt not unitary");
            assert!(v.matmul(&v).approx_eq(&u, 1e-9), "V^2 != U");
        }
    }

    #[test]
    fn sqrt_of_identity_and_x() {
        let i2 = Matrix::identity(2);
        assert!(sqrt_unitary_2x2(&i2).approx_eq(&i2, 1e-12));
        let x = Gate::X.matrix();
        let v = sqrt_unitary_2x2(&x);
        assert!(v.matmul(&v).approx_eq(&x, 1e-12));
    }

    #[test]
    fn controlled_unitary_matches_direct_embedding() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let u = haar_unitary(2, &mut rng);
            let mut c = Circuit::new(2);
            controlled_unitary(&mut c, 0, 1, &u);
            // reference: controlled-U with control = qubit 0
            let mut ref_c = Circuit::new(2);
            ref_c.push(
                Gate::Unitary2(Box::new(qaprox_circuit::controlled(&u))),
                &[0, 1],
            );
            assert!(
                hs_distance(&c.unitary(), &ref_c.unitary()) < 1e-9,
                "controlled-U decomposition wrong"
            );
        }
    }

    #[test]
    fn ccx_matches_toffoli_unitary() {
        let mut c = Circuit::new(3);
        ccx(&mut c, 0, 1, 2);
        let mut expect = Matrix::identity(8);
        // |011> <-> |111> (controls = qubits 0,1; target = 2)
        expect[(0b011, 0b011)] = Complex64::ZERO;
        expect[(0b111, 0b111)] = Complex64::ZERO;
        expect[(0b111, 0b011)] = Complex64::ONE;
        expect[(0b011, 0b111)] = Complex64::ONE;
        assert!(hs_distance(&c.unitary(), &expect) < 1e-10);
        assert_eq!(c.cx_count(), 6);
    }

    #[test]
    fn mct_reference_matches_ideal_unitary() {
        for n in [3usize, 4, 5] {
            let c = mct_reference(n);
            let d = hs_distance(&c.unitary(), &mct_unitary(n));
            assert!(d < 1e-8, "{n}-qubit MCT distance {d}");
        }
    }

    #[test]
    fn mct_cnot_counts_grow_quickly() {
        let c3 = mct_reference(3).cx_count();
        let c4 = mct_reference(4).cx_count();
        let c5 = mct_reference(5).cx_count();
        assert_eq!(c3, 6, "3-qubit Toffoli is the 6-CNOT textbook circuit");
        assert!(c4 > 2 * c3, "4q should cost much more than 3q: {c4}");
        assert!(c5 > 2 * c4, "5q should cost much more than 4q: {c5}");
    }

    #[test]
    fn mct_truth_table_behavior() {
        // check every basis input for the 4-qubit MCT
        let c = mct_reference(4);
        let u = c.unitary();
        for input in 0..16usize {
            let expect = if input & 0b0111 == 0b0111 {
                input ^ 0b1000
            } else {
                input
            };
            let amp = u[(expect, input)];
            assert!(
                (amp.abs() - 1.0).abs() < 1e-8,
                "input {input:04b} should map to {expect:04b}, amp {amp:?}"
            );
        }
    }

    #[test]
    fn mcz_is_diagonal_with_single_minus_one() {
        let mut c = Circuit::new(3);
        mcz(&mut c, &[0, 1], 2);
        let u = c.unitary();
        for col in 0..8 {
            let expect = if col == 7 { -1.0 } else { 1.0 };
            let diag = u[(col, col)];
            assert!(
                (diag.re - expect).abs() < 1e-8 && diag.im.abs() < 1e-8,
                "diag[{col}] = {diag:?}"
            );
        }
    }

    #[test]
    fn mcu_with_zero_and_one_controls() {
        let x = Gate::X.matrix();
        let mut c0 = Circuit::new(1);
        mcu(&mut c0, &[], 0, &x);
        assert!(hs_distance(&c0.unitary(), &x) < 1e-12);

        let mut c1 = Circuit::new(2);
        mcu(&mut c1, &[0], 1, &x);
        let mut ref_c = Circuit::new(2);
        ref_c.cx(0, 1);
        assert!(hs_distance(&c1.unitary(), &ref_c.unitary()) < 1e-10);
    }
}
