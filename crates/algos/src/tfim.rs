//! Time-dependent Transverse-Field Ising Model circuits.
//!
//! `H(t) = -J sum_i Z_i Z_{i+1} - h(t) sum_i X_i`, first-order Trotterized:
//! one timestep of length `dt` applies `exp(i J dt Z Z)` on every bond
//! (CNOT - RZ - CNOT) followed by `exp(i h(t) dt X)` on every qubit (RX).
//! The circuit for the k-th timestep contains k Trotter steps, so depth grows
//! linearly — by step 21 the 3-qubit circuit holds 84 CNOTs, far past the
//! NISQ fidelity budget. That growth is what the paper's approximate
//! circuits attack (Figs. 2-4, 8-13).

use qaprox_circuit::Circuit;

/// The transverse-field schedule `h(t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldSchedule {
    /// Constant field.
    Constant(f64),
    /// Linear ramp from `from` at t=0 to `to` at `t_end`.
    Ramp {
        /// Field at time zero.
        from: f64,
        /// Field at `t_end`.
        to: f64,
        /// End of the ramp.
        t_end: f64,
    },
    /// Sinusoidal drive `amp * cos(2 pi t / period)`.
    Cosine {
        /// Peak field.
        amp: f64,
        /// Drive period.
        period: f64,
    },
}

impl FieldSchedule {
    /// Field value at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match *self {
            FieldSchedule::Constant(h) => h,
            FieldSchedule::Ramp { from, to, t_end } => {
                if t_end <= 0.0 {
                    to
                } else {
                    from + (to - from) * (t / t_end).clamp(0.0, 1.0)
                }
            }
            FieldSchedule::Cosine { amp, period } => {
                amp * (std::f64::consts::TAU * t / period).cos()
            }
        }
    }
}

/// Parameters of a TFIM simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TfimParams {
    /// Chain length (number of qubits).
    pub num_qubits: usize,
    /// Ising coupling `J`.
    pub j: f64,
    /// Trotter step length (the paper's "3 ns" in natural units).
    pub dt: f64,
    /// Transverse-field schedule.
    pub schedule: FieldSchedule,
}

impl TfimParams {
    /// The paper's configuration: 21 timesteps on a short chain with a
    /// strong transverse quench from the all-up state.
    pub fn paper_defaults(num_qubits: usize) -> Self {
        TfimParams {
            num_qubits,
            j: 1.0,
            dt: 0.15,
            schedule: FieldSchedule::Constant(2.0),
        }
    }

    /// Number of timesteps the paper simulates.
    pub const PAPER_STEPS: usize = 21;
}

/// Builds the Trotter circuit covering timesteps `1..=steps`.
///
/// Starting state is `|0...0>` (all spins up); each step applies the bond
/// layer then the field layer evaluated at that step's time.
pub fn tfim_circuit(params: &TfimParams, steps: usize) -> Circuit {
    let n = params.num_qubits;
    assert!(n >= 2, "TFIM chain needs at least 2 sites");
    let mut c = Circuit::new(n);
    for s in 1..=steps {
        let t = s as f64 * params.dt;
        // exp(+i J dt Z_i Z_{i+1}) == RZZ(-2 J dt) on each bond
        let zz_angle = -2.0 * params.j * params.dt;
        for i in 0..n - 1 {
            c.cx(i, i + 1);
            c.rz(zz_angle, i + 1);
            c.cx(i, i + 1);
        }
        // exp(+i h dt X_i) == RX(-2 h dt)
        let h = params.schedule.at(t);
        let x_angle = -2.0 * h * params.dt;
        for q in 0..n {
            c.rx(x_angle, q);
        }
    }
    c
}

/// Builds all 21 (or `steps`) per-timestep circuits — one entry per point on
/// the paper's x-axis.
pub fn tfim_series(params: &TfimParams, steps: usize) -> Vec<Circuit> {
    (1..=steps).map(|k| tfim_circuit(params, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::{magnetization, probabilities};

    #[test]
    fn circuit_sizes_grow_linearly() {
        let p = TfimParams::paper_defaults(3);
        let c1 = tfim_circuit(&p, 1);
        let c21 = tfim_circuit(&p, 21);
        assert_eq!(c1.cx_count(), 4, "3 qubits = 2 bonds x 2 CNOTs per step");
        assert_eq!(c21.cx_count(), 84);
        assert_eq!(c21.cx_count(), 21 * c1.cx_count());
    }

    #[test]
    fn four_qubit_step_has_six_cnots() {
        let p = TfimParams::paper_defaults(4);
        assert_eq!(tfim_circuit(&p, 1).cx_count(), 6);
    }

    #[test]
    fn magnetization_starts_high_and_dips() {
        let p = TfimParams::paper_defaults(3);
        let series = tfim_series(&p, TfimParams::PAPER_STEPS);
        let mags: Vec<f64> = series
            .iter()
            .map(|c| magnetization(&probabilities(&c.statevector())))
            .collect();
        assert!(mags[0] > 0.8, "one small step keeps m near 1: {}", mags[0]);
        let min = mags.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            min < 0.0,
            "quench should drive m negative at some step: min {min}"
        );
        let max_later = mags[10..].iter().cloned().fold(-1.0f64, f64::max);
        assert!(
            max_later > min + 0.3,
            "dynamics should oscillate, not decay flat"
        );
    }

    #[test]
    fn zero_field_preserves_computational_basis() {
        let p = TfimParams {
            num_qubits: 3,
            j: 1.0,
            dt: 0.2,
            schedule: FieldSchedule::Constant(0.0),
        };
        let c = tfim_circuit(&p, 8);
        let probs = probabilities(&c.statevector());
        // ZZ evolution is diagonal: |000> stays |000> up to phase
        assert!((probs[0] - 1.0).abs() < 1e-10);
        assert!((magnetization(&probs) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn trotter_converges_with_smaller_dt() {
        // Compare a coarse and a fine Trotterization of the same total time;
        // the fine one should be closer to an even finer reference.
        let total_t = 1.2;
        let mags: Vec<f64> = [4usize, 16, 64]
            .iter()
            .map(|&steps| {
                let p = TfimParams {
                    num_qubits: 3,
                    j: 1.0,
                    dt: total_t / steps as f64,
                    schedule: FieldSchedule::Constant(2.0),
                };
                let c = tfim_circuit(&p, steps);
                magnetization(&probabilities(&c.statevector()))
            })
            .collect();
        let err_coarse = (mags[0] - mags[2]).abs();
        let err_fine = (mags[1] - mags[2]).abs();
        assert!(
            err_fine < err_coarse,
            "Trotter error should shrink: {mags:?}"
        );
    }

    #[test]
    fn schedules_evaluate_correctly() {
        assert_eq!(FieldSchedule::Constant(2.0).at(5.0), 2.0);
        let ramp = FieldSchedule::Ramp {
            from: 0.0,
            to: 4.0,
            t_end: 2.0,
        };
        assert!((ramp.at(1.0) - 2.0).abs() < 1e-14);
        assert!(
            (ramp.at(10.0) - 4.0).abs() < 1e-14,
            "ramp clamps past t_end"
        );
        let cosine = FieldSchedule::Cosine {
            amp: 3.0,
            period: 2.0,
        };
        assert!((cosine.at(0.0) - 3.0).abs() < 1e-14);
        assert!((cosine.at(1.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_schedule_changes_dynamics() {
        let base = TfimParams::paper_defaults(3);
        let ramped = TfimParams {
            schedule: FieldSchedule::Ramp {
                from: 0.0,
                to: 2.0,
                t_end: 21.0 * base.dt,
            },
            ..base
        };
        let m_const = magnetization(&probabilities(&tfim_circuit(&base, 12).statevector()));
        let m_ramp = magnetization(&probabilities(&tfim_circuit(&ramped, 12).statevector()));
        assert!((m_const - m_ramp).abs() > 1e-3, "schedules should differ");
    }
}
