//! # qaprox-algos
//!
//! Reference circuit generators for the paper's three workloads (plus QFT):
//!
//! * [`tfim`] — time-dependent Transverse-Field Ising Model Trotter circuits
//!   (21 timesteps, depth growing linearly — Figs. 2-4, 8-13);
//! * [`grover`] — Grover search, 3 qubits, marked state `|111>` (Figs. 5, 14);
//! * [`mct`] — no-ancilla multi-controlled Toffoli via the Barenco
//!   square-root recursion (Figs. 6, 7, 15, 17-19);
//! * [`qft`] — quantum Fourier transform, extra workload for examples;
//! * [`qaoa`] — QAOA MaxCut circuits (Related Work [20] workload).

#![warn(missing_docs)]

pub mod grover;
pub mod mct;
pub mod qaoa;
pub mod qft;
pub mod tfim;

pub use grover::{grover_circuit, optimal_iterations, paper_grover};
pub use mct::{ccx, mct_reference, mct_unitary, mcu, mcx, mcz};
pub use qaoa::{qaoa_circuit, MaxCutGraph};
pub use qft::qft_circuit;
pub use tfim::{tfim_circuit, tfim_series, FieldSchedule, TfimParams};
