//! Acceptance criterion: the linter must report **zero errors** on every
//! circuit the workload generators produce — QFT, Grover, QAOA, TFIM, and
//! multi-controlled Toffoli references.

use qaprox_algos::grover::{grover_circuit, optimal_iterations};
use qaprox_algos::mct::mct_reference;
use qaprox_algos::qaoa::{qaoa_circuit, MaxCutGraph};
use qaprox_algos::qft::qft_circuit;
use qaprox_algos::tfim::{tfim_circuit, TfimParams};
use qaprox_circuit::Circuit;
use qaprox_verify::{lint_circuit, LintConfig};

fn assert_clean(name: &str, c: &Circuit) {
    let report = lint_circuit(c, None, &LintConfig::new());
    assert!(
        !report.has_errors(),
        "{name} must lint clean, got:\n{}",
        report.to_text()
    );
}

#[test]
fn qft_circuits_lint_clean() {
    for n in 2..=5 {
        assert_clean(&format!("qft({n})"), &qft_circuit(n));
    }
}

#[test]
fn grover_circuits_lint_clean() {
    for n in 2..=4 {
        let c = grover_circuit(n, (1 << n) - 1, optimal_iterations(n));
        assert_clean(&format!("grover({n})"), &c);
    }
}

#[test]
fn qaoa_circuits_lint_clean() {
    for n in [3usize, 4, 5] {
        let graph = MaxCutGraph::cycle(n);
        let c = qaoa_circuit(&graph, &[0.4], &[0.7]);
        assert_clean(&format!("qaoa(cycle {n})"), &c);
    }
}

#[test]
fn tfim_circuits_lint_clean() {
    for steps in [1usize, 5, 10] {
        let c = tfim_circuit(&TfimParams::paper_defaults(3), steps);
        assert_clean(&format!("tfim(3q, {steps} steps)"), &c);
    }
}

#[test]
fn mct_references_lint_clean() {
    for n in 2..=5 {
        assert_clean(&format!("mct({n})"), &mct_reference(n));
    }
}
