//! One negative test per defect class: each feeds the linter a minimal
//! defective artifact and asserts the finding carries the *distinct* code
//! for that class (the acceptance criterion for `qaprox lint`).

use qaprox_circuit::{Circuit, Gate, Instruction};
use qaprox_device::devices::ourense;
use qaprox_linalg::{Complex64, Matrix};
use qaprox_verify::{
    lint_calibration, lint_instructions, lint_kraus_set, lint_stochastic_rows, LintConfig, Report,
};

fn codes(report: &Report) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

fn lint_one(inst: Instruction, num_qubits: usize) -> Report {
    lint_instructions(num_qubits, &[inst], None, &LintConfig::new())
}

#[test]
fn qa101_out_of_range_qubit() {
    let r = lint_one(
        Instruction {
            gate: Gate::H,
            qubits: vec![7],
        },
        2,
    );
    assert!(codes(&r).contains(&"QA101"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn qa102_duplicate_operands() {
    let r = lint_one(
        Instruction {
            gate: Gate::CX,
            qubits: vec![1, 1],
        },
        2,
    );
    assert!(codes(&r).contains(&"QA102"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn qa103_arity_mismatch() {
    let r = lint_one(
        Instruction {
            gate: Gate::CX,
            qubits: vec![0],
        },
        2,
    );
    assert!(codes(&r).contains(&"QA103"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn qa104_non_finite_parameter() {
    let r = lint_one(
        Instruction {
            gate: Gate::RZ(f64::NAN),
            qubits: vec![0],
        },
        1,
    );
    assert!(codes(&r).contains(&"QA104"), "{}", r.to_text());
    let r = lint_one(
        Instruction {
            gate: Gate::RX(f64::INFINITY),
            qubits: vec![0],
        },
        1,
    );
    assert!(codes(&r).contains(&"QA104"), "{}", r.to_text());
}

#[test]
fn qa105_non_unitary_matrix() {
    // rank-deficient 2x2: |0><0|
    let m = Matrix::from_rows(&[
        &[Complex64::ONE, Complex64::ZERO],
        &[Complex64::ZERO, Complex64::ZERO],
    ]);
    let r = lint_one(
        Instruction {
            gate: Gate::Unitary1(Box::new(m)),
            qubits: vec![0],
        },
        1,
    );
    assert!(codes(&r).contains(&"QA105"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn qa106_connectivity_violation() {
    // (0, 4) is not an edge of ourense's T-shaped coupling map
    let cal = ourense();
    let inst = Instruction {
        gate: Gate::CX,
        qubits: vec![0, 4],
    };
    let warn = lint_instructions(
        5,
        std::slice::from_ref(&inst),
        Some(&cal.topology),
        &LintConfig::new(),
    );
    assert!(codes(&warn).contains(&"QA106"), "{}", warn.to_text());
    assert!(!warn.has_errors(), "QA106 defaults to warn");
    let deny = lint_instructions(
        5,
        &[inst],
        Some(&cal.topology),
        &LintConfig::strict_connectivity(),
    );
    assert!(deny.has_errors(), "strict config promotes QA106 to deny");
}

#[test]
fn qa107_dead_gate() {
    let mut c = Circuit::new(1);
    c.push(Gate::S, &[0]);
    c.push(Gate::Sdg, &[0]);
    let r = qaprox_verify::lint_circuit(&c, None, &LintConfig::new());
    assert!(codes(&r).contains(&"QA107"), "{}", r.to_text());
    assert!(!r.has_errors(), "QA107 defaults to warn");
}

#[test]
fn qa201_non_cptp_kraus() {
    // a lone sqrt(0.5)*I is trace decreasing
    let k = Matrix::identity(2).scale_re(0.5f64.sqrt());
    let r = lint_kraus_set("lossy", &[k], &LintConfig::new());
    assert!(codes(&r).contains(&"QA201"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn qa202_probability_out_of_range() {
    let mut cal = ourense();
    cal.qubits[0].readout_error = -0.25;
    let r = lint_calibration(&cal, &LintConfig::new());
    assert!(codes(&r).contains(&"QA202"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn qa203_non_stochastic_row() {
    let rows = vec![vec![0.9, 0.3], vec![0.5, 0.5]];
    let r = lint_stochastic_rows("confusion", &rows, &LintConfig::new());
    assert!(codes(&r).contains(&"QA203"), "{}", r.to_text());
    assert!(r.has_errors());
}

#[test]
fn every_defect_class_has_a_distinct_code() {
    let mut seen: Vec<&str> = vec![
        "QA101", "QA102", "QA103", "QA104", "QA105", "QA106", "QA107", "QA201", "QA202", "QA203",
    ];
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 10);
}
