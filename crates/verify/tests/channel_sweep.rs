//! Parameter-sweep regression: every noise-channel constructor in
//! `qaprox_sim::channels` must yield a trace-preserving (CPTP) Kraus set
//! across its whole legal parameter range, as judged by the channel lints.

use qaprox_sim::channels::{
    amplitude_damping, bit_flip, depolarizing_1q, depolarizing_2q, phase_damping, phase_flip,
    thermal_relaxation,
};
use qaprox_verify::{kraus_completeness_defect, lint_kraus_set, LintConfig};

fn assert_cptp(label: &str, kraus: &[qaprox_linalg::Matrix]) {
    let report = lint_kraus_set(label, kraus, &LintConfig::new());
    assert!(
        !report.has_errors(),
        "{label}: completeness defect {:.2e}\n{}",
        kraus_completeness_defect(kraus),
        report.to_text()
    );
}

#[test]
fn probability_channels_are_cptp_across_the_range() {
    for i in 0..=20 {
        let p = i as f64 / 20.0;
        assert_cptp(&format!("bit_flip({p})"), &bit_flip(p));
        assert_cptp(&format!("phase_flip({p})"), &phase_flip(p));
        assert_cptp(&format!("depolarizing_1q({p})"), &depolarizing_1q(p));
        assert_cptp(&format!("depolarizing_2q({p})"), &depolarizing_2q(p));
        assert_cptp(&format!("amplitude_damping({p})"), &amplitude_damping(p));
        assert_cptp(&format!("phase_damping({p})"), &phase_damping(p));
    }
}

#[test]
fn thermal_relaxation_is_cptp_across_times_and_coherences() {
    // gate times from instantaneous to very long, and T2 <= 2*T1 physical combos
    for &t_ns in &[0.0, 35.0, 300.0, 5_000.0, 100_000.0] {
        for &(t1, t2) in &[(80.0, 70.0), (50.0, 100.0), (120.0, 30.0), (20.0, 20.0)] {
            assert_cptp(
                &format!("thermal_relaxation({t_ns}, {t1}, {t2})"),
                &thermal_relaxation(t_ns, t1, t2),
            );
        }
    }
}

#[test]
fn completeness_defect_is_zero_only_for_complete_sets() {
    let full = bit_flip(0.3);
    assert!(kraus_completeness_defect(&full) < 1e-12);
    // dropping one operator must register as a defect
    let partial = &full[..1];
    assert!(kraus_completeness_defect(partial) > 0.01);
}
