//! Validation of the static noise-budget estimator against the
//! density-matrix simulator: the abstract interpreter's `fidelity_bound`
//! must upper-bound the fidelity the simulator actually measures, across
//! workloads, noise strengths, and analyzer configurations.

use qaprox_algos::{grover_circuit, optimal_iterations, tfim_circuit, TfimParams};
use qaprox_circuit::Circuit;
use qaprox_device::devices::ourense;
use qaprox_sim::NoiseModel;
use qaprox_verify::{analyze, AnalyzeOptions};

fn workloads() -> Vec<(&'static str, Circuit)> {
    let params = TfimParams::paper_defaults(3);
    vec![
        ("tfim-2steps", tfim_circuit(&params, 2)),
        ("tfim-4steps", tfim_circuit(&params, 4)),
        ("grover", grover_circuit(3, 7, optimal_iterations(3))),
    ]
}

/// The documented soundness claim: for every workload and every CNOT error
/// in the paper's sweep range, `fidelity_bound >= F(rho_noisy, psi_ideal)`.
#[test]
fn static_bound_upper_bounds_density_matrix_fidelity() {
    let cal = ourense().induced(&[0, 1, 2]);
    for (name, circuit) in workloads() {
        for eps in [0.0, 0.01, 0.05, 0.1] {
            let noisy_cal = cal.with_uniform_cx_error(eps);
            let model = NoiseModel::from_calibration(noisy_cal.clone());
            let measured = model
                .run_density(&circuit)
                .fidelity_pure(&circuit.statevector());
            let report = analyze(&circuit, &noisy_cal, &AnalyzeOptions::default());
            assert!(
                report.fidelity_bound >= measured - 1e-12,
                "{name} eps={eps}: bound {} undercuts measured {measured}",
                report.fidelity_bound
            );
            // the depolarizing part of the bound is not trivially 1 once
            // real noise is in play (relaxation slack may saturate the
            // combined bound on shallow circuits, so test it in isolation)
            if eps > 0.0 {
                let opts = AnalyzeOptions {
                    include_relaxation: false,
                    ..Default::default()
                };
                let tight = analyze(&circuit, &noisy_cal, &opts);
                assert!(tight.fidelity_bound < 1.0, "{name} eps={eps}");
            }
        }
    }
}

/// With relaxation excluded on both sides, the tighter pure-depolarizing
/// bound still holds against a depolarizing-only simulation.
#[test]
fn depolarizing_only_bound_is_tighter_and_still_sound() {
    let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
    let opts = AnalyzeOptions {
        include_relaxation: false,
        ..Default::default()
    };
    for (name, circuit) in workloads() {
        let mut model = NoiseModel::from_calibration(cal.clone());
        model.include_relaxation = false;
        let measured = model
            .run_density(&circuit)
            .fidelity_pure(&circuit.statevector());
        let tight = analyze(&circuit, &cal, &opts);
        let slack = analyze(&circuit, &cal, &AnalyzeOptions::default());
        assert!(
            tight.fidelity_bound >= measured - 1e-12,
            "{name}: bound {} undercuts measured {measured}",
            tight.fidelity_bound
        );
        assert!(
            slack.fidelity_bound >= tight.fidelity_bound - 1e-12,
            "{name}: relaxation slack must only loosen the bound"
        );
    }
}

/// `NoiseModel::analyze` is a faithful wrapper over `verify::analyze` —
/// same calibration, flags mapped across.
#[test]
fn noise_model_analyze_matches_direct_analyze() {
    let cal = ourense().induced(&[0, 1, 2]);
    let model = NoiseModel::from_calibration(cal.clone());
    let circuit = workloads().remove(0).1;
    let via_model = model.analyze(&circuit);
    let direct = analyze(
        &circuit,
        &cal,
        &AnalyzeOptions {
            include_relaxation: model.include_relaxation,
            include_readout: model.include_readout,
            ..Default::default()
        },
    );
    assert_eq!(via_model.fingerprint(), direct.fingerprint());
    assert_eq!(via_model.depth, direct.depth);
    assert_eq!(via_model.qubit_budgets.len(), direct.qubit_budgets.len());
}
