//! Validation of the static noise-budget estimator against the
//! density-matrix simulator: the abstract interpreter's `fidelity_bound`
//! must upper-bound the fidelity the simulator actually measures, across
//! workloads, noise strengths, and analyzer configurations.

use qaprox_algos::{grover_circuit, optimal_iterations, tfim_circuit, TfimParams};
use qaprox_circuit::Circuit;
use qaprox_device::devices::ourense;
use qaprox_sim::NoiseModel;
use qaprox_verify::{analyze, AnalyzeOptions};

fn workloads() -> Vec<(&'static str, Circuit)> {
    let params = TfimParams::paper_defaults(3);
    vec![
        ("tfim-2steps", tfim_circuit(&params, 2)),
        ("tfim-4steps", tfim_circuit(&params, 4)),
        ("grover", grover_circuit(3, 7, optimal_iterations(3))),
    ]
}

/// The documented soundness claim: for every workload and every CNOT error
/// in the paper's sweep range, `fidelity_bound >= F(rho_noisy, psi_ideal)`.
#[test]
fn static_bound_upper_bounds_density_matrix_fidelity() {
    let cal = ourense().induced(&[0, 1, 2]);
    for (name, circuit) in workloads() {
        for eps in [0.0, 0.01, 0.05, 0.1] {
            let noisy_cal = cal.with_uniform_cx_error(eps);
            let model = NoiseModel::from_calibration(noisy_cal.clone());
            let measured = model
                .run_density(&circuit)
                .fidelity_pure(&circuit.statevector());
            let report = analyze(&circuit, &noisy_cal, &AnalyzeOptions::default());
            assert!(
                report.fidelity_bound >= measured - 1e-12,
                "{name} eps={eps}: bound {} undercuts measured {measured}",
                report.fidelity_bound
            );
            // the depolarizing part of the bound is not trivially 1 once
            // real noise is in play (relaxation slack may saturate the
            // combined bound on shallow circuits, so test it in isolation)
            if eps > 0.0 {
                let opts = AnalyzeOptions {
                    include_relaxation: false,
                    ..Default::default()
                };
                let tight = analyze(&circuit, &noisy_cal, &opts);
                assert!(tight.fidelity_bound < 1.0, "{name} eps={eps}");
            }
        }
    }
}

/// With relaxation excluded on both sides, the tighter pure-depolarizing
/// bound still holds against a depolarizing-only simulation.
#[test]
fn depolarizing_only_bound_is_tighter_and_still_sound() {
    let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.05);
    let opts = AnalyzeOptions {
        include_relaxation: false,
        ..Default::default()
    };
    for (name, circuit) in workloads() {
        let mut model = NoiseModel::from_calibration(cal.clone());
        model.include_relaxation = false;
        let measured = model
            .run_density(&circuit)
            .fidelity_pure(&circuit.statevector());
        let tight = analyze(&circuit, &cal, &opts);
        let slack = analyze(&circuit, &cal, &AnalyzeOptions::default());
        assert!(
            tight.fidelity_bound >= measured - 1e-12,
            "{name}: bound {} undercuts measured {measured}",
            tight.fidelity_bound
        );
        assert!(
            slack.fidelity_bound >= tight.fidelity_bound - 1e-12,
            "{name}: relaxation slack must only loosen the bound"
        );
    }
}

/// `NoiseModel::analyze` is a faithful wrapper over `verify::analyze` —
/// same calibration, flags mapped across.
#[test]
fn noise_model_analyze_matches_direct_analyze() {
    let cal = ourense().induced(&[0, 1, 2]);
    let model = NoiseModel::from_calibration(cal.clone());
    let circuit = workloads().remove(0).1;
    let via_model = model.analyze(&circuit);
    let direct = analyze(
        &circuit,
        &cal,
        &AnalyzeOptions {
            include_relaxation: model.include_relaxation,
            include_readout: model.include_readout,
            ..Default::default()
        },
    );
    assert_eq!(via_model.fingerprint(), direct.fingerprint());
    assert_eq!(via_model.depth, direct.depth);
    assert_eq!(via_model.qubit_budgets.len(), direct.qubit_budgets.len());
}

// ---------------------------------------------------------------------------
// Two-circuit soundness: the QA5xx equivalence bound vs the density-matrix
// simulator. For seeded (circuit, perturbed-circuit, noise-model) triples the
// certified upper bound must dominate the measured TV distance between the
// noisy output distributions, and the certified lower bound must not exceed
// it. Distributions are pre-readout (the bound's semantics; readout confusion
// only contracts TV, so the upper bound covers post-readout too).
// ---------------------------------------------------------------------------

use qaprox_circuit::{commutes, Gate, Instruction};
use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_verify::{check_equivalence, EquivOptions, EquivVerdict};

fn random_circuit(num_qubits: usize, gates: usize, rng: &mut SplitMix64) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for _ in 0..gates {
        match rng.gen_range(0..5u32) {
            0 => {
                let q = rng.gen_range(0..num_qubits);
                c.h(q);
            }
            1 => {
                let q = rng.gen_range(0..num_qubits);
                c.rx(rng.gen_range(-3.0..3.0), q);
            }
            2 => {
                let q = rng.gen_range(0..num_qubits);
                c.ry(rng.gen_range(-3.0..3.0), q);
            }
            3 => {
                let q = rng.gen_range(0..num_qubits);
                c.rz(rng.gen_range(-3.0..3.0), q);
            }
            _ => {
                let a = rng.gen_range(0..num_qubits);
                let mut b = rng.gen_range(0..num_qubits);
                while b == a {
                    b = rng.gen_range(0..num_qubits);
                }
                c.cx(a, b);
            }
        }
    }
    c
}

/// Reorder adjacent commuting instruction pairs (the adversarial case: the
/// unitary is preserved but overlapping-support swaps change where the noise
/// lands, so only tier-2 discharge is sound for them).
fn commuting_shuffle(c: &Circuit, passes: usize, rng: &mut SplitMix64) -> Circuit {
    let mut insts: Vec<Instruction> = c.instructions().to_vec();
    for _ in 0..passes {
        for i in 0..insts.len().saturating_sub(1) {
            if commutes(&insts[i], &insts[i + 1]) && rng.gen_range(0..2u32) == 1 {
                insts.swap(i, i + 1);
            }
        }
    }
    let mut out = Circuit::new(c.num_qubits());
    for inst in insts {
        out.push(inst.gate, &inst.qubits);
    }
    out
}

/// Perturb: jitter rotation angles, drop gates, and append a stray rotation.
fn perturb(c: &Circuit, scale: f64, rng: &mut SplitMix64) -> Circuit {
    let mut out = Circuit::new(c.num_qubits());
    for inst in c.iter() {
        if scale > 0.1 && rng.gen_range(0..8u32) == 0 {
            continue; // dropped gate
        }
        let jitter = rng.gen_range(-scale..scale.max(1e-9));
        let gate = match &inst.gate {
            Gate::RX(t) => Gate::RX(t + jitter),
            Gate::RY(t) => Gate::RY(t + jitter),
            Gate::RZ(t) => Gate::RZ(t + jitter),
            g => g.clone(),
        };
        out.push(gate, &inst.qubits);
    }
    if scale > 0.0 && rng.gen_range(0..3u32) == 0 {
        let q = rng.gen_range(0..c.num_qubits());
        out.ry(rng.gen_range(-scale..scale.max(1e-9)), q);
    }
    out
}

fn measured_tv(model: &NoiseModel, a: &Circuit, b: &Circuit) -> f64 {
    let pa = model.run_density(a).probabilities();
    let pb = model.run_density(b).probabilities();
    0.5 * pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// The acceptance property: zero soundness violations over the whole seeded
/// sweep of (base, perturbation, noise) triples, including adversarial
/// reordered-but-commuting pairs.
#[test]
fn equiv_bound_upper_bounds_density_matrix_tv() {
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v == "1");
    let seeds: Vec<u64> = if quick {
        (0..3).collect()
    } else {
        (0..12).collect()
    };
    let cal = ourense().induced(&[0, 1, 2]);
    let mut triples = 0usize;
    for &seed in &seeds {
        let mut rng = SplitMix64::seed_from_u64(0x5EED_0000 + seed);
        let params = TfimParams::paper_defaults(3);
        let bases: Vec<Circuit> = vec![
            tfim_circuit(&params, 2),
            grover_circuit(3, seed as usize % 8, optimal_iterations(3)),
            random_circuit(3, 12, &mut rng),
        ];
        for base in &bases {
            let variants: Vec<Circuit> = vec![
                base.clone(),
                commuting_shuffle(base, 3, &mut rng),
                perturb(base, 0.02, &mut rng),
                perturb(&commuting_shuffle(base, 2, &mut rng), 0.2, &mut rng),
            ];
            for (vi, variant) in variants.iter().enumerate() {
                for eps in [0.0, 0.05] {
                    let noisy_cal = cal.with_uniform_cx_error(eps);
                    for relax in [true, false] {
                        let mut model = NoiseModel::from_calibration(noisy_cal.clone());
                        model.include_readout = false;
                        model.include_relaxation = relax;
                        let opts = EquivOptions {
                            epsilon: 0.1,
                            include_relaxation: relax,
                            ..EquivOptions::default()
                        };
                        let report = check_equivalence(base, variant, &noisy_cal, &opts);
                        let tv = measured_tv(&model, base, variant);
                        assert!(
                            report.bound >= tv - 1e-12,
                            "seed {seed} variant {vi} eps {eps} relax {relax}: \
                             bound {} undercuts measured TV {tv}\n{}",
                            report.bound,
                            report.to_text()
                        );
                        assert!(
                            report.lower_bound <= tv + 1e-12,
                            "seed {seed} variant {vi} eps {eps} relax {relax}: \
                             lower bound {} exceeds measured TV {tv}",
                            report.lower_bound
                        );
                        if report.verdict == EquivVerdict::Equivalent {
                            assert!(tv <= opts.epsilon + 1e-12, "certification must be sound");
                        }
                        triples += 1;
                    }
                }
            }
        }
    }
    assert!(
        triples >= if quick { 100 } else { 400 },
        "property sweep shrank to {triples} triples"
    );
}

/// A pure commuting reorder preserves the unitary, so the ideal TV is zero
/// and the bound reduces to pure noise mass — it must still dominate the
/// measured distance caused by noise landing in different places.
#[test]
fn adversarial_commuting_reorder_stays_sound() {
    let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.08);
    let params = TfimParams::paper_defaults(3);
    let base = tfim_circuit(&params, 3);
    for seed in 0..6u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let shuffled = commuting_shuffle(&base, 4, &mut rng);
        assert!(
            base.unitary().approx_eq(&shuffled.unitary(), 1e-9),
            "shuffle must preserve the unitary"
        );
        let mut model = NoiseModel::from_calibration(cal.clone());
        model.include_readout = false;
        let report = check_equivalence(&base, &shuffled, &cal, &EquivOptions::default());
        let tv = measured_tv(&model, &base, &shuffled);
        assert!(
            report.bound >= tv - 1e-12,
            "seed {seed}: bound {} undercuts measured TV {tv}\n{}",
            report.bound,
            report.to_text()
        );
        // the ideal gap is zero up to float error, so the checker knows it
        assert!(report.ideal_tv.unwrap() < 1e-9, "{:?}", report.ideal_tv);
    }
}
