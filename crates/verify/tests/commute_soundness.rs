//! Soundness property tests for the commutation analysis engine, driven by
//! the in-repo seeded RNG and cross-validated against density-matrix
//! simulation (`qaprox-sim` as a dev-dependency).
//!
//! Three claims are exercised:
//!
//! 1. **Foata normal form**: commuting shuffles of a random circuit (100+
//!    seeded shuffles) normalize to the *identical* word, and the shuffled
//!    circuits' unitaries stay phase-equal — commutation-equivalence really
//!    is one trace-monoid element.
//! 2. **Reorder charge**: for every commutation-equivalent pair, the actual
//!    TV distance between the *noisy* output distributions (exact density
//!    matrix, noise mirrored from `qaprox_sim::NoiseModel`) never exceeds
//!    the engine's certified charge.
//! 3. **Acceptance**: an overlapping-commuting reorder of the paper's TFIM
//!    workload certifies through route 3 at a strictly tighter bound than
//!    the noise-charged routes of the previous equivalence checker.

use qaprox_algos::tfim::{tfim_circuit, TfimParams};
use qaprox_circuit::{commutes, Circuit, Gate, Instruction};
use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_sim::NoiseModel;
use qaprox_verify::{
    canonical_reorder, check_equivalence, equivalence_charge, foata_word, EquivOptions,
};

fn random_circuit(n: usize, len: usize, rng: &mut SplitMix64) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let t = rng.gen_range(-3.0..3.0);
        match rng.gen_range(0usize..7) {
            0 => {
                c.h(a);
            }
            1 => {
                c.rz(t, a);
            }
            2 => {
                c.rx(t, a);
            }
            3 => {
                c.push(Gate::T, &[a]);
            }
            4 if a != b => {
                c.cx(a, b);
            }
            5 if a != b => {
                c.cz(a, b);
            }
            _ => {
                c.push(Gate::SX, &[a]);
            }
        }
    }
    c
}

/// Applies `swaps` random adjacent transpositions, keeping only those the
/// oracle proves commuting. Returns the shuffled circuit and how many swaps
/// actually landed.
fn commuting_shuffle(c: &Circuit, swaps: usize, rng: &mut SplitMix64) -> (Circuit, usize) {
    let mut insts: Vec<Instruction> = c.instructions().to_vec();
    let mut landed = 0;
    if insts.len() >= 2 {
        for _ in 0..swaps {
            let i = rng.gen_range(0..insts.len() - 1);
            if commutes(&insts[i], &insts[i + 1]) {
                insts.swap(i, i + 1);
                landed += 1;
            }
        }
    }
    let mut out = Circuit::new(c.num_qubits());
    for inst in insts {
        out.push(inst.gate.clone(), &inst.qubits);
    }
    (out, landed)
}

/// Phase-aligned distance between two full unitaries.
fn phase_gap(a: &Circuit, b: &Circuit) -> f64 {
    let ua = a.unitary();
    let ub = b.unitary();
    let d = ua.rows() as f64;
    // |<A, B>|/d == 1 iff A == e^{i phi} B for unitaries
    (1.0 - ua.hs_inner(&ub).abs() / d).abs()
}

fn tv(p: &[f64], q: &[f64]) -> f64 {
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

#[test]
fn foata_word_is_invariant_under_100_seeded_commuting_shuffles() {
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v != "0");
    let cases = if quick { 40 } else { 120 };
    let mut landed_total = 0usize;
    for seed in 0..cases {
        let mut rng = SplitMix64::seed_from_u64(0xF0A7A ^ seed);
        let n = 2 + (seed as usize % 3); // 2..=4 qubits
        let c = random_circuit(n, 14, &mut rng);
        let word = foata_word(c.instructions());
        let (shuffled, landed) = commuting_shuffle(&c, 30, &mut rng);
        landed_total += landed;
        assert_eq!(
            word,
            foata_word(shuffled.instructions()),
            "seed {seed}: commuting shuffle changed the canonical word"
        );
        let gap = phase_gap(&c, &shuffled);
        assert!(
            gap < 1e-10,
            "seed {seed}: shuffle drifted the unitary by {gap}"
        );
        // and the canonical reorder is itself one more member of the class
        let canon = canonical_reorder(&shuffled);
        assert_eq!(word, foata_word(canon.instructions()));
        assert!(phase_gap(&c, &canon) < 1e-10);
    }
    assert!(
        landed_total > cases as usize * 5,
        "the shuffle must actually exercise swaps (landed {landed_total})"
    );
}

#[test]
fn foata_word_separates_inequivalent_circuits() {
    // a *dependent* swap must change the word (soundness has a converse
    // worth spot-checking: distinct elements get distinct words)
    let mut rng = SplitMix64::seed_from_u64(7);
    let mut separated = 0;
    for _ in 0..50 {
        let c = random_circuit(3, 10, &mut rng);
        let insts = c.instructions();
        for i in 0..insts.len().saturating_sub(1) {
            if !commutes(&insts[i], &insts[i + 1]) {
                let mut swapped: Vec<Instruction> = insts.to_vec();
                swapped.swap(i, i + 1);
                if foata_word(insts) != foata_word(&swapped) {
                    separated += 1;
                }
                break;
            }
        }
    }
    assert!(
        separated > 20,
        "dependent swaps should usually change the word ({separated}/50)"
    );
}

#[test]
fn reorder_charge_bounds_the_true_noisy_tv_distance() {
    // the engine's certified charge vs the exact density-matrix TV distance
    // between the commutation-equivalent pair, on a real device snapshot
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v != "0");
    let cases = if quick { 10 } else { 30 };
    let cal = qaprox_device::devices::ourense().induced(&[0, 1, 2]);
    let mut model = NoiseModel::from_calibration(cal.clone());
    model.include_readout = false;
    let mut checked = 0usize;
    for seed in 0..cases {
        let mut rng = SplitMix64::seed_from_u64(0xC4A26E ^ seed);
        let c = random_circuit(3, 10, &mut rng);
        let (shuffled, landed) = commuting_shuffle(&c, 20, &mut rng);
        if landed == 0 || shuffled.instructions() == c.instructions() {
            continue;
        }
        let charge = equivalence_charge(&c, &shuffled, &cal, model.include_relaxation)
            .expect("commuting shuffles stay in the class");
        let actual = tv(&model.probabilities(&c), &model.probabilities(&shuffled));
        assert!(
            actual <= charge + 1e-9,
            "seed {seed}: true noisy TV {actual} exceeds certified charge {charge}"
        );
        checked += 1;
    }
    assert!(
        checked > cases as usize / 2,
        "too few pairs exercised ({checked})"
    );
}

#[test]
fn disjoint_only_reorders_charge_exactly_zero() {
    let mut a = Circuit::new(4);
    a.h(0).rz(0.3, 1).rx(0.7, 2).cx(2, 3).h(1);
    let mut b = Circuit::new(4);
    b.rz(0.3, 1).h(0).h(1).rx(0.7, 2).cx(2, 3);
    let cal = qaprox_device::devices::ourense().induced(&[0, 1, 2, 3]);
    let charge = equivalence_charge(&a, &b, &cal, true).expect("same word");
    assert_eq!(charge, 0.0, "disjoint swaps must be certified free");
}

#[test]
fn tfim_overlapping_reorder_certifies_strictly_tighter() {
    // THE acceptance criterion: the canonical reorder of the paper's TFIM
    // workload is a genuine overlapping-commuting reorder, and route 3
    // certifies it strictly below both noise-charged routes of PR 6.
    let c = tfim_circuit(&TfimParams::paper_defaults(3), 2);
    let r = canonical_reorder(&c);
    assert_ne!(
        c.instructions(),
        r.instructions(),
        "the canonical order must genuinely reorder the TFIM body"
    );
    // the pair contains at least one *overlapping* commuting swap (not all
    // disjoint), otherwise tier 1 would already discharge it for free
    let cal = qaprox_device::devices::ourense().induced(&[0, 1, 2]);
    let report = check_equivalence(
        &c,
        &r,
        &cal,
        &EquivOptions {
            epsilon: 1e-9,
            ..EquivOptions::default()
        },
    );
    assert!(report.commutation_equivalent, "{}", report.to_text());
    let charge = report.reorder_noise.expect("route 3 ran");
    let via_residual = report.d_unitary + report.noise_residual_a + report.noise_residual_b;
    let via_ideal = report.ideal_tv.expect("3 qubits fits the ideal pass")
        + report.noise_full_a
        + report.noise_full_b;
    let pr6_bound = via_residual.min(via_ideal).min(1.0);
    assert!(
        report.bound < pr6_bound,
        "route 3 must be strictly tighter: {} vs {}",
        report.bound,
        pr6_bound
    );
    assert!(charge > 0.0, "an overlapping swap carries a nonzero charge");
    // and the certified bound is sound against the exact noisy simulation
    let mut model = NoiseModel::from_calibration(cal);
    model.include_readout = false;
    let actual = tv(&model.probabilities(&c), &model.probabilities(&r));
    assert!(
        actual <= report.bound + 1e-9,
        "true noisy TV {actual} exceeds certified bound {}",
        report.bound
    );
}
