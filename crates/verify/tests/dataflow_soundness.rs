//! Soundness of the QA3xx dataflow rewrites plus adversarial CircuitDag
//! construction cases.
//!
//! The property: every cancellation suggested by
//! [`qaprox_verify::find_cancellations`] — adjoint-pair removal or rotation
//! merge — must leave the circuit unitary unchanged up to global phase.
//! Random circuits are drawn from a gate pool heavy in self-inverse and
//! rotation gates so the finder actually has material to work with.

use qaprox_circuit::{Circuit, Gate, Instruction, RawMeasure};
use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_linalg::Matrix;
use qaprox_verify::{find_cancellations, CircuitDag, DagError};

fn rebuild(num_qubits: usize, instructions: &[Instruction]) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for inst in instructions {
        c.push(inst.gate.clone(), &inst.qubits);
    }
    c
}

/// Global-phase-invariant unitary equality: `|Tr(A^dagger B)| = d` iff
/// `A = e^{i phi} B`.
fn same_up_to_phase(a: &Matrix, b: &Matrix) -> bool {
    let d = a.rows() as f64;
    (a.hs_inner(b).abs() - d).abs() < 1e-9 * d
}

fn random_circuit(rng: &mut SplitMix64, num_qubits: usize, len: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for _ in 0..len {
        // a quarter of the stream repeats an earlier instruction verbatim:
        // repeating a self-inverse gate plants adjoint pairs, repeating a
        // rotation plants merge candidates
        if !c.is_empty() && rng.gen_range(0..4u32) == 0 {
            let i = rng.gen_range(0..c.len());
            let inst = c.instructions()[i].clone();
            c.push(inst.gate, &inst.qubits);
            continue;
        }
        let q = rng.gen_range(0..num_qubits);
        let theta = rng.gen_range(-3.0..3.0);
        match rng.gen_range(0..10u32) {
            0 => {
                c.h(q);
            }
            1 => {
                c.x(q);
            }
            2 => c.push(Gate::S, &[q]),
            3 => c.push(Gate::T, &[q]),
            4 => {
                c.rx(theta, q);
            }
            5 => {
                c.ry(theta, q);
            }
            6 => {
                c.rz(theta, q);
            }
            7 => c.push(Gate::P(theta), &[q]),
            _ => {
                let mut p = rng.gen_range(0..num_qubits);
                while p == q {
                    p = rng.gen_range(0..num_qubits);
                }
                if rng.gen_range(0..2u32) == 0 {
                    c.cx(q, p);
                } else {
                    c.cz(q, p);
                }
            }
        };
    }
    c
}

/// Every suggested cancellation, applied on its own, preserves the unitary.
#[test]
fn every_cancellation_suggestion_is_sound() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_da7a);
    let mut found = 0usize;
    for trial in 0..120 {
        let num_qubits = rng.gen_range(2..5usize);
        let len = rng.gen_range(6..15usize);
        let circuit = random_circuit(&mut rng, num_qubits, len);
        let dag = CircuitDag::from_circuit(&circuit);
        let reference = circuit.unitary();
        for cancellation in find_cancellations(&dag) {
            found += 1;
            let rewritten = rebuild(num_qubits, &cancellation.apply(circuit.instructions()));
            assert!(
                rewritten.len() < circuit.len(),
                "trial {trial}: a rewrite must shrink the circuit"
            );
            assert!(
                same_up_to_phase(&reference, &rewritten.unitary()),
                "trial {trial}: unsound rewrite of gates {} and {} in {:?}",
                cancellation.first,
                cancellation.second,
                circuit.instructions()
            );
        }
    }
    // the property must not hold vacuously
    assert!(found >= 50, "only {found} cancellations over 120 trials");
}

// --- adversarial CircuitDag construction -------------------------------

fn measure(qubit: usize, clbit: usize, after: usize) -> RawMeasure {
    RawMeasure {
        qubit,
        clbit,
        after,
        line: 0,
    }
}

#[test]
fn mid_circuit_measurement_orders_against_later_gates() {
    // h q0; measure q0 -> c0; x q0 — the measure is mid-circuit, so the X is
    // both a successor of the measure and flagged as post-measurement
    let mut c = Circuit::new(1);
    c.h(0).x(0);
    let dag = CircuitDag::from_program(
        1,
        1,
        c.instructions(),
        &[measure(0, 0, 1)], // after the H, before the X
    )
    .unwrap();
    assert_eq!(dag.len(), 3);
    assert_eq!(dag.gates_after_final_measure(0).len(), 1);
    assert!(dag.unread_clbits().is_empty());
    // wire order pins the layering: H < measure < X
    assert_eq!(dag.depth(), 3);
}

#[test]
fn repeated_qubit_operands_are_rejected() {
    let inst = Instruction {
        gate: Gate::CX,
        qubits: vec![1, 1],
    };
    let err = CircuitDag::from_program(2, 0, &[inst], &[]).err();
    assert!(
        matches!(err, Some(DagError::RepeatedQubit { .. })),
        "{err:?}"
    );
}

#[test]
fn empty_circuit_builds_a_trivial_dag() {
    let dag = CircuitDag::from_circuit(&Circuit::new(3));
    assert!(dag.is_empty());
    assert_eq!(dag.depth(), 0);
    assert_eq!(dag.dead_qubits(), vec![0, 1, 2]);
    assert_eq!(dag.cnot_critical_path().weight, 0.0);
    assert!(find_cancellations(&dag).is_empty());
}

#[test]
fn single_qubit_only_circuit_has_no_entanglement() {
    let mut c = Circuit::new(3);
    c.h(0).rz(0.3, 1).x(2).h(0);
    let dag = CircuitDag::from_circuit(&c);
    // every component is a singleton — nothing couples the qubits
    for comp in dag.entangled_components() {
        assert_eq!(comp.len(), 1, "{:?}", dag.entangled_components());
    }
    assert_eq!(dag.cnot_critical_path().weight, 0.0);
}

#[test]
fn wide_shallow_circuit_layers_flat() {
    // 16 qubits, one H each: depth 1, no critical CNOT path, no dead qubits
    let mut c = Circuit::new(16);
    for q in 0..16 {
        c.h(q);
    }
    let dag = CircuitDag::from_circuit(&c);
    assert_eq!(dag.len(), 16);
    assert_eq!(dag.depth(), 1);
    assert!(dag.dead_qubits().is_empty());
    assert_eq!(dag.cnot_critical_path().weight, 0.0);
    // a ladder of CNOTs across the same 16 qubits stacks serially
    let mut ladder = Circuit::new(16);
    for q in 0..15 {
        ladder.cx(q, q + 1);
    }
    let ldag = CircuitDag::from_circuit(&ladder);
    assert_eq!(ldag.depth(), 15);
    assert_eq!(ldag.cnot_critical_path().weight, 15.0);
}
