//! # qaprox-verify
//!
//! Static analysis for the qaprox stack: a lint pass over circuit IR, noise
//! channels, and device data that catches defects *before* they reach a
//! simulator or synthesis run. Every check has a stable `QA…` code
//! (catalogued in `docs/LINTS.md`) and a configurable level, so callers can
//! gate pipelines on deny-level findings while keeping advisory checks as
//! warnings.
//!
//! The crate deliberately depends only on `qaprox-linalg`, `qaprox-circuit`,
//! and `qaprox-device`; higher layers (simulator, transpiler, synthesis,
//! CLI) call *into* it at their admission points:
//!
//! * `qaprox lint <file.qasm>` — standalone analysis of a program;
//! * `sim::executor` — pre-run validation of circuits and noise data;
//! * `transpile` — post-pass invariant checks (routing really conforms to
//!   the coupling map, optimization preserved the unitary);
//! * `synth` — admission checks before a candidate enters threshold
//!   selection.
//!
//! ```
//! use qaprox_verify::{lint_circuit, LintConfig};
//! use qaprox_circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! let report = lint_circuit(&c, None, &LintConfig::new());
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod calibration_lints;
pub mod channel_lints;
pub mod circuit_lints;
pub mod commute;
pub mod config;
pub mod dag;
pub mod dataflow;
pub mod diagnostics;
pub mod equiv;

pub use budget::{analyze, analyze_with_config, AnalysisReport, AnalyzeOptions, QubitBudget};
pub use calibration_lints::lint_calibration;
pub use channel_lints::{
    kraus_completeness_defect, lint_kraus_set, lint_probability, lint_stochastic_rows,
};
pub use circuit_lints::{lint_circuit, lint_instructions};
pub use commute::{
    canonical_reorder, charge_to_normal_form, equivalence_charge, foata_blocks, foata_word,
    fusion_plan, lint_commute, swap_cost, FusionStep,
};
pub use config::{LintCode, LintConfig, LintLevel};
pub use dag::{CircuitDag, CriticalPath, DagError, DagNode};
pub use dataflow::{
    find_cancellations, lint_dataflow, lint_program, Cancellation, CancellationKind,
};
pub use diagnostics::{Diagnostic, Location, Report, Severity, REPORT_SCHEMA_VERSION};
pub use equiv::{
    check_equivalence, check_equivalence_with_config, EquivOptions, EquivReport, EquivVerdict,
};
