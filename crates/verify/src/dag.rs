//! The dataflow IR: a per-wire def-use DAG over one circuit.
//!
//! A [`CircuitDag`] is built once per circuit and then shared by every
//! dataflow pass (the QA3xx lints of [`crate::dataflow`]) and by the static
//! noise-budget estimator ([`crate::budget`]). Nodes are gates plus
//! measurements; edges are wire-adjacency (qubit def-use chains), so two
//! gates on disjoint qubits are never ordered against each other. On top of
//! the edge structure the DAG precomputes ASAP layers and offers weighted
//! longest-path (critical-path) queries — gate count, CNOT cost, or
//! calibration-derived wall-clock duration.
//!
//! Construction is `O(gates)` and validating: repeated or out-of-range
//! operands are rejected with a [`DagError`] rather than producing a DAG
//! with aliased wires, because every downstream pass assumes each node
//! touches each wire at most once.

use qaprox_circuit::{Instruction, RawMeasure};
use qaprox_device::Calibration;

/// One node of the dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub enum DagNode {
    /// A unitary gate; `index` is its position in the gate stream.
    Gate {
        /// Position in the instruction list the DAG was built from.
        index: usize,
        /// The placed gate.
        inst: Instruction,
    },
    /// A measurement; `index` is its position in the measure stream.
    Measure {
        /// Position in the measure list the DAG was built from.
        index: usize,
        /// Measured qubit.
        qubit: usize,
        /// Destination classical bit.
        clbit: usize,
    },
}

impl DagNode {
    /// The qubit wires this node touches.
    pub fn qubits(&self) -> &[usize] {
        match self {
            DagNode::Gate { inst, .. } => &inst.qubits,
            DagNode::Measure { qubit, .. } => std::slice::from_ref(qubit),
        }
    }

    /// The gate instruction, when this node is a gate.
    pub fn instruction(&self) -> Option<&Instruction> {
        match self {
            DagNode::Gate { inst, .. } => Some(inst),
            DagNode::Measure { .. } => None,
        }
    }
}

/// Why a program could not be lifted into a [`CircuitDag`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A node lists the same qubit more than once (aliased wire).
    RepeatedQubit {
        /// Offending gate's position in the instruction list.
        index: usize,
        /// The repeated qubit.
        qubit: usize,
    },
    /// A node addresses a qubit outside the declared register.
    QubitOutOfRange {
        /// Offending node's position (gate index, or measure index for measures).
        index: usize,
        /// The out-of-range qubit.
        qubit: usize,
        /// Declared register width.
        num_qubits: usize,
    },
    /// A measurement targets a classical bit outside the declared register.
    ClbitOutOfRange {
        /// Offending measure's position in the measure list.
        index: usize,
        /// The out-of-range classical bit.
        clbit: usize,
        /// Declared classical register width.
        num_clbits: usize,
    },
    /// A gate carries no operands at all (no wire to attach it to).
    NoOperands {
        /// Offending gate's position in the instruction list.
        index: usize,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::RepeatedQubit { index, qubit } => {
                write!(f, "instruction {index} lists qubit {qubit} more than once")
            }
            DagError::QubitOutOfRange {
                index,
                qubit,
                num_qubits,
            } => write!(
                f,
                "node {index} addresses qubit {qubit} in a {num_qubits}-qubit register"
            ),
            DagError::ClbitOutOfRange {
                index,
                clbit,
                num_clbits,
            } => write!(
                f,
                "measure {index} writes clbit {clbit} in a {num_clbits}-bit register"
            ),
            DagError::NoOperands { index } => {
                write!(f, "instruction {index} has no operands")
            }
        }
    }
}

impl std::error::Error for DagError {}

/// A weighted critical path through the DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Total accumulated weight along the path.
    pub weight: f64,
    /// Node ids from an input node to an output node, in order.
    pub nodes: Vec<usize>,
}

/// The per-circuit dataflow graph. See the module docs.
#[derive(Debug, Clone)]
pub struct CircuitDag {
    num_qubits: usize,
    num_clbits: usize,
    nodes: Vec<DagNode>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    layer: Vec<usize>,
    /// Node ids touching each qubit, in program order (the def-use chain).
    qubit_nodes: Vec<Vec<usize>>,
    /// Measure node ids writing each clbit, in program order.
    clbit_writes: Vec<Vec<usize>>,
}

impl CircuitDag {
    /// Builds the DAG for a validated [`qaprox_circuit::Circuit`] (no
    /// measurements; the IR is pure unitary evolution).
    pub fn from_circuit(circuit: &qaprox_circuit::Circuit) -> CircuitDag {
        CircuitDag::from_instructions(circuit.num_qubits(), circuit.instructions())
            .expect("Circuit guarantees in-range, distinct operands")
    }

    /// Builds the DAG for a raw instruction list without measurements.
    pub fn from_instructions(
        num_qubits: usize,
        instructions: &[Instruction],
    ) -> Result<CircuitDag, DagError> {
        CircuitDag::from_program(num_qubits, 0, instructions, &[])
    }

    /// Builds the DAG for a full program: gates plus the measurement stream
    /// a lenient QASM parse records ([`RawMeasure::after`] fixes each
    /// measurement's position in the merged order).
    pub fn from_program(
        num_qubits: usize,
        num_clbits: usize,
        instructions: &[Instruction],
        measures: &[RawMeasure],
    ) -> Result<CircuitDag, DagError> {
        // validate operands up front so wire attachment can't alias
        for (i, inst) in instructions.iter().enumerate() {
            if inst.qubits.is_empty() {
                return Err(DagError::NoOperands { index: i });
            }
            for (k, &q) in inst.qubits.iter().enumerate() {
                if q >= num_qubits {
                    return Err(DagError::QubitOutOfRange {
                        index: i,
                        qubit: q,
                        num_qubits,
                    });
                }
                if inst.qubits[..k].contains(&q) {
                    return Err(DagError::RepeatedQubit { index: i, qubit: q });
                }
            }
        }
        for (i, m) in measures.iter().enumerate() {
            if m.qubit >= num_qubits {
                return Err(DagError::QubitOutOfRange {
                    index: i,
                    qubit: m.qubit,
                    num_qubits,
                });
            }
            if m.clbit >= num_clbits {
                return Err(DagError::ClbitOutOfRange {
                    index: i,
                    clbit: m.clbit,
                    num_clbits,
                });
            }
        }

        // merged program order: a measure with `after == g` precedes gate g
        let mut nodes = Vec::with_capacity(instructions.len() + measures.len());
        let mut next_measure = 0usize;
        for (g, inst) in instructions.iter().enumerate() {
            while next_measure < measures.len() && measures[next_measure].after <= g {
                let m = &measures[next_measure];
                nodes.push(DagNode::Measure {
                    index: next_measure,
                    qubit: m.qubit,
                    clbit: m.clbit,
                });
                next_measure += 1;
            }
            nodes.push(DagNode::Gate {
                index: g,
                inst: inst.clone(),
            });
        }
        for (i, m) in measures.iter().enumerate().skip(next_measure) {
            nodes.push(DagNode::Measure {
                index: i,
                qubit: m.qubit,
                clbit: m.clbit,
            });
        }

        // wire attachment: connect each node to the previous node on each of
        // its qubits; layering is ASAP (1 + max over predecessors)
        let n = nodes.len();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut layer = vec![0usize; n];
        let mut qubit_nodes: Vec<Vec<usize>> = vec![Vec::new(); num_qubits];
        let mut clbit_writes: Vec<Vec<usize>> = vec![Vec::new(); num_clbits];
        let mut frontier: Vec<Option<usize>> = vec![None; num_qubits];
        for (id, node) in nodes.iter().enumerate() {
            let mut lvl = 0usize;
            for &q in node.qubits() {
                if let Some(p) = frontier[q] {
                    if !preds[id].contains(&p) {
                        preds[id].push(p);
                        succs[p].push(id);
                    }
                    lvl = lvl.max(layer[p] + 1);
                }
                frontier[q] = Some(id);
                qubit_nodes[q].push(id);
            }
            layer[id] = lvl;
            if let DagNode::Measure { clbit, .. } = node {
                clbit_writes[*clbit].push(id);
            }
        }

        Ok(CircuitDag {
            num_qubits,
            num_clbits,
            nodes,
            preds,
            succs,
            layer,
            qubit_nodes,
            clbit_writes,
        })
    }

    /// Declared qubit register width.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Declared classical register width.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Number of nodes (gates + measurements).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG holds no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in merged program order (a valid topological order).
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// Wire-predecessors of a node.
    pub fn preds(&self, id: usize) -> &[usize] {
        &self.preds[id]
    }

    /// Wire-successors of a node.
    pub fn succs(&self, id: usize) -> &[usize] {
        &self.succs[id]
    }

    /// ASAP layer of a node (0 = no predecessor on any wire).
    pub fn layer(&self, id: usize) -> usize {
        self.layer[id]
    }

    /// Number of ASAP layers (0 for an empty DAG). For a measurement-free
    /// DAG this equals [`qaprox_circuit::Circuit::depth`].
    pub fn depth(&self) -> usize {
        self.layer.iter().map(|&l| l + 1).max().unwrap_or(0)
    }

    /// The def-use chain of one qubit: node ids in program order.
    pub fn qubit_nodes(&self, qubit: usize) -> &[usize] {
        &self.qubit_nodes[qubit]
    }

    /// Measure node ids writing one classical bit, in program order.
    pub fn clbit_writes(&self, clbit: usize) -> &[usize] {
        &self.clbit_writes[clbit]
    }

    /// Qubits no node ever touches.
    pub fn dead_qubits(&self) -> Vec<usize> {
        (0..self.num_qubits)
            .filter(|&q| self.qubit_nodes[q].is_empty())
            .collect()
    }

    /// Declared classical bits no measurement ever writes.
    pub fn unread_clbits(&self) -> Vec<usize> {
        (0..self.num_clbits)
            .filter(|&c| self.clbit_writes[c].is_empty())
            .collect()
    }

    /// The last measurement node on each qubit, if any.
    pub fn final_measure(&self, qubit: usize) -> Option<usize> {
        self.qubit_nodes[qubit]
            .iter()
            .rev()
            .copied()
            .find(|&id| matches!(self.nodes[id], DagNode::Measure { .. }))
    }

    /// Gate nodes acting on `qubit` after its final measurement — dead
    /// operations whose effect can never be observed on that wire.
    pub fn gates_after_final_measure(&self, qubit: usize) -> Vec<usize> {
        let Some(m) = self.final_measure(qubit) else {
            return Vec::new();
        };
        self.qubit_nodes[qubit]
            .iter()
            .copied()
            .filter(|&id| id > m && matches!(self.nodes[id], DagNode::Gate { .. }))
            .collect()
    }

    /// Partitions the *active* qubits (those with at least one node) into
    /// entanglement components: two qubits share a component iff a chain of
    /// multi-qubit gates connects them. A result with more than one
    /// component means the circuit factorizes and each partition could be
    /// simulated (and error-budgeted) independently.
    pub fn entangled_components(&self) -> Vec<Vec<usize>> {
        let mut parent: Vec<usize> = (0..self.num_qubits).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for node in &self.nodes {
            let qs = node.qubits();
            for w in qs.windows(2) {
                let (a, b) = (find(&mut parent, w[0]), find(&mut parent, w[1]));
                if a != b {
                    parent[a] = b;
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for q in 0..self.num_qubits {
            if self.qubit_nodes[q].is_empty() {
                continue; // dead qubits are QA301's business, not a partition
            }
            let root = find(&mut parent, q);
            groups.entry(root).or_default().push(q);
        }
        groups.into_values().collect()
    }

    /// Longest path through the DAG under a per-node weight. Returns the
    /// accumulated weight and the node ids along the path. Zero-weight nodes
    /// are allowed; an empty DAG yields weight 0 and no nodes.
    pub fn critical_path(&self, weight: impl Fn(&DagNode) -> f64) -> CriticalPath {
        if self.nodes.is_empty() {
            return CriticalPath {
                weight: 0.0,
                nodes: Vec::new(),
            };
        }
        let n = self.nodes.len();
        let mut best = vec![0.0f64; n];
        let mut from: Vec<Option<usize>> = vec![None; n];
        for id in 0..n {
            let w = weight(&self.nodes[id]);
            let mut acc = 0.0;
            let mut arg = None;
            for &p in &self.preds[id] {
                if best[p] > acc {
                    acc = best[p];
                    arg = Some(p);
                }
            }
            best[id] = acc + w;
            from[id] = arg;
        }
        let mut end = 0usize;
        for id in 1..n {
            if best[id] > best[end] {
                end = id;
            }
        }
        let mut nodes = vec![end];
        while let Some(p) = from[*nodes.last().expect("nonempty")] {
            nodes.push(p);
        }
        nodes.reverse();
        CriticalPath {
            weight: best[end],
            nodes,
        }
    }

    /// CNOT-weighted critical path: each gate weighs its
    /// [`qaprox_circuit::Gate::cnot_cost`], measurements weigh 0. The weight
    /// is the minimum number of *serial* CNOTs any schedule must pay — the
    /// quantity the paper's noise analysis tracks.
    pub fn cnot_critical_path(&self) -> CriticalPath {
        self.critical_path(|node| match node {
            DagNode::Gate { inst, .. } => inst.gate.cnot_cost() as f64,
            DagNode::Measure { .. } => 0.0,
        })
    }

    /// Duration-weighted critical path in nanoseconds, using the
    /// calibration's per-gate durations (`sx_time_ns` for 1q gates, the
    /// edge's `cx_time_ns` — or the 400 ns lenient fallback for uncoupled
    /// pairs, matching the simulator's noise model — for 2q gates).
    /// Measurements weigh 0 (the calibration carries no readout duration).
    pub fn duration_critical_path(&self, cal: &Calibration) -> CriticalPath {
        self.critical_path(|node| match node {
            DagNode::Gate { inst, .. } => match inst.qubits.as_slice() {
                [q] => cal.qubits.get(*q).map_or(0.0, |c| c.sx_time_ns),
                [a, b] => cal.edge(*a, *b).map_or(400.0, |e| e.cx_time_ns),
                _ => 0.0,
            },
            DagNode::Measure { .. } => 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_circuit::{Circuit, Gate};

    #[test]
    fn wire_chains_and_layers_follow_program_order() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.3, 2).cx(1, 2);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.len(), 4);
        assert_eq!(dag.qubit_nodes(0), &[0, 1]);
        assert_eq!(dag.qubit_nodes(1), &[1, 3]);
        assert_eq!(dag.qubit_nodes(2), &[2, 3]);
        assert_eq!(dag.layer(0), 0);
        assert_eq!(dag.layer(1), 1);
        assert_eq!(dag.layer(2), 0, "rz(2) has no wire predecessor");
        assert_eq!(dag.layer(3), 2);
        assert_eq!(dag.depth(), c.depth());
        assert_eq!(dag.preds(3), &[1, 2]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn depth_matches_circuit_depth_on_random_shapes() {
        let mut c = Circuit::new(4);
        c.h(0).h(3).cx(0, 1).cx(2, 3).cx(1, 2).rz(0.1, 0).cx(0, 1);
        assert_eq!(CircuitDag::from_circuit(&c).depth(), c.depth());
    }

    #[test]
    fn cnot_critical_path_counts_serial_cnots() {
        let mut c = Circuit::new(3);
        // two parallel CNOT chains of length 2 and a lone H
        c.cx(0, 1).cx(0, 1).h(2);
        let dag = CircuitDag::from_circuit(&c);
        let cp = dag.cnot_critical_path();
        assert_eq!(cp.weight, 2.0);
        assert_eq!(cp.nodes, vec![0, 1]);
        assert_eq!(dag.critical_path(|_| 1.0).weight, 2.0);
    }

    #[test]
    fn rejects_defective_operands() {
        let bad = vec![Instruction {
            gate: Gate::CX,
            qubits: vec![1, 1],
        }];
        assert_eq!(
            CircuitDag::from_instructions(2, &bad).err(),
            Some(DagError::RepeatedQubit { index: 0, qubit: 1 }),
        );
        let oob = vec![Instruction {
            gate: Gate::H,
            qubits: vec![5],
        }];
        assert!(matches!(
            CircuitDag::from_instructions(2, &oob),
            Err(DagError::QubitOutOfRange { qubit: 5, .. })
        ));
        let none = vec![Instruction {
            gate: Gate::H,
            qubits: vec![],
        }];
        assert!(matches!(
            CircuitDag::from_instructions(2, &none),
            Err(DagError::NoOperands { index: 0 })
        ));
    }

    #[test]
    fn measures_interleave_and_track_clbits() {
        let insts = vec![
            Instruction {
                gate: Gate::H,
                qubits: vec![0],
            },
            Instruction {
                gate: Gate::X,
                qubits: vec![0],
            },
        ];
        let measures = vec![RawMeasure {
            qubit: 0,
            clbit: 0,
            after: 1,
            line: 3,
        }];
        let dag = CircuitDag::from_program(1, 2, &insts, &measures).unwrap();
        // merged order: h, measure, x
        assert_eq!(dag.len(), 3);
        assert!(matches!(dag.nodes()[1], DagNode::Measure { .. }));
        assert_eq!(dag.final_measure(0), Some(1));
        assert_eq!(dag.gates_after_final_measure(0), vec![2]);
        assert_eq!(dag.clbit_writes(0), &[1]);
        assert_eq!(dag.unread_clbits(), vec![1]);
    }

    #[test]
    fn entangled_components_partition_active_qubits() {
        let mut c = Circuit::new(5);
        c.cx(0, 1).cx(3, 4).h(0);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.entangled_components(), vec![vec![0, 1], vec![3, 4]]);
        assert_eq!(dag.dead_qubits(), vec![2]);
    }
}
