//! The noisy equivalence checker (the `QA5xx` family): an abstract
//! interpreter over *pairs* of circuits that certifies an upper bound on the
//! total-variation distance between their output distributions under the
//! device's noise model — without simulating either circuit.
//!
//! Full math and the soundness argument live in `docs/EQUIV.md`; the short
//! version:
//!
//! * **Discharge.** Two passes over the pair peel off work that provably
//!   contributes nothing. Tier 1 (noise-inclusive) removes identical
//!   instructions that can bubble to the circuit boundary across
//!   *disjoint-support* neighbours only — channels on disjoint subsystems
//!   commute exactly, so the whole noisy block (gate + its noise) cancels
//!   between the two sides. Tier 2 (unitary-only) removes identical
//!   instructions that bubble via the algebraic [`commutes`] relation; noise
//!   does *not* commute through overlapping gates even when the unitaries
//!   do, so these discharge only from the unitary-distance term and their
//!   noise stays on the books. Both tiers run front-to-back and, mirrored,
//!   back-to-front (data processing lets a common trailing channel drop).
//! * **Unitary distance.** The residual gate sequences are aligned by an
//!   edit-distance DP; a matched same-support pair costs the phase-aligned
//!   Frobenius distance `min_phi ||U - e^{i phi} V||_F` (an upper bound on
//!   the operator-norm distance, hence on half the diamond distance of the
//!   induced channels), an unmatched gate costs its distance to identity.
//! * **Noise terms.** Every non-tier-1-discharged gate contributes its
//!   half-diamond distance to the identity channel, mirroring
//!   `qaprox_sim::NoiseModel` exactly: depolarizing strength
//!   `lambda_1q = clamp(2 sx_error)` / `lambda_2q = clamp(4/3 cx_error)`
//!   contributes `lambda`; thermal relaxation over the gate duration
//!   contributes `(1 - s) + (1 - s^2)/2` per qubit-application, with `s` the
//!   survival amplitude from [`crate::budget`].
//! * **Ideal cross-check.** For small widths the exact ideal-statevector TV
//!   distance is computed too; `tv_ideal + noise_A + noise_B` is a second
//!   sound upper bound (triangle inequality through the ideal circuits) and
//!   `tv_ideal - noise_A - noise_B` a sound *lower* bound, which is what
//!   lets QA501 prove a violation rather than merely fail to certify.
//!
//! Readout confusion is a stochastic map applied identically to both
//! distributions, and stochastic maps contract total variation — so the
//! bound is sound with or without readout and the checker ignores it.

use crate::budget::{edge_cal, relaxation_survival};
use crate::circuit_lints::emit;
use crate::config::{LintCode, LintConfig};
use crate::diagnostics::{Location, Report, REPORT_SCHEMA_VERSION};
use qaprox_circuit::{commutes, Circuit, Instruction};
use qaprox_device::Calibration;
use qaprox_linalg::Matrix;

/// Knobs for [`check_equivalence`].
#[derive(Debug, Clone)]
pub struct EquivOptions {
    /// The closeness target: the pair is certified equivalent when the
    /// upper bound on the noisy output-distribution TV distance is at most
    /// this.
    pub epsilon: f64,
    /// Account for T1/T2 relaxation in the noise terms (matches
    /// `NoiseModel::include_relaxation`).
    pub include_relaxation: bool,
    /// Widths up to this many qubits also get the exact ideal-statevector
    /// TV distance (O(2^n) work), which tightens the upper bound and is the
    /// only source of a nontrivial lower bound. `0` disables the pass.
    pub ideal_tv_max_qubits: usize,
}

impl Default for EquivOptions {
    fn default() -> Self {
        EquivOptions {
            epsilon: 0.1,
            include_relaxation: true,
            ideal_tv_max_qubits: 12,
        }
    }
}

/// What the checker could conclude about the pair at the requested epsilon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EquivVerdict {
    /// `bound <= epsilon`: the circuits are certified ε-equivalent on the
    /// device. Sound — no simulation can contradict it.
    Equivalent,
    /// `lower_bound > epsilon`: the circuits are certified *not*
    /// ε-equivalent (QA501).
    Violated,
    /// Neither bound decides; a simulation (or a tighter epsilon) is needed
    /// (QA502).
    Undecidable,
}

impl EquivVerdict {
    /// Lowercase name used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            EquivVerdict::Equivalent => "equivalent",
            EquivVerdict::Violated => "violated",
            EquivVerdict::Undecidable => "undecidable",
        }
    }
}

/// Everything the equivalence checker derives from one circuit pair +
/// calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivReport {
    /// Device name from the calibration snapshot.
    pub machine: String,
    /// Circuit width (both circuits must agree).
    pub num_qubits: usize,
    /// The epsilon the verdict refers to.
    pub epsilon: f64,
    /// Gate count of the first circuit.
    pub gates_a: usize,
    /// Gate count of the second circuit.
    pub gates_b: usize,
    /// Instruction pairs discharged with their noise (tier 1: identical,
    /// bubble-able across disjoint-support neighbours on both sides).
    pub discharged_noisy: usize,
    /// Instruction pairs discharged from the unitary term only (tier 2:
    /// identical, bubble-able via `commutes`; their noise still counts).
    pub discharged_unitary: usize,
    /// Certified upper bound on `min_phi ||U_A - e^{i phi} U_B||_op` for the
    /// tier-1 residual circuits, from the aligned per-gate Frobenius sum.
    pub d_unitary: f64,
    /// Half-diamond noise mass of the first circuit's tier-1 residual.
    pub noise_residual_a: f64,
    /// Half-diamond noise mass of the second circuit's tier-1 residual.
    pub noise_residual_b: f64,
    /// Half-diamond noise mass of the *whole* first circuit.
    pub noise_full_a: f64,
    /// Half-diamond noise mass of the *whole* second circuit.
    pub noise_full_b: f64,
    /// Exact TV distance between the ideal output distributions, when the
    /// width allowed computing it.
    pub ideal_tv: Option<f64>,
    /// True when the pair normalized to the identical Foata word — a proof
    /// the circuits are commutation-equivalent (one unitary, exactly).
    pub commutation_equivalent: bool,
    /// The noise charge of reordering both sides into the shared normal
    /// form (route 3's bound), when the pair is commutation-equivalent.
    pub reorder_noise: Option<f64>,
    /// Certified upper bound on the TV distance between the noisy output
    /// distributions.
    pub bound: f64,
    /// Certified lower bound on the same distance (0 unless the ideal pass
    /// ran and the ideal gap exceeds the total noise mass).
    pub lower_bound: f64,
    /// The decision at `epsilon`.
    pub verdict: EquivVerdict,
    /// QA5xx findings.
    pub findings: Report,
}

impl EquivReport {
    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "equivalence of {} qubit(s) on {}: {} vs {} gate(s), epsilon {}\n",
            self.num_qubits, self.machine, self.gates_a, self.gates_b, self.epsilon
        ));
        out.push_str(&format!(
            "  verdict                {}\n",
            self.verdict.as_str()
        ));
        out.push_str(&format!("  distance upper bound   {:.6}\n", self.bound));
        out.push_str(&format!(
            "  distance lower bound   {:.6}\n",
            self.lower_bound
        ));
        out.push_str(&format!(
            "  discharged             {} noisy pair(s), {} unitary pair(s)\n",
            self.discharged_noisy, self.discharged_unitary
        ));
        out.push_str(&format!("  unitary distance       {:.6}\n", self.d_unitary));
        out.push_str(&format!(
            "  residual noise         {:.6} (A) + {:.6} (B)\n",
            self.noise_residual_a, self.noise_residual_b
        ));
        out.push_str(&format!(
            "  full-circuit noise     {:.6} (A) + {:.6} (B)\n",
            self.noise_full_a, self.noise_full_b
        ));
        match self.ideal_tv {
            Some(tv) => out.push_str(&format!("  ideal TV distance      {tv:.6}\n")),
            None => out.push_str("  ideal TV distance      (skipped: width over limit)\n"),
        }
        if let Some(charge) = self.reorder_noise {
            out.push_str(&format!(
                "  commutation reorder    certified, noise charge {charge:.6}\n"
            ));
        }
        if !self.findings.is_clean() {
            out.push_str(&self.findings.to_text());
        }
        out
    }

    /// JSON rendering (hand-rolled, same `schema_version` convention as the
    /// lint reports).
    pub fn to_json(&self) -> String {
        let ideal = match self.ideal_tv {
            Some(tv) => format!("{tv}"),
            None => "null".to_string(),
        };
        let reorder = match self.reorder_noise {
            Some(c) => format!("{c}"),
            None => "null".to_string(),
        };
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema_version\":{REPORT_SCHEMA_VERSION},\"machine\":\"{}\",\"num_qubits\":{},\
             \"epsilon\":{},\"gates_a\":{},\"gates_b\":{},\"discharged_noisy\":{},\
             \"discharged_unitary\":{},\"d_unitary\":{},\"noise_residual_a\":{},\
             \"noise_residual_b\":{},\"noise_full_a\":{},\"noise_full_b\":{},\"ideal_tv\":{},\
             \"commutation_equivalent\":{},\"reorder_noise\":{},\
             \"bound\":{},\"lower_bound\":{},\"verdict\":\"{}\",\"findings\":",
            self.machine,
            self.num_qubits,
            self.epsilon,
            self.gates_a,
            self.gates_b,
            self.discharged_noisy,
            self.discharged_unitary,
            self.d_unitary,
            self.noise_residual_a,
            self.noise_residual_b,
            self.noise_full_a,
            self.noise_full_b,
            ideal,
            self.commutation_equivalent,
            reorder,
            self.bound,
            self.lower_bound,
            self.verdict.as_str()
        ));
        out.push_str(&self.findings.to_json());
        out.push('}');
        out
    }

    /// Canonical fingerprint for store keys and certified result payloads.
    pub fn fingerprint(&self) -> String {
        format!(
            "equiv/v1;bound={:.17e};lower={:.17e};eps={:.17e};verdict={}",
            self.bound,
            self.lower_bound,
            self.epsilon,
            self.verdict.as_str()
        )
    }

    /// True when the pair is certified ε-equivalent.
    pub fn certified(&self) -> bool {
        self.verdict == EquivVerdict::Equivalent
    }
}

/// True when two instructions touch no common qubit.
fn disjoint(a: &Instruction, b: &Instruction) -> bool {
    !a.qubits.iter().any(|q| b.qubits.contains(q))
}

/// One side of the discharge machinery: instructions plus liveness flags.
struct Side {
    insts: Vec<Instruction>,
    alive: Vec<bool>,
}

impl Side {
    fn new(circuit: &Circuit) -> Side {
        Side {
            insts: circuit.instructions().to_vec(),
            alive: vec![true; circuit.len()],
        }
    }

    /// Can instruction `i` bubble to the *front* past every live
    /// predecessor, under `ok` as the commutation relation?
    fn front_free(&self, i: usize, ok: &dyn Fn(&Instruction, &Instruction) -> bool) -> bool {
        (0..i).all(|j| !self.alive[j] || ok(&self.insts[j], &self.insts[i]))
    }

    /// Mirror: can `i` bubble to the *back* past every live successor?
    fn back_free(&self, i: usize, ok: &dyn Fn(&Instruction, &Instruction) -> bool) -> bool {
        (i + 1..self.insts.len()).all(|j| !self.alive[j] || ok(&self.insts[i], &self.insts[j]))
    }

    fn live(&self) -> Vec<Instruction> {
        self.insts
            .iter()
            .zip(&self.alive)
            .filter(|(_, &al)| al)
            .map(|(inst, _)| inst.clone())
            .collect()
    }
}

/// Greedy discharge: repeatedly find an identical instruction pair that can
/// bubble to the same boundary on both sides (front when `front` is true,
/// back otherwise) under the relation `ok`, and kill both. Kills happen in
/// the same order on both sides, which is what makes the peeled-off
/// prefix/suffix channels literally identical. Returns the number of pairs
/// discharged.
fn discharge(
    a: &mut Side,
    b: &mut Side,
    front: bool,
    ok: &dyn Fn(&Instruction, &Instruction) -> bool,
) -> usize {
    let mut pairs = 0;
    loop {
        let mut hit = None;
        'outer: for i in 0..a.insts.len() {
            let free_a = a.alive[i]
                && if front {
                    a.front_free(i, ok)
                } else {
                    a.back_free(i, ok)
                };
            if !free_a {
                continue;
            }
            for j in 0..b.insts.len() {
                let free_b = b.alive[j]
                    && b.insts[j] == a.insts[i]
                    && if front {
                        b.front_free(j, ok)
                    } else {
                        b.back_free(j, ok)
                    };
                if free_b {
                    hit = Some((i, j));
                    break 'outer;
                }
            }
        }
        match hit {
            Some((i, j)) => {
                a.alive[i] = false;
                b.alive[j] = false;
                pairs += 1;
            }
            None => return pairs,
        }
    }
}

/// Phase-aligned Frobenius distance `min_phi ||A - e^{i phi} B||_F`. For
/// unitaries this upper-bounds the operator-norm distance and hence half the
/// diamond distance of the induced channels.
fn frob_phase_aligned(a: &Matrix, b: &Matrix) -> f64 {
    let na = a.fro_norm();
    let nb = b.fro_norm();
    let ip = a.hs_inner(b).abs();
    (na * na + nb * nb - 2.0 * ip).max(0.0).sqrt()
}

/// The 4x4 SWAP matrix, used to re-express a gate on `[b, a]` over `[a, b]`.
fn swap_matrix() -> Matrix {
    use qaprox_linalg::c64;
    let o = c64(1.0, 0.0);
    let z = c64(0.0, 0.0);
    Matrix::from_rows(&[&[o, z, z, z], &[z, z, o, z], &[z, o, z, z], &[z, z, z, o]])
}

/// Cost of aligning instruction `x` against `y` in the DP, or `None` when
/// they act on different supports and must not be paired.
fn pair_cost(x: &Instruction, y: &Instruction) -> Option<f64> {
    if x.qubits == y.qubits {
        return Some(frob_phase_aligned(&x.gate.matrix(), &y.gate.matrix()));
    }
    if x.qubits.len() == 2
        && y.qubits.len() == 2
        && x.qubits[0] == y.qubits[1]
        && x.qubits[1] == y.qubits[0]
    {
        let s = swap_matrix();
        let yb = s.matmul(&y.gate.matrix()).matmul(&s);
        return Some(frob_phase_aligned(&x.gate.matrix(), &yb));
    }
    None
}

/// Cost of leaving `x` unmatched: its distance to the identity.
fn gap_cost(x: &Instruction) -> f64 {
    let m = x.gate.matrix();
    frob_phase_aligned(&m, &Matrix::identity(m.rows()))
}

/// Edit-distance alignment of the two residual gate sequences: monotone
/// pairings telescope into a sound operator-norm bound on the unitary gap.
fn align_unitary(a: &[Instruction], b: &[Instruction]) -> f64 {
    let m = a.len();
    let n = b.len();
    let mut d = vec![vec![f64::INFINITY; n + 1]; m + 1];
    d[0][0] = 0.0;
    for i in 1..=m {
        d[i][0] = d[i - 1][0] + gap_cost(&a[i - 1]);
    }
    for j in 1..=n {
        d[0][j] = d[0][j - 1] + gap_cost(&b[j - 1]);
    }
    for i in 1..=m {
        for j in 1..=n {
            let mut best = d[i - 1][j] + gap_cost(&a[i - 1]);
            let skip_b = d[i][j - 1] + gap_cost(&b[j - 1]);
            if skip_b < best {
                best = skip_b;
            }
            if let Some(c) = pair_cost(&a[i - 1], &b[j - 1]) {
                let paired = d[i - 1][j - 1] + c;
                if paired < best {
                    best = paired;
                }
            }
            d[i][j] = best;
        }
    }
    d[m][n]
}

/// Half-diamond distance of one gate's noise block to the identity channel,
/// with the exact `NoiseModel` parameters (see the module docs).
fn gate_noise(cal: &Calibration, inst: &Instruction, include_relaxation: bool) -> f64 {
    let relax = |t_ns: f64, q: usize| -> f64 {
        if !include_relaxation {
            return 0.0;
        }
        let qc = &cal.qubits[q];
        let s = relaxation_survival(t_ns, qc.t1_us, qc.t2_us);
        (1.0 - s) + (1.0 - s * s) / 2.0
    };
    match inst.qubits[..] {
        [q] => {
            let qc = &cal.qubits[q];
            (qc.sx_error * 2.0).clamp(0.0, 1.0) + relax(qc.sx_time_ns, q)
        }
        [a, b] => {
            let ec = edge_cal(cal, a, b);
            (ec.cx_error * 4.0 / 3.0).clamp(0.0, 1.0)
                + relax(ec.cx_time_ns, a)
                + relax(ec.cx_time_ns, b)
        }
        _ => unreachable!("IR only holds 1- and 2-qubit gates"),
    }
}

/// Exact TV distance between the ideal output distributions.
fn ideal_tv(a: &Circuit, b: &Circuit) -> f64 {
    let pa = a.statevector();
    let pb = b.statevector();
    0.5 * pa
        .iter()
        .zip(&pb)
        .map(|(x, y)| (x.norm_sqr() - y.norm_sqr()).abs())
        .sum::<f64>()
}

/// Runs the equivalence checker with an explicit lint config for the QA5xx
/// findings (so `--deny QA502` works end to end).
pub fn check_equivalence_with_config(
    a: &Circuit,
    b: &Circuit,
    cal: &Calibration,
    opts: &EquivOptions,
    cfg: &LintConfig,
) -> EquivReport {
    assert_eq!(
        a.num_qubits(),
        b.num_qubits(),
        "equivalence checking requires equal widths ({} vs {})",
        a.num_qubits(),
        b.num_qubits()
    );
    assert!(
        a.num_qubits() <= cal.qubits.len(),
        "calibration covers {} qubit(s) but the circuits need {} (induce it first)",
        cal.qubits.len(),
        a.num_qubits()
    );
    let n = a.num_qubits();

    let noise_full_a: f64 = a
        .iter()
        .map(|i| gate_noise(cal, i, opts.include_relaxation))
        .sum();
    let noise_full_b: f64 = b
        .iter()
        .map(|i| gate_noise(cal, i, opts.include_relaxation))
        .sum();

    // Tier 1: identical instructions that reach the boundary across
    // disjoint-support neighbours cancel with their noise.
    let mut sa = Side::new(a);
    let mut sb = Side::new(b);
    let disjoint_ok: &dyn Fn(&Instruction, &Instruction) -> bool = &disjoint;
    let mut discharged_noisy = discharge(&mut sa, &mut sb, true, disjoint_ok);
    discharged_noisy += discharge(&mut sa, &mut sb, false, disjoint_ok);

    let noise_residual_a: f64 = sa
        .live()
        .iter()
        .map(|i| gate_noise(cal, i, opts.include_relaxation))
        .sum();
    let noise_residual_b: f64 = sb
        .live()
        .iter()
        .map(|i| gate_noise(cal, i, opts.include_relaxation))
        .sum();

    // Tier 2: commuting-but-overlapping discharge is only exact for the
    // unitaries, so it shrinks d_unitary but not the residual noise above.
    let commute_ok: &dyn Fn(&Instruction, &Instruction) -> bool = &|x, y| commutes(x, y);
    let mut discharged_unitary = discharge(&mut sa, &mut sb, true, commute_ok);
    discharged_unitary += discharge(&mut sa, &mut sb, false, commute_ok);

    let d_unitary = align_unitary(&sa.live(), &sb.live());

    let tv = if n <= opts.ideal_tv_max_qubits && opts.ideal_tv_max_qubits > 0 {
        Some(ideal_tv(a, b))
    } else {
        None
    };

    // Two independent sound routes to the upper bound; take the tighter.
    let via_residual = d_unitary + noise_residual_a + noise_residual_b;
    let via_ideal = tv
        .map(|t| t + noise_full_a + noise_full_b)
        .unwrap_or(f64::INFINITY);
    let mut bound = via_residual.min(via_ideal).min(1.0);

    // Route 3: when both circuits normalize to the identical Foata word they
    // are the *same* trace-monoid element — one unitary, exactly — and the
    // only cost left is the noise charge of sliding each side into the
    // shared normal form (zero per disjoint swap, a small Choi-trace-norm
    // residual per overlapping-commuting swap). This is what discharges the
    // noise that tier 2 had to keep on the books. Only attempted when the
    // cheaper routes have not already certified the pair.
    let mut commutation_equivalent = false;
    let mut reorder_noise = None;
    if bound > opts.epsilon {
        if let Some(charge) = crate::commute::equivalence_charge(a, b, cal, opts.include_relaxation)
        {
            commutation_equivalent = true;
            reorder_noise = Some(charge);
            bound = bound.min(charge).min(1.0);
        }
    }
    let lower_bound = tv
        .map(|t| (t - noise_full_a - noise_full_b).max(0.0))
        .unwrap_or(0.0);

    let verdict = if bound <= opts.epsilon {
        EquivVerdict::Equivalent
    } else if lower_bound > opts.epsilon {
        EquivVerdict::Violated
    } else {
        EquivVerdict::Undecidable
    };

    let mut findings = Vec::new();
    match verdict {
        EquivVerdict::Violated => emit(
            &mut findings,
            cfg,
            LintCode::EquivalenceViolated,
            Location::Global,
            format!(
                "distance lower bound {lower_bound:.6} exceeds epsilon {}: the pair is provably not equivalent on {}",
                opts.epsilon, cal.machine
            ),
        ),
        EquivVerdict::Undecidable => {
            emit(
                &mut findings,
                cfg,
                LintCode::EquivalenceUndecidable,
                Location::Global,
                format!(
                    "distance bound {bound:.6} exceeds epsilon {} but the lower bound {lower_bound:.6} does not: equivalence is undecidable statically",
                    opts.epsilon
                ),
            );
            // distinguish undecidable-by-width from undecidable-by-bound:
            // past the ideal-pass limit the checker has *no* lower bound at
            // all, so QA501 could never fire regardless of the pair
            if tv.is_none() {
                emit(
                    &mut findings,
                    cfg,
                    LintCode::EquivalenceUndecidable,
                    Location::Global,
                    format!(
                        "no lower bound available above {} qubit(s): the ideal pass was skipped at width {n}, so the pair is undecidable by width, not by bound",
                        opts.ideal_tv_max_qubits
                    ),
                );
            }
        }
        EquivVerdict::Equivalent => {}
    }
    // The paper's crossover, certified statically: the approximation gap is
    // real but smaller than what the device's own noise contributes.
    let approx_term = d_unitary.min(tv.unwrap_or(f64::INFINITY));
    let noise_floor = noise_full_a + noise_full_b;
    if approx_term > 1e-12 && approx_term <= noise_floor {
        emit(
            &mut findings,
            cfg,
            LintCode::NoiseDominatesApproximation,
            Location::Global,
            format!(
                "device noise mass {noise_floor:.6} dominates the approximation gap {approx_term:.6}: the cheaper circuit costs nothing extra on {}",
                cal.machine
            ),
        );
    }

    EquivReport {
        machine: cal.machine.clone(),
        num_qubits: n,
        epsilon: opts.epsilon,
        gates_a: a.len(),
        gates_b: b.len(),
        discharged_noisy,
        discharged_unitary,
        d_unitary,
        noise_residual_a,
        noise_residual_b,
        noise_full_a,
        noise_full_b,
        ideal_tv: tv,
        commutation_equivalent,
        reorder_noise,
        bound,
        lower_bound,
        verdict,
        findings: Report::from_diagnostics(findings),
    }
}

/// Runs the equivalence checker with default lint levels. This is the entry
/// point `qaprox equiv`, synthesis admission, and the serve certified fast
/// path use.
pub fn check_equivalence(
    a: &Circuit,
    b: &Circuit,
    cal: &Calibration,
    opts: &EquivOptions,
) -> EquivReport {
    check_equivalence_with_config(a, b, cal, opts, &LintConfig::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    fn cal3() -> Calibration {
        ourense().induced(&[0, 1, 2])
    }

    fn opts(eps: f64) -> EquivOptions {
        EquivOptions {
            epsilon: eps,
            ..EquivOptions::default()
        }
    }

    #[test]
    fn identical_circuits_have_zero_bound() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.3, 1).cx(1, 2);
        let r = check_equivalence(&c, &c, &cal3(), &opts(0.01));
        assert_eq!(r.bound, 0.0, "{}", r.to_text());
        assert_eq!(r.verdict, EquivVerdict::Equivalent);
        assert!(r.certified());
        assert_eq!(r.discharged_noisy, c.len());
        assert!(r.findings.is_clean());
    }

    #[test]
    fn disjoint_reorder_discharges_with_noise() {
        // same gates, adjacent disjoint-support pair swapped: the noisy
        // channels are literally equal, so tier 1 must discharge everything
        let mut a = Circuit::new(3);
        a.rz(0.5, 0).rx(0.25, 2).cx(0, 1);
        let mut b = Circuit::new(3);
        b.rx(0.25, 2).rz(0.5, 0).cx(0, 1);
        let r = check_equivalence(&a, &b, &cal3(), &opts(1e-9));
        assert_eq!(r.bound, 0.0, "{}", r.to_text());
        assert_eq!(r.verdict, EquivVerdict::Equivalent);
        assert_eq!(r.discharged_noisy, 3);
    }

    #[test]
    fn commuting_overlap_reorder_keeps_noise_but_drops_unitary_gap() {
        // rz on the control commutes with cx as a unitary but its noise
        // does not move through: tier 2 discharges the pair from d_unitary
        // while both rz noise applications stay on the books.
        let mut a = Circuit::new(2);
        a.rz(0.7, 0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        b.rz(0.7, 0);
        let r = check_equivalence(&a, &b, &cal3(), &opts(1.0));
        assert_eq!(r.d_unitary, 0.0, "{}", r.to_text());
        assert_eq!(r.discharged_noisy, 0, "rz overlaps the cx on both sides");
        assert_eq!(r.discharged_unitary, 2);
        // the unitary gap is gone but every gate's noise stays charged
        assert!(r.noise_residual_a > 0.0 && r.noise_residual_b > 0.0);
        assert!((r.noise_residual_a - r.noise_full_a).abs() < 1e-15);
    }

    #[test]
    fn distant_pair_is_violated_when_noise_is_small() {
        let mut cal = cal3();
        for q in &mut cal.qubits {
            q.sx_error = 0.0;
            q.t1_us = 1e12;
            q.t2_us = 1e12;
        }
        for e in cal.edges.values_mut() {
            e.cx_error = 0.0;
        }
        let a = Circuit::new(1);
        let mut b = Circuit::new(1);
        b.x(0);
        let r = check_equivalence(&a, &b, &cal, &opts(0.5));
        assert_eq!(r.verdict, EquivVerdict::Violated, "{}", r.to_text());
        assert!(r.lower_bound > 0.9);
        assert_eq!(r.findings.diagnostics[0].code, "QA501");
    }

    #[test]
    fn small_perturbation_is_certified_and_noise_dominated() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1).ry(0.4, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).ry(0.4 + 1e-4, 1);
        let cal = cal3().with_uniform_cx_error(0.05);
        let r = check_equivalence(&a, &b, &cal, &opts(0.1));
        assert_eq!(r.verdict, EquivVerdict::Equivalent, "{}", r.to_text());
        // tiny approximation gap under real noise -> QA503 crossover note
        let codes: Vec<&str> = r.findings.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"QA503"), "{codes:?}");
    }

    #[test]
    fn undecidable_band_emits_qa502() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).rz(0.5, 0).cx(0, 1).cx(0, 1);
        let cal = cal3().with_uniform_cx_error(0.08);
        let r = check_equivalence(&a, &b, &cal, &opts(1e-6));
        assert_eq!(r.verdict, EquivVerdict::Undecidable, "{}", r.to_text());
        assert_eq!(r.findings.diagnostics[0].code, "QA502");
        assert!(!r.findings.has_errors(), "QA502 defaults to warn");
    }

    #[test]
    fn swapped_operand_cx_pairs_align() {
        // cx(0,1) vs cx(1,0): different unitaries on the same support; the
        // DP must pair them (via SWAP conjugation) rather than treat both
        // as gaps, and the distance must match the direct matrix distance
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        let direct = {
            let s = swap_matrix();
            let m = s.matmul(&qaprox_circuit::Gate::CX.matrix()).matmul(&s);
            frob_phase_aligned(&qaprox_circuit::Gate::CX.matrix(), &m)
        };
        let r = check_equivalence(&a, &b, &cal3(), &opts(0.01));
        assert!((r.d_unitary - direct).abs() < 1e-12, "{}", r.d_unitary);
    }

    #[test]
    fn report_renders_text_and_json() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0);
        let r = check_equivalence(&a, &b, &cal3(), &opts(0.05));
        let text = r.to_text();
        assert!(text.contains("distance upper bound"));
        assert!(text.contains("verdict"));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema_version\":1"));
        assert!(json.contains("\"bound\":"));
        assert!(json.contains("\"verdict\":"));
        assert!(r.fingerprint().starts_with("equiv/v1;"));
    }

    #[test]
    fn commutation_equivalent_reorder_certifies_at_the_reorder_charge() {
        // rz on the control past the cx: tier 2 drops the unitary gap but
        // keeps all noise charged; route 3 proves the pair is one
        // trace-monoid element and replaces the bound with the (much
        // smaller) reorder charge of the single overlapping swap.
        let mut a = Circuit::new(2);
        a.rz(0.7, 0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        b.rz(0.7, 0);
        let r = check_equivalence(&a, &b, &cal3(), &opts(1e-9));
        assert!(r.commutation_equivalent, "{}", r.to_text());
        let charge = r.reorder_noise.expect("route 3 ran");
        let via_residual = r.d_unitary + r.noise_residual_a + r.noise_residual_b;
        let via_ideal = r.ideal_tv.unwrap() + r.noise_full_a + r.noise_full_b;
        assert!(
            r.bound < via_residual.min(via_ideal),
            "route 3 must be strictly tighter: {} vs {}",
            r.bound,
            via_residual.min(via_ideal)
        );
        assert!((r.bound - charge.min(1.0)).abs() < 1e-15);
        assert!(r.to_text().contains("commutation reorder"));
        assert!(r.to_json().contains("\"commutation_equivalent\":true"));
    }

    #[test]
    fn route_3_does_not_fire_on_dependent_reorders() {
        // rz on the *target* does not commute with the cx: different words
        let mut a = Circuit::new(2);
        a.rz(0.7, 1).cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        b.rz(0.7, 1);
        let r = check_equivalence(&a, &b, &cal3(), &opts(1e-9));
        assert!(!r.commutation_equivalent);
        assert_eq!(r.reorder_noise, None);
        assert!(r.to_json().contains("\"reorder_noise\":null"));
    }

    #[test]
    fn wide_undecidable_pair_notes_the_missing_lower_bound() {
        let mut a = Circuit::new(2);
        a.h(0).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1).rz(0.5, 0).cx(0, 1).cx(0, 1);
        let o = EquivOptions {
            epsilon: 1e-6,
            ideal_tv_max_qubits: 1, // force the width skip
            ..EquivOptions::default()
        };
        let r = check_equivalence(&a, &b, &cal3().with_uniform_cx_error(0.08), &o);
        assert_eq!(r.verdict, EquivVerdict::Undecidable, "{}", r.to_text());
        let msgs: Vec<&str> = r
            .findings
            .diagnostics
            .iter()
            .filter(|d| d.code == "QA502")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(
            msgs[1].contains("no lower bound available above 1 qubit(s)"),
            "{msgs:?}"
        );
    }

    #[test]
    fn wide_circuits_skip_the_ideal_pass() {
        let mut a = Circuit::new(2);
        a.h(0);
        let o = EquivOptions {
            epsilon: 0.5,
            ideal_tv_max_qubits: 1,
            ..EquivOptions::default()
        };
        let r = check_equivalence(&a, &a, &cal3(), &o);
        assert!(r.ideal_tv.is_none());
        assert_eq!(r.bound, 0.0);
    }
}
