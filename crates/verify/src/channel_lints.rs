//! Channel and probability lints: CPTP audits of Kraus sets and
//! stochasticity checks on readout confusion matrices.
//!
//! These operate on plain matrices and probability rows so that any layer —
//! the simulator's channel constructors, a noise model's confusion matrix, a
//! hand-written Kraus set in a test — can be audited without this crate
//! depending on the simulator.

use crate::config::{LintCode, LintConfig};
use crate::diagnostics::{Diagnostic, Location, Report};
use qaprox_linalg::Matrix;

/// Maximum absolute deviation of `sum_k K†K` from the identity — the scalar
/// that quantifies how far a Kraus set is from trace preserving. Returns
/// `f64::INFINITY` for an empty set or mismatched dimensions.
pub fn kraus_completeness_defect(kraus: &[Matrix]) -> f64 {
    let Some(first) = kraus.first() else {
        return f64::INFINITY;
    };
    let dim = first.rows();
    if kraus.iter().any(|k| k.rows() != dim || k.cols() != dim) {
        return f64::INFINITY;
    }
    let mut sum = Matrix::zeros(dim, dim);
    for k in kraus {
        let kk = k.adjoint().matmul(k);
        for (s, v) in sum.data_mut().iter_mut().zip(kk.data()) {
            *s += *v;
        }
    }
    sum.max_diff(&Matrix::identity(dim))
}

/// Audits one Kraus set: entries must be finite, dimensions consistent and
/// square, and the completeness relation `sum K†K = I` must hold within the
/// configured tolerance.
pub fn lint_kraus_set(label: &str, kraus: &[Matrix], cfg: &LintConfig) -> Report {
    let mut out = Vec::new();
    let Some(severity) = cfg.severity(LintCode::NonCptpKraus) else {
        return Report::new();
    };
    let code = LintCode::NonCptpKraus.as_str();

    if kraus.is_empty() {
        out.push(Diagnostic {
            code,
            severity,
            location: Location::Global,
            message: format!("{label}: empty Kraus set (no channel action defined)"),
        });
        return Report::from_diagnostics(out);
    }

    let dim = kraus[0].rows();
    let mut structurally_ok = true;
    for (k, m) in kraus.iter().enumerate() {
        if m.rows() != m.cols() || m.rows() != dim {
            structurally_ok = false;
            out.push(Diagnostic {
                code,
                severity,
                location: Location::Kraus(k),
                message: format!(
                    "{label}: operator {k} is {}x{} but the channel dimension is {dim}",
                    m.rows(),
                    m.cols()
                ),
            });
        }
        if m.data()
            .iter()
            .any(|z| !z.re.is_finite() || !z.im.is_finite())
        {
            structurally_ok = false;
            out.push(Diagnostic {
                code,
                severity,
                location: Location::Kraus(k),
                message: format!("{label}: operator {k} contains NaN or infinite entries"),
            });
        }
    }

    if structurally_ok {
        let defect = kraus_completeness_defect(kraus);
        if defect > cfg.tolerance {
            out.push(Diagnostic {
                code,
                severity,
                location: Location::Global,
                message: format!(
                    "{label}: sum K†K deviates from identity by {defect:.3e} (tolerance {:.1e})",
                    cfg.tolerance
                ),
            });
        }
    }

    Report::from_diagnostics(out)
}

/// Checks that a single probability-like value lies in `[0, 1]`.
pub fn lint_probability(label: &str, value: f64, location: Location, cfg: &LintConfig) -> Report {
    let mut out = Vec::new();
    if let Some(severity) = cfg.severity(LintCode::ProbabilityOutOfRange) {
        if !(0.0..=1.0).contains(&value) || !value.is_finite() {
            out.push(Diagnostic {
                code: LintCode::ProbabilityOutOfRange.as_str(),
                severity,
                location,
                message: format!("{label} = {value} is not a probability in [0, 1]"),
            });
        }
    }
    Report::from_diagnostics(out)
}

/// Audits a row-stochastic matrix given as rows: every entry must be a
/// probability and every row must sum to 1 within tolerance. This is the
/// shape of a readout confusion matrix (row = true state, column = observed
/// state).
pub fn lint_stochastic_rows(label: &str, rows: &[Vec<f64>], cfg: &LintConfig) -> Report {
    let mut report = Report::new();
    for (r, row) in rows.iter().enumerate() {
        for (c, &p) in row.iter().enumerate() {
            report.extend(lint_probability(
                &format!("{label}[{r}][{c}]"),
                p,
                Location::Row(r),
                cfg,
            ));
        }
        if let Some(severity) = cfg.severity(LintCode::NonStochasticRow) {
            let sum: f64 = row.iter().sum();
            if !sum.is_finite() || (sum - 1.0).abs() > cfg.tolerance {
                report.diagnostics.push(Diagnostic {
                    code: LintCode::NonStochasticRow.as_str(),
                    severity,
                    location: Location::Row(r),
                    message: format!("{label}: row {r} sums to {sum} (expected 1)"),
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::{c64, Complex64};

    fn scaled_identity(dim: usize, s: f64) -> Matrix {
        let mut m = Matrix::identity(dim);
        for z in m.data_mut() {
            *z *= s;
        }
        m
    }

    #[test]
    fn identity_channel_is_cptp() {
        let report = lint_kraus_set("id", &[Matrix::identity(2)], &LintConfig::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn bit_flip_style_decomposition_is_cptp() {
        let p: f64 = 0.3;
        let k0 = scaled_identity(2, (1.0 - p).sqrt());
        let mut k1 = Matrix::zeros(2, 2);
        k1[(0, 1)] = c64(p.sqrt(), 0.0);
        k1[(1, 0)] = c64(p.sqrt(), 0.0);
        let report = lint_kraus_set("bitflip", &[k0, k1], &LintConfig::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn flags_trace_losing_kraus_set() {
        // a lone sqrt(0.5)*I loses half the trace
        let report = lint_kraus_set(
            "lossy",
            &[scaled_identity(2, 0.5f64.sqrt())],
            &LintConfig::new(),
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, "QA201");
        assert!(report.has_errors());
    }

    #[test]
    fn flags_empty_and_misshapen_sets() {
        let cfg = LintConfig::new();
        assert!(lint_kraus_set("empty", &[], &cfg).has_errors());
        let mixed = vec![Matrix::identity(2), Matrix::identity(4)];
        let report = lint_kraus_set("mixed", &mixed, &cfg);
        assert!(report.has_errors());
        assert!(report.to_text().contains("4x4"));
    }

    #[test]
    fn flags_non_finite_kraus_entries() {
        let mut k = Matrix::identity(2);
        k[(0, 0)] = Complex64 {
            re: f64::NAN,
            im: 0.0,
        };
        let report = lint_kraus_set("nan", &[k], &LintConfig::new());
        assert!(report.has_errors());
        assert!(report.to_text().contains("NaN"));
    }

    #[test]
    fn completeness_defect_is_zero_for_unitary_and_positive_for_lossy() {
        assert!(kraus_completeness_defect(&[Matrix::identity(4)]) < 1e-15);
        let lossy = [scaled_identity(2, 0.9)];
        assert!(kraus_completeness_defect(&lossy) > 0.1);
        assert!(kraus_completeness_defect(&[]).is_infinite());
    }

    #[test]
    fn stochastic_rows_pass_and_fail_as_expected() {
        let cfg = LintConfig::new();
        let good = vec![vec![0.97, 0.03], vec![0.05, 0.95]];
        assert!(lint_stochastic_rows("confusion", &good, &cfg).is_clean());

        let bad_sum = vec![vec![0.9, 0.3]];
        let report = lint_stochastic_rows("confusion", &bad_sum, &cfg);
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, "QA203");

        let bad_entry = vec![vec![1.2, -0.2]];
        let report = lint_stochastic_rows("confusion", &bad_entry, &cfg);
        let codes: Vec<_> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"QA202"));
    }

    #[test]
    fn probability_lint_rejects_nan_and_out_of_range() {
        let cfg = LintConfig::new();
        assert!(lint_probability("p", 0.5, Location::Global, &cfg).is_clean());
        assert!(lint_probability("p", -0.01, Location::Global, &cfg).has_errors());
        assert!(lint_probability("p", 1.01, Location::Global, &cfg).has_errors());
        assert!(lint_probability("p", f64::NAN, Location::Global, &cfg).has_errors());
    }
}
