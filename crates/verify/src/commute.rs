//! Noise-aware commutation analysis (the `QA6xx` family plus the shared
//! trace-monoid machinery behind equivalence tightening and trajectory
//! fusion).
//!
//! Three consumers share this one static pass:
//!
//! * **Canonical normal form.** Instructions form a trace monoid under the
//!   property-tested pairwise oracle [`qaprox_circuit::commutes`]: two
//!   programs are *commutation-equivalent* when one rewrites into the other
//!   by adjacent swaps of commuting instructions. The Foata normal form —
//!   ASAP layers modulo commutation, each layer sorted by a canonical
//!   letter — is invariant under such swaps, so commutation-equivalent
//!   programs normalize to the identical [`foata_word`]. The equivalence
//!   checker uses word equality as a *proof* that two circuits share one
//!   unitary, and [`charge_to_normal_form`] prices the reordering's noise.
//! * **Noise charging.** Swapping two adjacent *noisy* blocks whose
//!   unitaries commute is not free: the noise channels riding on the gates
//!   need not commute through an overlapping partner. [`swap_cost`] bounds
//!   the TV-distance cost of one such swap by half the trace norm of the
//!   unnormalized-Choi difference of the two orderings on the union support
//!   (`|Phi|_diamond <= |C(Phi)|_1`, and TV between outputs is at most half
//!   the diamond distance). Disjoint supports cost exactly zero — channels
//!   on disjoint subsystems commute as maps — and exactly-commuting
//!   overlapping pairs (two diagonals on one wire, say) cost zero up to
//!   rounding. The per-gate noise mirrors `qaprox_sim::NoiseModel`
//!   *exactly*: depolarizing `lambda_1q = clamp(2 sx_error)` /
//!   `lambda_2q = clamp(4/3 cx_error)` plus per-qubit thermal relaxation
//!   over the gate duration (cross-checked against the simulator's Kraus
//!   sets in the tests).
//! * **Fusion legality.** [`fusion_plan`] tells the trajectory compiler
//!   which gates may fuse across *nested* support: a 1q gate slides into
//!   the run that last touched its qubit because everything in between acts
//!   on disjoint qubits (a channel-exact move — no bound needed), and a 2q
//!   gate starting a run can fold trailing 1q runs on its operands in the
//!   same way. Only disjoint-support slides are used: overlapping
//!   commutation moves unitaries but not their noise, so it never enters
//!   the plan.
//!
//! The `QA6xx` lints surface what the analysis finds: QA601/QA602 are
//! cancellations and rotation merges that only become visible *after*
//! applying earlier rewrites (a fixpoint the one-round QA302/QA303 pass
//! cannot see), and QA603 reports when the ASAP schedule modulo commutation
//! is strictly shorter than the wire schedule.

use crate::budget::edge_cal;
use crate::circuit_lints::emit;
use crate::config::{LintCode, LintConfig};
use crate::dag::CircuitDag;
use crate::dataflow::{find_cancellations, CancellationKind};
use crate::diagnostics::{Location, Report};
use qaprox_circuit::{commutes, Circuit, Instruction, RawMeasure};
use qaprox_device::Calibration;
use qaprox_linalg::eigh::eigh;
use qaprox_linalg::kernels::{apply_1q_mat_left, apply_2q_mat_left, mat2_to_array, mat4_to_array};
use qaprox_linalg::matrix::{pauli_x, pauli_y, pauli_z, Matrix};
use qaprox_linalg::{c64, Complex64};
use std::collections::BTreeMap;

/// Structural ceiling for the QA6xx lint passes: programs larger than this
/// skip the (quadratic) fixpoint and scheduling analyses so `lint` stays
/// fast on huge inputs. Documented in `docs/LINTS.md`.
pub const QA6XX_MAX_ITEMS: usize = 4096;

// ---------------------------------------------------------------------------
// Foata normal form
// ---------------------------------------------------------------------------

/// The canonical letter of one instruction: the gate (with exact parameter
/// bits — Debug's shortest-roundtrip float formatting is injective) plus the
/// operand list. Two instructions commute or not as a function of their
/// letters alone, which is what makes the trace-monoid construction valid.
pub fn letter(inst: &Instruction) -> String {
    format!("{:?}@{:?}", inst.gate, inst.qubits)
}

/// ASAP layer assignment modulo commutation: `layer[i]` is one more than
/// the deepest earlier instruction that does not commute with `i` (0 when
/// every earlier instruction commutes). Only same-support pairs can fail to
/// commute, so the scan walks per-qubit chains instead of all pairs.
pub fn foata_layers(insts: &[Instruction]) -> Vec<usize> {
    let mut layers = vec![0usize; insts.len()];
    let mut chains: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, inst) in insts.iter().enumerate() {
        let mut l = 0usize;
        for &q in &inst.qubits {
            if let Some(chain) = chains.get(&q) {
                for &j in chain.iter().rev() {
                    if layers[j] >= l && !commutes(&insts[j], inst) {
                        l = layers[j] + 1;
                    }
                }
            }
        }
        for &q in &inst.qubits {
            chains.entry(q).or_default().push(i);
        }
        layers[i] = l;
    }
    layers
}

/// The Foata normal form: instruction indices grouped by layer, each block
/// sorted by canonical [`letter`]. For commutation-equivalent programs the
/// flattened letter sequence is identical (the trace-monoid normal-form
/// theorem; property-tested over seeded commuting shuffles in
/// `tests/commute_soundness.rs`).
pub fn foata_blocks(insts: &[Instruction]) -> Vec<Vec<usize>> {
    let layers = foata_layers(insts);
    let depth = layers.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut blocks: Vec<Vec<usize>> = vec![Vec::new(); depth];
    for (i, &l) in layers.iter().enumerate() {
        blocks[l].push(i);
    }
    for block in &mut blocks {
        block.sort_by(|&x, &y| letter(&insts[x]).cmp(&letter(&insts[y])));
    }
    blocks
}

/// The canonical word: letters in Foata order, blocks separated by `|`.
/// Equal words certify that the two programs are the same trace-monoid
/// element, hence share one unitary exactly.
pub fn foata_word(insts: &[Instruction]) -> String {
    foata_blocks(insts)
        .iter()
        .map(|block| {
            block
                .iter()
                .map(|&i| letter(&insts[i]))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Rebuilds the circuit in canonical Foata order: a commutation-equivalent
/// reordering with genuine *overlapping*-commuting swaps on workloads like
/// TFIM (an RX on a CX target trades places with the CX). This is what the
/// CI commute-smoke pair and the tier-2 acceptance test feed back to
/// [`crate::check_equivalence`].
pub fn canonical_reorder(circuit: &Circuit) -> Circuit {
    let insts = circuit.instructions();
    let mut out = Circuit::new(circuit.num_qubits());
    for block in foata_blocks(insts) {
        for i in block {
            out.push(insts[i].gate.clone(), &insts[i].qubits);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// noise-charged reordering
// ---------------------------------------------------------------------------

/// True when two instructions touch no common qubit.
fn disjoint(a: &Instruction, b: &Instruction) -> bool {
    !a.qubits.iter().any(|q| b.qubits.contains(q))
}

/// Entrywise complex conjugate (not the adjoint).
fn conj_matrix(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for r in 0..m.rows() {
        for c in 0..m.cols() {
            out[(r, c)] = m[(r, c)].conj();
        }
    }
    out
}

/// Embeds a 1q operator on local qubit `q` of an `m`-qubit register, using
/// the same kernel convention as `Circuit::unitary` (works for non-unitary
/// Kraus operators too — the kernel is plain linear algebra).
fn embed_1q(op: &Matrix, q: usize, m: usize) -> Matrix {
    let mut out = Matrix::identity(1 << m);
    apply_1q_mat_left(&mut out, q, &mat2_to_array(op));
    out
}

/// Embeds a 2q operator on local qubits `(a, b)` (`a` the high bit, the IR
/// convention) of an `m`-qubit register.
fn embed_2q(op: &Matrix, a: usize, b: usize, m: usize) -> Matrix {
    let mut out = Matrix::identity(1 << m);
    apply_2q_mat_left(&mut out, a, b, &mat4_to_array(op));
    out
}

/// Superoperator (column-major vec convention) of a Kraus set already
/// embedded to the register dimension: `S = sum conj(K) (x) K`.
fn superop_from_kraus(kraus: &[Matrix]) -> Matrix {
    let d = kraus[0].rows();
    let mut s = Matrix::zeros(d * d, d * d);
    for k in kraus {
        s.axpy(Complex64::ONE, &conj_matrix(k).kron(k));
    }
    s
}

/// One-qubit depolarizing Kraus set (mirrors `qaprox_sim::channels`).
fn dep1_kraus(lambda: f64) -> Vec<Matrix> {
    let p = lambda / 4.0;
    vec![
        Matrix::identity(2).scale_re((1.0 - 3.0 * p).max(0.0).sqrt()),
        pauli_x().scale_re(p.sqrt()),
        pauli_y().scale_re(p.sqrt()),
        pauli_z().scale_re(p.sqrt()),
    ]
}

/// Two-qubit depolarizing Kraus set: all 16 Pauli pairs (the full twirl).
fn dep2_kraus(lambda: f64) -> Vec<Matrix> {
    let p = lambda / 16.0;
    let singles = [Matrix::identity(2), pauli_x(), pauli_y(), pauli_z()];
    let mut out = Vec::with_capacity(16);
    for (i, a) in singles.iter().enumerate() {
        for (j, b) in singles.iter().enumerate() {
            let w = if i == 0 && j == 0 {
                (1.0 - 15.0 * p).max(0.0)
            } else {
                p
            };
            out.push(a.kron(b).scale_re(w.sqrt()));
        }
    }
    out
}

/// Thermal-relaxation Kraus set over `t_ns`, mirroring
/// `qaprox_sim::channels::thermal_relaxation` exactly. Non-positive
/// durations or coherence times mean "no data" and yield `None` (identity),
/// matching [`crate::budget`]'s survival convention.
fn relaxation_kraus(t_ns: f64, t1_us: f64, t2_us: f64) -> Option<Vec<Matrix>> {
    if t_ns <= 0.0 || t1_us <= 0.0 || t2_us <= 0.0 {
        return None;
    }
    let t_us = t_ns * 1e-3;
    let gamma = 1.0 - (-t_us / t1_us).exp();
    let inv_tphi = (1.0 / t2_us - 0.5 / t1_us).max(0.0);
    let lambda = 1.0 - (-2.0 * t_us * inv_tphi).exp();
    let ad = vec![
        Matrix::from_rows(&[
            &[Complex64::ONE, Complex64::ZERO],
            &[Complex64::ZERO, c64((1.0 - gamma).sqrt(), 0.0)],
        ]),
        Matrix::from_rows(&[
            &[Complex64::ZERO, c64(gamma.sqrt(), 0.0)],
            &[Complex64::ZERO, Complex64::ZERO],
        ]),
    ];
    let pd = vec![
        Matrix::diag(&[Complex64::ONE, c64((1.0 - lambda).sqrt(), 0.0)]),
        Matrix::diag(&[Complex64::ZERO, c64(lambda.sqrt(), 0.0)]),
    ];
    let mut out = Vec::with_capacity(4);
    for a in &ad {
        for p in &pd {
            out.push(a.matmul(p));
        }
    }
    Some(out)
}

/// Superoperator of one *noisy block* — the instruction's unitary followed
/// by its exact `NoiseModel` noise (depolarizing, then per-qubit thermal
/// relaxation) — embedded on the union support `sup` (sorted qubit list).
fn block_superop(
    inst: &Instruction,
    sup: &[usize],
    cal: &Calibration,
    include_relaxation: bool,
) -> Matrix {
    let m = sup.len();
    let loc = |q: usize| sup.iter().position(|&x| x == q).expect("qubit in support");
    let u = match inst.qubits[..] {
        [q] => embed_1q(&inst.gate.matrix(), loc(q), m),
        [a, b] => embed_2q(&inst.gate.matrix(), loc(a), loc(b), m),
        _ => unreachable!("IR only holds 1- and 2-qubit gates"),
    };
    let mut s = conj_matrix(&u).kron(&u);
    let relax = |q: usize, t_ns: f64, s: &mut Matrix| {
        if !include_relaxation {
            return;
        }
        let qc = &cal.qubits[q];
        if let Some(kraus) = relaxation_kraus(t_ns, qc.t1_us, qc.t2_us) {
            let embedded: Vec<Matrix> = kraus.iter().map(|k| embed_1q(k, loc(q), m)).collect();
            *s = superop_from_kraus(&embedded).matmul(s);
        }
    };
    match inst.qubits[..] {
        [q] => {
            let lambda = (cal.qubits[q].sx_error * 2.0).clamp(0.0, 1.0);
            if lambda > 0.0 {
                let embedded: Vec<Matrix> = dep1_kraus(lambda)
                    .iter()
                    .map(|k| embed_1q(k, loc(q), m))
                    .collect();
                s = superop_from_kraus(&embedded).matmul(&s);
            }
            relax(q, cal.qubits[q].sx_time_ns, &mut s);
        }
        [a, b] => {
            let ec = edge_cal(cal, a, b);
            let lambda = (ec.cx_error * 4.0 / 3.0).clamp(0.0, 1.0);
            if lambda > 0.0 {
                let embedded: Vec<Matrix> = dep2_kraus(lambda)
                    .iter()
                    .map(|k| embed_2q(k, loc(a), loc(b), m))
                    .collect();
                s = superop_from_kraus(&embedded).matmul(&s);
            }
            relax(a, ec.cx_time_ns, &mut s);
            relax(b, ec.cx_time_ns, &mut s);
        }
        _ => unreachable!("IR only holds 1- and 2-qubit gates"),
    }
    s
}

/// Reshuffles a superoperator into its unnormalized Choi matrix:
/// `J[(i d + r), (j d + c)] = S[(c d + r), (j d + i)]` under the
/// column-major vec convention. Linear, so it applies to differences of
/// channels too.
fn choi_of_superop(s: &Matrix, d: usize) -> Matrix {
    let mut j = Matrix::zeros(d * d, d * d);
    for i in 0..d {
        for r in 0..d {
            for jj in 0..d {
                for c in 0..d {
                    j[(i * d + r, jj * d + c)] = s[(c * d + r, jj * d + i)];
                }
            }
        }
    }
    j
}

/// Trace norm of a (numerically near-)Hermitian matrix: sum of the absolute
/// eigenvalues after symmetrizing away rounding.
fn trace_norm_hermitian(h: &Matrix) -> f64 {
    let mut sym = h.clone();
    sym.axpy(Complex64::ONE, &h.adjoint());
    let sym = sym.scale_re(0.5);
    eigh(&sym).values.iter().map(|v| v.abs()).sum()
}

/// Sound TV-distance charge for swapping two adjacent noisy blocks whose
/// unitaries provably commute: half the trace norm of the
/// unnormalized-Choi difference of the two orderings on the union support
/// (at most 3 qubits for an overlapping pair). Soundness chain:
/// `TV <= half-diamond <= half |C_un(diff)|_1`, and pre/post-composition
/// with the rest of the circuit only contracts the distance. Exactly zero
/// for disjoint supports.
pub fn swap_cost(
    x: &Instruction,
    y: &Instruction,
    cal: &Calibration,
    include_relaxation: bool,
) -> f64 {
    if disjoint(x, y) {
        return 0.0;
    }
    let mut sup: Vec<usize> = x.qubits.iter().chain(y.qubits.iter()).copied().collect();
    sup.sort_unstable();
    sup.dedup();
    let d = 1usize << sup.len();
    let sx = block_superop(x, &sup, cal, include_relaxation);
    let sy = block_superop(y, &sup, cal, include_relaxation);
    let mut diff = sy.matmul(&sx);
    diff.axpy(-Complex64::ONE, &sx.matmul(&sy));
    0.5 * trace_norm_hermitian(&choi_of_superop(&diff, d))
}

/// Total noise charge of reordering `insts` into its Foata normal form via
/// an explicit sequence of adjacent transpositions (selection-sort into
/// canonical order). Every transposition the path performs is between
/// provably commuting instructions — the next normal-form letter sits in
/// the first Foata block of the remaining suffix, so nothing it bubbles
/// past depends on it — and each is charged [`swap_cost`] (memoized by
/// letter pair; disjoint swaps are free).
pub fn charge_to_normal_form(
    insts: &[Instruction],
    cal: &Calibration,
    include_relaxation: bool,
) -> f64 {
    let target: Vec<usize> = foata_blocks(insts).into_iter().flatten().collect();
    let mut current: Vec<usize> = (0..insts.len()).collect();
    let mut memo: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut total = 0.0;
    for (pos, &want) in target.iter().enumerate() {
        let at = pos
            + current[pos..]
                .iter()
                .position(|&x| x == want)
                .expect("target is a permutation");
        for k in ((pos + 1)..=at).rev() {
            let (xi, yi) = (current[k - 1], current[k]);
            debug_assert!(
                commutes(&insts[xi], &insts[yi]),
                "normalization path swapped a dependent pair"
            );
            let (la, lb) = (letter(&insts[xi]), letter(&insts[yi]));
            let key = if la <= lb { (la, lb) } else { (lb, la) };
            let cost = *memo
                .entry(key)
                .or_insert_with(|| swap_cost(&insts[xi], &insts[yi], cal, include_relaxation));
            total += cost;
            current.swap(k - 1, k);
        }
    }
    total
}

/// When `a` and `b` normalize to the identical Foata word — a proof that
/// they are the same trace-monoid element and hence share one unitary —
/// returns the sound TV bound obtained by charging both sides' reordering
/// paths into the shared normal form. `None` when the words differ (the
/// engine proves nothing about the pair).
pub fn equivalence_charge(
    a: &Circuit,
    b: &Circuit,
    cal: &Calibration,
    include_relaxation: bool,
) -> Option<f64> {
    if a.num_qubits() != b.num_qubits() || a.len() != b.len() {
        return None;
    }
    // cheap multiset precheck before the quadratic layering
    let mut la: Vec<String> = a.instructions().iter().map(letter).collect();
    let mut lb: Vec<String> = b.instructions().iter().map(letter).collect();
    la.sort_unstable();
    lb.sort_unstable();
    if la != lb {
        return None;
    }
    if foata_word(a.instructions()) != foata_word(b.instructions()) {
        return None;
    }
    Some(
        charge_to_normal_form(a.instructions(), cal, include_relaxation)
            + charge_to_normal_form(b.instructions(), cal, include_relaxation),
    )
}

// ---------------------------------------------------------------------------
// fusion legality
// ---------------------------------------------------------------------------

/// One step of the cross-support fusion plan, per instruction in order.
/// Run indices count every opened run (`Start` and `StartAbsorbing` each
/// allocate the next index); absorbed runs are consumed by their absorber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionStep {
    /// Open a new fusion run at this instruction.
    Start,
    /// Append this instruction to run `r`. For a 1q instruction the target
    /// may be a 2q run that last touched its qubit (cross-support
    /// absorption); for a 2q instruction it is the same-pair run that last
    /// touched both operands (either orientation).
    Join(usize),
    /// Open a new two-qubit run, folding the listed still-open one-qubit
    /// runs (each the last toucher of one operand) into it.
    StartAbsorbing(Vec<usize>),
}

/// Computes the fusion legality plan for an instruction stream. Every step
/// is *channel-exact*: a gate joins, or a run is folded, only when each
/// instruction in between acts on disjoint qubits — channels on disjoint
/// subsystems commute exactly, so the slide moves the whole noisy block
/// (gate + depolarizing + relaxation), not just the unitary. Soundness is
/// property-tested against density-matrix simulation from the trajectory
/// side (`qaprox-sim`).
pub fn fusion_plan(num_qubits: usize, insts: &[Instruction]) -> Vec<FusionStep> {
    #[derive(Clone, Copy, PartialEq)]
    enum Support {
        One,
        Two,
    }
    let mut runs: Vec<Support> = Vec::new();
    let mut last_run: Vec<Option<usize>> = vec![None; num_qubits];
    let mut plan = Vec::with_capacity(insts.len());
    for inst in insts {
        match inst.qubits[..] {
            [q] if q < num_qubits => match last_run[q] {
                // everything since run `r` last touched `q` is disjoint
                // from `q`, so the gate slides back into the run exactly
                Some(r) => plan.push(FusionStep::Join(r)),
                None => {
                    last_run[q] = Some(runs.len());
                    runs.push(Support::One);
                    plan.push(FusionStep::Start);
                }
            },
            [a, b] if a < num_qubits && b < num_qubits => {
                if last_run[a].is_some() && last_run[a] == last_run[b] {
                    // the same run last touched both operands: it is a 2q
                    // run on exactly this pair (a 1q run cannot be the last
                    // toucher of two qubits)
                    plan.push(FusionStep::Join(last_run[a].expect("checked above")));
                } else {
                    let mut absorbed = Vec::new();
                    for q in [a, b] {
                        if let Some(r) = last_run[q] {
                            if runs[r] == Support::One {
                                absorbed.push(r);
                            }
                        }
                    }
                    let r = runs.len();
                    runs.push(Support::Two);
                    last_run[a] = Some(r);
                    last_run[b] = Some(r);
                    plan.push(if absorbed.is_empty() {
                        FusionStep::Start
                    } else {
                        FusionStep::StartAbsorbing(absorbed)
                    });
                }
            }
            // out-of-range operands are a lint error elsewhere; never fuse
            _ => plan.push(FusionStep::Start),
        }
    }
    plan
}

// ---------------------------------------------------------------------------
// QA6xx lints
// ---------------------------------------------------------------------------

/// One item of the merged gate + measurement stream.
enum Item<'a> {
    Gate(&'a Instruction),
    Measure { qubit: usize, clbit: usize },
}

/// Merges instructions and measures into one program-order stream
/// (`RawMeasure::after` fixes each measurement's slot).
fn merged_items<'a>(instructions: &'a [Instruction], measures: &'a [RawMeasure]) -> Vec<Item<'a>> {
    let mut items = Vec::with_capacity(instructions.len() + measures.len());
    for pos in 0..=instructions.len() {
        for m in measures.iter().filter(|m| m.after == pos) {
            items.push(Item::Measure {
                qubit: m.qubit,
                clbit: m.clbit,
            });
        }
        if pos < instructions.len() {
            items.push(Item::Gate(&instructions[pos]));
        }
    }
    items
}

/// True when two stream items contend for a wire (qubit, or clbit for a
/// measurement pair).
fn share_resource(x: &Item<'_>, y: &Item<'_>) -> bool {
    match (x, y) {
        (Item::Gate(a), Item::Gate(b)) => !disjoint(a, b),
        (Item::Gate(g), Item::Measure { qubit, .. })
        | (Item::Measure { qubit, .. }, Item::Gate(g)) => g.qubits.contains(qubit),
        (
            Item::Measure {
                qubit: qa,
                clbit: ca,
            },
            Item::Measure {
                qubit: qb,
                clbit: cb,
            },
        ) => qa == qb || ca == cb,
    }
}

/// True when item order must be preserved: gate pairs depend unless the
/// oracle proves commutation; anything involving a measurement depends
/// whenever it shares a resource.
fn dependent(x: &Item<'_>, y: &Item<'_>) -> bool {
    match (x, y) {
        (Item::Gate(a), Item::Gate(b)) => !commutes(a, b),
        _ => share_resource(x, y),
    }
}

/// ASAP layer count of the stream under an arbitrary dependence relation.
fn asap_depth(items: &[Item<'_>], dep: impl Fn(&Item<'_>, &Item<'_>) -> bool) -> usize {
    let mut layers = vec![0usize; items.len()];
    for i in 0..items.len() {
        let mut l = 0;
        for j in 0..i {
            if layers[j] >= l && dep(&items[j], &items[i]) {
                l = layers[j] + 1;
            }
        }
        layers[i] = l;
    }
    layers.iter().map(|&l| l + 1).max().unwrap_or(0)
}

/// Runs the QA6xx commutation lints over one parsed program: the
/// QA601/QA602 rewrite fixpoint (cancellations and merges only exposed by
/// applying earlier rounds' rewrites) and the QA603 schedule comparison.
/// Programs above [`QA6XX_MAX_ITEMS`] items are skipped.
pub fn lint_commute(
    num_qubits: usize,
    num_clbits: usize,
    instructions: &[Instruction],
    measures: &[RawMeasure],
    cfg: &LintConfig,
) -> Report {
    let mut out = Vec::new();
    let wants_fixpoint = cfg.severity(LintCode::CommutationCancellation).is_some()
        || cfg.severity(LintCode::CommutationMerge).is_some();
    let wants_depth = cfg.severity(LintCode::DepthReducibleSchedule).is_some();
    if (!wants_fixpoint && !wants_depth) || instructions.len() + measures.len() > QA6XX_MAX_ITEMS {
        return Report::from_diagnostics(out);
    }

    // QA601 / QA602: rewrite fixpoint. Round 1 findings are QA302/QA303's
    // business; a finding in round >= 2 only became visible because earlier
    // rewrites were applied — that is the commutation-enabled class.
    if wants_fixpoint {
        let mut insts = instructions.to_vec();
        let mut meas = measures.to_vec();
        for round in 1..=16usize {
            let Ok(dag) = CircuitDag::from_program(num_qubits, num_clbits, &insts, &meas) else {
                break;
            };
            let cancellations = find_cancellations(&dag);
            if cancellations.is_empty() {
                break;
            }
            // apply a maximal non-overlapping subset in one pass; each
            // rewrite is sound in isolation and removing/merging
            // instructions only shrinks the commuting interiors the other
            // rewrites rely on, so the batch is sound too (the property
            // tests apply the full fixpoint and check the unitary)
            let mut used = vec![false; insts.len()];
            let mut remove = vec![false; insts.len()];
            let mut replace: BTreeMap<usize, Instruction> = BTreeMap::new();
            for c in cancellations {
                if used[c.first] || used[c.second] {
                    continue;
                }
                used[c.first] = true;
                used[c.second] = true;
                remove[c.second] = true;
                match &c.kind {
                    CancellationKind::RemovePair => {
                        remove[c.first] = true;
                        if round >= 2 {
                            emit(
                                &mut out,
                                cfg,
                                LintCode::CommutationCancellation,
                                Location::Global,
                                format!(
                                    "{} on {:?} cancels with {} on {:?} once round-{} rewrites \
                                     are applied (commutation-enabled cancellation)",
                                    insts[c.first].gate.name(),
                                    insts[c.first].qubits,
                                    insts[c.second].gate.name(),
                                    insts[c.second].qubits,
                                    round - 1
                                ),
                            );
                        }
                    }
                    CancellationKind::Merge { merged } => {
                        replace.insert(c.first, merged.clone());
                        if round >= 2 {
                            emit(
                                &mut out,
                                cfg,
                                LintCode::CommutationMerge,
                                Location::Global,
                                format!(
                                    "{} on {:?} merges with {} on {:?} into a single {} once \
                                     round-{} rewrites are applied (commutation-enabled merge)",
                                    insts[c.first].gate.name(),
                                    insts[c.first].qubits,
                                    insts[c.second].gate.name(),
                                    insts[c.second].qubits,
                                    merged.gate.name(),
                                    round - 1
                                ),
                            );
                        }
                    }
                }
            }
            // rebuild the program and remap measurement slots
            let mut new_insts = Vec::with_capacity(insts.len());
            let mut new_index = vec![0usize; insts.len() + 1];
            for (i, inst) in insts.iter().enumerate() {
                new_index[i] = new_insts.len();
                if remove[i] {
                    continue;
                }
                match replace.remove(&i) {
                    Some(merged) => new_insts.push(merged),
                    None => new_insts.push(inst.clone()),
                }
            }
            new_index[insts.len()] = new_insts.len();
            for m in meas.iter_mut() {
                m.after = new_index[m.after];
            }
            insts = new_insts;
        }
    }

    // QA603: the ASAP schedule modulo commutation vs the wire schedule.
    // Dependence edges are a subset of wire edges (disjoint supports always
    // commute), so the commutation depth can only be shorter.
    if wants_depth {
        let items = merged_items(instructions, measures);
        let wire = asap_depth(&items, share_resource);
        let dep = asap_depth(&items, dependent);
        debug_assert!(dep <= wire, "commutation cannot deepen the schedule");
        if dep < wire {
            emit(
                &mut out,
                cfg,
                LintCode::DepthReducibleSchedule,
                Location::Global,
                format!(
                    "ASAP schedule modulo commutation completes in {dep} layer(s) vs {wire} \
                     wire layer(s); reordering commuting gates shortens the critical path by \
                     {} layer(s)",
                    wire - dep
                ),
            );
        }
    }

    Report::from_diagnostics(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_circuit::Gate;
    use qaprox_device::devices::ourense;

    fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction {
            gate,
            qubits: qubits.to_vec(),
        }
    }

    fn tfim_like(steps: usize) -> Circuit {
        let mut c = Circuit::new(3);
        for _ in 0..steps {
            c.cx(0, 1).rz(0.4, 1).cx(0, 1);
            c.cx(1, 2).rz(0.4, 2).cx(1, 2);
            c.rx(0.2, 0).rx(0.2, 1).rx(0.2, 2);
        }
        c
    }

    #[test]
    fn foata_word_is_invariant_under_a_commuting_swap() {
        let mut a = Circuit::new(2);
        a.rz(0.7, 0).cx(0, 1).rx(0.3, 1);
        // rz on the control commutes with the cx: swapping them preserves
        // the word; rx on the target commutes too
        let mut b = Circuit::new(2);
        b.cx(0, 1).rz(0.7, 0).rx(0.3, 1);
        let mut c = Circuit::new(2);
        c.rx(0.3, 1).rz(0.7, 0).cx(0, 1);
        assert_eq!(foata_word(a.instructions()), foata_word(b.instructions()));
        assert_eq!(foata_word(a.instructions()), foata_word(c.instructions()));
    }

    #[test]
    fn foata_word_separates_dependent_reorders() {
        let mut a = Circuit::new(2);
        a.rz(0.7, 1).cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).rz(0.7, 1); // rz on the target does NOT commute
        assert_ne!(foata_word(a.instructions()), foata_word(b.instructions()));
    }

    #[test]
    fn canonical_reorder_of_tfim_is_a_genuine_overlapping_reorder() {
        let c = tfim_like(2);
        let r = canonical_reorder(&c);
        assert_eq!(foata_word(c.instructions()), foata_word(r.instructions()));
        assert_ne!(
            c.instructions(),
            r.instructions(),
            "the canonical order must differ from program order"
        );
        // same unitary exactly up to float reassociation
        let diff = c.unitary().max_diff(&r.unitary());
        assert!(diff < 1e-12, "reorder drifted by {diff}");
    }

    #[test]
    fn swap_cost_is_zero_for_disjoint_and_tiny_for_exact_overlaps() {
        let cal = ourense().induced(&[0, 1, 2]);
        let rz0 = inst(Gate::RZ(0.4), &[0]);
        let rx2 = inst(Gate::RX(0.9), &[2]);
        assert_eq!(swap_cost(&rz0, &rx2, &cal, true), 0.0);
        // two diagonals on one wire commute *with their noise*: depolarizing
        // is invariant under any same-support conjugation and relaxation
        // commutes with RZ-type unitaries
        let rz0b = inst(Gate::RZ(1.1), &[0]);
        let cost = swap_cost(&rz0, &rz0b, &cal, true);
        assert!(cost < 1e-12, "exactly-commuting overlap cost {cost}");
    }

    #[test]
    fn swap_cost_charges_overlapping_noise() {
        let cal = ourense().induced(&[0, 1]);
        let rz = inst(Gate::RZ(0.4), &[0]);
        let cx = inst(Gate::CX, &[0, 1]);
        let cost = swap_cost(&rz, &cx, &cal, true);
        assert!(cost > 0.0, "rz noise does not commute through the cx");
        assert!(cost < 0.1, "residual must stay small, got {cost}");
    }

    #[test]
    fn equivalence_charge_requires_equal_words() {
        let cal = ourense().induced(&[0, 1, 2]);
        let c = tfim_like(2);
        let r = canonical_reorder(&c);
        let charge = equivalence_charge(&c, &r, &cal, true).expect("same word");
        assert!((0.0..1.0).contains(&charge), "charge {charge}");
        let mut other = Circuit::new(3);
        other.h(0);
        assert_eq!(equivalence_charge(&c, &other, &cal, true), None);
    }

    #[test]
    fn fusion_plan_absorbs_tfim_layers() {
        let c = tfim_like(2);
        let plan = fusion_plan(3, c.instructions());
        let runs = plan
            .iter()
            .filter(|s| !matches!(s, FusionStep::Join(_)))
            .count();
        let absorbed: usize = plan
            .iter()
            .map(|s| match s {
                FusionStep::StartAbsorbing(v) => v.len(),
                _ => 0,
            })
            .sum();
        // 18 gates collapse into 4 runs (each bond run swallows its rz and
        // the rx layer that follows)
        assert_eq!(runs, 4, "plan: {plan:?}");
        assert_eq!(absorbed, 0, "tfim starts with a cx, nothing to fold");
        let ratio = c.len() as f64 / (runs - absorbed) as f64;
        assert!(ratio > 1.0, "cross-support fusion must beat 1.00 gates/op");
    }

    #[test]
    fn fusion_plan_folds_leading_one_qubit_runs() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.3, 0).h(1).cx(0, 1).rx(0.2, 1);
        let plan = fusion_plan(2, c.instructions());
        assert_eq!(
            plan,
            vec![
                FusionStep::Start,                      // h(0) opens run 0
                FusionStep::Join(0),                    // rz joins it
                FusionStep::Start,                      // h(1) opens run 1
                FusionStep::StartAbsorbing(vec![0, 1]), // cx folds both
                FusionStep::Join(2),                    // rx joins the 2q run
            ]
        );
    }

    #[test]
    fn lint_commute_finds_fixpoint_cancellation() {
        // cx(0,1) h(0) h(0) cx(0,1): the h pair is round-1 (QA302's
        // business); the cx pair only cancels after the h rewrite lands
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).h(0).cx(0, 1);
        let report = lint_commute(2, 0, c.instructions(), &[], &LintConfig::new());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"QA601"), "{codes:?}");
    }

    #[test]
    fn lint_commute_finds_fixpoint_merge() {
        // rz rz rz on one wire: round 1 merges the first pair, round 2
        // merges the result with the third rotation
        let mut c = Circuit::new(1);
        c.rz(0.1, 0).rz(0.2, 0).rz(0.3, 0);
        let report = lint_commute(1, 0, c.instructions(), &[], &LintConfig::new());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"QA602"), "{codes:?}");
    }

    #[test]
    fn lint_commute_reports_depth_reducible_schedule() {
        let c = tfim_like(2);
        let report = lint_commute(3, 0, c.instructions(), &[], &LintConfig::new());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"QA603"), "{codes:?}");
    }

    #[test]
    fn lint_commute_is_quiet_on_already_tight_programs() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let report = lint_commute(2, 0, c.instructions(), &[], &LintConfig::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn measurement_blocks_the_fixpoint() {
        // a measurement between the h pair stops round 1, so the cx pair
        // never becomes cancellable either
        let insts = vec![
            inst(Gate::CX, &[0, 1]),
            inst(Gate::H, &[0]),
            inst(Gate::H, &[0]),
            inst(Gate::CX, &[0, 1]),
        ];
        let measures = vec![RawMeasure {
            qubit: 0,
            clbit: 0,
            after: 2,
            line: 1,
        }];
        let report = lint_commute(2, 1, &insts, &measures, &LintConfig::new());
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
        assert!(!codes.contains(&"QA601"), "{codes:?}");
    }
}
