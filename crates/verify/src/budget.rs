//! The static noise-budget estimator (the `QA4xx` family): an abstract
//! interpreter that predicts output fidelity from the gate DAG and a
//! calibration snapshot *without* simulating.
//!
//! Two numbers are propagated through the circuit (full math in
//! `docs/ANALYZE.md`):
//!
//! * **`fidelity_bound`** — a sound upper bound on the fidelity the
//!   density-matrix simulator can measure under the matching
//!   `NoiseModel` (readout excluded, as in `DensityMatrix::fidelity_pure`).
//!   Each depolarizing channel with strength `lambda` on a `d`-dimensional
//!   subsystem maps the fidelity `F` to at most `(1-lambda) F + lambda/d`;
//!   thermal relaxation can *raise* fidelity toward the ground state, so it
//!   can only add slack `2(1-s) + (1-s^2)` per qubit-application (with
//!   `s = sqrt((1-gamma)(1-lambda_pd))` the survival amplitude), clamped at
//!   one. The bound therefore never undercuts the simulator — the property
//!   the acceptance tests pin.
//! * **`esp`** — the estimated success probability, the standard NISQ
//!   ranking heuristic: the product of per-gate error survival factors
//!   `(1 - err)` times the relaxation survival `s^2` per qubit-application.
//!   This is what decreases monotonically with CNOT count and reproduces
//!   the paper's crossover (short approximate circuits beating long exact
//!   ones at high noise). It is an *estimate*, not a bound.
//!
//! Readout survival is reported separately (`readout_survival`) because the
//! simulator's pure-state fidelity excludes confusion.
//!
//! The per-gate error parameters mirror `qaprox_sim::NoiseModel` exactly:
//! `lambda_1q = clamp(2 * sx_error)`, `lambda_2q = clamp(4/3 * cx_error)`,
//! with the same uncoupled-pair fallback (`avg_cx_error`, 400 ns) and the
//! same thermal-relaxation parameters over gate durations.

use crate::circuit_lints::emit;
use crate::config::{LintCode, LintConfig};
use crate::dag::CircuitDag;
use crate::diagnostics::{Location, Report, REPORT_SCHEMA_VERSION};
use qaprox_circuit::Circuit;
use qaprox_device::{Calibration, EdgeCal};

/// Knobs for [`analyze`]. The defaults match `NoiseModel::from_calibration`
/// (relaxation and readout both on, no thresholds).
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Account for T1/T2 relaxation over gate durations.
    pub include_relaxation: bool,
    /// Report readout survival (the bound itself always excludes readout).
    pub include_readout: bool,
    /// When set, emit QA401 if the fidelity bound falls below this.
    pub min_fidelity: Option<f64>,
    /// When set, emit QA402 for each qubit whose survival falls below this.
    pub min_qubit_fidelity: Option<f64>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            include_relaxation: true,
            include_readout: true,
            min_fidelity: None,
            min_qubit_fidelity: None,
        }
    }
}

/// One qubit's share of the error budget.
#[derive(Debug, Clone, PartialEq)]
pub struct QubitBudget {
    /// The qubit index.
    pub qubit: usize,
    /// Number of gates touching this qubit.
    pub gates: usize,
    /// Product of `(1 - err)` over every touching gate (a two-qubit gate's
    /// error counts fully against *both* its qubits — a deliberately
    /// pessimistic attribution) times the relaxation survival when enabled.
    pub survival: f64,
    /// The qubit's readout error, reported for context (not folded into
    /// `survival`).
    pub readout_error: f64,
}

/// Everything the static estimator derives from one circuit + calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisReport {
    /// Device name from the calibration snapshot.
    pub machine: String,
    /// Circuit width.
    pub num_qubits: usize,
    /// Total gate count.
    pub gate_count: usize,
    /// Total CNOT cost (`Circuit::cnot_cost`: CX/CZ count 1, SWAP counts 3).
    pub cnot_cost: usize,
    /// ASAP layer count of the gate DAG.
    pub depth: usize,
    /// CNOT-weighted critical path: the minimum number of *serial* CNOTs
    /// any schedule must pay.
    pub cnot_critical_path: f64,
    /// Duration-weighted critical path in nanoseconds from calibration gate
    /// times.
    pub duration_ns: f64,
    /// Sound upper bound on the simulator-measured fidelity (readout
    /// excluded).
    pub fidelity_bound: f64,
    /// Estimated success probability (ranking heuristic, not a bound).
    pub esp: f64,
    /// Probability all qubits are read out correctly, `prod (1 - ro_q)`.
    pub readout_survival: f64,
    /// Per-qubit error budgets.
    pub qubit_budgets: Vec<QubitBudget>,
    /// QA4xx findings (empty unless thresholds were configured and missed).
    pub findings: Report,
}

impl AnalysisReport {
    /// Human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "analysis of {} qubit(s) on {}: {} gate(s), cnot cost {}, depth {}\n",
            self.num_qubits, self.machine, self.gate_count, self.cnot_cost, self.depth
        ));
        out.push_str(&format!(
            "  fidelity upper bound   {:.6}\n",
            self.fidelity_bound
        ));
        out.push_str(&format!("  est. success prob      {:.6}\n", self.esp));
        out.push_str(&format!(
            "  readout survival       {:.6}\n",
            self.readout_survival
        ));
        out.push_str(&format!(
            "  cnot critical path     {:.0}\n",
            self.cnot_critical_path
        ));
        out.push_str(&format!(
            "  duration critical path {:.1} ns\n",
            self.duration_ns
        ));
        out.push_str("  per-qubit budgets:\n");
        for b in &self.qubit_budgets {
            out.push_str(&format!(
                "    q{}: {} gate(s), survival {:.6}, readout error {:.4}\n",
                b.qubit, b.gates, b.survival, b.readout_error
            ));
        }
        if !self.findings.is_clean() {
            out.push_str(&self.findings.to_text());
        }
        out
    }

    /// JSON rendering (hand-rolled, same `schema_version` convention as the
    /// lint reports).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema_version\":{REPORT_SCHEMA_VERSION},\"machine\":\"{}\",\"num_qubits\":{},\
             \"gate_count\":{},\"cnot_cost\":{},\"depth\":{},\"cnot_critical_path\":{},\
             \"duration_ns\":{},\"fidelity_bound\":{},\"esp\":{},\"readout_survival\":{},",
            self.machine,
            self.num_qubits,
            self.gate_count,
            self.cnot_cost,
            self.depth,
            self.cnot_critical_path,
            self.duration_ns,
            self.fidelity_bound,
            self.esp,
            self.readout_survival
        ));
        out.push_str("\"qubit_budgets\":[");
        for (i, b) in self.qubit_budgets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"qubit\":{},\"gates\":{},\"survival\":{},\"readout_error\":{}}}",
                b.qubit, b.gates, b.survival, b.readout_error
            ));
        }
        out.push_str("],\"findings\":");
        out.push_str(&self.findings.to_json());
        out.push('}');
        out
    }

    /// Canonical fingerprint for store keys: circuits whose predicted
    /// fidelity changes (new calibration, new estimator math) must not hit
    /// stale cached results.
    pub fn fingerprint(&self) -> String {
        format!(
            "analyze/v1;bound={:.17e};esp={:.17e};cnot_path={:.17e};depth={}",
            self.fidelity_bound, self.esp, self.cnot_critical_path, self.depth
        )
    }
}

/// Survival amplitude `s` of the thermal-relaxation channel over `t_ns`:
/// `s = sqrt((1 - gamma)(1 - lambda_pd))` with the exact parameters the
/// simulator's `thermal_relaxation` uses. Non-positive coherence times mean
/// "no data" and yield 1 (no relaxation).
pub(crate) fn relaxation_survival(t_ns: f64, t1_us: f64, t2_us: f64) -> f64 {
    if t_ns <= 0.0 || t1_us <= 0.0 || t2_us <= 0.0 {
        return 1.0;
    }
    let t_us = t_ns * 1e-3;
    let gamma = 1.0 - (-t_us / t1_us).exp();
    let inv_tphi = (1.0 / t2_us - 0.5 / t1_us).max(0.0);
    let lambda_pd = 1.0 - (-2.0 * t_us * inv_tphi).exp();
    ((1.0 - gamma) * (1.0 - lambda_pd)).sqrt()
}

pub(crate) fn edge_cal(cal: &Calibration, a: usize, b: usize) -> EdgeCal {
    cal.edge(a, b).copied().unwrap_or(EdgeCal {
        cx_error: cal.avg_cx_error(),
        cx_time_ns: 400.0,
    })
}

/// Runs the abstract interpreter with an explicit lint config for the QA4xx
/// findings (so `--deny QA401` works end to end).
pub fn analyze_with_config(
    circuit: &Circuit,
    cal: &Calibration,
    opts: &AnalyzeOptions,
    cfg: &LintConfig,
) -> AnalysisReport {
    assert!(
        circuit.num_qubits() <= cal.qubits.len(),
        "calibration covers {} qubit(s) but the circuit needs {} (induce it first)",
        cal.qubits.len(),
        circuit.num_qubits()
    );
    let n = circuit.num_qubits();
    let dag = CircuitDag::from_circuit(circuit);

    let mut bound = 1.0f64;
    let mut esp = 1.0f64;
    let mut qubit_survival = vec![1.0f64; n];
    let mut qubit_gates = vec![0usize; n];

    // helper applied once per qubit-application of duration t_ns
    let relax =
        |q: usize, t_ns: f64, bound: &mut f64, esp: &mut f64, qubit_survival: &mut [f64]| {
            if !opts.include_relaxation {
                return;
            }
            let qc = &cal.qubits[q];
            let s = relaxation_survival(t_ns, qc.t1_us, qc.t2_us);
            // relaxation can raise fidelity toward |0..0>, so the sound bound
            // only gains slack; the heuristic esp pays the survival probability
            *bound = (*bound + 2.0 * (1.0 - s) + (1.0 - s * s)).min(1.0);
            *esp *= s * s;
            qubit_survival[q] *= s * s;
        };

    for inst in circuit.iter() {
        match inst.qubits[..] {
            [q] => {
                let qc = &cal.qubits[q];
                let lambda = (qc.sx_error * 2.0).clamp(0.0, 1.0);
                bound = (1.0 - lambda) * bound + lambda / 2.0;
                esp *= 1.0 - qc.sx_error.clamp(0.0, 1.0);
                qubit_survival[q] *= 1.0 - qc.sx_error.clamp(0.0, 1.0);
                qubit_gates[q] += 1;
                relax(q, qc.sx_time_ns, &mut bound, &mut esp, &mut qubit_survival);
            }
            [a, b] => {
                let ec = edge_cal(cal, a, b);
                let lambda = (ec.cx_error * 4.0 / 3.0).clamp(0.0, 1.0);
                bound = (1.0 - lambda) * bound + lambda / 4.0;
                let err = ec.cx_error.clamp(0.0, 1.0);
                esp *= 1.0 - err;
                for &q in &[a, b] {
                    // pessimistic attribution: the full 2q error hits both
                    qubit_survival[q] *= 1.0 - err;
                    qubit_gates[q] += 1;
                    relax(q, ec.cx_time_ns, &mut bound, &mut esp, &mut qubit_survival);
                }
            }
            _ => unreachable!("IR only holds 1- and 2-qubit gates"),
        }
    }

    let readout_survival = if opts.include_readout {
        (0..n)
            .map(|q| 1.0 - cal.qubits[q].readout_error.clamp(0.0, 1.0))
            .product()
    } else {
        1.0
    };

    let mut findings = Vec::new();
    if let Some(threshold) = opts.min_fidelity {
        if bound < threshold {
            emit(
                &mut findings,
                cfg,
                LintCode::LowFidelityBound,
                Location::Global,
                format!("static fidelity bound {bound:.6} is below the required {threshold:.6}"),
            );
        }
    }
    if let Some(threshold) = opts.min_qubit_fidelity {
        for (q, &s) in qubit_survival.iter().enumerate() {
            if s < threshold {
                emit(
                    &mut findings,
                    cfg,
                    LintCode::QubitBudgetExceeded,
                    Location::Qubit(q),
                    format!("qubit {q} survival {s:.6} is below the required {threshold:.6}"),
                );
            }
        }
    }

    AnalysisReport {
        machine: cal.machine.clone(),
        num_qubits: n,
        gate_count: circuit.len(),
        cnot_cost: circuit.cnot_cost(),
        depth: dag.depth(),
        cnot_critical_path: dag.cnot_critical_path().weight,
        duration_ns: dag.duration_critical_path(cal).weight,
        fidelity_bound: bound,
        esp,
        readout_survival,
        qubit_budgets: (0..n)
            .map(|q| QubitBudget {
                qubit: q,
                gates: qubit_gates[q],
                survival: qubit_survival[q],
                readout_error: cal.qubits[q].readout_error,
            })
            .collect(),
        findings: Report::from_diagnostics(findings),
    }
}

/// Runs the abstract interpreter with default lint levels. This is the
/// library entry point `qaprox analyze` and the serve/synth integration use.
pub fn analyze(circuit: &Circuit, cal: &Calibration, opts: &AnalyzeOptions) -> AnalysisReport {
    analyze_with_config(circuit, cal, opts, &LintConfig::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    fn bell(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c
    }

    #[test]
    fn noisier_device_lowers_both_estimates() {
        let cal = ourense().induced(&[0, 1, 2]);
        let quiet = analyze(&bell(3), &cal, &AnalyzeOptions::default());
        let loud = analyze(
            &bell(3),
            &cal.with_uniform_cx_error(0.1),
            &AnalyzeOptions::default(),
        );
        assert!(loud.fidelity_bound < quiet.fidelity_bound);
        assert!(loud.esp < quiet.esp);
        assert!(quiet.fidelity_bound <= 1.0 && quiet.fidelity_bound > 0.0);
    }

    #[test]
    fn esp_decreases_with_every_gate_and_bound_never_exceeds_one() {
        let cal = ourense().induced(&[0, 1, 2]);
        let mut prev = f64::INFINITY;
        for depth in [1usize, 3, 9, 27] {
            let mut c = Circuit::new(3);
            for _ in 0..depth {
                c.cx(0, 1).cx(1, 2);
            }
            let r = analyze(&c, &cal, &AnalyzeOptions::default());
            assert!(r.esp < prev);
            assert!(r.fidelity_bound <= 1.0);
            prev = r.esp;
        }
    }

    #[test]
    fn noiseless_calibration_gives_unit_estimates() {
        let mut cal = ourense().induced(&[0, 1, 2]);
        for q in &mut cal.qubits {
            q.sx_error = 0.0;
            q.readout_error = 0.0;
            q.t1_us = 1e12;
            q.t2_us = 1e12;
        }
        for e in cal.edges.values_mut() {
            e.cx_error = 0.0;
        }
        let r = analyze(&bell(3), &cal, &AnalyzeOptions::default());
        assert!(
            (r.fidelity_bound - 1.0).abs() < 1e-9,
            "{}",
            r.fidelity_bound
        );
        assert!(r.esp > 0.999_999);
        assert!((r.readout_survival - 1.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_trigger_qa401_and_qa402() {
        let cal = ourense().induced(&[0, 1, 2]).with_uniform_cx_error(0.2);
        let mut c = Circuit::new(3);
        for _ in 0..10 {
            c.cx(0, 1).cx(1, 2);
        }
        let opts = AnalyzeOptions {
            min_fidelity: Some(0.99),
            min_qubit_fidelity: Some(0.99),
            ..AnalyzeOptions::default()
        };
        let r = analyze(&c, &cal, &opts);
        let codes: Vec<&str> = r.findings.diagnostics.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"QA401"));
        assert!(codes.contains(&"QA402"));
        // without thresholds, no findings at all
        let clean = analyze(&c, &cal, &AnalyzeOptions::default());
        assert!(clean.findings.is_clean());
    }

    #[test]
    fn report_renders_text_and_json() {
        let cal = ourense().induced(&[0, 1]);
        let r = analyze(&bell(2), &cal, &AnalyzeOptions::default());
        let text = r.to_text();
        assert!(text.contains("fidelity upper bound"));
        assert!(text.contains("q0:"));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema_version\":1"));
        assert!(json.contains("\"fidelity_bound\":"));
        assert!(json.contains("\"qubit_budgets\":["));
        assert!(r.fingerprint().starts_with("analyze/v1;"));
    }

    #[test]
    fn relaxation_toggle_only_tightens_the_bound() {
        let cal = ourense().induced(&[0, 1, 2]);
        let mut c = Circuit::new(3);
        for _ in 0..5 {
            c.cx(0, 1).cx(1, 2);
        }
        let with = analyze(&c, &cal, &AnalyzeOptions::default());
        let without = analyze(
            &c,
            &cal,
            &AnalyzeOptions {
                include_relaxation: false,
                ..AnalyzeOptions::default()
            },
        );
        // relaxation adds slack to the sound bound but lowers the heuristic
        assert!(with.fidelity_bound >= without.fidelity_bound);
        assert!(with.esp < without.esp);
    }
}
