//! Structural lints over circuit IR: operand sanity, gate-matrix unitarity,
//! coupling-map conformance, and dead-gate detection.
//!
//! The entry points accept raw instruction lists (not just [`Circuit`]) so
//! that *defective* programs — the very thing a linter exists to flag — can
//! be analyzed even though `Circuit::push` would reject them at construction
//! time.

use crate::config::{LintCode, LintConfig};
use crate::diagnostics::{Diagnostic, Location, Report};
use qaprox_circuit::commute::commutes;
use qaprox_circuit::{Circuit, Gate, Instruction};
use qaprox_device::Topology;

/// Scalar parameters (or raw matrix entries) carried by a gate, for
/// finiteness checking.
fn gate_params(gate: &Gate) -> Vec<f64> {
    match gate {
        Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::P(t) => vec![*t],
        Gate::CRX(t) | Gate::CRZ(t) | Gate::CP(t) => vec![*t],
        Gate::U3(a, b, c) => vec![*a, *b, *c],
        Gate::Unitary1(m) | Gate::Unitary2(m) => {
            m.data().iter().flat_map(|z| [z.re, z.im]).collect()
        }
        _ => Vec::new(),
    }
}

/// Lints a raw instruction list against a declared qubit count and an
/// optional device coupling map.
pub fn lint_instructions(
    num_qubits: usize,
    instructions: &[Instruction],
    topology: Option<&Topology>,
    cfg: &LintConfig,
) -> Report {
    let mut out = Vec::new();

    for (i, inst) in instructions.iter().enumerate() {
        let loc = Location::Instruction(i);
        let arity_ok = inst.qubits.len() == inst.gate.arity();
        if !arity_ok {
            emit(
                &mut out,
                cfg,
                LintCode::ArityMismatch,
                loc.clone(),
                format!(
                    "{} expects {} operand(s) but got {}",
                    inst.gate.name(),
                    inst.gate.arity(),
                    inst.qubits.len()
                ),
            );
        }

        let mut bounds_ok = true;
        for &q in &inst.qubits {
            if q >= num_qubits {
                bounds_ok = false;
                emit(
                    &mut out,
                    cfg,
                    LintCode::QubitOutOfRange,
                    loc.clone(),
                    format!(
                        "{} addresses qubit {q} but the circuit has {num_qubits} qubit(s)",
                        inst.gate.name()
                    ),
                );
            }
        }

        for (a, &qa) in inst.qubits.iter().enumerate() {
            if inst.qubits[..a].contains(&qa) {
                emit(
                    &mut out,
                    cfg,
                    LintCode::DuplicateOperands,
                    loc.clone(),
                    format!("{} lists qubit {qa} more than once", inst.gate.name()),
                );
            }
        }

        let params = gate_params(&inst.gate);
        let finite = params.iter().all(|p| p.is_finite());
        if !finite {
            emit(
                &mut out,
                cfg,
                LintCode::NonFiniteParam,
                loc.clone(),
                format!("{} carries a NaN or infinite parameter", inst.gate.name()),
            );
        }

        // Unitarity only makes sense for finite entries.
        if finite {
            let m = inst.gate.matrix();
            let dim = 1usize << inst.gate.arity();
            if m.rows() != dim || m.cols() != dim {
                emit(
                    &mut out,
                    cfg,
                    LintCode::NonUnitaryGate,
                    loc.clone(),
                    format!(
                        "{} matrix is {}x{} but a {}-qubit gate needs {dim}x{dim}",
                        inst.gate.name(),
                        m.rows(),
                        m.cols(),
                        inst.gate.arity()
                    ),
                );
            } else if !m.is_unitary(cfg.tolerance) {
                let defect = m
                    .adjoint()
                    .matmul(&m)
                    .max_diff(&qaprox_linalg::Matrix::identity(dim));
                emit(
                    &mut out,
                    cfg,
                    LintCode::NonUnitaryGate,
                    loc.clone(),
                    format!(
                        "{} matrix deviates from unitarity by {defect:.3e} (tolerance {:.1e})",
                        inst.gate.name(),
                        cfg.tolerance
                    ),
                );
            }
        }

        if let (Some(topo), true, true, &[a, b]) =
            (topology, arity_ok, bounds_ok, inst.qubits.as_slice())
        {
            if a < topo.num_qubits() && b < topo.num_qubits() && !topo.has_edge(a, b) {
                emit(
                    &mut out,
                    cfg,
                    LintCode::ConnectivityViolation,
                    loc.clone(),
                    format!(
                        "{} on ({a}, {b}) is not an edge of the device coupling map",
                        inst.gate.name()
                    ),
                );
            }
        }

        if arity_ok && bounds_ok && finite {
            if let Some(j) = find_cancelling_adjoint(instructions, i) {
                emit(
                    &mut out,
                    cfg,
                    LintCode::DeadGate,
                    loc,
                    format!(
                    "{} cancels with its adjoint at instruction {j} (everything between commutes)",
                    inst.gate.name()
                ),
                );
            }
        }
    }

    Report::from_diagnostics(out)
}

/// Lints a well-formed [`Circuit`] (bounds and duplicates are guaranteed by
/// construction, but the remaining checks still apply).
pub fn lint_circuit(circuit: &Circuit, topology: Option<&Topology>, cfg: &LintConfig) -> Report {
    lint_instructions(circuit.num_qubits(), circuit.instructions(), topology, cfg)
}

/// Looks for a later instruction that is the exact adjoint of
/// `instructions[i]` on the same operands, with every intermediate
/// instruction commuting with it — i.e. the pair multiplies to identity and
/// is removable.
fn find_cancelling_adjoint(instructions: &[Instruction], i: usize) -> Option<usize> {
    let inst = &instructions[i];
    let adjoint = inst.gate.dagger();
    for (j, later) in instructions.iter().enumerate().skip(i + 1) {
        if later.qubits == inst.qubits && later.gate == adjoint {
            return Some(j);
        }
        if !commutes(inst, later) {
            return None;
        }
    }
    None
}

pub(crate) fn emit(
    out: &mut Vec<Diagnostic>,
    cfg: &LintConfig,
    code: LintCode,
    location: Location,
    message: String,
) {
    if let Some(severity) = cfg.severity(code) {
        out.push(Diagnostic {
            code: code.as_str(),
            severity,
            location,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LintLevel;
    use qaprox_linalg::Matrix;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_circuit_yields_no_findings() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.5, 1).cx(1, 2);
        let report = lint_circuit(&c, None, &LintConfig::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn flags_out_of_range_qubit() {
        let insts = vec![Instruction {
            gate: Gate::H,
            qubits: vec![5],
        }];
        let report = lint_instructions(2, &insts, None, &LintConfig::new());
        assert_eq!(codes(&report), vec!["QA101"]);
        assert!(report.has_errors());
    }

    #[test]
    fn flags_duplicate_operands() {
        let insts = vec![Instruction {
            gate: Gate::CX,
            qubits: vec![1, 1],
        }];
        let report = lint_instructions(2, &insts, None, &LintConfig::new());
        assert!(codes(&report).contains(&"QA102"));
    }

    #[test]
    fn flags_arity_mismatch() {
        let insts = vec![Instruction {
            gate: Gate::CX,
            qubits: vec![0],
        }];
        let report = lint_instructions(2, &insts, None, &LintConfig::new());
        assert!(codes(&report).contains(&"QA103"));
    }

    #[test]
    fn flags_non_finite_parameter() {
        let insts = vec![Instruction {
            gate: Gate::RZ(f64::NAN),
            qubits: vec![0],
        }];
        let report = lint_instructions(1, &insts, None, &LintConfig::new());
        assert_eq!(codes(&report), vec!["QA104"]);
    }

    #[test]
    fn flags_non_unitary_custom_gate() {
        let m = Matrix::zeros(2, 2); // the zero matrix is maximally non-unitary
        let insts = vec![Instruction {
            gate: Gate::Unitary1(Box::new(m)),
            qubits: vec![0],
        }];
        let report = lint_instructions(1, &insts, None, &LintConfig::new());
        assert_eq!(codes(&report), vec!["QA105"]);
    }

    #[test]
    fn flags_wrongly_sized_custom_gate() {
        let m = Matrix::identity(4); // 4x4 under a one-qubit wrapper
        let insts = vec![Instruction {
            gate: Gate::Unitary1(Box::new(m)),
            qubits: vec![0],
        }];
        let report = lint_instructions(1, &insts, None, &LintConfig::new());
        assert_eq!(codes(&report), vec!["QA105"]);
    }

    #[test]
    fn flags_connectivity_violation_against_topology() {
        let mut c = Circuit::new(3);
        c.cx(0, 2); // linear(3) has edges (0,1) and (1,2) only
        let topo = Topology::linear(3);
        let report = lint_circuit(&c, Some(&topo), &LintConfig::new());
        assert_eq!(codes(&report), vec!["QA106"]);
        assert!(!report.has_errors(), "QA106 defaults to warn");
        let strict = lint_circuit(&c, Some(&topo), &LintConfig::strict_connectivity());
        assert!(strict.has_errors());
    }

    #[test]
    fn detects_adjacent_cancelling_pair() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.h(0);
        let report = lint_circuit(&c, None, &LintConfig::new());
        assert_eq!(codes(&report), vec!["QA107"]);
    }

    #[test]
    fn detects_cancellation_across_commuting_gates() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0); // dead: cancels with the -0.3 rotation two slots later
        c.rz(1.0, 0); // diagonal, commutes with rz
        c.rz(-0.3, 0);
        let report = lint_circuit(&c, None, &LintConfig::new());
        // the middle rz also sees no cancelling partner, so exactly one finding
        assert_eq!(codes(&report), vec!["QA107"]);
        assert_eq!(report.diagnostics[0].location, Location::Instruction(0));
    }

    #[test]
    fn no_dead_gate_when_blocked_by_non_commuting_gate() {
        let mut c = Circuit::new(1);
        c.z(0);
        c.x(0); // X anticommutes with Z: the two Zs do not cancel
        c.z(0);
        let report = lint_circuit(&c, None, &LintConfig::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn allow_level_suppresses_findings() {
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::DeadGate, LintLevel::Allow);
        let mut c = Circuit::new(1);
        c.x(0);
        c.x(0);
        let report = lint_circuit(&c, None, &cfg);
        assert!(report.is_clean());
    }

    #[test]
    fn multiple_defects_are_all_reported() {
        let insts = vec![
            Instruction {
                gate: Gate::CX,
                qubits: vec![7, 7],
            },
            Instruction {
                gate: Gate::RX(f64::INFINITY),
                qubits: vec![0],
            },
        ];
        let report = lint_instructions(2, &insts, None, &LintConfig::new());
        let cs = codes(&report);
        assert!(cs.contains(&"QA101"));
        assert!(cs.contains(&"QA102"));
        assert!(cs.contains(&"QA104"));
    }
}
