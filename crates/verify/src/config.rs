//! The lint catalog and per-code level configuration.
//!
//! Every check the verifier performs has a stable `QA…` code. `QA1xx` codes
//! are circuit-structure lints; `QA2xx` codes are channel/probability lints;
//! `QA3xx` codes are whole-circuit dataflow lints over the [`crate::CircuitDag`];
//! `QA4xx` codes come from the static noise-budget estimator
//! ([`crate::analyze`]); `QA5xx` codes come from the two-circuit noisy
//! equivalence checker ([`crate::check_equivalence`]); `QA6xx` codes come
//! from the noise-aware commutation analysis ([`crate::lint_commute`]).
//! Each code carries a default [`LintLevel`] that a [`LintConfig`] can
//! override (the CLI's `--allow/--warn/--deny CODE` flags map directly onto
//! [`LintConfig::set`]).

use crate::diagnostics::Severity;
use std::collections::BTreeMap;

/// Identifies one check in the lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// QA101: a gate operand exceeds the circuit's qubit count.
    QubitOutOfRange,
    /// QA102: a multi-qubit instruction lists the same qubit twice.
    DuplicateOperands,
    /// QA103: operand count disagrees with the gate's `arity()`.
    ArityMismatch,
    /// QA104: a gate parameter or matrix entry is NaN/infinite.
    NonFiniteParam,
    /// QA105: a gate's matrix is not unitary within tolerance.
    NonUnitaryGate,
    /// QA106: a two-qubit gate acts on a pair outside the coupling map.
    ConnectivityViolation,
    /// QA107: a gate cancels against a later adjoint with only commuting
    /// gates in between (dead weight the optimizer should have removed).
    DeadGate,
    /// QA201: a Kraus set is not CPTP (`sum K†K != I`) within tolerance.
    NonCptpKraus,
    /// QA202: a probability-like calibration value lies outside `[0, 1]`
    /// (or a coherence time is non-positive / non-finite).
    ProbabilityOutOfRange,
    /// QA203: a row of a readout confusion matrix is not stochastic.
    NonStochasticRow,
    /// QA301: a declared qubit no gate or measurement ever touches.
    DeadQubit,
    /// QA302: a gate provably cancels against a later adjoint on the same
    /// wires (dataflow-aware: intermediate gates commute, no measurement in
    /// between). Supersedes the syntactic QA107 scan.
    CancellingPair,
    /// QA303: two same-axis rotations adjacent on their wires that merge
    /// exactly into one rotation with the summed angle.
    MergeableRotations,
    /// QA304: a gate acts on a qubit after that qubit's final measurement.
    OpAfterMeasurement,
    /// QA305: the active qubits split into two or more partitions no
    /// multi-qubit gate ever connects.
    UnentangledPartition,
    /// QA306: a declared classical bit no measurement ever writes, or a
    /// measurement writes outside the declared classical register.
    UnreachableClbit,
    /// QA401: the static fidelity upper bound falls below the configured
    /// threshold.
    LowFidelityBound,
    /// QA402: one qubit's error budget (survival factor) falls below the
    /// configured per-qubit threshold.
    QubitBudgetExceeded,
    /// QA501: the certified *lower* bound on the noisy output-distribution
    /// distance between two circuits exceeds the requested epsilon — the
    /// pair is provably not ε-equivalent on the device.
    EquivalenceViolated,
    /// QA502: the certified upper bound exceeds epsilon but the lower bound
    /// does not — the static analysis cannot decide ε-equivalence and a
    /// simulation (or a tighter bound) is needed.
    EquivalenceUndecidable,
    /// QA503: the device's noise contribution dominates the approximation
    /// error between the two circuits — past the paper's crossover, the
    /// cheaper circuit is certified to cost nothing extra in distribution
    /// distance.
    NoiseDominatesApproximation,
    /// QA601: a cancelling pair only exposed by first applying earlier
    /// commutation-aware rewrites (the fixpoint the one-round QA302 scan
    /// cannot see).
    CommutationCancellation,
    /// QA602: a rotation merge only exposed by first applying earlier
    /// commutation-aware rewrites.
    CommutationMerge,
    /// QA603: the ASAP schedule modulo commutation is strictly shorter than
    /// the wire schedule — reordering commuting gates reduces the critical
    /// path.
    DepthReducibleSchedule,
}

impl LintCode {
    /// Every catalogued code, in code order.
    pub const ALL: [LintCode; 24] = [
        LintCode::QubitOutOfRange,
        LintCode::DuplicateOperands,
        LintCode::ArityMismatch,
        LintCode::NonFiniteParam,
        LintCode::NonUnitaryGate,
        LintCode::ConnectivityViolation,
        LintCode::DeadGate,
        LintCode::NonCptpKraus,
        LintCode::ProbabilityOutOfRange,
        LintCode::NonStochasticRow,
        LintCode::DeadQubit,
        LintCode::CancellingPair,
        LintCode::MergeableRotations,
        LintCode::OpAfterMeasurement,
        LintCode::UnentangledPartition,
        LintCode::UnreachableClbit,
        LintCode::LowFidelityBound,
        LintCode::QubitBudgetExceeded,
        LintCode::EquivalenceViolated,
        LintCode::EquivalenceUndecidable,
        LintCode::NoiseDominatesApproximation,
        LintCode::CommutationCancellation,
        LintCode::CommutationMerge,
        LintCode::DepthReducibleSchedule,
    ];

    /// The stable `QA…` string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::QubitOutOfRange => "QA101",
            LintCode::DuplicateOperands => "QA102",
            LintCode::ArityMismatch => "QA103",
            LintCode::NonFiniteParam => "QA104",
            LintCode::NonUnitaryGate => "QA105",
            LintCode::ConnectivityViolation => "QA106",
            LintCode::DeadGate => "QA107",
            LintCode::NonCptpKraus => "QA201",
            LintCode::ProbabilityOutOfRange => "QA202",
            LintCode::NonStochasticRow => "QA203",
            LintCode::DeadQubit => "QA301",
            LintCode::CancellingPair => "QA302",
            LintCode::MergeableRotations => "QA303",
            LintCode::OpAfterMeasurement => "QA304",
            LintCode::UnentangledPartition => "QA305",
            LintCode::UnreachableClbit => "QA306",
            LintCode::LowFidelityBound => "QA401",
            LintCode::QubitBudgetExceeded => "QA402",
            LintCode::EquivalenceViolated => "QA501",
            LintCode::EquivalenceUndecidable => "QA502",
            LintCode::NoiseDominatesApproximation => "QA503",
            LintCode::CommutationCancellation => "QA601",
            LintCode::CommutationMerge => "QA602",
            LintCode::DepthReducibleSchedule => "QA603",
        }
    }

    /// Resolves a `QA…` string back to its code.
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s))
    }

    /// One-line description for catalogs and `--help` output.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::QubitOutOfRange => "qubit operand out of range",
            LintCode::DuplicateOperands => "duplicate qubit operands",
            LintCode::ArityMismatch => "operand count does not match gate arity",
            LintCode::NonFiniteParam => "non-finite gate parameter",
            LintCode::NonUnitaryGate => "gate matrix is not unitary",
            LintCode::ConnectivityViolation => "two-qubit gate outside the coupling map",
            LintCode::DeadGate => "gate cancels with a later adjoint",
            LintCode::NonCptpKraus => "Kraus set is not trace preserving",
            LintCode::ProbabilityOutOfRange => "probability outside [0, 1]",
            LintCode::NonStochasticRow => "confusion-matrix row is not stochastic",
            LintCode::DeadQubit => "declared qubit is never used",
            LintCode::CancellingPair => "gate pair cancels along its dataflow wires",
            LintCode::MergeableRotations => "adjacent rotations merge into one",
            LintCode::OpAfterMeasurement => "operation after the qubit's final measurement",
            LintCode::UnentangledPartition => "circuit factorizes into unentangled partitions",
            LintCode::UnreachableClbit => "classical bit is never written",
            LintCode::LowFidelityBound => "static fidelity bound below threshold",
            LintCode::QubitBudgetExceeded => "per-qubit error budget exceeded",
            LintCode::EquivalenceViolated => "epsilon-equivalence provably violated",
            LintCode::EquivalenceUndecidable => "equivalence undecidable within the bound",
            LintCode::NoiseDominatesApproximation => "device noise dominates approximation error",
            LintCode::CommutationCancellation => "commutation-enabled cancellation",
            LintCode::CommutationMerge => "commutation-enabled rotation merge",
            LintCode::DepthReducibleSchedule => "commuting reorder shortens the schedule",
        }
    }

    /// The level this code starts at before any overrides.
    pub fn default_level(self) -> LintLevel {
        match self {
            // structural defects make circuits unexecutable -> deny
            LintCode::QubitOutOfRange
            | LintCode::DuplicateOperands
            | LintCode::ArityMismatch
            | LintCode::NonFiniteParam
            | LintCode::NonUnitaryGate
            | LintCode::NonCptpKraus
            | LintCode::ProbabilityOutOfRange
            | LintCode::NonStochasticRow
            // a *proof* that the pair is farther apart than requested is a
            // hard admission failure, same class as a structural defect
            | LintCode::EquivalenceViolated => LintLevel::Deny,
            // suspicious-but-runnable -> warn
            LintCode::ConnectivityViolation
            | LintCode::DeadGate
            | LintCode::DeadQubit
            | LintCode::CancellingPair
            | LintCode::MergeableRotations
            | LintCode::OpAfterMeasurement
            | LintCode::UnentangledPartition
            | LintCode::UnreachableClbit
            | LintCode::LowFidelityBound
            | LintCode::QubitBudgetExceeded
            | LintCode::EquivalenceUndecidable
            | LintCode::NoiseDominatesApproximation
            | LintCode::CommutationCancellation
            | LintCode::CommutationMerge
            | LintCode::DepthReducibleSchedule => LintLevel::Warn,
        }
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a lint code should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress findings for this code entirely.
    Allow,
    /// Report findings as warnings (never fail the run).
    Warn,
    /// Report findings as errors (non-zero exit / rejected admission).
    Deny,
}

/// Per-code level overrides plus numeric tolerances used by the matrix and
/// channel checks.
#[derive(Debug, Clone)]
pub struct LintConfig {
    overrides: BTreeMap<LintCode, LintLevel>,
    /// Tolerance for unitarity / CPTP / row-sum checks.
    pub tolerance: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            overrides: BTreeMap::new(),
            tolerance: 1e-8,
        }
    }
}

impl LintConfig {
    /// A config with every code at its default level.
    pub fn new() -> Self {
        LintConfig::default()
    }

    /// A config where connectivity violations are deny-level — the right
    /// posture when a circuit claims to be routed for a concrete device.
    pub fn strict_connectivity() -> Self {
        let mut cfg = LintConfig::default();
        cfg.set(LintCode::ConnectivityViolation, LintLevel::Deny);
        cfg
    }

    /// Overrides one code's level.
    pub fn set(&mut self, code: LintCode, level: LintLevel) -> &mut Self {
        self.overrides.insert(code, level);
        self
    }

    /// True when the user (or caller) explicitly overrode this code's level.
    /// Lets combined passes demote a superseded code's default without
    /// fighting an explicit `--warn`/`--deny` request.
    pub fn is_overridden(&self, code: LintCode) -> bool {
        self.overrides.contains_key(&code)
    }

    /// The effective level for a code.
    pub fn level(&self, code: LintCode) -> LintLevel {
        self.overrides
            .get(&code)
            .copied()
            .unwrap_or_else(|| code.default_level())
    }

    /// The severity findings of `code` should be emitted at, or `None` when
    /// the code is allowed (suppressed).
    pub fn severity(&self, code: LintCode) -> Option<Severity> {
        match self.level(code) {
            LintLevel::Allow => None,
            LintLevel::Warn => Some(Severity::Warning),
            LintLevel::Deny => Some(Severity::Error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_strings() {
        for code in LintCode::ALL {
            assert_eq!(LintCode::parse(code.as_str()), Some(code));
        }
        assert_eq!(LintCode::parse("qa105"), Some(LintCode::NonUnitaryGate));
        assert_eq!(LintCode::parse("QA999"), None);
    }

    #[test]
    fn default_levels_follow_severity_classes() {
        let cfg = LintConfig::new();
        assert_eq!(cfg.level(LintCode::QubitOutOfRange), LintLevel::Deny);
        assert_eq!(cfg.level(LintCode::DeadGate), LintLevel::Warn);
        assert_eq!(cfg.severity(LintCode::NonCptpKraus), Some(Severity::Error));
    }

    #[test]
    fn overrides_change_effective_level() {
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::DeadGate, LintLevel::Deny);
        cfg.set(LintCode::QubitOutOfRange, LintLevel::Allow);
        assert_eq!(cfg.severity(LintCode::DeadGate), Some(Severity::Error));
        assert_eq!(cfg.severity(LintCode::QubitOutOfRange), None);
    }

    #[test]
    fn strict_connectivity_denies_qa106() {
        let cfg = LintConfig::strict_connectivity();
        assert_eq!(cfg.level(LintCode::ConnectivityViolation), LintLevel::Deny);
    }

    #[test]
    fn all_codes_have_distinct_strings_and_titles() {
        let mut strings: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        strings.sort_unstable();
        strings.dedup();
        assert_eq!(strings.len(), LintCode::ALL.len());
        for code in LintCode::ALL {
            assert!(!code.title().is_empty());
        }
    }
}
