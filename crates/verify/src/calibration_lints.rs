//! Lints over device calibration data: error rates must be probabilities,
//! coherence times must be positive, and edge calibrations must refer to
//! actual coupling-map edges.

use crate::channel_lints::lint_probability;
use crate::config::{LintCode, LintConfig};
use crate::diagnostics::{Diagnostic, Location, Report};
use qaprox_device::Calibration;

/// Audits a calibration snapshot.
pub fn lint_calibration(cal: &Calibration, cfg: &LintConfig) -> Report {
    let mut report = Report::new();

    for (q, qc) in cal.qubits.iter().enumerate() {
        let loc = Location::Qubit(q);
        report.extend(lint_probability(
            &format!("qubit {q} readout_error"),
            qc.readout_error,
            loc.clone(),
            cfg,
        ));
        report.extend(lint_probability(
            &format!("qubit {q} sx_error"),
            qc.sx_error,
            loc.clone(),
            cfg,
        ));
        if let Some(severity) = cfg.severity(LintCode::ProbabilityOutOfRange) {
            for (name, value) in [
                ("t1_us", qc.t1_us),
                ("t2_us", qc.t2_us),
                ("sx_time_ns", qc.sx_time_ns),
            ] {
                if !value.is_finite() || value <= 0.0 {
                    report.diagnostics.push(Diagnostic {
                        code: LintCode::ProbabilityOutOfRange.as_str(),
                        severity,
                        location: loc.clone(),
                        message: format!("qubit {q} {name} = {value} must be positive and finite"),
                    });
                }
            }
        }
    }

    for (&(a, b), ec) in &cal.edges {
        let loc = Location::Edge(a, b);
        report.extend(lint_probability(
            &format!("edge ({a}, {b}) cx_error"),
            ec.cx_error,
            loc.clone(),
            cfg,
        ));
        if let Some(severity) = cfg.severity(LintCode::ConnectivityViolation) {
            if !cal.topology.has_edge(a, b) {
                report.diagnostics.push(Diagnostic {
                    code: LintCode::ConnectivityViolation.as_str(),
                    severity,
                    location: loc,
                    message: format!(
                        "calibration lists edge ({a}, {b}) which is absent from the topology"
                    ),
                });
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_device::devices::ourense;

    #[test]
    fn shipped_device_calibrations_are_clean() {
        let report = lint_calibration(&ourense(), &LintConfig::new());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn flags_negative_readout_error() {
        let mut cal = ourense();
        cal.qubits[2].readout_error = -0.05;
        let report = lint_calibration(&cal, &LintConfig::new());
        assert!(report.has_errors());
        assert!(report.to_text().contains("readout_error"));
        assert_eq!(report.diagnostics[0].location, Location::Qubit(2));
    }

    #[test]
    fn flags_non_positive_coherence_time() {
        let mut cal = ourense();
        cal.qubits[0].t1_us = 0.0;
        let report = lint_calibration(&cal, &LintConfig::new());
        assert!(report.has_errors());
        assert!(report.to_text().contains("t1_us"));
    }

    #[test]
    fn flags_phantom_edge_calibration() {
        let mut cal = ourense();
        let phantom = (0usize, 4usize);
        assert!(
            !cal.topology.has_edge(phantom.0, phantom.1),
            "pick a real non-edge"
        );
        cal.edges.insert(
            phantom,
            qaprox_device::EdgeCal {
                cx_error: 0.01,
                cx_time_ns: 300.0,
            },
        );
        let report = lint_calibration(&cal, &LintConfig::new());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "QA106" && d.location == Location::Edge(0, 4)));
    }
}
