//! Dataflow lint passes (the `QA3xx` family) over a [`CircuitDag`].
//!
//! Unlike the per-gate structural lints of [`crate::circuit_lints`], these
//! passes reason about the whole wire structure: which qubits are ever used,
//! which gate pairs provably cancel or merge along their def-use chains,
//! what happens after a qubit's final measurement, and whether the register
//! factorizes into unentangled partitions.
//!
//! Every cancellation finding is *sound by construction*: a pair is only
//! reported when removing (or merging) it provably preserves the circuit
//! unitary — intermediate gates must commute with the first gate of the
//! pair ([`qaprox_circuit::commutes`] only returns `true` on proof) and a
//! measurement on a shared wire acts as a hard barrier. The property tests
//! in `tests/dataflow_soundness.rs` apply every suggested rewrite and check
//! the unitary is unchanged.

use crate::circuit_lints::{emit, lint_instructions};
use crate::config::{LintCode, LintConfig, LintLevel};
use crate::dag::{CircuitDag, DagNode};
use crate::diagnostics::{Location, Report};
use qaprox_circuit::commutes;
use qaprox_circuit::{Gate, Instruction, RawMeasure};
use qaprox_device::Topology;

/// What to do about a cancellable pair.
#[derive(Debug, Clone, PartialEq)]
pub enum CancellationKind {
    /// The two gates multiply to the identity: delete both.
    RemovePair,
    /// The two rotations merge exactly: replace the first with `merged`,
    /// delete the second.
    Merge {
        /// The single rotation carrying the summed angle.
        merged: Instruction,
    },
}

/// One provably-sound rewrite found by the cancellation pass. Indices refer
/// to the *gate instruction list* the DAG was built from (not DAG node ids),
/// so a rewrite can be applied directly to the original program.
#[derive(Debug, Clone, PartialEq)]
pub struct Cancellation {
    /// Instruction index of the earlier gate of the pair.
    pub first: usize,
    /// Instruction index of the later gate of the pair.
    pub second: usize,
    /// The rewrite that removes the redundancy.
    pub kind: CancellationKind,
}

impl Cancellation {
    /// Applies this rewrite to an instruction list, returning the shortened
    /// program. The result has the same unitary as the input (this is the
    /// property `tests/dataflow_soundness.rs` checks mechanically).
    pub fn apply(&self, instructions: &[Instruction]) -> Vec<Instruction> {
        let mut out = Vec::with_capacity(instructions.len());
        for (i, inst) in instructions.iter().enumerate() {
            if i == self.second {
                continue;
            }
            if i == self.first {
                if let CancellationKind::Merge { merged } = &self.kind {
                    out.push(merged.clone());
                }
                continue;
            }
            out.push(inst.clone());
        }
        out
    }
}

/// When `a` and `b` are same-axis rotations, the single rotation carrying
/// the summed angle (`R(x) R(y) = R(x + y)` is an exact matrix identity for
/// every axis-rotation family in the gate set).
fn merged_rotation(a: &Gate, b: &Gate) -> Option<Gate> {
    match (a, b) {
        (Gate::RX(x), Gate::RX(y)) => Some(Gate::RX(x + y)),
        (Gate::RY(x), Gate::RY(y)) => Some(Gate::RY(x + y)),
        (Gate::RZ(x), Gate::RZ(y)) => Some(Gate::RZ(x + y)),
        (Gate::P(x), Gate::P(y)) => Some(Gate::P(x + y)),
        (Gate::CRX(x), Gate::CRX(y)) => Some(Gate::CRX(x + y)),
        (Gate::CRZ(x), Gate::CRZ(y)) => Some(Gate::CRZ(x + y)),
        (Gate::CP(x), Gate::CP(y)) => Some(Gate::CP(x + y)),
        _ => None,
    }
}

/// Finds every provably-sound cancellation in the DAG: adjoint pairs that
/// multiply to identity and same-axis rotation pairs that merge, in both
/// cases separated only by gates that commute with the first gate (and by
/// no measurement on a shared wire). At most one finding is reported per
/// leading gate; overlapping findings for different leading gates may share
/// a partner, which is fine because each rewrite is applied independently.
pub fn find_cancellations(dag: &CircuitDag) -> Vec<Cancellation> {
    let nodes = dag.nodes();
    let mut out = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        let DagNode::Gate { index: i, inst } = node else {
            continue;
        };
        if inst.qubits.len() != inst.gate.arity() {
            continue; // malformed arity is QA103's business; skip for safety
        }
        let adjoint = inst.gate.dagger();
        for later in &nodes[id + 1..] {
            match later {
                DagNode::Measure { qubit, .. } => {
                    if inst.qubits.contains(qubit) {
                        break; // measurement is a barrier on its wire
                    }
                }
                DagNode::Gate { index: j, inst: lj } => {
                    if lj.qubits == inst.qubits {
                        if lj.gate == adjoint {
                            out.push(Cancellation {
                                first: *i,
                                second: *j,
                                kind: CancellationKind::RemovePair,
                            });
                            break;
                        }
                        if let Some(gate) = merged_rotation(&inst.gate, &lj.gate) {
                            out.push(Cancellation {
                                first: *i,
                                second: *j,
                                kind: CancellationKind::Merge {
                                    merged: Instruction {
                                        gate,
                                        qubits: inst.qubits.clone(),
                                    },
                                },
                            });
                            break;
                        }
                    }
                    if !commutes(inst, lj) {
                        break;
                    }
                }
            }
        }
    }
    out
}

/// Runs every QA3xx dataflow pass over a prebuilt DAG.
pub fn lint_dataflow(dag: &CircuitDag, cfg: &LintConfig) -> Report {
    let mut out = Vec::new();

    // QA301: declared qubits nothing ever touches
    for q in dag.dead_qubits() {
        emit(
            &mut out,
            cfg,
            LintCode::DeadQubit,
            Location::Qubit(q),
            format!("qubit {q} is declared but no gate or measurement touches it"),
        );
    }

    // QA302 / QA303: provably cancelling or mergeable pairs
    for c in find_cancellations(dag) {
        match &c.kind {
            CancellationKind::RemovePair => emit(
                &mut out,
                cfg,
                LintCode::CancellingPair,
                Location::Instruction(c.first),
                format!(
                    "gate cancels with its adjoint at instruction {}; removing both \
                     leaves the unitary unchanged",
                    c.second
                ),
            ),
            CancellationKind::Merge { merged } => emit(
                &mut out,
                cfg,
                LintCode::MergeableRotations,
                Location::Instruction(c.first),
                format!(
                    "rotation merges with instruction {} into a single {}",
                    c.second,
                    merged.gate.name()
                ),
            ),
        }
    }

    // QA304: gates on a qubit after its final measurement
    for q in 0..dag.num_qubits() {
        for id in dag.gates_after_final_measure(q) {
            if let DagNode::Gate { index, inst } = &dag.nodes()[id] {
                emit(
                    &mut out,
                    cfg,
                    LintCode::OpAfterMeasurement,
                    Location::Instruction(*index),
                    format!(
                        "{} acts on qubit {q} after its final measurement; the effect \
                         is never observed",
                        inst.gate.name()
                    ),
                );
            }
        }
    }

    // QA305: the active register factorizes
    let components = dag.entangled_components();
    if components.len() > 1 {
        let parts: Vec<String> = components.iter().map(|c| format!("{c:?}")).collect();
        emit(
            &mut out,
            cfg,
            LintCode::UnentangledPartition,
            Location::Global,
            format!(
                "active qubits split into {} unentangled partitions {}; each could be \
                 analyzed independently",
                components.len(),
                parts.join(" | ")
            ),
        );
    }

    // QA306: declared classical bits nothing ever writes
    for c in dag.unread_clbits() {
        emit(
            &mut out,
            cfg,
            LintCode::UnreachableClbit,
            Location::Clbit(c),
            format!("clbit {c} is declared but no measurement writes it"),
        );
    }

    Report::from_diagnostics(out)
}

/// The combined whole-program entry point: structural lints (QA1xx) plus the
/// dataflow passes (QA3xx) over one parsed program. Because QA302 supersedes
/// the syntactic QA107 scan with a measurement-aware version of the same
/// check, QA107 is demoted to allow here unless the caller overrode either
/// code explicitly.
pub fn lint_program(
    num_qubits: usize,
    num_clbits: usize,
    instructions: &[Instruction],
    measures: &[RawMeasure],
    topology: Option<&Topology>,
    cfg: &LintConfig,
) -> Report {
    let mut structural_cfg = cfg.clone();
    if !cfg.is_overridden(LintCode::DeadGate) && cfg.severity(LintCode::CancellingPair).is_some() {
        structural_cfg.set(LintCode::DeadGate, LintLevel::Allow);
    }
    let mut report = lint_instructions(num_qubits, instructions, topology, &structural_cfg);

    // measurement operands are outside lint_instructions' scope
    let mut measure_findings = Vec::new();
    for m in measures {
        if m.qubit >= num_qubits {
            emit(
                &mut measure_findings,
                cfg,
                LintCode::QubitOutOfRange,
                Location::Qubit(m.qubit),
                format!(
                    "measure reads qubit {} but the circuit has {num_qubits} qubit(s) (line {})",
                    m.qubit, m.line
                ),
            );
        }
        if m.clbit >= num_clbits {
            emit(
                &mut measure_findings,
                cfg,
                LintCode::UnreachableClbit,
                Location::Clbit(m.clbit),
                format!(
                    "measure writes clbit {} outside the {num_clbits}-bit classical \
                     register (line {})",
                    m.clbit, m.line
                ),
            );
        }
    }
    report.extend(Report::from_diagnostics(measure_findings));

    // dataflow passes need a well-formed wire structure; when the program is
    // too defective to lift into a DAG, the structural findings above have
    // already said why
    if let Ok(dag) = CircuitDag::from_program(num_qubits, num_clbits, instructions, measures) {
        report.extend(lint_dataflow(&dag, cfg));
        report.extend(crate::commute::lint_commute(
            num_qubits,
            num_clbits,
            instructions,
            measures,
            cfg,
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_circuit::Circuit;

    fn codes(report: &Report) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn dag_of(c: &Circuit) -> CircuitDag {
        CircuitDag::from_circuit(c)
    }

    #[test]
    fn dead_qubit_is_flagged() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 2);
        let report = lint_dataflow(&dag_of(&c), &LintConfig::new());
        assert!(codes(&report).contains(&"QA301"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.location == Location::Qubit(1)));
    }

    #[test]
    fn adjoint_pair_reported_once_as_qa302() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).cx(0, 1);
        let report = lint_dataflow(&dag_of(&c), &LintConfig::new());
        assert_eq!(codes(&report).iter().filter(|&&s| s == "QA302").count(), 1);
    }

    #[test]
    fn rotation_merge_reported_as_qa303() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(0.4, 0);
        let cs = find_cancellations(&dag_of(&c));
        assert_eq!(cs.len(), 1);
        assert!(matches!(
            &cs[0].kind,
            CancellationKind::Merge { merged } if merged.gate == Gate::RZ(0.3 + 0.4)
        ));
        let report = lint_dataflow(&dag_of(&c), &LintConfig::new());
        assert!(codes(&report).contains(&"QA303"));
    }

    #[test]
    fn exact_inverse_rotation_is_a_remove_pair_not_a_merge() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(-0.3, 0);
        let cs = find_cancellations(&dag_of(&c));
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, CancellationKind::RemovePair);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let insts = vec![
            Instruction {
                gate: Gate::H,
                qubits: vec![0],
            },
            Instruction {
                gate: Gate::H,
                qubits: vec![0],
            },
        ];
        let measures = vec![RawMeasure {
            qubit: 0,
            clbit: 0,
            after: 1, // between the two H gates
            line: 1,
        }];
        let dag = CircuitDag::from_program(1, 1, &insts, &measures).unwrap();
        assert!(find_cancellations(&dag).is_empty());
        // ...but a measurement on an unrelated qubit does not block
        let dag2 = CircuitDag::from_program(
            2,
            1,
            &insts,
            &[RawMeasure {
                qubit: 1,
                clbit: 0,
                after: 1,
                line: 1,
            }],
        )
        .unwrap();
        assert_eq!(find_cancellations(&dag2).len(), 1);
    }

    #[test]
    fn cancellation_across_commuting_gates_survives() {
        let mut c = Circuit::new(2);
        c.rz(0.5, 0); // cancels with -0.5 across the diagonal CZ
        c.cz(0, 1);
        c.rz(-0.5, 0);
        let cs = find_cancellations(&dag_of(&c));
        assert_eq!(cs.len(), 1);
        assert_eq!((cs[0].first, cs[0].second), (0, 2));
    }

    #[test]
    fn apply_rewrites_preserve_the_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.3, 1).rz(0.4, 1).h(0).cx(0, 1);
        let reference = c.unitary();
        for cancellation in find_cancellations(&dag_of(&c)) {
            let rewritten = cancellation.apply(c.instructions());
            let mut rc = Circuit::new(2);
            for inst in &rewritten {
                rc.push(inst.gate.clone(), &inst.qubits);
            }
            let diff = rc.unitary().max_diff(&reference);
            assert!(diff < 1e-12, "rewrite {cancellation:?} drifted by {diff}");
        }
    }

    #[test]
    fn op_after_final_measurement_is_flagged() {
        let insts = vec![
            Instruction {
                gate: Gate::H,
                qubits: vec![0],
            },
            Instruction {
                gate: Gate::X,
                qubits: vec![0],
            },
        ];
        let measures = vec![RawMeasure {
            qubit: 0,
            clbit: 0,
            after: 1,
            line: 4,
        }];
        let report = lint_program(1, 1, &insts, &measures, None, &LintConfig::new());
        assert!(codes(&report).contains(&"QA304"));
    }

    #[test]
    fn unentangled_partition_and_unread_clbit() {
        let insts = vec![
            Instruction {
                gate: Gate::CX,
                qubits: vec![0, 1],
            },
            Instruction {
                gate: Gate::CX,
                qubits: vec![2, 3],
            },
        ];
        let report = lint_program(4, 2, &insts, &[], None, &LintConfig::new());
        let cs = codes(&report);
        assert!(cs.contains(&"QA305"));
        // both clbits are declared but never written
        assert_eq!(cs.iter().filter(|&&s| s == "QA306").count(), 2);
    }

    #[test]
    fn lint_program_demotes_qa107_in_favor_of_qa302() {
        let insts = vec![
            Instruction {
                gate: Gate::H,
                qubits: vec![0],
            },
            Instruction {
                gate: Gate::H,
                qubits: vec![0],
            },
        ];
        let report = lint_program(1, 0, &insts, &[], None, &LintConfig::new());
        let cs = codes(&report);
        assert!(cs.contains(&"QA302"));
        assert!(!cs.contains(&"QA107"), "QA107 superseded by QA302");
        // an explicit QA107 override wins over the demotion
        let mut cfg = LintConfig::new();
        cfg.set(LintCode::DeadGate, LintLevel::Deny);
        let both = lint_program(1, 0, &insts, &[], None, &cfg);
        assert!(codes(&both).contains(&"QA107"));
    }

    #[test]
    fn out_of_range_measure_operands_are_reported() {
        let insts = vec![Instruction {
            gate: Gate::H,
            qubits: vec![0],
        }];
        let measures = vec![RawMeasure {
            qubit: 7,
            clbit: 9,
            after: 1,
            line: 3,
        }];
        let report = lint_program(1, 1, &insts, &measures, None, &LintConfig::new());
        let cs = codes(&report);
        assert!(cs.contains(&"QA101"));
        assert!(cs.contains(&"QA306"));
    }
}
