//! Diagnostic types shared by every lint pass: a finding's code, severity,
//! source location, and human-readable message, plus text and JSON renderers
//! so both the CLI and CI can consume lint output.

use std::fmt;

/// How serious a finding is. Derived from the configured [`LintLevel`] of the
/// finding's code at emission time.
///
/// [`LintLevel`]: crate::config::LintLevel
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: suspicious but not necessarily wrong.
    Warning,
    /// A violated invariant; deny-level findings fail the build.
    Error,
}

impl Severity {
    /// Lowercase name used by both renderers.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the analyzed object a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The whole object (circuit, channel, model) rather than one element.
    Global,
    /// Instruction at this index in program order.
    Instruction(usize),
    /// A specific qubit.
    Qubit(usize),
    /// A specific classical bit.
    Clbit(usize),
    /// A coupling-map edge.
    Edge(usize, usize),
    /// Kraus operator at this index within a channel.
    Kraus(usize),
    /// A row of a stochastic (confusion) matrix.
    Row(usize),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Global => write!(f, "global"),
            Location::Instruction(i) => write!(f, "instruction {i}"),
            Location::Qubit(q) => write!(f, "qubit {q}"),
            Location::Clbit(c) => write!(f, "clbit {c}"),
            Location::Edge(a, b) => write!(f, "edge ({a}, {b})"),
            Location::Kraus(k) => write!(f, "kraus operator {k}"),
            Location::Row(r) => write!(f, "row {r}"),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code, e.g. `"QA101"`.
    pub code: &'static str,
    /// Error or warning, per the active [`LintConfig`].
    ///
    /// [`LintConfig`]: crate::config::LintConfig
    pub severity: Severity,
    /// What the finding points at.
    pub location: Location,
    /// Human-readable explanation with the offending values inlined.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.code, self.message, self.location
        )
    }
}

/// Version stamped into every JSON report so CI consumers can pin the
/// format. Bump when the JSON shape changes incompatibly.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// An ordered collection of findings from one or more lint passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// The findings, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Wraps a list of findings.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// Appends another pass's findings.
    pub fn extend(&mut self, more: Report) {
        self.diagnostics.extend(more.diagnostics);
    }

    /// True when no findings were emitted at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one finding is deny-level.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Renders one line per finding plus a trailing summary line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Renders the report as a JSON object (hand-rolled; the workspace has no
    /// serde): `{"schema_version": V, "errors": N, "warnings": N,
    /// "diagnostics": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"schema_version\":{REPORT_SCHEMA_VERSION},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"location\":\"{}\",\"message\":\"{}\"}}",
                d.code,
                d.severity,
                json_escape(&d.location.to_string()),
                json_escape(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report::from_diagnostics(vec![
            Diagnostic {
                code: "QA101",
                severity: Severity::Error,
                location: Location::Instruction(3),
                message: "qubit 9 out of range for 2-qubit circuit".into(),
            },
            Diagnostic {
                code: "QA107",
                severity: Severity::Warning,
                location: Location::Instruction(5),
                message: "gate cancels with instruction 6".into(),
            },
        ])
    }

    #[test]
    fn counts_and_flags() {
        let r = sample();
        assert!(!r.is_clean());
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
    }

    #[test]
    fn text_rendering_mentions_code_and_location() {
        let text = sample().to_text();
        assert!(text.contains("error[QA101]"));
        assert!(text.contains("instruction 3"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"schema_version\":1"));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"code\":\"QA101\""));
        // no raw newlines or unescaped quotes inside
        assert!(!json.contains('\n'));
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_report_is_clean() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert!(r.to_json().contains("\"diagnostics\":[]"));
    }
}
