//! Progress/cancellation hooks for long-running synthesis.
//!
//! The job service streams partial populations into the store and cancels
//! jobs cooperatively; both need a seam into the synthesis inner loops.
//! [`SearchHooks`] is that seam: `on_progress` fires after every expansion
//! round with the evaluated-node count and the full intermediate stream so
//! far (checkpointing), and `cancel` is polled between rounds (cooperative
//! cancellation and deadline enforcement). Both are optional; the plain
//! [`qsearch`](crate::qsearch::qsearch) / [`qfast`](crate::qfast::qfast)
//! entry points pass a no-op set.

use crate::approx::ApproxCircuit;

/// A progress callback: `(nodes_evaluated, intermediates_so_far)`.
pub type ProgressFn<'a> = Box<dyn FnMut(usize, &[ApproxCircuit]) + 'a>;

/// Callbacks threaded through a synthesis run. See the module docs.
#[derive(Default)]
pub struct SearchHooks<'a> {
    /// Called after each expansion round with `(nodes_evaluated,
    /// intermediates_so_far)`. Must be cheap relative to a round; the store
    /// layer throttles its own checkpoint writes.
    pub on_progress: Option<ProgressFn<'a>>,
    /// Polled between expansion rounds; returning `true` stops the search,
    /// which then returns everything evaluated so far.
    pub cancel: Option<Box<dyn Fn() -> bool + 'a>>,
}

impl<'a> SearchHooks<'a> {
    /// Hooks that do nothing (the plain entry points use this).
    pub fn none() -> Self {
        SearchHooks::default()
    }

    /// True when the caller asked the search to stop.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|f| f())
    }

    /// Reports one completed expansion round. Failpoint `synth.round` fires
    /// here — the synthesis round boundary — where a `panic` action emulates
    /// a crash between checkpoints and a `sleep` action emulates a slow
    /// optimizer round.
    pub fn progress(&mut self, nodes_evaluated: usize, intermediates: &[ApproxCircuit]) {
        qaprox_fault::fail_point!("synth.round");
        if let Some(f) = self.on_progress.as_mut() {
            f(nodes_evaluated, intermediates);
        }
    }
}

impl std::fmt::Debug for SearchHooks<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchHooks")
            .field("on_progress", &self.on_progress.is_some())
            .field("cancel", &self.cancel.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiate::InstantiateConfig;
    use crate::qsearch::{qsearch, qsearch_with_hooks, QSearchConfig};
    use qaprox_device::Topology;
    use qaprox_linalg::random::{haar_unitary, SplitMix64};
    use std::cell::Cell;

    fn cfg() -> QSearchConfig {
        QSearchConfig {
            max_cnots: 4,
            max_nodes: 120,
            beam_width: 4,
            instantiate: InstantiateConfig {
                starts: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn progress_fires_with_monotone_node_counts() {
        let mut rng = SplitMix64::seed_from_u64(21);
        let target = haar_unitary(4, &mut rng);
        let mut seen: Vec<usize> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        let mut hooks = SearchHooks {
            on_progress: Some(Box::new(|nodes, inter| {
                seen.push(nodes);
                counts.push(inter.len());
            })),
            cancel: None,
        };
        let out = qsearch_with_hooks(&target, &Topology::linear(2), &cfg(), &mut hooks);
        drop(hooks);
        assert!(!seen.is_empty(), "progress never fired");
        assert!(
            seen.windows(2).all(|w| w[0] < w[1]),
            "non-monotone {seen:?}"
        );
        assert_eq!(*seen.last().unwrap(), out.nodes_evaluated);
        assert_eq!(seen, counts, "intermediates must track node count");
    }

    #[test]
    fn cancel_after_first_round_yields_partial_output() {
        let mut rng = SplitMix64::seed_from_u64(21);
        let target = haar_unitary(4, &mut rng);
        let full = qsearch(&target, &Topology::linear(2), &cfg());

        let rounds = Cell::new(0usize);
        let mut hooks = SearchHooks {
            on_progress: Some(Box::new(|_, _| rounds.set(rounds.get() + 1))),
            cancel: Some(Box::new(|| rounds.get() >= 1)),
        };
        let partial = qsearch_with_hooks(&target, &Topology::linear(2), &cfg(), &mut hooks);
        assert!(
            partial.nodes_evaluated < full.nodes_evaluated,
            "cancel did not stop early: {} vs {}",
            partial.nodes_evaluated,
            full.nodes_evaluated
        );
        // what was evaluated is still a coherent population
        assert_eq!(partial.nodes_evaluated, partial.intermediates.len());
        assert!(partial
            .intermediates
            .iter()
            .any(|c| c.hs_distance == partial.best.hs_distance));
    }
}
