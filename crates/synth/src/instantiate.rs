//! Instantiation: optimizing a structure's continuous parameters against a
//! target unitary.
//!
//! The objective is BQSKit's `f(theta) = 1 - |Tr(V^dag U(theta))| / d`,
//! minimized by multistart L-BFGS with **analytic gradients**. The gradient
//! uses prefix products `A_k` and suffix products `L_k = V^dag G_m ... G_{k+1}`
//! so that `dT/dtheta = Tr(L_k dG_k A_{k-1})` costs `O(d^2)` per parameter.

use crate::template::{u3_partials, AnsatzOp, Structure};
use qaprox_circuit::Gate;
use qaprox_linalg::kernels::{
    apply_1q_mat_left_into, apply_1q_mat_right_dag, apply_2q_mat_left_into, apply_2q_mat_right_dag,
    mat4_to_array,
};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::{u3_array, Complex64};
use qaprox_opt::{multistart_minimize, GradObjective, LbfgsParams, MultistartParams};
use std::cell::RefCell;

/// Reusable buffers for one objective/gradient evaluation: the prefix and
/// suffix product chains plus scratch matrices. After the first evaluation at
/// a given (dimension, op-count) every later evaluation does **zero** heap
/// allocation inside the objective — the optimizer's hot loop touches only
/// these warm buffers.
pub struct InstantiateWorkspace {
    dim: usize,
    /// `prefixes[k] = G_{k-1} ... G_0` (so `prefixes[0] = I`).
    prefixes: Vec<Matrix>,
    /// `suffixes[k] = V^dag G_{m-1} ... G_{k+1}`.
    suffixes: Vec<Matrix>,
    /// Partial-derivative scratch `dG_embed * prefixes[k]`.
    scratch: Matrix,
    /// Running suffix accumulator (ends as `V^dag U`).
    cur: Matrix,
}

impl Default for InstantiateWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl InstantiateWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        InstantiateWorkspace {
            dim: 0,
            prefixes: Vec::new(),
            suffixes: Vec::new(),
            scratch: Matrix::zeros(0, 0),
            cur: Matrix::zeros(0, 0),
        }
    }

    /// Grows the buffers to hold an evaluation of `m` ops at dimension `dim`.
    fn ensure(&mut self, dim: usize, m: usize) {
        if self.dim != dim {
            self.prefixes.clear();
            self.suffixes.clear();
            self.scratch = Matrix::zeros(dim, dim);
            self.cur = Matrix::zeros(dim, dim);
            self.dim = dim;
        }
        while self.prefixes.len() < m + 1 {
            self.prefixes.push(Matrix::zeros(dim, dim));
        }
        while self.suffixes.len() < m {
            self.suffixes.push(Matrix::zeros(dim, dim));
        }
    }
}

thread_local! {
    /// Per-thread workspace behind [`HsObjective`]'s `GradObjective` impl, so
    /// the objective stays `Sync` (parallel search waves share it immutably)
    /// while evaluations reuse buffers.
    static WORKSPACE: RefCell<InstantiateWorkspace> = RefCell::new(InstantiateWorkspace::new());
}

/// The Hilbert-Schmidt instantiation objective for a fixed structure.
pub struct HsObjective<'a> {
    structure: &'a Structure,
    target_dag: Matrix,
    dim: usize,
    ops: Vec<AnsatzOp>,
    /// The CX gate array, materialized once per structure instead of once per
    /// op per evaluation (the fixed-CX part of the ansatz never changes).
    cx: [Complex64; 16],
}

impl<'a> HsObjective<'a> {
    /// Creates the objective for synthesizing `target` with `structure`.
    pub fn new(structure: &'a Structure, target: &Matrix) -> Self {
        let dim = 1usize << structure.num_qubits;
        assert_eq!(target.rows(), dim, "target dimension mismatch");
        HsObjective {
            structure,
            target_dag: target.adjoint(),
            dim,
            ops: structure.ops(),
            cx: mat4_to_array(&Gate::CX.matrix()),
        }
    }

    /// Trace overlap `T = Tr(V^dag U(theta))`.
    fn trace_overlap(&self, params: &[f64]) -> Complex64 {
        let u = self.structure.unitary(params);
        self.target_dag.matmul(&u).trace()
    }

    /// Objective value only.
    pub fn distance(&self, params: &[f64]) -> f64 {
        (1.0 - self.trace_overlap(params).abs() / self.dim as f64).max(0.0)
    }

    /// Left-multiplies into `dst`: `dst <- G_embed * src`.
    fn apply_left_into(&self, dst: &mut Matrix, src: &Matrix, op: &AnsatzOp, params: &[f64]) {
        match *op {
            AnsatzOp::U3 {
                qubit,
                param_offset,
            } => {
                let g = u3_array(
                    params[param_offset],
                    params[param_offset + 1],
                    params[param_offset + 2],
                );
                apply_1q_mat_left_into(dst, src, qubit, &g);
            }
            AnsatzOp::Cx { control, target } => {
                apply_2q_mat_left_into(dst, src, control, target, &self.cx);
            }
        }
    }

    /// Right-multiplies in place by the embedded gate (not its adjoint):
    /// `M <- M * G_embed`, through the `right_dag` kernels by passing the
    /// dagger (built on the stack — no heap allocation).
    fn apply_right(&self, m: &mut Matrix, op: &AnsatzOp, params: &[f64]) {
        match *op {
            AnsatzOp::U3 {
                qubit,
                param_offset,
            } => {
                let g = u3_array(
                    params[param_offset],
                    params[param_offset + 1],
                    params[param_offset + 2],
                );
                // dagger = conjugate transpose, so (g^dag)^dag = g applies G
                let gd = [g[0].conj(), g[2].conj(), g[1].conj(), g[3].conj()];
                apply_1q_mat_right_dag(m, qubit, &gd);
            }
            AnsatzOp::Cx { control, target } => {
                // CX is self-adjoint
                apply_2q_mat_right_dag(m, control, target, &self.cx);
            }
        }
    }

    /// The full objective+gradient evaluation against an explicit workspace.
    /// [`GradObjective::eval_into`] routes here through a thread-local one.
    pub fn eval_with_workspace(
        &self,
        ws: &mut InstantiateWorkspace,
        params: &[f64],
        grad: &mut [f64],
    ) -> f64 {
        let d = self.dim as f64;
        let m = self.ops.len();
        ws.ensure(self.dim, m);

        // prefix products: a[k] = G_{k-1} ... G_0 (a[0] = I)
        ws.prefixes[0].set_identity();
        for (k, op) in self.ops.iter().enumerate() {
            let (done, rest) = ws.prefixes.split_at_mut(k + 1);
            self.apply_left_into(&mut rest[0], &done[k], op, params);
        }

        // suffix products: l[k] = V^dag G_{m-1} ... G_{k+1} (l[m-1] = V^dag)
        // built backward: l[k-1] = l[k] * G_k
        ws.cur.copy_from(&self.target_dag);
        for k in (0..m).rev() {
            ws.suffixes[k].copy_from(&ws.cur);
            self.apply_right(&mut ws.cur, &self.ops[k], params);
        }
        // after the loop, cur = V^dag U; trace overlap:
        let t = ws.cur.trace();
        let t_abs = t.abs();
        let f = (1.0 - t_abs / d).max(0.0);

        grad.fill(0.0);
        if t_abs < 1e-300 {
            return f;
        }
        let scale = t.conj() / (t_abs * d);

        for (k, op) in self.ops.iter().enumerate() {
            if let AnsatzOp::U3 {
                qubit,
                param_offset,
            } = *op
            {
                let partials = u3_partials(
                    params[param_offset],
                    params[param_offset + 1],
                    params[param_offset + 2],
                );
                for (which, dg) in partials.iter().enumerate() {
                    // dT = Tr(l[k] * dG_embed * a[k])
                    apply_1q_mat_left_into(&mut ws.scratch, &ws.prefixes[k], qubit, dg);
                    let dt = trace_product(&ws.suffixes[k], &ws.scratch);
                    grad[param_offset + which] = -(scale * dt).re;
                }
            }
        }
        f
    }
}

/// Trace of the product `L * M` without forming it: `sum_ij L[i,j] M[j,i]`.
fn trace_product(l: &Matrix, m: &Matrix) -> Complex64 {
    let n = l.rows();
    let mut acc = Complex64::ZERO;
    for i in 0..n {
        for j in 0..n {
            acc = acc.mul_add(l[(i, j)], m[(j, i)]);
        }
    }
    acc
}

impl GradObjective for HsObjective<'_> {
    fn eval_into(&self, params: &[f64], grad: &mut [f64]) -> f64 {
        WORKSPACE.with(|ws| self.eval_with_workspace(&mut ws.borrow_mut(), params, grad))
    }
}

/// Instantiation settings.
#[derive(Debug, Clone)]
pub struct InstantiateConfig {
    /// Random restarts (beyond the provided warm start).
    pub starts: usize,
    /// RNG seed for restarts.
    pub seed: u64,
    /// Early-exit threshold on the HS distance.
    pub success_threshold: f64,
    /// L-BFGS settings.
    pub lbfgs: LbfgsParams,
}

impl Default for InstantiateConfig {
    fn default() -> Self {
        InstantiateConfig {
            starts: 3,
            seed: 0x5EED,
            success_threshold: 1e-12,
            lbfgs: LbfgsParams {
                max_iters: 150,
                ..Default::default()
            },
        }
    }
}

/// Result of instantiating one structure.
#[derive(Debug, Clone)]
pub struct Instantiated {
    /// Optimal parameters found.
    pub params: Vec<f64>,
    /// HS distance at the optimum.
    pub distance: f64,
}

/// Optimizes `structure`'s parameters against `target`, starting from
/// `warm_start` (plus random restarts).
pub fn instantiate(
    structure: &Structure,
    target: &Matrix,
    warm_start: &[f64],
    cfg: &InstantiateConfig,
) -> Instantiated {
    let obj = HsObjective::new(structure, target);
    let ms = MultistartParams {
        starts: cfg.starts,
        range: std::f64::consts::PI,
        seed: cfg.seed,
        success_threshold: cfg.success_threshold,
        local: cfg.lbfgs.clone(),
    };
    // Nested-parallelism guard: the search layer's candidate waves normally
    // saturate the thread budget, in which case the serial multistart driver
    // avoids oversubscription. When budget is left (few candidates, many
    // cores) the parallel driver fans the starts out — both drivers return
    // bit-identical results, so this choice never changes the synthesis.
    let r = if cfg.starts > 1 && qaprox_linalg::parallel::thread_budget() > 1 {
        qaprox_opt::multistart_minimize_par(&obj, warm_start, &ms)
    } else {
        multistart_minimize(&obj, warm_start, &ms)
    };
    Instantiated {
        params: r.x,
        distance: r.f.max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_circuit::Circuit;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;
    use qaprox_metrics::hs_distance;
    use qaprox_opt::gradient::central_difference;

    #[test]
    fn analytic_gradient_matches_finite_differences() {
        let s = Structure::root(2).extended(0, 1);
        let mut rng = StdRng::seed_from_u64(17);
        let target = haar_unitary(4, &mut rng);
        let obj = HsObjective::new(&s, &target);
        let x: Vec<f64> = (0..s.num_params())
            .map(|i| 0.3 * ((i as f64).sin() + 0.5))
            .collect();
        let (_, analytic) = obj.eval(&x);
        let numeric = central_difference(&|p: &[f64]| obj.distance(p), &x, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-6, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn explicit_workspace_reuse_matches_fresh_evaluation() {
        // One workspace reused across evaluations — and across different
        // dimensions — must reproduce the thread-local path bit-for-bit.
        let mut ws = InstantiateWorkspace::new();
        let mut rng = StdRng::seed_from_u64(91);
        for n in [1usize, 2] {
            let s = if n == 1 {
                Structure::root(1)
            } else {
                Structure::root(2).extended(0, 1).extended(1, 0)
            };
            let target = haar_unitary(1 << n, &mut rng);
            let obj = HsObjective::new(&s, &target);
            let x: Vec<f64> = (0..s.num_params()).map(|i| 0.1 * i as f64 - 0.4).collect();
            let (f_fresh, g_fresh) = obj.eval(&x);
            let mut g_ws = vec![0.0; x.len()];
            let f_ws = obj.eval_with_workspace(&mut ws, &x, &mut g_ws);
            assert_eq!(f_fresh, f_ws);
            assert_eq!(g_fresh, g_ws);
        }
    }

    #[test]
    fn instantiates_single_qubit_target_exactly() {
        let s = Structure::root(1);
        let mut rng = StdRng::seed_from_u64(5);
        let target = haar_unitary(2, &mut rng);
        let r = instantiate(&s, &target, &[0.0; 3], &InstantiateConfig::default());
        assert!(
            r.distance < 1e-9,
            "1q instantiation distance {}",
            r.distance
        );
    }

    #[test]
    fn recovers_a_known_one_block_circuit() {
        // Build a circuit from the ansatz itself; instantiation must drive
        // the distance to ~0 with the same structure.
        let s = Structure::root(2).extended(0, 1);
        let true_params: Vec<f64> = (0..s.num_params()).map(|i| 0.2 + 0.37 * i as f64).collect();
        let target = s.unitary(&true_params);
        let r = instantiate(
            &s,
            &target,
            &vec![0.1; s.num_params()],
            &InstantiateConfig::default(),
        );
        assert!(r.distance < 1e-8, "distance {}", r.distance);
        let got = s.unitary(&r.params);
        assert!(hs_distance(&got, &target) < 1e-7);
    }

    #[test]
    fn cnot_target_needs_one_block() {
        let mut cx = Circuit::new(2);
        cx.cx(0, 1);
        let target = cx.unitary();
        // zero blocks cannot reach a CNOT...
        let s0 = Structure::root(2);
        let r0 = instantiate(
            &s0,
            &target,
            &vec![0.0; s0.num_params()],
            &InstantiateConfig::default(),
        );
        assert!(r0.distance > 0.2, "CNOT is entangling: {}", r0.distance);
        // ...one block can
        let s1 = s0.extended(0, 1);
        let r1 = instantiate(
            &s1,
            &target,
            &s1.warm_start_from(&r0.params),
            &InstantiateConfig::default(),
        );
        assert!(
            r1.distance < 1e-8,
            "one block should be exact: {}",
            r1.distance
        );
    }

    #[test]
    fn random_two_qubit_unitary_reachable_with_three_blocks() {
        let mut rng = StdRng::seed_from_u64(23);
        let target = haar_unitary(4, &mut rng);
        let s = Structure::root(2)
            .extended(0, 1)
            .extended(1, 0)
            .extended(0, 1);
        let cfg = InstantiateConfig {
            starts: 5,
            ..Default::default()
        };
        let r = instantiate(&s, &target, &vec![0.0; s.num_params()], &cfg);
        assert!(
            r.distance < 1e-6,
            "3 CNOTs are universal for 2 qubits: {}",
            r.distance
        );
    }

    #[test]
    fn deeper_structures_never_do_worse_with_warm_start() {
        let mut rng = StdRng::seed_from_u64(31);
        let target = haar_unitary(4, &mut rng);
        let mut s = Structure::root(2);
        let mut params = vec![0.0; s.num_params()];
        let mut last = f64::INFINITY;
        for i in 0..3 {
            let (c, t) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
            s = s.extended(c, t);
            let warm = s.warm_start_from(&params);
            let r = instantiate(&s, &target, &warm, &InstantiateConfig::default());
            assert!(
                r.distance <= last + 1e-9,
                "depth {i}: {} should not exceed {last}",
                r.distance
            );
            last = r.distance;
            params = r.params;
        }
    }
}
