//! Partitioned synthesis — the paper's Sec. 6.5 proposal: "it may be
//! possible to create a large circuit out of many small circuits".
//!
//! The reference circuit is cut into temporal segments of bounded CNOT
//! count; each segment's unitary is synthesized (approximately)
//! independently, and the approximate segments are concatenated. The total
//! Hilbert-Schmidt error is bounded by the sum of segment errors (triangle
//! inequality on the unitary group), so a per-segment threshold gives a
//! whole-circuit guarantee while the search stays small.

use crate::approx::ApproxCircuit;
use crate::qsearch::{qsearch, QSearchConfig};
use qaprox_circuit::Circuit;
use qaprox_device::Topology;
use qaprox_linalg::parallel::par_map;

/// Partitioning and per-segment synthesis settings.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Maximum CNOTs per segment of the reference circuit.
    pub segment_cnots: usize,
    /// QSearch settings used on every segment.
    pub qsearch: QSearchConfig,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            segment_cnots: 6,
            qsearch: QSearchConfig::default(),
        }
    }
}

/// The result of partitioned synthesis.
#[derive(Debug, Clone)]
pub struct PartitionedResult {
    /// The concatenated approximate circuit.
    pub circuit: Circuit,
    /// Per-segment HS distances (the total error is bounded by ~their sum).
    pub segment_distances: Vec<f64>,
    /// Segment boundaries: each entry is a segment's instruction count in
    /// the reference.
    pub segment_lengths: Vec<usize>,
}

/// Splits a circuit into temporal segments holding at most `segment_cnots`
/// CNOT-cost units each (a segment always contains at least one gate).
pub fn partition(circuit: &Circuit, segment_cnots: usize) -> Vec<Circuit> {
    assert!(segment_cnots > 0, "segments must allow at least one CNOT");
    let mut segments = Vec::new();
    let mut current = Circuit::new(circuit.num_qubits());
    let mut budget = 0usize;
    for inst in circuit.iter() {
        let cost = inst.gate.cnot_cost();
        if budget + cost > segment_cnots && !current.is_empty() {
            segments.push(std::mem::replace(
                &mut current,
                Circuit::new(circuit.num_qubits()),
            ));
            budget = 0;
        }
        current.push(inst.gate.clone(), &inst.qubits);
        budget += cost;
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Synthesizes each segment independently and concatenates the results.
pub fn synthesize_partitioned(
    reference: &Circuit,
    topology: &Topology,
    cfg: &PartitionConfig,
) -> PartitionedResult {
    assert_eq!(
        reference.num_qubits(),
        topology.num_qubits(),
        "reference width must match the synthesis topology"
    );
    let segments = partition(reference, cfg.segment_cnots);
    let segment_lengths: Vec<usize> = segments.iter().map(Circuit::len).collect();

    let per_segment: Vec<ApproxCircuit> = par_map(&segments, |seg| {
        qsearch(&seg.unitary(), topology, &cfg.qsearch).best
    });

    let mut circuit = Circuit::new(reference.num_qubits());
    let mut segment_distances = Vec::with_capacity(per_segment.len());
    for ap in &per_segment {
        circuit.extend(&ap.circuit);
        segment_distances.push(ap.hs_distance);
    }
    PartitionedResult {
        circuit,
        segment_distances,
        segment_lengths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiate::InstantiateConfig;
    use qaprox_algos::tfim::{tfim_circuit, TfimParams};
    use qaprox_metrics::hs_distance;

    fn quick_cfg(max_cnots: usize) -> PartitionConfig {
        PartitionConfig {
            segment_cnots: 4,
            qsearch: QSearchConfig {
                max_cnots,
                max_nodes: 60,
                beam_width: 3,
                instantiate: InstantiateConfig {
                    starts: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn partition_respects_cnot_budget_and_order() {
        let p = TfimParams::paper_defaults(3);
        let c = tfim_circuit(&p, 4); // 16 CNOTs
        let segments = partition(&c, 4);
        assert!(segments.len() >= 4);
        let mut rejoined = Circuit::new(3);
        for s in &segments {
            assert!(s.cnot_cost() <= 4, "segment exceeds budget");
            rejoined.extend(s);
        }
        assert_eq!(rejoined, c, "partition must preserve the gate sequence");
    }

    #[test]
    fn partition_of_single_gate_circuit() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let segments = partition(&c, 1);
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].len(), 1);
    }

    #[test]
    fn partitioned_synthesis_reconstructs_small_tfim() {
        // Segments of a 2-step TFIM circuit are each synthesizable near-exactly,
        // so the concatenation should be close to the full unitary.
        let p = TfimParams::paper_defaults(3);
        let reference = tfim_circuit(&p, 2); // 8 CNOTs
        let topo = Topology::linear(3);
        let result = synthesize_partitioned(&reference, &topo, &quick_cfg(4));
        let total = hs_distance(&result.circuit.unitary(), &reference.unitary());
        let bound: f64 = result.segment_distances.iter().sum();
        assert!(
            total <= bound + 0.05,
            "total distance {total:.4} should respect the segment bound {bound:.4}"
        );
        assert!(total < 0.3, "partitioned approximation too loose: {total}");
    }

    #[test]
    fn segment_error_budget_composes_subadditively() {
        // Deliberately coarse per-segment synthesis: the triangle-inequality
        // bound must still hold.
        let p = TfimParams::paper_defaults(3);
        let reference = tfim_circuit(&p, 3);
        let topo = Topology::linear(3);
        let cfg = PartitionConfig {
            segment_cnots: 4,
            qsearch: QSearchConfig {
                max_cnots: 2, // force approximation
                max_nodes: 20,
                beam_width: 2,
                instantiate: InstantiateConfig {
                    starts: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        };
        let result = synthesize_partitioned(&reference, &topo, &cfg);
        let total = hs_distance(&result.circuit.unitary(), &reference.unitary());
        // HS distance satisfies an approximate triangle inequality with a
        // constant ~2 when composing; allow a loose factor.
        let bound: f64 = result.segment_distances.iter().sum();
        assert!(
            total <= 2.5 * bound + 1e-6,
            "composition error {total:.4} vs segment-sum bound {bound:.4}"
        );
    }

    #[test]
    fn partitioned_can_shorten_deep_circuits() {
        let p = TfimParams::paper_defaults(3);
        let reference = tfim_circuit(&p, 5); // 20 CNOTs
        let topo = Topology::linear(3);
        let result = synthesize_partitioned(&reference, &topo, &quick_cfg(3));
        assert!(
            result.circuit.cx_count() <= reference.cx_count(),
            "partitioned synthesis should not inflate CNOTs: {} vs {}",
            result.circuit.cx_count(),
            reference.cx_count()
        );
    }
}
