//! # qaprox-synth
//!
//! Circuit synthesis — the Rust reproduction of the BQSKit tools the paper
//! modifies into approximate-circuit generators:
//!
//! * [`template`] — the QSearch ansatz (CNOT placements + U3 layers);
//! * [`instantiate`] — Hilbert-Schmidt instantiation with analytic-gradient
//!   multistart L-BFGS (the SciPy BFGS/COBYLA stand-in);
//! * [`qsearch`] — A* over placements, emitting **every** evaluated circuit
//!   (the paper's enhancement, Sec. 4);
//! * [`qfast`] — hierarchical synthesis: greedy SU(4)-block placement via
//!   `exp(i sum t_j P_j)` then per-block refinement into {U3, CX}
//!   (`partial_solution_callback` analogue);
//! * [`qfactor`] — tensor-sweep gate optimization via polar decomposition
//!   (the paper's Sec. 6.5 roadmap tool);
//! * [`approx`] — the approximate-circuit records, HS-threshold selection,
//!   and per-depth frontiers the experiments consume;
//! * [`partitioned`] — Sec. 6.5's "large circuits from many small pieces":
//!   segment-wise synthesis with a composable error budget.

#![warn(missing_docs)]

pub mod approx;
pub mod hooks;
pub mod instantiate;
pub mod memo;
pub mod partitioned;
pub mod qfactor;
pub mod qfast;
pub mod qsearch;
pub mod template;

pub use approx::{
    admit, admit_on_device, best_per_cnot_count, certified_score, dedupe, partition_by_bound,
    predicted_score, rank_by_predicted, select_by_threshold, ApproxCircuit, BoundPartition,
    SynthStats, SynthesisOutput,
};
pub use hooks::{ProgressFn, SearchHooks};
pub use instantiate::{
    instantiate, HsObjective, InstantiateConfig, InstantiateWorkspace, Instantiated,
};
pub use memo::{canonicalize, CanonicalForm, StructureMemo};
pub use partitioned::{partition, synthesize_partitioned, PartitionConfig, PartitionedResult};
pub use qfactor::{qfactor_optimize, QFactorConfig, QFactorResult};
pub use qfast::{qfast, qfast_with_hooks, QFastConfig};
pub use qsearch::{qsearch, qsearch_resume, qsearch_with_hooks, warm_memo, QSearchConfig};
pub use template::Structure;
