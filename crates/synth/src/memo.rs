//! Structure memoization for the synthesis search.
//!
//! QSearch re-derives the same ansatz along different A* paths whenever CNOT
//! placements commute: appending `(0,1)` then `(2,3)` produces the same
//! unitary family as `(2,3)` then `(0,1)`, because blocks on disjoint qubit
//! pairs commute (the trace-monoid equivalence of the placement word). The
//! memo canonicalizes each structure to its lexicographically-minimal
//! commuting reordering, fingerprints it with [`qaprox_linalg::hashing`],
//! and serves repeat instantiations from cache — remapping the cached
//! parameters back into the query's own placement order, so the emitted
//! circuit still matches the query structure gate for gate.
//!
//! All memo operations run on the merge thread of a search wave (lookups
//! before the wave, insertions after, both in task order), so cache behavior
//! is deterministic and thread-count-invariant.

use crate::template::Structure;
use qaprox_linalg::hashing::Hash128;
use std::collections::HashMap;

/// A structure's canonical commuting reordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// Fingerprint of (num_qubits, canonical placement word).
    pub key: (u64, u64),
    /// `perm[i]` = index into the *original* placement list of the placement
    /// at canonical position `i`.
    pub perm: Vec<usize>,
}

/// Two placements commute iff their qubit pairs are disjoint.
fn commutes(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 != b.0 && a.0 != b.1 && a.1 != b.0 && a.1 != b.1
}

/// Computes the canonical form: bubble-sorts adjacent commuting placements
/// into lexicographically minimal order (the normal form of the trace
/// monoid), tracking the permutation.
pub fn canonicalize(s: &Structure) -> CanonicalForm {
    let mut word: Vec<(usize, usize)> = s.placements.clone();
    let mut perm: Vec<usize> = (0..word.len()).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..word.len().saturating_sub(1) {
            if commutes(word[i], word[i + 1]) && word[i + 1] < word[i] {
                word.swap(i, i + 1);
                perm.swap(i, i + 1);
                changed = true;
            }
        }
    }
    let mut h = Hash128::new();
    h.update_u64(s.num_qubits as u64);
    for &(c, t) in &word {
        h.update_u64(c as u64);
        h.update_u64(t as u64);
    }
    CanonicalForm {
        key: h.finish(),
        perm,
    }
}

/// Parameter layout: `3 * num_qubits` initial-layer angles, then 6 angles
/// per placement block. Remaps a parameter vector from the original
/// placement order into canonical order.
pub fn params_to_canonical(num_qubits: usize, perm: &[usize], params: &[f64]) -> Vec<f64> {
    let head = 3 * num_qubits;
    let mut out = params[..head].to_vec();
    for &orig in perm {
        let off = head + 6 * orig;
        out.extend_from_slice(&params[off..off + 6]);
    }
    out
}

/// Inverse of [`params_to_canonical`]: remaps canonical-order parameters
/// back into the original placement order.
pub fn params_from_canonical(num_qubits: usize, perm: &[usize], canonical: &[f64]) -> Vec<f64> {
    let head = 3 * num_qubits;
    let mut out = vec![0.0; canonical.len()];
    out[..head].copy_from_slice(&canonical[..head]);
    for (i, &orig) in perm.iter().enumerate() {
        let src = head + 6 * i;
        let dst = head + 6 * orig;
        out[dst..dst + 6].copy_from_slice(&canonical[src..src + 6]);
    }
    out
}

/// One cached instantiation, stored in canonical placement order.
#[derive(Debug, Clone)]
struct MemoEntry {
    canonical_params: Vec<f64>,
    distance: f64,
}

/// Per-search-run memo of instantiated structures (the target is fixed for
/// the run, so the canonical fingerprint alone is the key).
#[derive(Debug, Default)]
pub struct StructureMemo {
    map: HashMap<(u64, u64), MemoEntry>,
    /// Instantiations served from cache.
    pub hits: usize,
    /// Instantiations actually optimized (and then cached).
    pub misses: usize,
}

impl StructureMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a structure's cached instantiation, remapped into the
    /// query's own placement order. Counts a hit or a miss.
    pub fn lookup(&mut self, num_qubits: usize, cf: &CanonicalForm) -> Option<(Vec<f64>, f64)> {
        match self.map.get(&cf.key) {
            Some(e) => {
                self.hits += 1;
                Some((
                    params_from_canonical(num_qubits, &cf.perm, &e.canonical_params),
                    e.distance,
                ))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches an instantiation given in the query's own placement order.
    pub fn insert(&mut self, num_qubits: usize, cf: &CanonicalForm, params: &[f64], distance: f64) {
        self.map.insert(
            cf.key,
            MemoEntry {
                canonical_params: params_to_canonical(num_qubits, &cf.perm, params),
                distance,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commuting_reorderings_share_a_key() {
        let a = Structure::root(4).extended(0, 1).extended(2, 3);
        let b = Structure::root(4).extended(2, 3).extended(0, 1);
        assert_eq!(canonicalize(&a).key, canonicalize(&b).key);
    }

    #[test]
    fn non_commuting_reorderings_differ() {
        let a = Structure::root(3).extended(0, 1).extended(1, 2);
        let b = Structure::root(3).extended(1, 2).extended(0, 1);
        assert_ne!(canonicalize(&a).key, canonicalize(&b).key);
    }

    #[test]
    fn param_remap_round_trips_and_preserves_unitary() {
        // a: (0,1) then (2,3); its canonical form is itself ((0,1) < (2,3)),
        // while b's canonical form permutes — the remapped parameters must
        // give b the same unitary a had.
        let a = Structure::root(4).extended(0, 1).extended(2, 3);
        let b = Structure::root(4).extended(2, 3).extended(0, 1);
        let pa: Vec<f64> = (0..a.num_params()).map(|i| 0.1 * i as f64 - 0.7).collect();

        let cfa = canonicalize(&a);
        let canonical = params_to_canonical(4, &cfa.perm, &pa);
        assert_eq!(params_from_canonical(4, &cfa.perm, &canonical), pa);

        let cfb = canonicalize(&b);
        let pb = params_from_canonical(4, &cfb.perm, &canonical);
        let ua = a.unitary(&pa);
        let ub = b.unitary(&pb);
        assert!(
            ua.approx_eq(&ub, 1e-12),
            "remapped params changed the unitary"
        );
    }

    #[test]
    fn memo_counts_hits_and_misses_and_remaps() {
        let a = Structure::root(4).extended(0, 1).extended(2, 3);
        let b = Structure::root(4).extended(2, 3).extended(0, 1);
        let mut memo = StructureMemo::new();
        let cfa = canonicalize(&a);
        assert!(memo.lookup(4, &cfa).is_none());
        let pa: Vec<f64> = (0..a.num_params()).map(|i| (i as f64).sin()).collect();
        memo.insert(4, &cfa, &pa, 0.25);

        let cfb = canonicalize(&b);
        let (pb, dist) = memo.lookup(4, &cfb).expect("hit");
        assert_eq!(dist, 0.25);
        assert!(a.unitary(&pa).approx_eq(&b.unitary(&pb), 1e-12));
        assert_eq!((memo.hits, memo.misses), (1, 1));
    }
}
