//! QSearch: A* search over CNOT placements with numerical instantiation.
//!
//! Faithful to the algorithm the paper describes (Sec. 4): candidates grow by
//! blocks of one CNOT (restricted to coupling-graph edges) plus two U3s,
//! re-optimized after every extension; the frontier is ordered by
//! `f = cnots + weight * distance`. Every evaluated node is recorded — the
//! paper's enhancement that turns the synthesizer into an approximate-
//! circuit generator. A beam cap bounds expansion on wider circuits
//! (4+ qubits), where exhaustive A* is intractable — the same regime where
//! the paper switches to QFast.

use crate::approx::{ApproxCircuit, SynthStats, SynthesisOutput};
use crate::hooks::SearchHooks;
use crate::instantiate::{instantiate, InstantiateConfig};
use crate::memo::{self, CanonicalForm, StructureMemo};
use crate::template::Structure;
use qaprox_device::Topology;
use qaprox_linalg::parallel::par_map_indexed;
use qaprox_linalg::Matrix;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// QSearch configuration.
#[derive(Debug, Clone)]
pub struct QSearchConfig {
    /// Distance at which a circuit counts as exact (QSearch default 1e-10).
    pub success_threshold: f64,
    /// Hard cap on CNOT count.
    pub max_cnots: usize,
    /// Hard cap on evaluated nodes.
    pub max_nodes: usize,
    /// Beam cap: at most this many frontier nodes expand per CNOT depth
    /// (`usize::MAX` = pure A*).
    pub beam_width: usize,
    /// A* heuristic weight on the distance term.
    pub heuristic_weight: f64,
    /// Expand only one frontier node per (depth, distance) class. Escapes
    /// instantiation plateaus (see DESIGN.md); disable only for ablation.
    pub diversity_pruning: bool,
    /// Instantiation settings.
    pub instantiate: InstantiateConfig,
}

impl Default for QSearchConfig {
    fn default() -> Self {
        QSearchConfig {
            success_threshold: 1e-10,
            max_cnots: 14,
            max_nodes: 600,
            beam_width: 8,
            heuristic_weight: 10.0,
            diversity_pruning: true,
            instantiate: InstantiateConfig::default(),
        }
    }
}

struct Node {
    structure: Structure,
    params: Vec<f64>,
    distance: f64,
    priority: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; lower priority value = better
        other.priority.total_cmp(&self.priority)
    }
}

/// Stable child seed salt from structural coordinates only — (CNOT depth,
/// expansion rank within that depth, placement index) — so the instantiation
/// seed stream is identical for any thread count and any wave size.
fn child_salt(depth: usize, rank: usize, pi: usize) -> u64 {
    (depth as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((rank as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F))
        .wrapping_add(pi as u64)
}

/// How one wave task resolves its instantiation.
enum TaskKind {
    /// Optimize in the parallel wave.
    Live,
    /// Served from the structure memo: (params in this task's order, distance).
    Hit(Vec<f64>, f64),
    /// Duplicate of an earlier task in the same wave (by task index).
    Dup(usize),
}

/// One child instantiation queued for a search wave.
struct WaveTask {
    structure: Structure,
    warm: Vec<f64>,
    salt: u64,
    cf: CanonicalForm,
    kind: TaskKind,
}

/// Synthesizes `target` over `topology`, returning the best circuit and the
/// full intermediate stream.
pub fn qsearch(target: &Matrix, topology: &Topology, cfg: &QSearchConfig) -> SynthesisOutput {
    qsearch_with_hooks(target, topology, cfg, &mut SearchHooks::none())
}

/// [`qsearch`] with progress/cancellation hooks (see [`SearchHooks`]).
///
/// When cancelled, the output covers everything evaluated up to the stop
/// point — a valid (if smaller) population, suitable for checkpointing.
pub fn qsearch_with_hooks(
    target: &Matrix,
    topology: &Topology,
    cfg: &QSearchConfig,
    hooks: &mut SearchHooks<'_>,
) -> SynthesisOutput {
    qsearch_core(target, topology, cfg, StructureMemo::new(), hooks)
}

/// Pre-warms the structure memo from a checkpointed intermediate stream.
///
/// Each circuit that parses back into an ansatz ([`Structure::from_circuit`])
/// is cached under its canonical form with its recorded distance; anything
/// else (QFast output, the empty-population placeholder) is skipped. Because
/// checkpoint serialization is bit-exact, the warmed entries are identical to
/// the ones the original search inserted.
pub fn warm_memo(prior: &[ApproxCircuit]) -> StructureMemo {
    let mut cache = StructureMemo::new();
    for ap in prior {
        if let Some((s, params)) = Structure::from_circuit(&ap.circuit) {
            let cf = memo::canonicalize(&s);
            cache.insert(s.num_qubits, &cf, &params, ap.hs_distance);
        }
    }
    cache
}

/// [`qsearch_with_hooks`] resumed from a checkpointed prefix of its own
/// intermediate stream: `prior` pre-warms the structure memo, so the search
/// replays the identical trajectory from node 0 — already-evaluated
/// structures resolve as memo hits (skipping re-instantiation) and the
/// emitted stream is bit-identical to an uninterrupted run. See
/// `docs/SERVE.md` ("Resume semantics") for why this holds.
pub fn qsearch_resume(
    target: &Matrix,
    topology: &Topology,
    cfg: &QSearchConfig,
    prior: &[ApproxCircuit],
    hooks: &mut SearchHooks<'_>,
) -> SynthesisOutput {
    qsearch_core(target, topology, cfg, warm_memo(prior), hooks)
}

fn qsearch_core(
    target: &Matrix,
    topology: &Topology,
    cfg: &QSearchConfig,
    mut memo_cache: StructureMemo,
    hooks: &mut SearchHooks<'_>,
) -> SynthesisOutput {
    let n = topology.num_qubits();
    assert_eq!(
        target.rows(),
        1 << n,
        "target dimension mismatch vs topology width"
    );
    assert!(target.is_square(), "target must be square");

    // Directed placements: both orientations of every edge.
    let mut placements: Vec<(usize, usize)> = Vec::new();
    for &(a, b) in topology.edges() {
        placements.push((a, b));
        placements.push((b, a));
    }
    assert!(!placements.is_empty() || n == 1, "topology has no edges");

    let mut intermediates: Vec<ApproxCircuit> = Vec::new();
    let mut nodes_evaluated = 0usize;
    let mut depth_expansions: Vec<usize> = vec![0; cfg.max_cnots + 1];
    // Distances already expanded per depth: instantiation plateaus produce
    // many frontier nodes tied at the same local optimum, and expanding
    // duplicates starves the (temporarily worse) paths that escape the
    // plateau. Only one representative of each distance class expands.
    let mut expanded_dists: Vec<Vec<f64>> = vec![Vec::new(); cfg.max_cnots + 1];

    // Root: U3 layer only.
    let root_structure = Structure::root(n);
    let root_warm = vec![0.0; root_structure.num_params()];
    let root = {
        let inst = instantiate(&root_structure, target, &root_warm, &cfg.instantiate);
        memo_cache.misses += 1;
        memo_cache.insert(
            n,
            &memo::canonicalize(&root_structure),
            &inst.params,
            inst.distance,
        );
        nodes_evaluated += 1;
        let circuit = root_structure.to_circuit(&inst.params);
        intermediates.push(ApproxCircuit::new(circuit, inst.distance));
        let priority = root_structure.cnots() as f64 + cfg.heuristic_weight * inst.distance;
        Node {
            params: inst.params,
            distance: inst.distance,
            priority,
            structure: root_structure,
        }
    };

    let mut best_idx = 0usize; // index into intermediates
    let mut best_dist = root.distance;

    let mut frontier = BinaryHeap::new();
    let mut done = root.distance < cfg.success_threshold;
    frontier.push(root);

    'search: while !done {
        if nodes_evaluated >= cfg.max_nodes || hooks.cancelled() {
            done = true;
            continue;
        }

        // --- Selection: pop the top-K admissible frontier nodes. K is the
        // beam budget, further capped so one wave never overshoots the node
        // budget by more than one node's children (the same overshoot bound
        // as single-node rounds). Inadmissible pops are discarded, exactly as
        // the single-node loop discarded them.
        let remaining = cfg.max_nodes - nodes_evaluated;
        let max_sel = cfg
            .beam_width
            .min(remaining.div_ceil(placements.len().max(1)))
            .max(1);
        // (depth, rank-within-depth) per selected node, for stable seeds.
        let mut selected: Vec<(Node, usize)> = Vec::new();
        while selected.len() < max_sel {
            let Some(node) = frontier.pop() else { break };
            let depth = node.structure.cnots();
            if depth >= cfg.max_cnots {
                continue;
            }
            if depth_expansions[depth] >= cfg.beam_width {
                continue;
            }
            if cfg.diversity_pruning
                && expanded_dists[depth]
                    .iter()
                    .any(|&d| (d - node.distance).abs() < 1e-6)
            {
                continue; // a same-distance sibling already expanded here
            }
            let rank = depth_expansions[depth];
            depth_expansions[depth] += 1;
            expanded_dists[depth].push(node.distance);
            selected.push((node, rank));
        }
        if selected.is_empty() {
            break;
        }

        // --- Wave setup (sequential, in selection x placement order): build
        // every child task and resolve it against the structure memo, so the
        // parallel wave only optimizes structures not seen before.
        let mut tasks: Vec<WaveTask> = Vec::with_capacity(selected.len() * placements.len());
        let mut wave_seen: std::collections::HashMap<(u64, u64), usize> =
            std::collections::HashMap::new();
        for (node, rank) in &selected {
            let depth = node.structure.cnots();
            for (pi, &(c, t)) in placements.iter().enumerate() {
                let structure = node.structure.extended(c, t);
                let warm = structure.warm_start_from(&node.params);
                let cf = memo::canonicalize(&structure);
                let kind = if let Some((params, dist)) = memo_cache.lookup(n, &cf) {
                    TaskKind::Hit(params, dist)
                } else if let Some(&first) = wave_seen.get(&cf.key) {
                    // same canonical structure earlier in this very wave:
                    // served from that task's result, so it is a cache hit,
                    // not a fresh optimization
                    memo_cache.misses -= 1;
                    memo_cache.hits += 1;
                    TaskKind::Dup(first)
                } else {
                    wave_seen.insert(cf.key, tasks.len());
                    TaskKind::Live
                };
                tasks.push(WaveTask {
                    structure,
                    warm,
                    salt: child_salt(depth, *rank, pi),
                    cf,
                    kind,
                });
            }
        }

        // --- The wave: every live child instantiates in one parallel map.
        let wave: Vec<Option<(Vec<f64>, f64)>> =
            par_map_indexed(&tasks, |_, task| match task.kind {
                TaskKind::Live => {
                    let mut icfg = cfg.instantiate.clone();
                    icfg.seed = icfg.seed.wrapping_add(task.salt);
                    let inst = instantiate(&task.structure, target, &task.warm, &icfg);
                    Some((inst.params, inst.distance))
                }
                _ => None,
            });

        // --- Merge (sequential, in task order — deterministic for any
        // thread count): record every child, cache live results, and expand
        // the frontier. Success mid-merge discards the rest of the wave,
        // exactly as the single-node loop discarded unmerged siblings.
        let mut resolved: Vec<(Vec<f64>, f64)> = Vec::with_capacity(tasks.len());
        for (i, task) in tasks.iter().enumerate() {
            let (params, distance) = match &task.kind {
                TaskKind::Live => {
                    let r = wave[i].clone().expect("live task ran in the wave");
                    memo_cache.insert(n, &task.cf, &r.0, r.1);
                    r
                }
                TaskKind::Hit(p, d) => (p.clone(), *d),
                TaskKind::Dup(j) => {
                    let (pj, dj) = &resolved[*j];
                    let canonical = memo::params_to_canonical(n, &tasks[*j].cf.perm, pj);
                    (
                        memo::params_from_canonical(n, &task.cf.perm, &canonical),
                        *dj,
                    )
                }
            };
            resolved.push((params.clone(), distance));

            nodes_evaluated += 1;
            let circuit = task.structure.to_circuit(&params);
            intermediates.push(ApproxCircuit::new(circuit, distance));
            if distance < best_dist {
                best_dist = distance;
                best_idx = intermediates.len() - 1;
            }
            if distance < cfg.success_threshold {
                hooks.progress(nodes_evaluated, &intermediates);
                break 'search;
            }
            let priority = task.structure.cnots() as f64 + cfg.heuristic_weight * distance;
            frontier.push(Node {
                structure: task.structure.clone(),
                params,
                distance,
                priority,
            });
        }
        hooks.progress(nodes_evaluated, &intermediates);
    }

    // Track the overall best across every recorded intermediate (the root may
    // win for near-identity targets).
    for (i, c) in intermediates.iter().enumerate() {
        if c.hs_distance < intermediates[best_idx].hs_distance {
            best_idx = i;
        }
    }

    SynthesisOutput {
        best: intermediates[best_idx].clone(),
        intermediates,
        nodes_evaluated,
        stats: SynthStats {
            memo_hits: memo_cache.hits,
            memo_misses: memo_cache.misses,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_circuit::Circuit;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;
    use qaprox_metrics::hs_distance;

    fn quick_cfg() -> QSearchConfig {
        QSearchConfig {
            max_cnots: 4,
            max_nodes: 120,
            beam_width: 4,
            instantiate: InstantiateConfig {
                starts: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn synthesizes_identity_with_zero_cnots() {
        let target = qaprox_linalg::Matrix::identity(4);
        let out = qsearch(&target, &Topology::linear(2), &quick_cfg());
        assert!(out.best.hs_distance < 1e-10);
        assert_eq!(out.best.cnots, 0);
    }

    #[test]
    fn synthesizes_cnot_with_one_block() {
        let mut cx = Circuit::new(2);
        cx.cx(0, 1);
        let out = qsearch(&cx.unitary(), &Topology::linear(2), &quick_cfg());
        assert!(out.best.hs_distance < 1e-9, "dist {}", out.best.hs_distance);
        assert_eq!(out.best.cnots, 1, "CNOT should need exactly one block");
    }

    #[test]
    fn synthesizes_random_2q_unitary() {
        let mut rng = StdRng::seed_from_u64(3);
        let target = haar_unitary(4, &mut rng);
        let out = qsearch(&target, &Topology::linear(2), &quick_cfg());
        assert!(out.best.hs_distance < 1e-6, "dist {}", out.best.hs_distance);
        assert!(out.best.cnots <= 3, "2q unitaries need at most 3 CNOTs");
        // verify the emitted circuit really has that distance
        let recheck = hs_distance(&out.best.circuit.unitary(), &target);
        assert!((recheck - out.best.hs_distance).abs() < 1e-8);
    }

    #[test]
    fn intermediate_stream_is_nonempty_and_consistent() {
        let mut rng = StdRng::seed_from_u64(4);
        let target = haar_unitary(4, &mut rng);
        let out = qsearch(&target, &Topology::linear(2), &quick_cfg());
        assert!(
            out.intermediates.len() >= 3,
            "stream too thin: {}",
            out.intermediates.len()
        );
        assert_eq!(out.nodes_evaluated, out.intermediates.len());
        for ap in &out.intermediates {
            let d = hs_distance(&ap.circuit.unitary(), &target);
            assert!(
                (d - ap.hs_distance).abs() < 1e-7,
                "recorded {} vs {}",
                ap.hs_distance,
                d
            );
            assert_eq!(ap.cnots, ap.circuit.cx_count());
        }
    }

    #[test]
    fn stream_contains_multiple_cnot_depths() {
        let mut rng = StdRng::seed_from_u64(6);
        let target = haar_unitary(4, &mut rng);
        let out = qsearch(&target, &Topology::linear(2), &quick_cfg());
        let depths: std::collections::HashSet<usize> =
            out.intermediates.iter().map(|c| c.cnots).collect();
        assert!(
            depths.len() >= 3,
            "expected a range of depths, got {depths:?}"
        );
    }

    #[test]
    fn respects_topology_restriction() {
        // On a 3-qubit line, no CNOT may touch (0, 2) directly.
        let mut rng = StdRng::seed_from_u64(8);
        let target = haar_unitary(8, &mut rng);
        let cfg = QSearchConfig {
            max_cnots: 3,
            max_nodes: 60,
            beam_width: 2,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = qsearch(&target, &Topology::linear(3), &cfg);
        for ap in &out.intermediates {
            for inst in ap.circuit.iter() {
                if inst.qubits.len() == 2 {
                    let (a, b) = (inst.qubits[0], inst.qubits[1]);
                    assert!(
                        (a as i64 - b as i64).abs() == 1,
                        "CNOT on non-adjacent pair ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn node_cap_bounds_work() {
        let mut rng = StdRng::seed_from_u64(10);
        let target = haar_unitary(8, &mut rng);
        let cfg = QSearchConfig {
            max_cnots: 6,
            max_nodes: 30,
            beam_width: 2,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = qsearch(&target, &Topology::linear(3), &cfg);
        assert!(
            out.nodes_evaluated <= 30 + 4,
            "evaluated {}",
            out.nodes_evaluated
        );
    }
}

#[cfg(test)]
mod resume_tests {
    use super::*;
    use qaprox_circuit::qasm::to_qasm;
    use qaprox_linalg::random::{haar_unitary, SplitMix64};
    use std::cell::Cell;

    // A 3-qubit haar target cannot hit the 1e-10 success threshold within
    // these caps, so the search always runs multiple waves to the node cap —
    // enough rounds to checkpoint in the middle of.
    fn cfg() -> QSearchConfig {
        QSearchConfig {
            max_cnots: 5,
            max_nodes: 60,
            beam_width: 2,
            instantiate: InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Serializes a stream the way the artifact store does (QASM text plus
    /// the distance bits), so "bit-identical" here means what the acceptance
    /// criterion means.
    fn fingerprint(stream: &[ApproxCircuit]) -> Vec<(String, u64)> {
        stream
            .iter()
            .map(|c| (to_qasm(&c.circuit), c.hs_distance.to_bits()))
            .collect()
    }

    #[test]
    fn replay_from_checkpoint_is_bit_identical_and_skips_work() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let target = haar_unitary(8, &mut rng);
        let topo = Topology::linear(3);
        let full = qsearch(&target, &topo, &cfg());
        assert!(full.nodes_evaluated > 10, "need a multi-round search");

        // checkpoint: cancel after the second progress round
        let rounds = Cell::new(0usize);
        let mut hooks = SearchHooks {
            on_progress: Some(Box::new(|_, _| rounds.set(rounds.get() + 1))),
            cancel: Some(Box::new(|| rounds.get() >= 2)),
        };
        let partial = qsearch_with_hooks(&target, &topo, &cfg(), &mut hooks);
        drop(hooks);
        assert!(partial.nodes_evaluated < full.nodes_evaluated);
        // the checkpointed prefix matches the uninterrupted stream
        assert_eq!(
            fingerprint(&partial.intermediates),
            fingerprint(&full.intermediates)[..partial.intermediates.len()]
        );

        let resumed = qsearch_resume(
            &target,
            &topo,
            &cfg(),
            &partial.intermediates,
            &mut SearchHooks::none(),
        );
        assert_eq!(
            fingerprint(&resumed.intermediates),
            fingerprint(&full.intermediates),
            "replayed stream must be bit-identical to the uninterrupted run"
        );
        assert_eq!(resumed.nodes_evaluated, full.nodes_evaluated);
        assert_eq!(
            resumed.best.hs_distance.to_bits(),
            full.best.hs_distance.to_bits()
        );
        assert!(
            resumed.stats.memo_misses < full.stats.memo_misses,
            "warm memo should skip re-instantiation: {} vs {}",
            resumed.stats.memo_misses,
            full.stats.memo_misses
        );
    }

    #[test]
    fn resume_from_empty_prior_equals_a_fresh_run() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let target = haar_unitary(8, &mut rng);
        let topo = Topology::linear(3);
        let fresh = qsearch(&target, &topo, &cfg());
        let resumed = qsearch_resume(&target, &topo, &cfg(), &[], &mut SearchHooks::none());
        assert_eq!(
            fingerprint(&resumed.intermediates),
            fingerprint(&fresh.intermediates)
        );
    }
}

#[cfg(test)]
mod diversity_tests {
    use super::*;
    use qaprox_algos::grover::paper_grover;

    /// The regression behind the diversity-pruning design choice: without it
    /// QSearch stalls on an instantiation plateau for the Grover target;
    /// with it the search escapes and reaches much lower distances.
    #[test]
    fn diversity_pruning_escapes_plateaus() {
        let target = paper_grover().unitary();
        let topo = qaprox_device::Topology::linear(3);
        let base = QSearchConfig {
            max_cnots: 8,
            max_nodes: 150,
            beam_width: 4,
            instantiate: crate::instantiate::InstantiateConfig {
                starts: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let with = qsearch(&target, &topo, &base);
        let without = qsearch(
            &target,
            &topo,
            &QSearchConfig {
                diversity_pruning: false,
                ..base
            },
        );
        assert!(
            with.best.hs_distance < without.best.hs_distance - 0.02,
            "pruning should find clearly better circuits: {} vs {}",
            with.best.hs_distance,
            without.best.hs_distance
        );
    }
}
