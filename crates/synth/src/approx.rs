//! Approximate-circuit records and selection.
//!
//! Both synthesis engines emit **every** circuit they evaluate through a
//! partial-solution stream — the paper's enhancement to QSearch ("instead of
//! saving only the final circuit, it also saves every intermediate circuit
//! during its search") and QFast's `partial_solution_callback`. Selection by
//! HS threshold (never below 0.1 in the paper) happens afterwards.

use qaprox_circuit::Circuit;

/// One candidate produced during synthesis.
#[derive(Debug, Clone)]
pub struct ApproxCircuit {
    /// The concrete circuit (U3/CX basis).
    pub circuit: Circuit,
    /// CNOT count (cached).
    pub cnots: usize,
    /// Hilbert-Schmidt distance to the synthesis target.
    pub hs_distance: f64,
}

impl ApproxCircuit {
    /// Builds a record, caching the CNOT count.
    pub fn new(circuit: Circuit, hs_distance: f64) -> Self {
        let cnots = circuit.cx_count();
        ApproxCircuit {
            circuit,
            cnots,
            hs_distance,
        }
    }
}

/// Performance counters from one synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Structure-memo hits: instantiations served from cache because the
    /// search re-derived a commuting-equivalent structure.
    pub memo_hits: usize,
    /// Structure-memo misses: structures actually optimized (then cached).
    pub memo_misses: usize,
}

impl SynthStats {
    /// Element-wise accumulation (for population-level aggregation).
    pub fn absorb(&mut self, other: &SynthStats) {
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }
}

/// Output of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutput {
    /// The best (lowest-distance) circuit found.
    pub best: ApproxCircuit,
    /// Every circuit evaluated during the search, in evaluation order.
    pub intermediates: Vec<ApproxCircuit>,
    /// Search nodes evaluated.
    pub nodes_evaluated: usize,
    /// Memo-cache counters for the run.
    pub stats: SynthStats,
}

/// Admission check for one synthesized candidate: its recorded distance must
/// be a finite non-negative number and its circuit must pass the structural
/// lints of `qaprox-verify` (in-range operands, finite parameters, unitary
/// embedded gates). Optimizers that diverge produce exactly these defects —
/// NaN angles after a line-search blowup being the classic one — and a bad
/// candidate admitted here poisons every downstream noise evaluation.
pub fn admit(candidate: &ApproxCircuit) -> Result<(), String> {
    if !candidate.hs_distance.is_finite() || candidate.hs_distance < -1e-12 {
        return Err(format!(
            "candidate hs_distance {} is not a valid distance",
            candidate.hs_distance
        ));
    }
    let cfg = qaprox_verify::LintConfig::new();
    let report = qaprox_verify::lint_circuit(&candidate.circuit, None, &cfg);
    if report.has_errors() {
        Err(format!(
            "candidate failed admission lints:\n{}",
            report.to_text()
        ))
    } else {
        Ok(())
    }
}

/// Device-aware admission: [`admit`] plus a static ε-equivalence proof
/// attempt against the reference circuit under the given calibration.
///
/// A candidate whose certified *lower* bound already exceeds `epsilon`
/// (QA501: the pair is provably farther apart than requested, even before
/// noise) is rejected without ever running a simulator. Candidates that
/// certify or stay undecidable are admitted — the equivalence report is
/// returned so callers can partition on it (see [`partition_by_bound`]).
pub fn admit_on_device(
    candidate: &ApproxCircuit,
    reference: &Circuit,
    cal: &qaprox_device::Calibration,
    epsilon: f64,
) -> Result<qaprox_verify::EquivReport, String> {
    admit(candidate)?;
    let opts = qaprox_verify::EquivOptions {
        epsilon,
        ..qaprox_verify::EquivOptions::default()
    };
    let report = qaprox_verify::check_equivalence(&candidate.circuit, reference, cal, &opts);
    if report.verdict == qaprox_verify::EquivVerdict::Violated {
        Err(format!(
            "candidate provably violates {epsilon}-equivalence with the reference \
             (certified lower bound {:.3e})",
            report.lower_bound
        ))
    } else {
        Ok(report)
    }
}

/// Bound-first split of a candidate population for pre-ranking.
///
/// Every candidate gets one O(gates) equivalence check against `reference`;
/// the result routes it into one of three bands:
///
/// * **certified** — the static bound proves the candidate within `epsilon`
///   of the reference *including device noise*; paired with its certified
///   upper bound so callers can score it as `reference_score + bound`
///   without simulating;
/// * **undecided** — the bound is too loose to decide either way; these are
///   the only candidates that still need a density-matrix evaluation;
/// * **rejected** — provably violates `epsilon` (or fails [`admit`]).
pub struct BoundPartition {
    /// Candidates certified ε-equivalent, with their certified upper bound.
    pub certified: Vec<(ApproxCircuit, f64)>,
    /// Candidates the static bound could not decide — simulate these.
    pub undecided: Vec<ApproxCircuit>,
    /// Candidates provably outside ε (or structurally defective).
    pub rejected: Vec<ApproxCircuit>,
}

/// Partitions `circuits` by the certified equivalence bound against
/// `reference` (see [`BoundPartition`]). The intended use is synthesis
/// pre-ranking: score certified candidates statically and run the O(4^n)
/// simulator only on the undecided band.
pub fn partition_by_bound(
    circuits: &[ApproxCircuit],
    reference: &Circuit,
    cal: &qaprox_device::Calibration,
    epsilon: f64,
) -> BoundPartition {
    let mut out = BoundPartition {
        certified: Vec::new(),
        undecided: Vec::new(),
        rejected: Vec::new(),
    };
    for c in circuits {
        match admit_on_device(c, reference, cal, epsilon) {
            Err(_) => out.rejected.push(c.clone()),
            Ok(report) => match report.verdict {
                qaprox_verify::EquivVerdict::Equivalent => {
                    out.certified.push((c.clone(), report.bound));
                }
                _ => out.undecided.push(c.clone()),
            },
        }
    }
    out
}

/// Score for a certified candidate given the reference circuit's own score:
/// the candidate's output distribution sits within `bound` (total variation)
/// of the reference's, so its score differs by at most that much. Clamped
/// to `[0, 1]`.
pub fn certified_score(reference_score: f64, bound: f64) -> f64 {
    (reference_score + bound).clamp(0.0, 1.0)
}

/// Keeps circuits with `hs_distance <= max_hs` — the paper's selection rule
/// — after dropping any candidate that fails [`admit`].
pub fn select_by_threshold(circuits: &[ApproxCircuit], max_hs: f64) -> Vec<ApproxCircuit> {
    circuits
        .iter()
        .filter(|c| c.hs_distance <= max_hs && admit(c).is_ok())
        .cloned()
        .collect()
}

/// Deduplicates by (CNOT count, quantized distance), keeping the first of
/// each class — useful to thin very dense intermediate streams.
pub fn dedupe(circuits: &[ApproxCircuit]) -> Vec<ApproxCircuit> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for c in circuits {
        let key = (c.cnots, (c.hs_distance * 1e9) as i64);
        if seen.insert(key) {
            out.push(c.clone());
        }
    }
    out
}

/// Static pre-ranking score for one candidate under a device calibration:
/// the estimated success probability from `qaprox-verify`'s noise-budget
/// interpreter times the candidate's closeness to the synthesis target
/// (`1 - hs_distance`). This is the paper's trade-off in one number — a
/// shorter circuit pays less noise (higher ESP) but may sit further from
/// the target unitary — computed in O(gates) with no simulation.
pub fn predicted_score(candidate: &ApproxCircuit, cal: &qaprox_device::Calibration) -> f64 {
    let opts = qaprox_verify::AnalyzeOptions::default();
    let report = qaprox_verify::analyze(&candidate.circuit, cal, &opts);
    report.esp * (1.0 - candidate.hs_distance.clamp(0.0, 1.0))
}

/// Sorts candidates by [`predicted_score`] descending (best first), each
/// paired with its score. Serve uses this to pre-rank a population before
/// any density-matrix simulation; at high noise the ranking puts fewer-CNOT
/// approximations above the exact circuit — the paper's crossover —
/// without running the O(4^n) simulator.
pub fn rank_by_predicted(
    circuits: &[ApproxCircuit],
    cal: &qaprox_device::Calibration,
) -> Vec<(ApproxCircuit, f64)> {
    let mut ranked: Vec<(ApproxCircuit, f64)> = circuits
        .iter()
        .map(|c| (c.clone(), predicted_score(c, cal)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// The minimum-HS circuit per CNOT count — the "best per depth" frontier
/// used by the paper's depth-vs-noise analysis (Fig. 11).
pub fn best_per_cnot_count(circuits: &[ApproxCircuit]) -> Vec<ApproxCircuit> {
    let mut best: std::collections::BTreeMap<usize, ApproxCircuit> =
        std::collections::BTreeMap::new();
    for c in circuits {
        match best.get(&c.cnots) {
            Some(b) if b.hs_distance <= c.hs_distance => {}
            _ => {
                best.insert(c.cnots, c.clone());
            }
        }
    }
    best.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(cnots: usize, dist: f64) -> ApproxCircuit {
        let mut c = Circuit::new(2);
        for _ in 0..cnots {
            c.cx(0, 1);
        }
        ApproxCircuit::new(c, dist)
    }

    #[test]
    fn new_caches_cnot_count() {
        let a = fake(3, 0.05);
        assert_eq!(a.cnots, 3);
    }

    #[test]
    fn threshold_selection_filters() {
        let pop = vec![fake(1, 0.5), fake(2, 0.09), fake(3, 0.1), fake(4, 0.0)];
        let sel = select_by_threshold(&pop, 0.1);
        assert_eq!(sel.len(), 3);
        assert!(sel.iter().all(|c| c.hs_distance <= 0.1));
    }

    #[test]
    fn admission_rejects_defective_candidates() {
        // NaN distance
        assert!(admit(&fake(1, f64::NAN)).is_err());
        // NaN rotation angle inside the circuit
        let mut c = Circuit::new(2);
        c.rz(f64::NAN, 0);
        let bad = ApproxCircuit::new(c, 0.01);
        assert!(admit(&bad).is_err());
        // both are also silently excluded from selection
        let pop = vec![fake(1, 0.05), bad, fake(2, f64::NAN)];
        assert_eq!(select_by_threshold(&pop, 0.1).len(), 1);
        // a clean candidate passes
        assert!(admit(&fake(2, 0.0)).is_ok());
    }

    /// Calibration with hand-picked error rates so band routing is exact:
    /// zero CX error, zero relaxation, 5% sx error per single-qubit gate.
    fn bench_cal() -> qaprox_device::Calibration {
        let mut cal = qaprox_device::devices::ourense()
            .induced(&[0, 1])
            .with_uniform_cx_error(0.0);
        for q in &mut cal.qubits {
            q.sx_error = 0.05;
            q.t1_us = 1e9;
            q.t2_us = 1e9;
        }
        cal
    }

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c
    }

    #[test]
    fn device_admission_certifies_identity_and_rejects_violations() {
        let cal = bench_cal();
        let reference = bell();
        // identical candidate: whole pair discharges, certified at bound 0
        let same = ApproxCircuit::new(bell(), 0.0);
        let report = admit_on_device(&same, &reference, &cal, 0.05).unwrap();
        assert_eq!(report.verdict, qaprox_verify::EquivVerdict::Equivalent);
        assert!(report.bound < 1e-12);
        // a lone X gate is provably ~1.0 away from the Bell pair in TV,
        // far beyond what device noise could explain: hard rejection
        let mut far = Circuit::new(2);
        far.x(0);
        let err =
            admit_on_device(&ApproxCircuit::new(far, 0.0), &reference, &cal, 0.05).unwrap_err();
        assert!(err.contains("violates"), "unexpected message: {err}");
    }

    #[test]
    fn partition_by_bound_routes_three_bands() {
        let cal = bench_cal();
        let reference = bell();
        let same = ApproxCircuit::new(bell(), 0.0);
        let mut nudged = bell();
        nudged.ry(0.2, 0); // tiny TV shift, but noise keeps the bound loose
        let nudged = ApproxCircuit::new(nudged, 0.01);
        let mut far = Circuit::new(2);
        far.x(0);
        let far = ApproxCircuit::new(far, 0.9);
        let pop = vec![same, nudged, far];
        let bands = partition_by_bound(&pop, &reference, &cal, 0.05);
        assert_eq!(bands.certified.len(), 1, "identical candidate certifies");
        assert!(bands.certified[0].1 < 1e-12);
        assert_eq!(
            bands.undecided.len(),
            1,
            "nudged candidate needs simulation"
        );
        assert_eq!(bands.rejected.len(), 1, "distant candidate is rejected");
        assert_eq!(bands.rejected[0].circuit.len(), 1);
    }

    #[test]
    fn certified_score_clamps() {
        assert!((certified_score(0.9, 0.05) - 0.95).abs() < 1e-12);
        assert!((certified_score(0.99, 0.2) - 1.0).abs() < 1e-12);
        assert!((certified_score(0.5, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dedupe_removes_identical_classes() {
        let pop = vec![fake(2, 0.05), fake(2, 0.05), fake(2, 0.06)];
        assert_eq!(dedupe(&pop).len(), 2);
    }

    #[test]
    fn predicted_ranking_prefers_fewer_cnots_at_high_noise() {
        let cal = qaprox_device::devices::ourense()
            .induced(&[0, 1])
            .with_uniform_cx_error(0.1);
        // exact but long vs slightly-off but short: under 10% CX error the
        // short approximation must win the static ranking
        let exact = fake(8, 0.0);
        let approx = fake(2, 0.05);
        let ranked = rank_by_predicted(&[exact, approx], &cal);
        assert_eq!(
            ranked[0].0.cnots, 2,
            "short approximation should rank first"
        );
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn predicted_ranking_prefers_exactness_at_low_noise() {
        let mut cal = qaprox_device::devices::ourense()
            .induced(&[0, 1])
            .with_uniform_cx_error(1e-5);
        for q in &mut cal.qubits {
            // long coherence times: the gate-error term dominates
            q.t1_us = 1e9;
            q.t2_us = 1e9;
        }
        let exact = fake(8, 0.0);
        let approx = fake(2, 0.05);
        let ranked = rank_by_predicted(&[exact, approx], &cal);
        assert_eq!(ranked[0].0.cnots, 8, "exact circuit should rank first");
    }

    #[test]
    fn best_per_cnot_count_keeps_minimum() {
        let pop = vec![fake(2, 0.3), fake(2, 0.1), fake(4, 0.05), fake(4, 0.2)];
        let best = best_per_cnot_count(&pop);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].cnots, 2);
        assert!((best[0].hs_distance - 0.1).abs() < 1e-12);
        assert!((best[1].hs_distance - 0.05).abs() < 1e-12);
    }
}
