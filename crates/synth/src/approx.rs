//! Approximate-circuit records and selection.
//!
//! Both synthesis engines emit **every** circuit they evaluate through a
//! partial-solution stream — the paper's enhancement to QSearch ("instead of
//! saving only the final circuit, it also saves every intermediate circuit
//! during its search") and QFast's `partial_solution_callback`. Selection by
//! HS threshold (never below 0.1 in the paper) happens afterwards.

use qaprox_circuit::Circuit;

/// One candidate produced during synthesis.
#[derive(Debug, Clone)]
pub struct ApproxCircuit {
    /// The concrete circuit (U3/CX basis).
    pub circuit: Circuit,
    /// CNOT count (cached).
    pub cnots: usize,
    /// Hilbert-Schmidt distance to the synthesis target.
    pub hs_distance: f64,
}

impl ApproxCircuit {
    /// Builds a record, caching the CNOT count.
    pub fn new(circuit: Circuit, hs_distance: f64) -> Self {
        let cnots = circuit.cx_count();
        ApproxCircuit {
            circuit,
            cnots,
            hs_distance,
        }
    }
}

/// Performance counters from one synthesis run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthStats {
    /// Structure-memo hits: instantiations served from cache because the
    /// search re-derived a commuting-equivalent structure.
    pub memo_hits: usize,
    /// Structure-memo misses: structures actually optimized (then cached).
    pub memo_misses: usize,
}

impl SynthStats {
    /// Element-wise accumulation (for population-level aggregation).
    pub fn absorb(&mut self, other: &SynthStats) {
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }
}

/// Output of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOutput {
    /// The best (lowest-distance) circuit found.
    pub best: ApproxCircuit,
    /// Every circuit evaluated during the search, in evaluation order.
    pub intermediates: Vec<ApproxCircuit>,
    /// Search nodes evaluated.
    pub nodes_evaluated: usize,
    /// Memo-cache counters for the run.
    pub stats: SynthStats,
}

/// Admission check for one synthesized candidate: its recorded distance must
/// be a finite non-negative number and its circuit must pass the structural
/// lints of `qaprox-verify` (in-range operands, finite parameters, unitary
/// embedded gates). Optimizers that diverge produce exactly these defects —
/// NaN angles after a line-search blowup being the classic one — and a bad
/// candidate admitted here poisons every downstream noise evaluation.
pub fn admit(candidate: &ApproxCircuit) -> Result<(), String> {
    if !candidate.hs_distance.is_finite() || candidate.hs_distance < -1e-12 {
        return Err(format!(
            "candidate hs_distance {} is not a valid distance",
            candidate.hs_distance
        ));
    }
    let cfg = qaprox_verify::LintConfig::new();
    let report = qaprox_verify::lint_circuit(&candidate.circuit, None, &cfg);
    if report.has_errors() {
        Err(format!(
            "candidate failed admission lints:\n{}",
            report.to_text()
        ))
    } else {
        Ok(())
    }
}

/// Keeps circuits with `hs_distance <= max_hs` — the paper's selection rule
/// — after dropping any candidate that fails [`admit`].
pub fn select_by_threshold(circuits: &[ApproxCircuit], max_hs: f64) -> Vec<ApproxCircuit> {
    circuits
        .iter()
        .filter(|c| c.hs_distance <= max_hs && admit(c).is_ok())
        .cloned()
        .collect()
}

/// Deduplicates by (CNOT count, quantized distance), keeping the first of
/// each class — useful to thin very dense intermediate streams.
pub fn dedupe(circuits: &[ApproxCircuit]) -> Vec<ApproxCircuit> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for c in circuits {
        let key = (c.cnots, (c.hs_distance * 1e9) as i64);
        if seen.insert(key) {
            out.push(c.clone());
        }
    }
    out
}

/// Static pre-ranking score for one candidate under a device calibration:
/// the estimated success probability from `qaprox-verify`'s noise-budget
/// interpreter times the candidate's closeness to the synthesis target
/// (`1 - hs_distance`). This is the paper's trade-off in one number — a
/// shorter circuit pays less noise (higher ESP) but may sit further from
/// the target unitary — computed in O(gates) with no simulation.
pub fn predicted_score(candidate: &ApproxCircuit, cal: &qaprox_device::Calibration) -> f64 {
    let opts = qaprox_verify::AnalyzeOptions::default();
    let report = qaprox_verify::analyze(&candidate.circuit, cal, &opts);
    report.esp * (1.0 - candidate.hs_distance.clamp(0.0, 1.0))
}

/// Sorts candidates by [`predicted_score`] descending (best first), each
/// paired with its score. Serve uses this to pre-rank a population before
/// any density-matrix simulation; at high noise the ranking puts fewer-CNOT
/// approximations above the exact circuit — the paper's crossover —
/// without running the O(4^n) simulator.
pub fn rank_by_predicted(
    circuits: &[ApproxCircuit],
    cal: &qaprox_device::Calibration,
) -> Vec<(ApproxCircuit, f64)> {
    let mut ranked: Vec<(ApproxCircuit, f64)> = circuits
        .iter()
        .map(|c| (c.clone(), predicted_score(c, cal)))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    ranked
}

/// The minimum-HS circuit per CNOT count — the "best per depth" frontier
/// used by the paper's depth-vs-noise analysis (Fig. 11).
pub fn best_per_cnot_count(circuits: &[ApproxCircuit]) -> Vec<ApproxCircuit> {
    let mut best: std::collections::BTreeMap<usize, ApproxCircuit> =
        std::collections::BTreeMap::new();
    for c in circuits {
        match best.get(&c.cnots) {
            Some(b) if b.hs_distance <= c.hs_distance => {}
            _ => {
                best.insert(c.cnots, c.clone());
            }
        }
    }
    best.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(cnots: usize, dist: f64) -> ApproxCircuit {
        let mut c = Circuit::new(2);
        for _ in 0..cnots {
            c.cx(0, 1);
        }
        ApproxCircuit::new(c, dist)
    }

    #[test]
    fn new_caches_cnot_count() {
        let a = fake(3, 0.05);
        assert_eq!(a.cnots, 3);
    }

    #[test]
    fn threshold_selection_filters() {
        let pop = vec![fake(1, 0.5), fake(2, 0.09), fake(3, 0.1), fake(4, 0.0)];
        let sel = select_by_threshold(&pop, 0.1);
        assert_eq!(sel.len(), 3);
        assert!(sel.iter().all(|c| c.hs_distance <= 0.1));
    }

    #[test]
    fn admission_rejects_defective_candidates() {
        // NaN distance
        assert!(admit(&fake(1, f64::NAN)).is_err());
        // NaN rotation angle inside the circuit
        let mut c = Circuit::new(2);
        c.rz(f64::NAN, 0);
        let bad = ApproxCircuit::new(c, 0.01);
        assert!(admit(&bad).is_err());
        // both are also silently excluded from selection
        let pop = vec![fake(1, 0.05), bad, fake(2, f64::NAN)];
        assert_eq!(select_by_threshold(&pop, 0.1).len(), 1);
        // a clean candidate passes
        assert!(admit(&fake(2, 0.0)).is_ok());
    }

    #[test]
    fn dedupe_removes_identical_classes() {
        let pop = vec![fake(2, 0.05), fake(2, 0.05), fake(2, 0.06)];
        assert_eq!(dedupe(&pop).len(), 2);
    }

    #[test]
    fn predicted_ranking_prefers_fewer_cnots_at_high_noise() {
        let cal = qaprox_device::devices::ourense()
            .induced(&[0, 1])
            .with_uniform_cx_error(0.1);
        // exact but long vs slightly-off but short: under 10% CX error the
        // short approximation must win the static ranking
        let exact = fake(8, 0.0);
        let approx = fake(2, 0.05);
        let ranked = rank_by_predicted(&[exact, approx], &cal);
        assert_eq!(
            ranked[0].0.cnots, 2,
            "short approximation should rank first"
        );
        assert!(ranked[0].1 > ranked[1].1);
    }

    #[test]
    fn predicted_ranking_prefers_exactness_at_low_noise() {
        let mut cal = qaprox_device::devices::ourense()
            .induced(&[0, 1])
            .with_uniform_cx_error(1e-5);
        for q in &mut cal.qubits {
            // long coherence times: the gate-error term dominates
            q.t1_us = 1e9;
            q.t2_us = 1e9;
        }
        let exact = fake(8, 0.0);
        let approx = fake(2, 0.05);
        let ranked = rank_by_predicted(&[exact, approx], &cal);
        assert_eq!(ranked[0].0.cnots, 8, "exact circuit should rank first");
    }

    #[test]
    fn best_per_cnot_count_keeps_minimum() {
        let pop = vec![fake(2, 0.3), fake(2, 0.1), fake(4, 0.05), fake(4, 0.2)];
        let best = best_per_cnot_count(&pop);
        assert_eq!(best.len(), 2);
        assert_eq!(best[0].cnots, 2);
        assert!((best[0].hs_distance - 0.1).abs() < 1e-12);
        assert!((best[1].hs_distance - 0.05).abs() < 1e-12);
    }
}
