//! QFast-style hierarchical synthesis.
//!
//! QFast trades QSearch's exhaustive search for a two-level scheme that
//! scales to more qubits: a **coarse** stage places generic two-qubit
//! SU(4) blocks (parameterized as `exp(i sum_j t_j P_j)` over the 15-element
//! Pauli basis, optimized numerically), then each block is **refined** into
//! native {U3, CX} gates by a bounded 2-qubit instantiation (<= 3 CNOTs).
//! Placement is greedy: at each depth the edge whose new block most improves
//! the Hilbert-Schmidt distance wins. Every refined depth-k circuit is
//! emitted as an intermediate — the `partial_solution_callback` of the
//! paper's Sec. 4.

use crate::approx::{ApproxCircuit, SynthStats, SynthesisOutput};
use crate::hooks::SearchHooks;
use crate::instantiate::{instantiate, InstantiateConfig};
use crate::template::Structure;
use qaprox_circuit::Circuit;
use qaprox_device::Topology;
use qaprox_linalg::expm::expm_i_hermitian;
use qaprox_linalg::hashing::hash128;
use qaprox_linalg::kernels::{apply_2q_mat_left, mat4_to_array};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::parallel::par_map_range;
use qaprox_linalg::pauli::{hermitian_from_coeffs, su_basis};
use qaprox_opt::gradient::central_difference;
use qaprox_opt::{lbfgs, LbfgsParams};
use std::collections::HashMap;

/// QFast configuration.
#[derive(Debug, Clone)]
pub struct QFastConfig {
    /// Stop when the coarse distance falls below this.
    pub success_threshold: f64,
    /// Maximum number of SU(4) blocks.
    pub max_blocks: usize,
    /// L-BFGS settings for the coarse stage (finite-difference gradients).
    pub coarse_lbfgs: LbfgsParams,
    /// Random initializations tried per candidate block (the zero point is a
    /// saddle of the |Tr| objective, so blocks start from random coeffs).
    pub coarse_starts: usize,
    /// RNG seed for block initialization.
    pub seed: u64,
    /// Instantiation settings for block refinement.
    pub refine: InstantiateConfig,
}

impl Default for QFastConfig {
    fn default() -> Self {
        QFastConfig {
            success_threshold: 1e-8,
            max_blocks: 8,
            coarse_lbfgs: LbfgsParams {
                max_iters: 60,
                grad_tol: 1e-8,
                ..Default::default()
            },
            coarse_starts: 3,
            seed: 0xFA57,
            refine: InstantiateConfig::default(),
        }
    }
}

/// A placed SU(4) block: an edge plus 15 Pauli coefficients.
#[derive(Debug, Clone)]
struct Block {
    edge: (usize, usize),
    coeffs: Vec<f64>,
}

/// Builds the coarse unitary for a block sequence.
fn coarse_unitary(n: usize, blocks: &[Block], basis: &[Matrix]) -> Matrix {
    let mut m = Matrix::identity(1 << n);
    for b in blocks {
        let h = hermitian_from_coeffs(basis, &b.coeffs);
        let u = expm_i_hermitian(&h);
        apply_2q_mat_left(&mut m, b.edge.0, b.edge.1, &mat4_to_array(&u));
    }
    m
}

fn coarse_distance(n: usize, blocks: &[Block], basis: &[Matrix], target_dag: &Matrix) -> f64 {
    let u = coarse_unitary(n, blocks, basis);
    let d = (1 << n) as f64;
    (1.0 - target_dag.matmul(&u).trace().abs() / d).max(0.0)
}

/// Optimizes every block's coefficients jointly (finite-difference L-BFGS).
fn optimize_blocks(
    n: usize,
    blocks: &mut Vec<Block>,
    basis: &[Matrix],
    target_dag: &Matrix,
    lb: &LbfgsParams,
) -> f64 {
    let flat0: Vec<f64> = blocks
        .iter()
        .flat_map(|b| b.coeffs.iter().copied())
        .collect();
    let edges: Vec<(usize, usize)> = blocks.iter().map(|b| b.edge).collect();
    let rebuild = |flat: &[f64]| -> Vec<Block> {
        edges
            .iter()
            .enumerate()
            .map(|(i, &edge)| Block {
                edge,
                coeffs: flat[i * 15..(i + 1) * 15].to_vec(),
            })
            .collect()
    };
    let value = |flat: &[f64]| coarse_distance(n, &rebuild(flat), basis, target_dag);
    let obj = |flat: &[f64]| {
        let f = value(flat);
        let g = central_difference(&value, flat, 1e-6);
        (f, g)
    };
    let r = lbfgs(&obj, &flat0, lb);
    *blocks = rebuild(&r.x);
    r.f.max(0.0)
}

/// The 4x4 unitary a block's coefficients generate.
fn block_unitary(block: &Block, basis: &[Matrix]) -> Matrix {
    let h = hermitian_from_coeffs(basis, &block.coeffs);
    expm_i_hermitian(&h)
}

/// Refines one SU(4) unitary into at most 3 CNOTs + U3s on the virtual
/// pair (0, 1); relabeling onto the physical edge happens at assembly.
fn refine_unitary(u: &Matrix, cfg: &InstantiateConfig) -> Circuit {
    let mut best: Option<(Circuit, f64)> = None;
    let mut s = Structure::root(2);
    let mut warm = vec![0.0; s.num_params()];
    for depth in 0..=3usize {
        if depth > 0 {
            let (c, t) = if depth % 2 == 1 { (0, 1) } else { (1, 0) };
            s = s.extended(c, t);
            warm = s.warm_start_from(&warm);
        }
        let inst = instantiate(&s, u, &warm, cfg);
        warm = inst.params.clone();
        let circuit = s.to_circuit(&inst.params);
        if best.as_ref().is_none_or(|(_, d)| inst.distance < *d) {
            let done = inst.distance < 1e-9;
            best = Some((circuit, inst.distance));
            if done {
                break;
            }
        }
    }
    best.expect("refinement always produces a circuit").0
}

/// Relabels a virtual-pair circuit onto the block's physical edge. The coarse
/// kernel treats `edge.0` as the HIGH bit of the block's 4x4 matrix, while
/// the refined circuit's qubit 0 is the LOW bit - so the map is reversed.
fn relabel(local: &Circuit, edge: (usize, usize)) -> Circuit {
    let mut out = Circuit::new(edge.0.max(edge.1) + 1);
    out.extend_mapped(local, &[edge.1, edge.0]);
    out
}

/// Cache of refined blocks across assembly rounds, keyed by the exact bytes
/// of the block unitary. Greedy QFast re-assembles the whole block list at
/// every depth, so blocks the joint optimizer left untouched (and duplicate
/// blocks inside one round) refine once instead of once per depth. All cache
/// traffic happens on the merge thread, in block order — deterministic for
/// any thread count.
#[derive(Default)]
struct RefineMemo {
    map: HashMap<(u64, u64), Circuit>,
    hits: usize,
    misses: usize,
}

/// How one block resolves in an assembly wave.
enum RefineKind {
    /// Served from [`RefineMemo`].
    Cached(Circuit),
    /// Same unitary as an earlier block in this wave (by block index).
    Dup(usize),
    /// Refine in the parallel wave.
    Live,
}

/// Assembles the native-gate circuit for a refined block sequence and
/// re-instantiates nothing (each block is already near-exact).
fn assemble(
    n: usize,
    blocks: &[Block],
    basis: &[Matrix],
    cfg: &InstantiateConfig,
    memo: &mut RefineMemo,
) -> Circuit {
    // Pre-scan (sequential): resolve each block against the memo.
    let mut unitaries: Vec<Matrix> = Vec::with_capacity(blocks.len());
    let mut kinds: Vec<RefineKind> = Vec::with_capacity(blocks.len());
    let mut keys: Vec<(u64, u64)> = Vec::with_capacity(blocks.len());
    let mut wave_seen: HashMap<(u64, u64), usize> = HashMap::new();
    for (i, b) in blocks.iter().enumerate() {
        let u = block_unitary(b, basis);
        let key = hash128(&u.canonical_bytes());
        let kind = if let Some(local) = memo.map.get(&key) {
            memo.hits += 1;
            RefineKind::Cached(local.clone())
        } else if let Some(&first) = wave_seen.get(&key) {
            memo.hits += 1;
            RefineKind::Dup(first)
        } else {
            memo.misses += 1;
            wave_seen.insert(key, i);
            RefineKind::Live
        };
        unitaries.push(u);
        keys.push(key);
        kinds.push(kind);
    }

    // The wave: refine every live block concurrently.
    let refined: Vec<Option<Circuit>> = par_map_range(blocks.len(), |i| match kinds[i] {
        RefineKind::Live => Some(refine_unitary(&unitaries[i], cfg)),
        _ => None,
    });

    // Merge (sequential, block order): resolve, cache, relabel, append.
    let mut locals: Vec<Circuit> = Vec::with_capacity(blocks.len());
    let mut c = Circuit::new(n);
    for (i, block) in blocks.iter().enumerate() {
        let local = match &kinds[i] {
            RefineKind::Cached(l) => l.clone(),
            RefineKind::Dup(j) => locals[*j].clone(),
            RefineKind::Live => {
                let l = refined[i].clone().expect("live block refined in the wave");
                memo.map.insert(keys[i], l.clone());
                l
            }
        };
        let rc = relabel(&local, block.edge);
        locals.push(local);
        for inst in rc.iter() {
            c.push(inst.gate.clone(), &inst.qubits);
        }
    }
    c
}

/// Runs QFast-style synthesis of `target` over `topology`.
pub fn qfast(target: &Matrix, topology: &Topology, cfg: &QFastConfig) -> SynthesisOutput {
    qfast_with_hooks(target, topology, cfg, &mut SearchHooks::none())
}

/// [`qfast`] with progress/cancellation hooks (see [`SearchHooks`]).
///
/// Cancellation is checked once per block depth (the natural round size);
/// the output then covers every depth completed before the stop.
pub fn qfast_with_hooks(
    target: &Matrix,
    topology: &Topology,
    cfg: &QFastConfig,
    hooks: &mut SearchHooks<'_>,
) -> SynthesisOutput {
    let n = topology.num_qubits();
    assert_eq!(target.rows(), 1 << n, "target dimension mismatch");
    let basis = su_basis(2);
    let target_dag = target.adjoint();

    let mut blocks: Vec<Block> = Vec::new();
    let mut intermediates: Vec<ApproxCircuit> = Vec::new();
    let mut nodes_evaluated = 0usize;
    let mut refine_memo = RefineMemo::default();

    // Depth-0 "circuit": identity (only meaningful for near-identity targets).
    let empty = Circuit::new(n);
    let d0 = {
        let d = (1 << n) as f64;
        (1.0 - target_dag.trace().abs() / d).max(0.0)
    };
    intermediates.push(ApproxCircuit::new(empty, d0));
    let mut best_coarse = d0;

    for _depth in 0..cfg.max_blocks {
        if best_coarse < cfg.success_threshold || hooks.cancelled() {
            break;
        }
        // Try a new block on every edge (both orientations are equivalent for
        // a generic SU(4) block, so undirected edges suffice). Every
        // (edge, random start) pair is an independent task, so the whole
        // depth optimizes in one flat parallel wave instead of serial starts
        // inside an edge-wide wave.
        let depth_salt = blocks.len() as u64;
        let edges = topology.edges();
        let starts = cfg.coarse_starts.max(1);
        let trials: Vec<(Vec<Block>, f64)> = par_map_range(edges.len() * starts, |ti| {
            let (ei, start) = (ti / starts, ti % starts);
            use qaprox_linalg::random::Rng;
            let mut rng = qaprox_linalg::random::SplitMix64::seed_from_u64(
                cfg.seed ^ (depth_salt << 24) ^ ((ei as u64) << 8) ^ start as u64,
            );
            let coeffs: Vec<f64> = (0..15).map(|_| rng.gen_range(-0.8..0.8)).collect();
            let mut trial = blocks.clone();
            trial.push(Block {
                edge: edges[ei],
                coeffs,
            });
            let dist = optimize_blocks(n, &mut trial, &basis, &target_dag, &cfg.coarse_lbfgs);
            (trial, dist)
        });
        // Per-edge reduce in start order with the serial driver's exact
        // rules (strict improvement, stop at the first success), so the
        // chosen candidate is thread-count-invariant. Starts the serial loop
        // would have skipped after a success are computed then discarded.
        let candidates: Vec<(usize, &(Vec<Block>, f64))> = (0..edges.len())
            .map(|ei| {
                let mut best_start = ei * starts;
                for s in 0..starts {
                    let ti = ei * starts + s;
                    if trials[ti].1 < trials[best_start].1 {
                        best_start = ti;
                    }
                    if trials[best_start].1 < cfg.success_threshold {
                        break;
                    }
                }
                (ei, &trials[best_start])
            })
            .collect();
        nodes_evaluated += candidates.len();

        let (_, (best_blocks, best_dist)) = candidates
            .into_iter()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .expect("topology has at least one edge");

        blocks = best_blocks.clone();
        best_coarse = *best_dist;

        // Emit the refined native circuit for this depth.
        let native = assemble(n, &blocks, &basis, &cfg.refine, &mut refine_memo);
        let d = {
            let dim = (1 << n) as f64;
            (1.0 - target_dag.matmul(&native.unitary()).trace().abs() / dim).max(0.0)
        };
        intermediates.push(ApproxCircuit::new(native, d));
        hooks.progress(nodes_evaluated, &intermediates);
    }

    let best_idx = intermediates
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.hs_distance.total_cmp(&b.1.hs_distance))
        .map(|(i, _)| i)
        .unwrap();

    SynthesisOutput {
        best: intermediates[best_idx].clone(),
        intermediates,
        nodes_evaluated,
        stats: SynthStats {
            memo_hits: refine_memo.hits,
            memo_misses: refine_memo.misses,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_circuit::Gate;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;
    use qaprox_metrics::hs_distance;

    fn quick_cfg() -> QFastConfig {
        QFastConfig {
            max_blocks: 3,
            coarse_lbfgs: LbfgsParams {
                max_iters: 40,
                ..Default::default()
            },
            refine: InstantiateConfig {
                starts: 2,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn block_parameterization_covers_cnot() {
        // a single SU(4) block must represent CNOT exactly (it's in SU(4) up
        // to phase)
        let mut cx = Circuit::new(2);
        cx.cx(0, 1);
        let out = qfast(&cx.unitary(), &Topology::linear(2), &quick_cfg());
        assert!(out.best.hs_distance < 1e-5, "dist {}", out.best.hs_distance);
    }

    #[test]
    fn synthesizes_random_2q_unitary() {
        let mut rng = StdRng::seed_from_u64(12);
        let target = haar_unitary(4, &mut rng);
        let out = qfast(&target, &Topology::linear(2), &quick_cfg());
        assert!(out.best.hs_distance < 1e-4, "dist {}", out.best.hs_distance);
        let recheck = hs_distance(&out.best.circuit.unitary(), &target);
        assert!((recheck - out.best.hs_distance).abs() < 1e-6);
    }

    #[test]
    fn intermediates_are_native_and_improving_overall() {
        let mut rng = StdRng::seed_from_u64(13);
        let target = haar_unitary(8, &mut rng);
        let out = qfast(&target, &Topology::linear(3), &quick_cfg());
        assert!(out.intermediates.len() >= 2);
        // every intermediate (past the identity) is in the native basis
        for ap in out.intermediates.iter().skip(1) {
            for inst in ap.circuit.iter() {
                assert!(
                    matches!(inst.gate, Gate::U3(..) | Gate::CX),
                    "non-native gate {} in refined circuit",
                    inst.gate.name()
                );
            }
        }
        // the best must beat the identity baseline
        assert!(out.best.hs_distance < out.intermediates[0].hs_distance);
    }

    #[test]
    fn three_qubit_target_improves_with_depth() {
        let mut rng = StdRng::seed_from_u64(14);
        let target = haar_unitary(8, &mut rng);
        let out = qfast(&target, &Topology::linear(3), &quick_cfg());
        // coarse greedy should reduce distance vs the empty circuit by a lot
        assert!(
            out.best.hs_distance < 0.6 * out.intermediates[0].hs_distance,
            "best {} vs baseline {}",
            out.best.hs_distance,
            out.intermediates[0].hs_distance
        );
    }
}
