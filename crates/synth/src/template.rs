//! The QSearch circuit template.
//!
//! QSearch builds candidates from a fixed ansatz: one U3 on every qubit,
//! then a sequence of *blocks*, each a CNOT on a coupling-graph edge followed
//! by a U3 on each of its qubits. A structure is fully described by its CNOT
//! placement sequence; the continuous parameters are the U3 angles
//! (`3 * (n + 2 * blocks)` of them).

use qaprox_circuit::{Circuit, Gate, Instruction};
use qaprox_linalg::kernels::{apply_1q_mat_left, apply_2q_mat_left, mat2_to_array, mat4_to_array};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::{u3_matrix, Complex64};

/// One primitive op of a flattened ansatz.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnsatzOp {
    /// A parameterized U3 on a qubit; angles live at `param_offset..+3`.
    U3 {
        /// Target qubit.
        qubit: usize,
        /// Index of theta in the parameter vector.
        param_offset: usize,
    },
    /// A fixed CNOT.
    Cx {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
}

/// A CNOT-placement structure over `num_qubits` qubits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Structure {
    /// Circuit width.
    pub num_qubits: usize,
    /// CNOT placements `(control, target)` in temporal order.
    pub placements: Vec<(usize, usize)>,
}

impl Structure {
    /// The root structure: no CNOTs, just the initial U3 layer.
    pub fn root(num_qubits: usize) -> Self {
        Structure {
            num_qubits,
            placements: Vec::new(),
        }
    }

    /// Child structure extended by one block on `(control, target)`.
    pub fn extended(&self, control: usize, target: usize) -> Self {
        let mut placements = self.placements.clone();
        placements.push((control, target));
        Structure {
            num_qubits: self.num_qubits,
            placements,
        }
    }

    /// Number of CNOTs.
    pub fn cnots(&self) -> usize {
        self.placements.len()
    }

    /// Number of continuous parameters.
    pub fn num_params(&self) -> usize {
        3 * (self.num_qubits + 2 * self.placements.len())
    }

    /// Flattens to the op sequence: initial U3 layer, then
    /// `CX; U3(control); U3(target)` per placement.
    pub fn ops(&self) -> Vec<AnsatzOp> {
        let mut ops = Vec::with_capacity(self.num_qubits + 3 * self.placements.len());
        let mut offset = 0;
        for q in 0..self.num_qubits {
            ops.push(AnsatzOp::U3 {
                qubit: q,
                param_offset: offset,
            });
            offset += 3;
        }
        for &(c, t) in &self.placements {
            ops.push(AnsatzOp::Cx {
                control: c,
                target: t,
            });
            ops.push(AnsatzOp::U3 {
                qubit: c,
                param_offset: offset,
            });
            offset += 3;
            ops.push(AnsatzOp::U3 {
                qubit: t,
                param_offset: offset,
            });
            offset += 3;
        }
        ops
    }

    /// Builds the concrete circuit for a parameter assignment.
    pub fn to_circuit(&self, params: &[f64]) -> Circuit {
        assert_eq!(params.len(), self.num_params(), "parameter count mismatch");
        let mut c = Circuit::new(self.num_qubits);
        for op in self.ops() {
            match op {
                AnsatzOp::U3 {
                    qubit,
                    param_offset,
                } => {
                    c.push(
                        Gate::U3(
                            params[param_offset],
                            params[param_offset + 1],
                            params[param_offset + 2],
                        ),
                        &[qubit],
                    );
                }
                AnsatzOp::Cx { control, target } => {
                    c.cx(control, target);
                }
            }
        }
        c
    }

    /// Builds the ansatz unitary directly (faster than `to_circuit().unitary()`
    /// in the optimizer's inner loop).
    pub fn unitary(&self, params: &[f64]) -> Matrix {
        let dim = 1usize << self.num_qubits;
        let mut m = Matrix::identity(dim);
        let cx = mat4_to_array(&Gate::CX.matrix());
        for op in self.ops() {
            match op {
                AnsatzOp::U3 {
                    qubit,
                    param_offset,
                } => {
                    let g = mat2_to_array(&u3_matrix(
                        params[param_offset],
                        params[param_offset + 1],
                        params[param_offset + 2],
                    ));
                    apply_1q_mat_left(&mut m, qubit, &g);
                }
                AnsatzOp::Cx { control, target } => {
                    apply_2q_mat_left(&mut m, control, target, &cx);
                }
            }
        }
        m
    }

    /// Extends a parent's optimal parameters with identity-initialized angles
    /// for one extra block — the warm start used when A* expands a node.
    pub fn warm_start_from(&self, parent_params: &[f64]) -> Vec<f64> {
        let mut params = parent_params.to_vec();
        params.resize(self.num_params(), 0.0);
        params
    }

    /// Inverse of [`Structure::to_circuit`]: recovers the structure and its
    /// parameter vector from an emitted ansatz circuit. The emitted layout is
    /// rigid — one U3 per qubit in index order, then `CX(c,t); U3(c); U3(t)`
    /// per placement, with parameters stored verbatim as U3 angles — so the
    /// round trip is bit-exact. Returns `None` for any circuit not produced
    /// by [`Structure::to_circuit`] (e.g. QFast output), which callers treat
    /// as "cannot warm-start from this one".
    pub fn from_circuit(circuit: &Circuit) -> Option<(Structure, Vec<f64>)> {
        let n = circuit.num_qubits();
        let insts: Vec<_> = circuit.iter().collect();
        if insts.len() < n || !(insts.len() - n).is_multiple_of(3) {
            return None;
        }
        fn u3_on(inst: &Instruction, expect: usize, params: &mut Vec<f64>) -> bool {
            match (&inst.gate, inst.qubits.as_slice()) {
                (Gate::U3(t, p, l), [q]) if *q == expect => {
                    params.extend_from_slice(&[*t, *p, *l]);
                    true
                }
                _ => false,
            }
        }
        let mut params = Vec::with_capacity(3 * insts.len());
        for (q, inst) in insts[..n].iter().enumerate() {
            if !u3_on(inst, q, &mut params) {
                return None;
            }
        }
        let mut placements = Vec::with_capacity((insts.len() - n) / 3);
        for block in insts[n..].chunks(3) {
            let (c, t) = match (&block[0].gate, block[0].qubits.as_slice()) {
                (Gate::CX, [c, t]) => (*c, *t),
                _ => return None,
            };
            if !u3_on(block[1], c, &mut params) || !u3_on(block[2], t, &mut params) {
                return None;
            }
            placements.push((c, t));
        }
        Some((
            Structure {
                num_qubits: n,
                placements,
            },
            params,
        ))
    }
}

/// Partial derivatives of the U3 matrix with respect to its three angles.
pub fn u3_partials(theta: f64, phi: f64, lambda: f64) -> [[Complex64; 4]; 3] {
    let (ct, st) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let ep = Complex64::cis(phi);
    let el = Complex64::cis(lambda);
    let epl = Complex64::cis(phi + lambda);
    let i = Complex64::I;
    // d/dtheta
    let dt = [
        Complex64::from_real(-st / 2.0),
        -el * (ct / 2.0),
        ep * (ct / 2.0),
        epl * (-st / 2.0),
    ];
    // d/dphi
    let dp = [Complex64::ZERO, Complex64::ZERO, i * ep * st, i * epl * ct];
    // d/dlambda
    let dl = [Complex64::ZERO, -i * el * st, Complex64::ZERO, i * epl * ct];
    [dt, dp, dl]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_metrics::hs_distance;

    #[test]
    fn root_structure_has_one_u3_per_qubit() {
        let s = Structure::root(3);
        assert_eq!(s.num_params(), 9);
        assert_eq!(s.ops().len(), 3);
        assert_eq!(s.cnots(), 0);
    }

    #[test]
    fn extended_structure_grows_params_by_six() {
        let s = Structure::root(3).extended(0, 1).extended(1, 2);
        assert_eq!(s.cnots(), 2);
        assert_eq!(s.num_params(), 9 + 12);
        assert_eq!(s.ops().len(), 3 + 2 * 3);
    }

    #[test]
    fn circuit_and_direct_unitary_agree() {
        let s = Structure::root(2).extended(0, 1).extended(1, 0);
        let params: Vec<f64> = (0..s.num_params())
            .map(|i| 0.1 * (i as f64 + 1.0))
            .collect();
        let via_circuit = s.to_circuit(&params).unitary();
        let direct = s.unitary(&params);
        assert!(hs_distance(&via_circuit, &direct) < 1e-12);
    }

    #[test]
    fn zero_params_give_cnot_skeleton() {
        // U3(0,0,0) = I, so the ansatz collapses to the bare CNOT sequence.
        let s = Structure::root(2).extended(0, 1);
        let params = vec![0.0; s.num_params()];
        let mut skeleton = Circuit::new(2);
        skeleton.cx(0, 1);
        assert!(hs_distance(&s.unitary(&params), &skeleton.unitary()) < 1e-12);
    }

    #[test]
    fn warm_start_preserves_parent_prefix() {
        let parent = Structure::root(2).extended(0, 1);
        let child = parent.extended(1, 0);
        let parent_params: Vec<f64> = (0..parent.num_params()).map(|i| i as f64).collect();
        let warm = child.warm_start_from(&parent_params);
        assert_eq!(warm.len(), child.num_params());
        assert_eq!(&warm[..parent_params.len()], parent_params.as_slice());
        assert!(warm[parent_params.len()..].iter().all(|&x| x == 0.0));
        // and the warm-start unitary equals the parent's optimum
        let pu = parent.unitary(&parent_params);
        let cu = child.unitary(&warm);
        // extra block with identity U3s adds one CNOT, so unitaries differ;
        // but removing it (zero params -> I U3s around a CX) is exactly CX * parent
        let mut cx = Circuit::new(2);
        cx.cx(1, 0);
        let expect = cx.unitary().matmul(&pu);
        assert!(hs_distance(&cu, &expect) < 1e-12);
    }

    #[test]
    fn from_circuit_round_trips_bit_exactly() {
        let s = Structure::root(3)
            .extended(0, 1)
            .extended(1, 2)
            .extended(0, 1);
        let params: Vec<f64> = (0..s.num_params())
            .map(|i| (i as f64 * 0.37).sin() * 2.2)
            .collect();
        let c = s.to_circuit(&params);
        let (s2, p2) = Structure::from_circuit(&c).expect("ansatz layout must parse");
        assert_eq!(s2.num_qubits, s.num_qubits);
        assert_eq!(s2.placements, s.placements);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&p2), bits(&params), "params must survive bit-exactly");
        // root-only structures parse too
        let root = Structure::root(2);
        let rp = vec![0.25; root.num_params()];
        let (r2, _) = Structure::from_circuit(&root.to_circuit(&rp)).unwrap();
        assert!(r2.placements.is_empty());
    }

    #[test]
    fn from_circuit_rejects_non_ansatz_layouts() {
        let mut other = Circuit::new(2);
        other.h(0).cx(0, 1);
        assert!(Structure::from_circuit(&other).is_none());
        // a truncated block (CX without its trailing U3 pair) is rejected
        let s = Structure::root(2).extended(0, 1);
        let full = s.to_circuit(&vec![0.1; s.num_params()]);
        let mut truncated = Circuit::new(2);
        for inst in full.iter().take(full.iter().count() - 1) {
            truncated.push(inst.gate.clone(), &inst.qubits);
        }
        assert!(Structure::from_circuit(&truncated).is_none());
        assert!(Structure::from_circuit(&Circuit::new(2)).is_none());
    }

    #[test]
    fn u3_partials_match_finite_differences() {
        let (t, p, l) = (0.7, -1.2, 2.1);
        let h = 1e-6;
        let partials = u3_partials(t, p, l);
        let base_args = [(t, p, l); 3];
        for (k, args) in base_args.iter().enumerate() {
            let (mut tp, mut pp, mut lp) = *args;
            let (mut tm, mut pm, mut lm) = *args;
            match k {
                0 => {
                    tp += h;
                    tm -= h;
                }
                1 => {
                    pp += h;
                    pm -= h;
                }
                _ => {
                    lp += h;
                    lm -= h;
                }
            }
            let up = u3_matrix(tp, pp, lp);
            let um = u3_matrix(tm, pm, lm);
            for (idx, &an) in partials[k].iter().enumerate() {
                let fd = (up.data()[idx] - um.data()[idx]) / (2.0 * h);
                assert!(
                    (fd - an).abs() < 1e-8,
                    "partial {k} entry {idx}: fd {fd:?} vs analytic {an:?}"
                );
            }
        }
    }
}
