//! QFactor-style tensor-sweep circuit optimization (the paper's Sec. 6.5
//! roadmap tool).
//!
//! Instead of gradient descent over gate *parameters*, QFactor sweeps over
//! gate *matrices*: holding every other gate fixed, the optimal replacement
//! for gate `G_k` maximizing `|Tr(V^dag U)|` is the unitary polar factor of
//! its environment tensor. Each sweep touches every gate once; distances are
//! monotone non-increasing, converging to a local optimum.

use qaprox_circuit::{Circuit, Gate, Instruction};
use qaprox_linalg::kernels::{
    apply_1q_mat_left, apply_1q_mat_right_dag, apply_2q_mat_left, apply_2q_mat_right_dag,
    mat2_to_array, mat4_to_array,
};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::polar::polar_unitary;
use qaprox_linalg::Complex64;

/// QFactor configuration.
#[derive(Debug, Clone)]
pub struct QFactorConfig {
    /// Maximum sweeps over the circuit.
    pub max_sweeps: usize,
    /// Stop when a full sweep improves the distance by less than this.
    pub improvement_tol: f64,
    /// Also update two-qubit gates (otherwise CX placements stay fixed and
    /// only one-qubit gates move — the mode used to polish QSearch output).
    pub optimize_two_qubit: bool,
}

impl Default for QFactorConfig {
    fn default() -> Self {
        QFactorConfig {
            max_sweeps: 100,
            improvement_tol: 1e-12,
            optimize_two_qubit: false,
        }
    }
}

/// Result of a QFactor run.
#[derive(Debug, Clone)]
pub struct QFactorResult {
    /// The optimized circuit (free gates become `Unitary1`/`Unitary2`).
    pub circuit: Circuit,
    /// Final HS distance to the target.
    pub distance: f64,
    /// Sweeps performed.
    pub sweeps: usize,
}

fn apply_gate_left(m: &mut Matrix, inst: &Instruction) {
    match *inst.qubits.as_slice() {
        [q] => apply_1q_mat_left(m, q, &mat2_to_array(&inst.gate.matrix())),
        [a, b] => apply_2q_mat_left(m, a, b, &mat4_to_array(&inst.gate.matrix())),
        _ => unreachable!(),
    }
}

/// `M <- M * G_embed` via the right-dag kernel with the daggered gate.
fn apply_gate_right(m: &mut Matrix, inst: &Instruction) {
    match *inst.qubits.as_slice() {
        [q] => {
            let gd = mat2_to_array(&inst.gate.matrix().adjoint());
            apply_1q_mat_right_dag(m, q, &gd);
        }
        [a, b] => {
            let gd = mat4_to_array(&inst.gate.matrix().adjoint());
            apply_2q_mat_right_dag(m, a, b, &gd);
        }
        _ => unreachable!(),
    }
}

/// Environment of gate `k`: `W[s', s] = sum_rest M[(s', rest), (s, rest)]`
/// where `M = A_{k-1} L_k` and `s` ranges over the gate's local indices.
fn environment(m: &Matrix, qubits: &[usize], n: usize) -> Matrix {
    let k = qubits.len();
    let small = 1usize << k;
    let rest_qubits: Vec<usize> = (0..n).filter(|q| !qubits.contains(q)).collect();
    let mut w = Matrix::zeros(small, small);
    for sp in 0..small {
        for s in 0..small {
            let mut acc = Complex64::ZERO;
            for r in 0..(1usize << rest_qubits.len()) {
                let mut i = 0usize;
                let mut j = 0usize;
                for (bit, &q) in qubits.iter().enumerate() {
                    // qubits[0] is the high bit of the gate's small index
                    let shift = k - 1 - bit;
                    i |= ((sp >> shift) & 1) << q;
                    j |= ((s >> shift) & 1) << q;
                }
                for (bit, &q) in rest_qubits.iter().enumerate() {
                    let b = (r >> bit) & 1;
                    i |= b << q;
                    j |= b << q;
                }
                acc += m[(i, j)];
            }
            w[(sp, s)] = acc;
        }
    }
    w
}

/// Optimizes the gates of `circuit` to approach `target`, keeping the gate
/// *placements* fixed. One-qubit gates always float; two-qubit gates float
/// only when `cfg.optimize_two_qubit` is set.
pub fn qfactor_optimize(circuit: &Circuit, target: &Matrix, cfg: &QFactorConfig) -> QFactorResult {
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    assert_eq!(target.rows(), dim, "target dimension mismatch");
    let target_dag = target.adjoint();

    let mut insts: Vec<Instruction> = circuit.instructions().to_vec();
    let m = insts.len();
    let dist_of = |insts: &[Instruction]| -> f64 {
        let mut u = Matrix::identity(dim);
        for inst in insts {
            apply_gate_left(&mut u, inst);
        }
        (1.0 - target_dag.matmul(&u).trace().abs() / dim as f64).max(0.0)
    };

    let mut best_dist = dist_of(&insts);
    let mut sweeps = 0usize;

    for _ in 0..cfg.max_sweeps {
        sweeps += 1;
        // prefix products a[k] = G_{k-1}..G_0
        let mut prefixes: Vec<Matrix> = Vec::with_capacity(m + 1);
        prefixes.push(Matrix::identity(dim));
        for inst in &insts {
            let mut next = prefixes.last().unwrap().clone();
            apply_gate_left(&mut next, inst);
            prefixes.push(next);
        }
        // suffix l[k] = V^dag G_{m-1}..G_{k+1}
        let mut suffix = target_dag.clone();
        for k in (0..m).rev() {
            let free = match insts[k].qubits.len() {
                1 => true,
                _ => cfg.optimize_two_qubit,
            };
            if free {
                // M = A_{k-1} * L_k ; T(g) = Tr(g_embed M) maximized at
                // g = polar_unitary(W^dag), W = env(M)
                let m_mat = prefixes[k].matmul(&suffix);
                let w = environment(&m_mat, &insts[k].qubits, n);
                if let Ok(g) = polar_unitary(&w.adjoint()) {
                    insts[k].gate = match insts[k].qubits.len() {
                        1 => Gate::Unitary1(Box::new(g)),
                        _ => Gate::Unitary2(Box::new(g)),
                    };
                }
            }
            apply_gate_right(&mut suffix, &insts[k]);
        }
        let new_dist = dist_of(&insts);
        let improvement = best_dist - new_dist;
        best_dist = new_dist.min(best_dist);
        if improvement < cfg.improvement_tol {
            break;
        }
    }

    let mut out = Circuit::new(n);
    for inst in insts {
        out.push(inst.gate, &inst.qubits);
    }
    QFactorResult {
        circuit: out,
        distance: best_dist,
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Structure;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;

    #[test]
    fn environment_trace_identity() {
        // Tr(g_embed M) computed via environment must match direct embedding.
        let mut rng = StdRng::seed_from_u64(2);
        let n = 3;
        let dim = 8;
        let mut m = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                m[(i, j)] = qaprox_linalg::c64((i * 3 + j) as f64 * 0.07, (j * 5) as f64 * 0.03);
            }
        }
        let g = haar_unitary(2, &mut rng);
        for q in 0..n {
            let w = environment(&m, &[q], n);
            let direct = {
                let emb = qaprox_linalg::kernels::embed_1q(n, q, &mat2_to_array(&g));
                emb.matmul(&m).trace()
            };
            let via_env: Complex64 = {
                let mut acc = Complex64::ZERO;
                for s in 0..2 {
                    for sp in 0..2 {
                        acc += g[(s, sp)] * w[(sp, s)];
                    }
                }
                acc
            };
            assert!(
                (direct - via_env).abs() < 1e-10,
                "qubit {q}: {direct:?} vs {via_env:?}"
            );
        }
    }

    #[test]
    fn environment_trace_identity_2q() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 3;
        let dim = 8;
        let mut m = Matrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                m[(i, j)] = qaprox_linalg::c64((i + 2 * j) as f64 * 0.05, (i * j) as f64 * 0.01);
            }
        }
        let g = haar_unitary(4, &mut rng);
        for (a, b) in [(0usize, 1usize), (2, 0), (1, 2)] {
            let w = environment(&m, &[a, b], n);
            let direct = {
                let emb = qaprox_linalg::kernels::embed_2q(n, a, b, &mat4_to_array(&g));
                emb.matmul(&m).trace()
            };
            let mut via_env = Complex64::ZERO;
            for s in 0..4 {
                for sp in 0..4 {
                    via_env += g[(s, sp)] * w[(sp, s)];
                }
            }
            assert!((direct - via_env).abs() < 1e-10, "pair ({a},{b})");
        }
    }

    #[test]
    fn polishes_perturbed_circuit_to_exact() {
        // Build a 2-CNOT ansatz circuit, perturb its 1q gates, and let
        // QFactor recover the target.
        let s = Structure::root(2).extended(0, 1).extended(1, 0);
        let true_params: Vec<f64> = (0..s.num_params())
            .map(|i| 0.31 * (i as f64 + 1.0))
            .collect();
        let target = s.unitary(&true_params);
        let perturbed: Vec<f64> = true_params.iter().map(|p| p + 0.15).collect();
        let start = s.to_circuit(&perturbed);
        let r = qfactor_optimize(&start, &target, &QFactorConfig::default());
        assert!(r.distance < 1e-9, "QFactor residual {}", r.distance);
    }

    #[test]
    fn distance_is_monotone_nonincreasing() {
        let mut rng = StdRng::seed_from_u64(7);
        let target = haar_unitary(8, &mut rng);
        let s = Structure::root(3)
            .extended(0, 1)
            .extended(1, 2)
            .extended(0, 1);
        let start = s.to_circuit(&vec![0.3; s.num_params()]);
        let d0 = {
            let dim = 8.0;
            (1.0 - target.adjoint().matmul(&start.unitary()).trace().abs() / dim).max(0.0)
        };
        let r = qfactor_optimize(
            &start,
            &target,
            &QFactorConfig {
                max_sweeps: 5,
                ..Default::default()
            },
        );
        assert!(
            r.distance <= d0 + 1e-12,
            "{} should not exceed {d0}",
            r.distance
        );
    }

    #[test]
    fn two_qubit_mode_reaches_lower_distance() {
        let mut rng = StdRng::seed_from_u64(8);
        let target = haar_unitary(4, &mut rng);
        let s = Structure::root(2).extended(0, 1);
        let start = s.to_circuit(&vec![0.2; s.num_params()]);
        let fixed = qfactor_optimize(&start, &target, &QFactorConfig::default());
        let free = qfactor_optimize(
            &start,
            &target,
            &QFactorConfig {
                optimize_two_qubit: true,
                ..Default::default()
            },
        );
        // with the CX replaced by a free SU(4) block, one block is universal
        assert!(
            free.distance < 1e-8,
            "free-block distance {}",
            free.distance
        );
        assert!(free.distance <= fixed.distance + 1e-12);
    }
}
