//! Property-style tests for synthesis: structures, instantiation, and the
//! approximate-circuit bookkeeping, driven by the in-repo seeded RNG.

use qaprox_circuit::Circuit;
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_metrics::hs_distance;
use qaprox_opt::gradient::central_difference;
use qaprox_synth::{
    best_per_cnot_count, instantiate, select_by_threshold, ApproxCircuit, HsObjective,
    InstantiateConfig, Structure,
};

const CASES: usize = 24;

fn structure_2q(blocks: usize) -> Structure {
    let mut s = Structure::root(2);
    for i in 0..blocks {
        let (c, t) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
        s = s.extended(c, t);
    }
    s
}

fn vec_in(lo: f64, hi: f64, len: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn ansatz_unitary_is_unitary() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..CASES {
        let s = structure_2q(2);
        assert_eq!(s.num_params(), 18);
        let params = vec_in(-3.0, 3.0, 18, &mut rng);
        let u = s.unitary(&params);
        assert!(u.is_unitary(1e-10));
    }
}

#[test]
fn objective_is_in_unit_interval() {
    for seed in 0..CASES as u64 {
        let s = structure_2q(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(4, &mut rng);
        let params = vec_in(-3.0, 3.0, 18, &mut rng);
        let obj = HsObjective::new(&s, &target);
        let d = obj.distance(&params);
        assert!((0.0..=1.0 + 1e-12).contains(&d));
    }
}

#[test]
fn analytic_gradient_matches_numeric() {
    use qaprox_opt::GradObjective;
    for seed in 0..CASES as u64 {
        let s = structure_2q(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(4, &mut rng);
        let params = vec_in(-2.0, 2.0, 12, &mut rng);
        let obj = HsObjective::new(&s, &target);
        let (_, analytic) = obj.eval(&params);
        let numeric = central_difference(&|p: &[f64]| obj.distance(p), &params, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            assert!((a - n).abs() < 1e-5, "analytic {a} vs numeric {n}");
        }
    }
}

#[test]
fn instantiation_never_exceeds_warm_start_value() {
    for seed in 0..CASES as u64 {
        let s = structure_2q(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(4, &mut rng);
        let warm = vec![0.5; s.num_params()];
        let obj = HsObjective::new(&s, &target);
        let f0 = obj.distance(&warm);
        let r = instantiate(
            &s,
            &target,
            &warm,
            &InstantiateConfig {
                starts: 1,
                ..Default::default()
            },
        );
        assert!(r.distance <= f0 + 1e-12);
        // recorded distance must match a recomputation
        let circuit = s.to_circuit(&r.params);
        assert!((hs_distance(&circuit.unitary(), &target) - r.distance).abs() < 1e-7);
    }
}

#[test]
fn selection_respects_threshold() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..40);
        let dists = vec_in(0.0, 1.0, len, &mut rng);
        let thr = rng.gen_range(0.0..1.0);
        let pop: Vec<ApproxCircuit> = dists
            .iter()
            .map(|&d| ApproxCircuit::new(Circuit::new(2), d))
            .collect();
        let sel = select_by_threshold(&pop, thr);
        assert!(sel.iter().all(|c| c.hs_distance <= thr));
        let expect = dists.iter().filter(|&&d| d <= thr).count();
        assert_eq!(sel.len(), expect);
    }
}

#[test]
fn best_per_cnot_is_a_lower_envelope() {
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..CASES {
        let len = rng.gen_range(1usize..40);
        let entries: Vec<(usize, f64)> = (0..len)
            .map(|_| (rng.gen_range(0usize..6), rng.gen_range(0.0..1.0)))
            .collect();
        let pop: Vec<ApproxCircuit> = entries
            .iter()
            .map(|&(cnots, d)| {
                let mut c = Circuit::new(2);
                for _ in 0..cnots {
                    c.cx(0, 1);
                }
                ApproxCircuit::new(c, d)
            })
            .collect();
        let frontier = best_per_cnot_count(&pop);
        // one entry per distinct depth, each the minimum at that depth
        for f in &frontier {
            let min_at_depth = pop
                .iter()
                .filter(|c| c.cnots == f.cnots)
                .map(|c| c.hs_distance)
                .fold(f64::INFINITY, f64::min);
            assert!((f.hs_distance - min_at_depth).abs() < 1e-12);
        }
        // frontier depths are strictly increasing
        for w in frontier.windows(2) {
            assert!(w[0].cnots < w[1].cnots);
        }
    }
}

#[test]
fn warm_start_extension_is_consistent() {
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..CASES {
        let params = vec_in(-2.0, 2.0, 12, &mut rng);
        let parent = structure_2q(1);
        let child = parent.extended(1, 0);
        let warm = child.warm_start_from(&params);
        assert_eq!(warm.len(), child.num_params());
        // the warm start evaluates to CX(1,0) * parent (identity U3s on the new block)
        let pu = parent.unitary(&params);
        let mut cx = Circuit::new(2);
        cx.cx(1, 0);
        let expect = cx.unitary().matmul(&pu);
        assert!(hs_distance(&child.unitary(&warm), &expect) < 1e-10);
    }
}
