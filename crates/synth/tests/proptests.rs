//! Property-based tests for synthesis: structures, instantiation, and the
//! approximate-circuit bookkeeping.

use proptest::prelude::*;
use qaprox_circuit::Circuit;
use qaprox_linalg::random::haar_unitary;
use qaprox_metrics::hs_distance;
use qaprox_opt::gradient::central_difference;
use qaprox_synth::{
    best_per_cnot_count, instantiate, select_by_threshold, ApproxCircuit, HsObjective,
    InstantiateConfig, Structure,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn structure_2q(blocks: usize) -> Structure {
    let mut s = Structure::root(2);
    for i in 0..blocks {
        let (c, t) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
        s = s.extended(c, t);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ansatz_unitary_is_unitary(params in proptest::collection::vec(-3.0f64..3.0, 21)) {
        let s = structure_2q(2);
        prop_assert_eq!(s.num_params(), 18);
        let u = s.unitary(&params[..18]);
        prop_assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn objective_is_in_unit_interval(params in proptest::collection::vec(-3.0f64..3.0, 18),
                                     seed in 0u64..200) {
        let s = structure_2q(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(4, &mut rng);
        let obj = HsObjective::new(&s, &target);
        let d = obj.distance(&params);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
    }

    #[test]
    fn analytic_gradient_matches_numeric(params in proptest::collection::vec(-2.0f64..2.0, 12),
                                         seed in 0u64..100) {
        use qaprox_opt::GradObjective;
        let s = structure_2q(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(4, &mut rng);
        let obj = HsObjective::new(&s, &target);
        let (_, analytic) = obj.eval(&params);
        let numeric = central_difference(&|p: &[f64]| obj.distance(p), &params, 1e-6);
        for (a, n) in analytic.iter().zip(&numeric) {
            prop_assert!((a - n).abs() < 1e-5, "analytic {a} vs numeric {n}");
        }
    }

    #[test]
    fn instantiation_never_exceeds_warm_start_value(seed in 0u64..100) {
        let s = structure_2q(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = haar_unitary(4, &mut rng);
        let warm = vec![0.5; s.num_params()];
        let obj = HsObjective::new(&s, &target);
        let f0 = obj.distance(&warm);
        let r = instantiate(&s, &target, &warm, &InstantiateConfig { starts: 1, ..Default::default() });
        prop_assert!(r.distance <= f0 + 1e-12);
        // recorded distance must match a recomputation
        let circuit = s.to_circuit(&r.params);
        prop_assert!((hs_distance(&circuit.unitary(), &target) - r.distance).abs() < 1e-7);
    }

    #[test]
    fn selection_respects_threshold(dists in proptest::collection::vec(0.0f64..1.0, 1..40),
                                    thr in 0.0f64..1.0) {
        let pop: Vec<ApproxCircuit> = dists
            .iter()
            .map(|&d| ApproxCircuit::new(Circuit::new(2), d))
            .collect();
        let sel = select_by_threshold(&pop, thr);
        prop_assert!(sel.iter().all(|c| c.hs_distance <= thr));
        let expect = dists.iter().filter(|&&d| d <= thr).count();
        prop_assert_eq!(sel.len(), expect);
    }

    #[test]
    fn best_per_cnot_is_a_lower_envelope(entries in proptest::collection::vec((0usize..6, 0.0f64..1.0), 1..40)) {
        let pop: Vec<ApproxCircuit> = entries
            .iter()
            .map(|&(cnots, d)| {
                let mut c = Circuit::new(2);
                for _ in 0..cnots {
                    c.cx(0, 1);
                }
                ApproxCircuit::new(c, d)
            })
            .collect();
        let frontier = best_per_cnot_count(&pop);
        // one entry per distinct depth, each the minimum at that depth
        for f in &frontier {
            let min_at_depth = pop
                .iter()
                .filter(|c| c.cnots == f.cnots)
                .map(|c| c.hs_distance)
                .fold(f64::INFINITY, f64::min);
            prop_assert!((f.hs_distance - min_at_depth).abs() < 1e-12);
        }
        // frontier depths are strictly increasing
        for w in frontier.windows(2) {
            prop_assert!(w[0].cnots < w[1].cnots);
        }
    }

    #[test]
    fn warm_start_extension_is_consistent(params in proptest::collection::vec(-2.0f64..2.0, 12)) {
        let parent = structure_2q(1);
        let child = parent.extended(1, 0);
        let warm = child.warm_start_from(&params);
        prop_assert_eq!(warm.len(), child.num_params());
        // the warm start evaluates to CX(1,0) * parent (identity U3s on the new block)
        let pu = parent.unitary(&params);
        let mut cx = Circuit::new(2);
        cx.cx(1, 0);
        let expect = cx.unitary().matmul(&pu);
        prop_assert!(hs_distance(&child.unitary(&warm), &expect) < 1e-10);
    }
}
