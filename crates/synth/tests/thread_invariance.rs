//! Thread-count invariance of the synthesis engines.
//!
//! The parallel search waves (qsearch) and block trials (qfast) must be
//! *bit-for-bit deterministic* regardless of worker-thread count: serve's
//! resume-by-checkpoint keys hash the intermediate stream, so a thread-count
//! change on a redeployed host must not invalidate stored artifacts. Seeds
//! derive from structural positions (depth, node rank, placement index),
//! never from thread identity, and wave merges happen in task order — so
//! 1, 2, and 8 workers must produce identical intermediate streams
//! (fingerprints + distance bits) and the identical best circuit.

use qaprox_device::Topology;
use qaprox_linalg::hashing::Hash128;
use qaprox_linalg::parallel::set_max_threads;
use qaprox_linalg::random::{haar_unitary, SplitMix64};
use qaprox_synth::{qfast, qsearch, QFastConfig, QSearchConfig, SynthesisOutput};

/// Exact fingerprint of a full synthesis output: every intermediate's
/// circuit (gates + parameter bits via the `Debug` round-trip repr) and
/// distance bits, in stream order, plus the best circuit and counters.
fn fingerprint(out: &SynthesisOutput) -> (u64, u64) {
    let mut h = Hash128::new();
    h.update_u64(out.nodes_evaluated as u64);
    h.update_u64(out.stats.memo_hits as u64);
    h.update_u64(out.stats.memo_misses as u64);
    h.update_f64(out.best.hs_distance);
    h.update(format!("{:?}", out.best.circuit).as_bytes());
    for ap in &out.intermediates {
        h.update_u64(ap.cnots as u64);
        h.update_f64(ap.hs_distance);
        h.update(format!("{:?}", ap.circuit).as_bytes());
    }
    h.finish()
}

/// One test function (not several) so `set_max_threads`, a process-global
/// override, is never raced by a concurrently running sibling test.
#[test]
fn streams_are_identical_at_1_2_and_8_threads() {
    let cases: Vec<(usize, u64)> = vec![(2, 11), (2, 12), (3, 21)];
    for &(n, seed) in &cases {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let target = haar_unitary(1 << n, &mut rng);
        let topo = Topology::linear(n);

        let qs_cfg = QSearchConfig {
            max_nodes: if n == 2 { 40 } else { 25 },
            ..Default::default()
        };
        let qf_cfg = QFastConfig {
            max_blocks: 3,
            ..Default::default()
        };

        let mut qs_prints = Vec::new();
        let mut qf_prints = Vec::new();
        for threads in [1usize, 2, 8] {
            set_max_threads(threads);
            qs_prints.push((threads, fingerprint(&qsearch(&target, &topo, &qs_cfg))));
            qf_prints.push((threads, fingerprint(&qfast(&target, &topo, &qf_cfg))));
        }
        set_max_threads(0);

        for prints in [&qs_prints, &qf_prints] {
            let (_, base) = prints[0];
            for &(threads, fp) in &prints[1..] {
                assert_eq!(
                    fp, base,
                    "stream changed between 1 and {threads} threads \
                     (n={n}, seed={seed})"
                );
            }
        }
    }
}
