//! Small statistics helpers: correlation coefficients used by the
//! metric-correlation study (the paper's Sec. 6.5 asks for "a thorough
//! analysis of the numerical value of different metrics").

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample has zero variance.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sample length mismatch");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Midrank assignment for Spearman correlation (ties share their average
/// rank).
fn ranks(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && x[order[j + 1]] == x[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation (Pearson on midranks).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "sample length mismatch");
    pearson(&ranks(x), &ranks(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_spearman_one_pearson_less() {
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        let p = pearson(&x, &y);
        assert!(p > 0.5 && p < 1.0 - 1e-9, "pearson {p}");
    }

    #[test]
    fn zero_variance_is_zero_correlation() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn ties_share_midranks() {
        let r = ranks(&[2.0, 1.0, 2.0, 3.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5, 4.0]);
    }

    #[test]
    fn independent_samples_have_small_correlation() {
        // deterministic pseudo-random pair with no real relationship
        let x: Vec<f64> = (0..200).map(|i| ((i * 37 % 101) as f64).sin()).collect();
        let y: Vec<f64> = (0..200).map(|i| ((i * 53 % 97) as f64).cos()).collect();
        assert!(pearson(&x, &y).abs() < 0.2);
        assert!(spearman(&x, &y).abs() < 0.2);
    }
}
