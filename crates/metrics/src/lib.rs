//! # qaprox-metrics
//!
//! Process- and output-level quality metrics:
//!
//! * [`distance`] — Hilbert-Schmidt distances between unitaries (the
//!   synthesis objective and the paper's approximate-circuit threshold);
//! * [`divergence`] — Jensen-Shannon distance (SciPy convention — random
//!   noise scores 0.465 on the Toffoli battery, as in the paper), KL, TVD;
//! * [`observables`] — magnetization and success probability, the y-axes of
//!   the TFIM and Grover figures.

#![warn(missing_docs)]

pub mod distance;
pub mod divergence;
pub mod observables;
pub mod stats;

pub use distance::{average_gate_fidelity, frobenius_distance, hs_distance, hs_distance_sqrt};
pub use divergence::{
    cross_entropy, entropy, hellinger, js_distance, js_divergence, kl_divergence, total_variation,
};
pub use observables::{magnetization, probabilities, success_probability, z_expectation};
pub use stats::{pearson, spearman};
