//! Process distances between unitaries.
//!
//! Synthesis quality is judged by the Hilbert-Schmidt distance between the
//! candidate and target unitaries — global-phase invariant, cheap, and
//! exactly what QSearch/QFast minimize. The paper constrains its approximate
//! circuit populations by an HS threshold (never below 0.1).

use qaprox_linalg::Matrix;

/// Hilbert-Schmidt distance in BQSKit's convention:
/// `1 - |Tr(A^dagger B)| / d`, in `[0, 1]`, zero iff `A = e^{i phi} B`.
pub fn hs_distance(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows(), "hs_distance dimension mismatch");
    assert!(
        a.is_square() && b.is_square(),
        "hs_distance expects square matrices"
    );
    let d = a.rows() as f64;
    (1.0 - a.hs_inner(b).abs() / d).max(0.0)
}

/// The "root" variant `sqrt(1 - |Tr|^2 / d^2)`, which upper-bounds the
/// average-case output error more tightly; some synthesis papers report this.
pub fn hs_distance_sqrt(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!(a.rows(), b.rows(), "hs_distance dimension mismatch");
    let d = a.rows() as f64;
    let t = a.hs_inner(b).abs() / d;
    (1.0 - (t * t).min(1.0)).max(0.0).sqrt()
}

/// Phase-aligned Frobenius distance: `min_phi ||A - e^{i phi} B||_F`.
pub fn frobenius_distance(a: &Matrix, b: &Matrix) -> f64 {
    // ||A - e^{i phi} B||^2 = ||A||^2 + ||B||^2 - 2 Re(e^{-i phi} Tr(B^dag A));
    // minimized at phi = arg Tr(B^dag A), giving -2 |Tr(B^dag A)|.
    let ip = b.hs_inner(a).abs();
    let v = a.fro_norm().powi(2) + b.fro_norm().powi(2) - 2.0 * ip;
    v.max(0.0).sqrt()
}

/// Average gate fidelity of `a` against `b`:
/// `(|Tr(A^dag B)|^2 / d + 1) / (d + 1)`.
pub fn average_gate_fidelity(a: &Matrix, b: &Matrix) -> f64 {
    let d = a.rows() as f64;
    let t = a.hs_inner(b).abs();
    (t * t / d + 1.0) / (d + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::matrix::{pauli_x, pauli_z};
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;
    use qaprox_linalg::Complex64;

    #[test]
    fn identical_unitaries_have_zero_distance() {
        let mut rng = StdRng::seed_from_u64(1);
        let u = haar_unitary(8, &mut rng);
        assert!(hs_distance(&u, &u) < 1e-12);
        assert!(hs_distance_sqrt(&u, &u) < 1e-6);
        assert!(frobenius_distance(&u, &u) < 1e-6);
    }

    #[test]
    fn global_phase_is_ignored() {
        let mut rng = StdRng::seed_from_u64(2);
        let u = haar_unitary(4, &mut rng);
        let v = u.scale(Complex64::cis(1.234));
        assert!(hs_distance(&u, &v) < 1e-12);
        assert!(frobenius_distance(&u, &v) < 1e-6);
    }

    #[test]
    fn orthogonal_paulis_are_maximally_distant() {
        // Tr(X^dag Z) = 0 -> hs distance 1
        assert!((hs_distance(&pauli_x(), &pauli_z()) - 1.0).abs() < 1e-13);
        assert!((hs_distance_sqrt(&pauli_x(), &pauli_z()) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn distances_bounded_and_ordered() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = haar_unitary(4, &mut rng);
            let b = haar_unitary(4, &mut rng);
            let d = hs_distance(&a, &b);
            let ds = hs_distance_sqrt(&a, &b);
            assert!((0.0..=1.0).contains(&d));
            assert!((0.0..=1.0).contains(&ds));
            // sqrt variant dominates the linear one: 1-t <= sqrt(1-t^2)
            assert!(ds + 1e-12 >= d);
        }
    }

    #[test]
    fn fidelity_of_identity_is_one() {
        let i = qaprox_linalg::Matrix::identity(4);
        assert!((average_gate_fidelity(&i, &i) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn fidelity_and_distance_move_oppositely() {
        let mut rng = StdRng::seed_from_u64(4);
        let u = haar_unitary(4, &mut rng);
        let near = u.scale(Complex64::cis(0.0)); // identical
        let far = haar_unitary(4, &mut rng);
        assert!(average_gate_fidelity(&u, &near) > average_gate_fidelity(&u, &far));
        assert!(hs_distance(&u, &near) < hs_distance(&u, &far));
    }

    #[test]
    fn symmetric_in_arguments() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = haar_unitary(4, &mut rng);
        let b = haar_unitary(4, &mut rng);
        assert!((hs_distance(&a, &b) - hs_distance(&b, &a)).abs() < 1e-13);
        assert!((frobenius_distance(&a, &b) - frobenius_distance(&b, &a)).abs() < 1e-10);
    }
}
