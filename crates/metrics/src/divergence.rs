//! Output-distribution divergences.
//!
//! The paper scores Toffoli circuits by Jensen-Shannon *distance* in SciPy's
//! convention — `sqrt(JSD)` with natural logarithms — which is why "random
//! noise" lands at the magic value 0.465 against its truth-table target.
//! Total variation distance and Kullback-Leibler divergence round out the
//! metric set named in the paper's roadmap (Sec. 6.5).

/// Validates and lightly normalizes a probability vector.
fn checked(p: &[f64]) -> Vec<f64> {
    assert!(!p.is_empty(), "empty distribution");
    let mut sum = 0.0;
    for &x in p {
        assert!(x >= -1e-12, "negative probability {x}");
        sum += x.max(0.0);
    }
    assert!(sum > 0.0, "zero-mass distribution");
    p.iter().map(|&x| x.max(0.0) / sum).collect()
}

/// Kullback-Leibler divergence `KL(P || Q)` in nats.
/// Returns `f64::INFINITY` when `P` has mass where `Q` has none.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = checked(p);
    let q = checked(q);
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(&q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        acc += pi * (pi / qi).ln();
    }
    acc.max(0.0)
}

/// Jensen-Shannon divergence in nats: `JSD = (KL(P||M) + KL(Q||M)) / 2`
/// with `M = (P + Q)/2`. Bounded by `ln 2`.
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = checked(p);
    let q = checked(q);
    let m: Vec<f64> = p.iter().zip(&q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * (kl_divergence(&p, &m) + kl_divergence(&q, &m))
}

/// Jensen-Shannon distance, SciPy convention: `sqrt(JSD_nats)`.
/// This is the metric on the y-axis of the paper's Toffoli figures.
pub fn js_distance(p: &[f64], q: &[f64]) -> f64 {
    js_divergence(p, q).max(0.0).sqrt()
}

/// Total variation distance `0.5 * sum |p_i - q_i|`, in `[0, 1]`.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = checked(p);
    let q = checked(q);
    0.5 * p.iter().zip(&q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// Hellinger distance `sqrt(1 - sum sqrt(p_i q_i))`, in `[0, 1]`.
pub fn hellinger(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = checked(p);
    let q = checked(q);
    let bc: f64 = p.iter().zip(&q).map(|(&a, &b)| (a * b).sqrt()).sum();
    (1.0 - bc.min(1.0)).max(0.0).sqrt()
}

/// Cross entropy `-sum p_i ln q_i` in nats (infinite when `q` lacks support
/// where `p` has mass).
pub fn cross_entropy(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let p = checked(p);
    let q = checked(q);
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(&q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return f64::INFINITY;
        }
        acc -= pi * qi.ln();
    }
    acc
}

/// Shannon entropy in nats.
pub fn entropy(p: &[f64]) -> f64 {
    let p = checked(p);
    -p.iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x * x.ln())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<f64> {
        vec![1.0 / n as f64; n]
    }

    fn delta(n: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        v[i] = 1.0;
        v
    }

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let p = uniform(8);
        assert!(kl_divergence(&p, &p) < 1e-14);
        assert!(js_divergence(&p, &p) < 1e-14);
        assert!(js_distance(&p, &p) < 1e-7);
        assert!(total_variation(&p, &p) < 1e-14);
    }

    #[test]
    fn kl_infinite_on_unsupported_mass() {
        let p = delta(4, 0);
        let q = delta(4, 1);
        assert!(kl_divergence(&p, &q).is_infinite());
        // JS stays finite even then
        assert!(js_divergence(&p, &q).is_finite());
    }

    #[test]
    fn js_divergence_bounded_by_ln2() {
        let p = delta(4, 0);
        let q = delta(4, 1);
        let jsd = js_divergence(&p, &q);
        assert!(
            (jsd - std::f64::consts::LN_2).abs() < 1e-12,
            "disjoint support -> ln 2"
        );
    }

    #[test]
    fn paper_random_noise_value_is_0_465() {
        // Uniform over 32 outcomes vs uniform over the 16 "correct" outcomes:
        // the paper reports JS distance 0.465 for random noise on the 5-qubit
        // Toffoli battery. Same for 16 vs 8 (4-qubit case).
        for (total, correct) in [(32usize, 16usize), (16, 8)] {
            let q = uniform(total);
            let mut p = vec![0.0; total];
            for x in p.iter_mut().take(correct) {
                *x = 1.0 / correct as f64;
            }
            let js = js_distance(&p, &q);
            assert!(
                (js - 0.465).abs() < 0.002,
                "random-noise JS for {correct}/{total}: got {js}"
            );
        }
    }

    #[test]
    fn tvd_extremes() {
        assert!((total_variation(&delta(4, 0), &delta(4, 3)) - 1.0).abs() < 1e-14);
        assert!((total_variation(&uniform(4), &uniform(4))).abs() < 1e-14);
    }

    #[test]
    fn symmetry_of_js_and_tvd() {
        let p = vec![0.7, 0.2, 0.1, 0.0];
        let q = vec![0.25, 0.25, 0.25, 0.25];
        assert!((js_distance(&p, &q) - js_distance(&q, &p)).abs() < 1e-13);
        assert!((total_variation(&p, &q) - total_variation(&q, &p)).abs() < 1e-13);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        assert!((entropy(&uniform(8)) - (8f64).ln()).abs() < 1e-12);
        assert!(entropy(&delta(8, 2)).abs() < 1e-12);
    }

    #[test]
    fn hellinger_bounds_and_relations() {
        let p = delta(4, 0);
        let q = delta(4, 1);
        assert!(
            (hellinger(&p, &q) - 1.0).abs() < 1e-12,
            "disjoint support -> 1"
        );
        assert!(hellinger(&p, &p) < 1e-9);
        // Hellinger^2 <= TVD <= sqrt(2) * Hellinger
        let a = vec![0.6, 0.2, 0.1, 0.1];
        let b = vec![0.25, 0.25, 0.25, 0.25];
        let h = hellinger(&a, &b);
        let t = total_variation(&a, &b);
        assert!(h * h <= t + 1e-12);
        assert!(t <= std::f64::consts::SQRT_2 * h + 1e-12);
    }

    #[test]
    fn cross_entropy_decomposes_into_entropy_plus_kl() {
        let p = vec![0.5, 0.3, 0.2, 0.0];
        let q = vec![0.25, 0.25, 0.25, 0.25];
        let ce = cross_entropy(&p, &q);
        let expect = entropy(&p) + kl_divergence(&p, &q);
        assert!((ce - expect).abs() < 1e-12);
        assert!(cross_entropy(&p, &delta(4, 3)).is_infinite());
    }

    #[test]
    fn normalization_is_applied() {
        // unnormalized counts should behave like their normalization
        let counts = vec![30.0, 10.0, 0.0, 0.0];
        let probs = vec![0.75, 0.25, 0.0, 0.0];
        let q = uniform(4);
        assert!((js_distance(&counts, &q) - js_distance(&probs, &q)).abs() < 1e-12);
    }

    #[test]
    fn js_distance_is_metric_like_triangle_spot_check() {
        let p = vec![0.5, 0.5, 0.0, 0.0];
        let q = vec![0.0, 0.5, 0.5, 0.0];
        let r = vec![0.0, 0.0, 0.5, 0.5];
        let pq = js_distance(&p, &q);
        let qr = js_distance(&q, &r);
        let pr = js_distance(&p, &r);
        assert!(pr <= pq + qr + 1e-12, "triangle inequality violated");
    }
}
