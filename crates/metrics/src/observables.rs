//! Measurement-basis observables.
//!
//! The TFIM figures plot average magnetization `m = (1/n) sum_i <Z_i>`
//! computed from the computational-basis output distribution; Grover's
//! figures plot the probability of the marked bitstring.

/// Expectation of `Z` on qubit `q` from a basis-state distribution
/// (`probs[b]` = probability of bitstring `b`, qubit 0 = LSB).
pub fn z_expectation(probs: &[f64], q: usize) -> f64 {
    assert!(
        probs.len().is_power_of_two(),
        "distribution length must be 2^n"
    );
    assert!((1usize << q) < probs.len(), "qubit out of range");
    let mut acc = 0.0;
    for (b, &p) in probs.iter().enumerate() {
        if (b >> q) & 1 == 0 {
            acc += p;
        } else {
            acc -= p;
        }
    }
    acc
}

/// Average magnetization over all qubits: `(1/n) sum_i <Z_i>`, in `[-1, 1]`.
pub fn magnetization(probs: &[f64]) -> f64 {
    let n = probs.len().trailing_zeros() as usize;
    assert!(n > 0, "need at least one qubit");
    (0..n).map(|q| z_expectation(probs, q)).sum::<f64>() / n as f64
}

/// Probability of measuring exactly the bitstring `target`.
pub fn success_probability(probs: &[f64], target: usize) -> f64 {
    assert!(target < probs.len(), "target outcome out of range");
    probs[target]
}

/// Converts a statevector to its measurement distribution.
pub fn probabilities(state: &[qaprox_linalg::Complex64]) -> Vec<f64> {
    state.iter().map(|z| z.norm_sqr()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::{c64, Complex64};

    #[test]
    fn all_zeros_state_has_magnetization_one() {
        let mut p = vec![0.0; 8];
        p[0] = 1.0;
        assert!((magnetization(&p) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn all_ones_state_has_magnetization_minus_one() {
        let mut p = vec![0.0; 8];
        p[7] = 1.0;
        assert!((magnetization(&p) + 1.0).abs() < 1e-14);
    }

    #[test]
    fn uniform_distribution_has_zero_magnetization() {
        let p = vec![1.0 / 8.0; 8];
        assert!(magnetization(&p).abs() < 1e-14);
    }

    #[test]
    fn single_flipped_qubit() {
        // |010>: qubit 1 down, others up -> m = (1 - 1 + 1)/3 = 1/3
        let mut p = vec![0.0; 8];
        p[0b010] = 1.0;
        assert!((magnetization(&p) - 1.0 / 3.0).abs() < 1e-14);
        assert!((z_expectation(&p, 1) + 1.0).abs() < 1e-14);
        assert!((z_expectation(&p, 0) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn probabilities_from_statevector() {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let state = vec![c64(s, 0.0), Complex64::ZERO, Complex64::ZERO, c64(0.0, s)];
        let p = probabilities(&state);
        assert!((p[0] - 0.5).abs() < 1e-14);
        assert!((p[3] - 0.5).abs() < 1e-14);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn success_probability_reads_target() {
        let p = vec![0.1, 0.2, 0.3, 0.4];
        assert_eq!(success_probability(&p, 3), 0.4);
    }
}
