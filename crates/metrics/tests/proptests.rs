//! Property-style tests for the metric suite, driven by the in-repo seeded
//! RNG.

use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_metrics::*;

const CASES: usize = 48;

fn distribution(n: usize, rng: &mut SplitMix64) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let sum: f64 = v.iter().sum();
        if sum >= 1e-6 {
            return v.into_iter().map(|x| x / sum).collect();
        }
    }
}

#[test]
fn js_distance_is_a_bounded_metric() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let p = distribution(8, &mut rng);
        let q = distribution(8, &mut rng);
        let d = js_distance(&p, &q);
        assert!((0.0..=(std::f64::consts::LN_2.sqrt() + 1e-9)).contains(&d));
        // symmetry
        assert!((d - js_distance(&q, &p)).abs() < 1e-12);
        // identity of indiscernibles (one direction)
        assert!(js_distance(&p, &p) < 1e-7);
    }
}

#[test]
fn js_triangle_inequality() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let p = distribution(6, &mut rng);
        let q = distribution(6, &mut rng);
        let r = distribution(6, &mut rng);
        let pq = js_distance(&p, &q);
        let qr = js_distance(&q, &r);
        let pr = js_distance(&p, &r);
        assert!(pr <= pq + qr + 1e-9);
    }
}

#[test]
fn tvd_bounds_and_symmetry() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let p = distribution(8, &mut rng);
        let q = distribution(8, &mut rng);
        let d = total_variation(&p, &q);
        assert!((0.0..=1.0 + 1e-12).contains(&d));
        assert!((d - total_variation(&q, &p)).abs() < 1e-12);
    }
}

#[test]
fn pinsker_inequality() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let p = distribution(8, &mut rng);
        let q = distribution(8, &mut rng);
        // KL(P||Q) >= 2 * TVD^2 (in nats) whenever KL is finite
        let kl = kl_divergence(&p, &q);
        if kl.is_finite() {
            let tvd = total_variation(&p, &q);
            assert!(kl + 1e-9 >= 2.0 * tvd * tvd);
        }
    }
}

#[test]
fn kl_nonnegative_and_zero_iff_equal() {
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..CASES {
        let p = distribution(8, &mut rng);
        assert!(kl_divergence(&p, &p).abs() < 1e-10);
    }
}

#[test]
fn entropy_bounds() {
    let mut rng = SplitMix64::seed_from_u64(6);
    for _ in 0..CASES {
        let p = distribution(16, &mut rng);
        let h = entropy(&p);
        assert!(h >= -1e-12);
        assert!(h <= (16f64).ln() + 1e-9);
    }
}

#[test]
fn magnetization_bounds() {
    let mut rng = SplitMix64::seed_from_u64(7);
    for _ in 0..CASES {
        let p = distribution(8, &mut rng);
        let m = magnetization(&p);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&m));
    }
}

#[test]
fn magnetization_is_mean_of_z_expectations() {
    let mut rng = SplitMix64::seed_from_u64(8);
    for _ in 0..CASES {
        let p = distribution(8, &mut rng);
        let m = magnetization(&p);
        let mean = (0..3).map(|q| z_expectation(&p, q)).sum::<f64>() / 3.0;
        assert!((m - mean).abs() < 1e-12);
    }
}

#[test]
fn bit_flip_symmetry_of_magnetization() {
    let mut rng = SplitMix64::seed_from_u64(9);
    for _ in 0..CASES {
        // flipping every bit negates the magnetization
        let p = distribution(8, &mut rng);
        let flipped: Vec<f64> = (0..8).map(|i| p[i ^ 0b111]).collect();
        assert!((magnetization(&p) + magnetization(&flipped)).abs() < 1e-12);
    }
}

mod hs_properties {
    use super::*;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::random::SplitMix64 as StdRng;
    use qaprox_linalg::Complex64;

    #[test]
    fn hs_distance_bounds_and_phase_invariance() {
        for seed in 0..CASES as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = haar_unitary(4, &mut rng);
            let b = haar_unitary(4, &mut rng);
            let d = hs_distance(&a, &b);
            assert!((0.0..=1.0 + 1e-12).contains(&d));
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            let b_phased = b.scale(Complex64::cis(phase));
            assert!((hs_distance(&a, &b_phased) - d).abs() < 1e-10);
        }
    }

    #[test]
    fn fidelity_distance_duality() {
        for seed in 0..CASES as u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = haar_unitary(4, &mut rng);
            let b = haar_unitary(4, &mut rng);
            // identical unitaries: fidelity 1, distance 0
            assert!((average_gate_fidelity(&a, &a) - 1.0).abs() < 1e-10);
            // distance 0 implies fidelity 1
            if hs_distance(&a, &b) < 1e-10 {
                assert!((average_gate_fidelity(&a, &b) - 1.0).abs() < 1e-8);
            }
        }
    }
}
