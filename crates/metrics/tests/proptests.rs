//! Property-based tests for the metric suite.

use proptest::prelude::*;
use qaprox_metrics::*;

fn distribution(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1.0, n).prop_filter_map("nonzero mass", |v| {
        let sum: f64 = v.iter().sum();
        if sum < 1e-6 {
            None
        } else {
            Some(v.into_iter().map(|x| x / sum).collect())
        }
    })
}

proptest! {
    #[test]
    fn js_distance_is_a_bounded_metric(p in distribution(8), q in distribution(8)) {
        let d = js_distance(&p, &q);
        prop_assert!((0.0..=(std::f64::consts::LN_2.sqrt() + 1e-9)).contains(&d));
        // symmetry
        prop_assert!((d - js_distance(&q, &p)).abs() < 1e-12);
        // identity of indiscernibles (one direction)
        prop_assert!(js_distance(&p, &p) < 1e-7);
    }

    #[test]
    fn js_triangle_inequality(p in distribution(6), q in distribution(6), r in distribution(6)) {
        let pq = js_distance(&p, &q);
        let qr = js_distance(&q, &r);
        let pr = js_distance(&p, &r);
        prop_assert!(pr <= pq + qr + 1e-9);
    }

    #[test]
    fn tvd_bounds_and_symmetry(p in distribution(8), q in distribution(8)) {
        let d = total_variation(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
        prop_assert!((d - total_variation(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn pinsker_inequality(p in distribution(8), q in distribution(8)) {
        // KL(P||Q) >= 2 * TVD^2 (in nats) whenever KL is finite
        let kl = kl_divergence(&p, &q);
        if kl.is_finite() {
            let tvd = total_variation(&p, &q);
            prop_assert!(kl + 1e-9 >= 2.0 * tvd * tvd);
        }
    }

    #[test]
    fn kl_nonnegative_and_zero_iff_equal(p in distribution(8)) {
        prop_assert!(kl_divergence(&p, &p).abs() < 1e-10);
    }

    #[test]
    fn entropy_bounds(p in distribution(16)) {
        let h = entropy(&p);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (16f64).ln() + 1e-9);
    }

    #[test]
    fn magnetization_bounds(p in distribution(8)) {
        let m = magnetization(&p);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&m));
    }

    #[test]
    fn magnetization_is_mean_of_z_expectations(p in distribution(8)) {
        let m = magnetization(&p);
        let mean = (0..3).map(|q| z_expectation(&p, q)).sum::<f64>() / 3.0;
        prop_assert!((m - mean).abs() < 1e-12);
    }

    #[test]
    fn bit_flip_symmetry_of_magnetization(p in distribution(8)) {
        // flipping every bit negates the magnetization
        let flipped: Vec<f64> = (0..8).map(|i| p[i ^ 0b111]).collect();
        prop_assert!((magnetization(&p) + magnetization(&flipped)).abs() < 1e-12);
    }
}

mod hs_properties {
    use super::*;
    use qaprox_linalg::random::haar_unitary;
    use qaprox_linalg::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn hs_distance_bounds_and_phase_invariance(seed in 0u64..300, phase in 0.0f64..6.28) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = haar_unitary(4, &mut rng);
            let b = haar_unitary(4, &mut rng);
            let d = hs_distance(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&d));
            let b_phased = b.scale(Complex64::cis(phase));
            prop_assert!((hs_distance(&a, &b_phased) - d).abs() < 1e-10);
        }

        #[test]
        fn fidelity_distance_duality(seed in 0u64..300) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = haar_unitary(4, &mut rng);
            let b = haar_unitary(4, &mut rng);
            // identical unitaries: fidelity 1, distance 0
            prop_assert!((average_gate_fidelity(&a, &a) - 1.0).abs() < 1e-10);
            // distance 0 implies fidelity 1
            if hs_distance(&a, &b) < 1e-10 {
                prop_assert!((average_gate_fidelity(&a, &b) - 1.0).abs() < 1e-8);
            }
        }
    }
}
