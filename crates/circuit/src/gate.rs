//! The gate set.
//!
//! Only one- and two-qubit gates exist in the IR; anything wider (Toffoli,
//! multi-controlled X, Grover oracles) is decomposed by `qaprox-algos` before
//! it reaches a circuit. That keeps every simulator and every accounting
//! function down to exactly two cases.

use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::{c64, u3_matrix, Complex64};
use std::f64::consts::FRAC_1_SQRT_2;

/// A quantum gate. One- and two-qubit only, by design.
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    // --- one-qubit, fixed ---
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S-dagger.
    Sdg,
    /// T = diag(1, e^{i pi/4}).
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X.
    SX,
    // --- one-qubit, parameterized ---
    /// Rotation about X: `exp(-i theta X / 2)`.
    RX(f64),
    /// Rotation about Y: `exp(-i theta Y / 2)`.
    RY(f64),
    /// Rotation about Z: `exp(-i theta Z / 2)`.
    RZ(f64),
    /// Phase gate `diag(1, e^{i lambda})`.
    P(f64),
    /// IBM U3 gate (theta, phi, lambda).
    U3(f64, f64, f64),
    /// Arbitrary one-qubit unitary.
    Unitary1(Box<Matrix>),
    // --- two-qubit ---
    /// Controlled-X; first listed qubit is the control.
    CX,
    /// Controlled-Z (symmetric).
    CZ,
    /// Swap.
    SWAP,
    /// Controlled RX(theta).
    CRX(f64),
    /// Controlled RZ(theta).
    CRZ(f64),
    /// Controlled phase.
    CP(f64),
    /// Arbitrary two-qubit unitary (e.g. a QFast block); small-matrix index
    /// convention: first listed qubit is the high bit.
    Unitary2(Box<Matrix>),
}

impl Gate {
    /// Number of qubits the gate acts on (1 or 2).
    pub fn arity(&self) -> usize {
        match self {
            Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::SX
            | Gate::RX(_)
            | Gate::RY(_)
            | Gate::RZ(_)
            | Gate::P(_)
            | Gate::U3(..)
            | Gate::Unitary1(_) => 1,
            Gate::CX
            | Gate::CZ
            | Gate::SWAP
            | Gate::CRX(_)
            | Gate::CRZ(_)
            | Gate::CP(_)
            | Gate::Unitary2(_) => 2,
        }
    }

    /// The gate's matrix: 2x2 for one-qubit gates, 4x4 for two-qubit gates
    /// (first listed qubit = high bit of the small index).
    pub fn matrix(&self) -> Matrix {
        let i = Complex64::I;
        let one = Complex64::ONE;
        let zero = Complex64::ZERO;
        match self {
            Gate::X => Matrix::from_rows(&[&[zero, one], &[one, zero]]),
            Gate::Y => Matrix::from_rows(&[&[zero, c64(0.0, -1.0)], &[i, zero]]),
            Gate::Z => Matrix::diag(&[one, c64(-1.0, 0.0)]),
            Gate::H => {
                let s = c64(FRAC_1_SQRT_2, 0.0);
                Matrix::from_rows(&[&[s, s], &[s, -s]])
            }
            Gate::S => Matrix::diag(&[one, i]),
            Gate::Sdg => Matrix::diag(&[one, c64(0.0, -1.0)]),
            Gate::T => Matrix::diag(&[one, Complex64::cis(std::f64::consts::FRAC_PI_4)]),
            Gate::Tdg => Matrix::diag(&[one, Complex64::cis(-std::f64::consts::FRAC_PI_4)]),
            Gate::SX => {
                // sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
                let a = c64(0.5, 0.5);
                let b = c64(0.5, -0.5);
                Matrix::from_rows(&[&[a, b], &[b, a]])
            }
            Gate::RX(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_rows(&[&[c64(c, 0.0), c64(0.0, -s)], &[c64(0.0, -s), c64(c, 0.0)]])
            }
            Gate::RY(t) => {
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                Matrix::from_rows(&[&[c64(c, 0.0), c64(-s, 0.0)], &[c64(s, 0.0), c64(c, 0.0)]])
            }
            Gate::RZ(t) => Matrix::diag(&[Complex64::cis(-t / 2.0), Complex64::cis(t / 2.0)]),
            Gate::P(l) => Matrix::diag(&[one, Complex64::cis(*l)]),
            Gate::U3(t, p, l) => u3_matrix(*t, *p, *l),
            Gate::Unitary1(m) => (**m).clone(),
            Gate::CX => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = one;
                m[(1, 1)] = one;
                m[(2, 3)] = one;
                m[(3, 2)] = one;
                m
            }
            Gate::CZ => Matrix::diag(&[one, one, one, c64(-1.0, 0.0)]),
            Gate::SWAP => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = one;
                m[(1, 2)] = one;
                m[(2, 1)] = one;
                m[(3, 3)] = one;
                m
            }
            Gate::CRX(t) => controlled(&Gate::RX(*t).matrix()),
            Gate::CRZ(t) => controlled(&Gate::RZ(*t).matrix()),
            Gate::CP(l) => Matrix::diag(&[one, one, one, Complex64::cis(*l)]),
            Gate::Unitary2(m) => (**m).clone(),
        }
    }

    /// The inverse gate (dagger).
    pub fn dagger(&self) -> Gate {
        match self {
            Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::CX | Gate::CZ | Gate::SWAP => {
                self.clone()
            }
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::SX => Gate::Unitary1(Box::new(Gate::SX.matrix().adjoint())),
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::P(l) => Gate::P(-l),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            Gate::Unitary1(m) => Gate::Unitary1(Box::new(m.adjoint())),
            Gate::CRX(t) => Gate::CRX(-t),
            Gate::CRZ(t) => Gate::CRZ(-t),
            Gate::CP(l) => Gate::CP(-l),
            Gate::Unitary2(m) => Gate::Unitary2(Box::new(m.adjoint())),
        }
    }

    /// True when the gate entangles (is two-qubit and not a product gate).
    pub fn is_two_qubit(&self) -> bool {
        self.arity() == 2
    }

    /// Decomposition cost of the gate in CNOTs, used by pre-transpile
    /// accounting: CX/CZ cost 1, controlled rotations 2, SWAP 3, a generic
    /// two-qubit unitary 3 (KAK bound); one-qubit gates cost 0.
    pub fn cnot_cost(&self) -> usize {
        match self {
            Gate::CX | Gate::CZ => 1,
            Gate::CRX(_) | Gate::CRZ(_) | Gate::CP(_) => 2,
            Gate::SWAP | Gate::Unitary2(_) => 3,
            _ => 0,
        }
    }

    /// Short mnemonic for text dumps.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::P(_) => "p",
            Gate::U3(..) => "u3",
            Gate::Unitary1(_) => "unitary1",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::SWAP => "swap",
            Gate::CRX(_) => "crx",
            Gate::CRZ(_) => "crz",
            Gate::CP(_) => "cp",
            Gate::Unitary2(_) => "unitary2",
        }
    }
}

/// Builds the controlled version of a one-qubit gate matrix, control = high bit.
pub fn controlled(u: &Matrix) -> Matrix {
    assert_eq!(
        (u.rows(), u.cols()),
        (2, 2),
        "controlled() expects a 2x2 gate"
    );
    let mut m = Matrix::identity(4);
    m[(2, 2)] = u[(0, 0)];
    m[(2, 3)] = u[(0, 1)];
    m[(3, 2)] = u[(1, 0)];
    m[(3, 3)] = u[(1, 1)];
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_gate_matrices_are_unitary() {
        let gates = vec![
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::SX,
            Gate::RX(0.7),
            Gate::RY(-1.2),
            Gate::RZ(2.5),
            Gate::P(0.9),
            Gate::U3(1.0, 2.0, 3.0),
            Gate::CX,
            Gate::CZ,
            Gate::SWAP,
            Gate::CRX(0.4),
            Gate::CRZ(-0.8),
            Gate::CP(1.6),
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(1e-12), "{} not unitary", g.name());
        }
    }

    #[test]
    fn dagger_inverts_every_gate() {
        let gates = vec![
            Gate::X,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::SX,
            Gate::RX(0.7),
            Gate::RY(-1.2),
            Gate::RZ(2.5),
            Gate::P(0.9),
            Gate::U3(1.0, 2.0, 3.0),
            Gate::CX,
            Gate::CZ,
            Gate::SWAP,
            Gate::CRX(0.4),
            Gate::CRZ(-0.8),
            Gate::CP(1.6),
        ];
        for g in gates {
            let m = g.matrix();
            let md = g.dagger().matrix();
            let dim = m.rows();
            assert!(
                m.matmul(&md).approx_eq(&Matrix::identity(dim), 1e-12),
                "{} dagger failed",
                g.name()
            );
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::SX.matrix();
        assert!(sx.matmul(&sx).approx_eq(&Gate::X.matrix(), 1e-13));
    }

    #[test]
    fn s_squared_is_z_t_squared_is_s() {
        let s = Gate::S.matrix();
        assert!(s.matmul(&s).approx_eq(&Gate::Z.matrix(), 1e-13));
        let t = Gate::T.matrix();
        assert!(t.matmul(&t).approx_eq(&s, 1e-13));
    }

    #[test]
    fn u3_special_cases() {
        use std::f64::consts::PI;
        // U3(pi/2, 0, pi) = H
        assert!(Gate::U3(PI / 2.0, 0.0, PI)
            .matrix()
            .approx_eq(&Gate::H.matrix(), 1e-13));
        // U3(pi, 0, pi) = X
        assert!(Gate::U3(PI, 0.0, PI)
            .matrix()
            .approx_eq(&Gate::X.matrix(), 1e-13));
    }

    #[test]
    fn rotations_match_exponentials() {
        use qaprox_linalg::expm::expm;
        use qaprox_linalg::matrix::{pauli_x, pauli_y, pauli_z};
        let t = 0.83;
        for (gate, pauli) in [
            (Gate::RX(t), pauli_x()),
            (Gate::RY(t), pauli_y()),
            (Gate::RZ(t), pauli_z()),
        ] {
            let expect = expm(&pauli.scale(c64(0.0, -t / 2.0)));
            assert!(
                gate.matrix().approx_eq(&expect, 1e-12),
                "{} != exp(-i t P/2)",
                gate.name()
            );
        }
    }

    #[test]
    fn cx_truth_table() {
        let cx = Gate::CX.matrix();
        // control = high bit: |10> -> |11>, |11> -> |10>
        assert_eq!(cx[(3, 2)], Complex64::ONE);
        assert_eq!(cx[(2, 3)], Complex64::ONE);
        assert_eq!(cx[(0, 0)], Complex64::ONE);
        assert_eq!(cx[(1, 1)], Complex64::ONE);
    }

    #[test]
    fn controlled_builder_matches_named_gates() {
        assert!(controlled(&Gate::X.matrix()).approx_eq(&Gate::CX.matrix(), 1e-14));
        assert!(controlled(&Gate::Z.matrix()).approx_eq(&Gate::CZ.matrix(), 1e-14));
        assert!(controlled(&Gate::RZ(0.7).matrix()).approx_eq(&Gate::CRZ(0.7).matrix(), 1e-14));
    }

    #[test]
    fn cnot_costs() {
        assert_eq!(Gate::CX.cnot_cost(), 1);
        assert_eq!(Gate::SWAP.cnot_cost(), 3);
        assert_eq!(Gate::CRZ(0.3).cnot_cost(), 2);
        assert_eq!(Gate::U3(1.0, 0.0, 0.0).cnot_cost(), 0);
    }

    #[test]
    fn arity_is_consistent_with_matrix_dim() {
        for g in [Gate::H, Gate::RX(0.1), Gate::CX, Gate::SWAP, Gate::CP(0.5)] {
            assert_eq!(g.matrix().rows(), 1 << g.arity());
        }
    }
}
