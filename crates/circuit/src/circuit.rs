//! The circuit IR: an ordered list of placed gates on `n` qubits.

use crate::gate::Gate;
use qaprox_linalg::kernels::{
    apply_1q_mat_left, apply_1q_vec_blocked, apply_2q_mat_left, apply_2q_vec_blocked,
    mat2_to_array, mat4_to_array,
};
use qaprox_linalg::matrix::Matrix;
use qaprox_linalg::Complex64;

/// A gate placed on specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Target qubits; for two-qubit gates the first entry is the
    /// control / high bit of the gate's 4x4 matrix.
    pub qubits: Vec<usize>,
}

/// An ordered quantum circuit over one- and two-qubit gates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Hilbert-space dimension `2^n`.
    #[inline]
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// The placed gates in order.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// True when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    /// Panics if the qubit list length does not match the gate arity, if any
    /// qubit is out of range, or if a two-qubit gate repeats a qubit.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "qubit count != gate arity for {}",
            gate.name()
        );
        for &q in qubits {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range (n={})",
                self.num_qubits
            );
        }
        if qubits.len() == 2 {
            assert_ne!(qubits[0], qubits[1], "two-qubit gate with repeated qubit");
        }
        self.instructions.push(Instruction {
            gate,
            qubits: qubits.to_vec(),
        });
    }

    /// Appends every instruction of `other` (qubit counts must match).
    pub fn extend(&mut self, other: &Circuit) {
        assert_eq!(self.num_qubits, other.num_qubits, "compose width mismatch");
        self.instructions.extend(other.instructions.iter().cloned());
    }

    /// Appends `other` with its qubit `i` mapped to `mapping[i]`.
    pub fn extend_mapped(&mut self, other: &Circuit, mapping: &[usize]) {
        assert_eq!(mapping.len(), other.num_qubits, "mapping length mismatch");
        for inst in &other.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|&q| mapping[q]).collect();
            self.push(inst.gate.clone(), &qubits);
        }
    }

    // --- convenience builders ---

    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q]);
        self
    }
    /// Appends a Pauli-X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q]);
        self
    }
    /// Appends a Pauli-Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q]);
        self
    }
    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q]);
        self
    }
    /// Appends an RX rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::RX(theta), &[q]);
        self
    }
    /// Appends an RY rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::RY(theta), &[q]);
        self
    }
    /// Appends an RZ rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::RZ(theta), &[q]);
        self
    }
    /// Appends a U3 gate.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push(Gate::U3(theta, phi, lambda), &[q]);
        self
    }
    /// Appends a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::CX, &[control, target]);
        self
    }
    /// Appends a CZ.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::CZ, &[a, b]);
        self
    }
    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::SWAP, &[a, b]);
        self
    }

    // --- accounting ---

    /// Number of literal CX gates.
    pub fn cx_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.gate, Gate::CX))
            .count()
    }

    /// Number of two-qubit gates of any kind.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.is_two_qubit())
            .count()
    }

    /// CNOT cost after decomposition to the {U3, CX} basis
    /// (CX/CZ -> 1, controlled rotations -> 2, SWAP / generic 2q -> 3).
    pub fn cnot_cost(&self) -> usize {
        self.instructions.iter().map(|i| i.gate.cnot_cost()).sum()
    }

    /// Circuit depth: longest chain of dependent gates.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for inst in &self.instructions {
            let l = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = l;
            }
            max = max.max(l);
        }
        max
    }

    /// Depth counting only two-qubit gates (the paper's "CNOT depth").
    pub fn cnot_depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for inst in &self.instructions {
            if !inst.gate.is_two_qubit() {
                continue;
            }
            let l = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = l;
            }
            max = max.max(l);
        }
        max
    }

    // --- semantics ---

    /// Applies the circuit to a statevector in place.
    ///
    /// Rides the same blocked, runtime-dispatched amplitude kernels as the
    /// trajectory backend (AVX2 when the host supports it), so the ideal
    /// statevector path gets the SIMD speedup too. The blocked kernels are
    /// bit-identical to the plain ones.
    pub fn apply_to_state(&self, state: &mut [Complex64]) {
        assert_eq!(state.len(), self.dim(), "statevector dimension mismatch");
        for inst in &self.instructions {
            match inst.gate.arity() {
                1 => {
                    let u = mat2_to_array(&inst.gate.matrix());
                    apply_1q_vec_blocked(state, inst.qubits[0], &u);
                }
                2 => {
                    let u = mat4_to_array(&inst.gate.matrix());
                    apply_2q_vec_blocked(state, inst.qubits[0], inst.qubits[1], &u);
                }
                _ => unreachable!("IR only holds 1- and 2-qubit gates"),
            }
        }
    }

    /// Builds the circuit's full unitary by applying each gate to the columns
    /// of the identity — `O(len * 4^n)`, never materializing embeddings.
    pub fn unitary(&self) -> Matrix {
        let mut m = Matrix::identity(self.dim());
        for inst in &self.instructions {
            match inst.gate.arity() {
                1 => {
                    let u = mat2_to_array(&inst.gate.matrix());
                    apply_1q_mat_left(&mut m, inst.qubits[0], &u);
                }
                2 => {
                    let u = mat4_to_array(&inst.gate.matrix());
                    apply_2q_mat_left(&mut m, inst.qubits[0], inst.qubits[1], &u);
                }
                _ => unreachable!("IR only holds 1- and 2-qubit gates"),
            }
        }
        m
    }

    /// Runs the circuit on `|0...0>` and returns the final statevector.
    pub fn statevector(&self) -> Vec<Complex64> {
        let mut state = vec![Complex64::ZERO; self.dim()];
        state[0] = Complex64::ONE;
        self.apply_to_state(&mut state);
        state
    }

    /// The inverse circuit: reversed order, daggered gates.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            inv.push(inst.gate.dagger(), &inst.qubits);
        }
        inv
    }

    /// Iterates over `(gate, qubits)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.iter()
    }

    /// Removes all instructions, keeping the width.
    pub fn clear(&mut self) {
        self.instructions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qaprox_linalg::c64;

    #[test]
    fn bell_state_preparation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = c.statevector();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((sv[0] - c64(s, 0.0)).abs() < 1e-13);
        assert!((sv[3] - c64(s, 0.0)).abs() < 1e-13);
        assert!(sv[1].abs() < 1e-13 && sv[2].abs() < 1e-13);
    }

    #[test]
    fn ghz_state_on_three_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let sv = c.statevector();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((sv[0].abs() - s).abs() < 1e-13);
        assert!((sv[7].abs() - s).abs() < 1e-13);
        for (i, amp) in sv.iter().enumerate().take(7).skip(1) {
            assert!(amp.abs() < 1e-13, "leak at index {i}");
        }
    }

    #[test]
    fn unitary_matches_statevector_column_zero() {
        let mut c = Circuit::new(2);
        c.h(0).rz(0.7, 1).cx(1, 0).ry(-0.3, 0);
        let u = c.unitary();
        let sv = c.statevector();
        for i in 0..4 {
            assert!((u[(i, 0)] - sv[i]).abs() < 1e-13);
        }
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn inverse_cancels_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(1.3, 1)
            .swap(1, 2)
            .u3(0.4, 1.1, -0.6, 2)
            .cz(0, 2);
        let mut full = c.clone();
        full.extend(&c.inverse());
        assert!(full.unitary().approx_eq(&Matrix::identity(8), 1e-12));
    }

    #[test]
    fn accounting_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).swap(0, 2).rz(0.5, 1).cz(0, 1);
        assert_eq!(c.cx_count(), 2);
        assert_eq!(c.two_qubit_count(), 4);
        assert_eq!(c.cnot_cost(), 1 + 1 + 3 + 1);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        // layer 1: h(0), h(1); layer 2: cx(0,1); layer 3: cx(1,2)
        c.h(0).h(1).cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.cnot_depth(), 2);
    }

    #[test]
    fn cnot_depth_parallel_gates() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(2, 3); // parallel: depth 1
        assert_eq!(c.cnot_depth(), 1);
        c.cx(1, 2); // forces a second layer
        assert_eq!(c.cnot_depth(), 2);
    }

    #[test]
    fn extend_mapped_relabels_qubits() {
        let mut inner = Circuit::new(2);
        inner.h(0).cx(0, 1);
        let mut outer = Circuit::new(4);
        outer.extend_mapped(&inner, &[3, 1]);
        assert_eq!(outer.instructions()[0].qubits, vec![3]);
        assert_eq!(outer.instructions()[1].qubits, vec![3, 1]);
    }

    #[test]
    fn swap_gate_swaps_basis_states() {
        let mut c = Circuit::new(2);
        c.x(0); // |01> (qubit0 = 1)
        c.swap(0, 1); // -> |10>
        let sv = c.statevector();
        assert!((sv[2] - Complex64::ONE).abs() < 1e-13);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_qubit() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn push_rejects_repeated_qubits() {
        let mut c = Circuit::new(2);
        c.cx(1, 1);
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.cz(1, 0);
        assert!(a.unitary().approx_eq(&b.unitary(), 1e-13));
    }

    #[test]
    fn unitary_of_empty_circuit_is_identity() {
        let c = Circuit::new(3);
        assert!(c.unitary().approx_eq(&Matrix::identity(8), 1e-15));
    }
}
