//! Human-readable circuit serialization, loosely OpenQASM-2 shaped.
//!
//! Used in experiment logs and DESIGN/EXPERIMENTS artifacts so an approximate
//! circuit found by synthesis can be inspected or re-entered elsewhere.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Renders a circuit as a QASM-like text block.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// qaprox circuit: {} qubits, {} gates",
        circuit.num_qubits(),
        circuit.len()
    );
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for inst in circuit.iter() {
        let qs: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let qs = qs.join(",");
        let line = match &inst.gate {
            Gate::RX(t) => format!("rx({t:.12}) {qs};"),
            Gate::RY(t) => format!("ry({t:.12}) {qs};"),
            Gate::RZ(t) => format!("rz({t:.12}) {qs};"),
            Gate::P(l) => format!("p({l:.12}) {qs};"),
            Gate::U3(t, p, l) => format!("u3({t:.12},{p:.12},{l:.12}) {qs};"),
            Gate::CRX(t) => format!("crx({t:.12}) {qs};"),
            Gate::CRZ(t) => format!("crz({t:.12}) {qs};"),
            Gate::CP(l) => format!("cp({l:.12}) {qs};"),
            Gate::Unitary1(_) => format!("// unitary1 {qs};"),
            Gate::Unitary2(_) => format!("// unitary2 {qs};"),
            g => format!("{} {qs};", g.name()),
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

/// One-line summary used in experiment tables: gate counts and depth.
pub fn summary(circuit: &Circuit) -> String {
    format!(
        "qubits={} gates={} cx={} 2q={} depth={} cnot_depth={}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.cx_count(),
        circuit.two_qubit_count(),
        circuit.depth(),
        circuit.cnot_depth(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_contains_header_and_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.5, 1);
        let text = to_qasm(&c);
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        assert!(text.contains("rz(0.5"));
    }

    #[test]
    fn qasm_renders_parameterized_gates_with_precision() {
        let mut c = Circuit::new(1);
        c.u3(0.123456789012, -1.0, 2.0, 0);
        let text = to_qasm(&c);
        assert!(
            text.contains("u3(0.123456789012"),
            "12-digit angles: {text}"
        );
    }

    #[test]
    fn qasm_of_empty_circuit_is_header_only() {
        let c = Circuit::new(4);
        let text = to_qasm(&c);
        assert_eq!(text.lines().filter(|l| l.ends_with(';')).count(), 1); // qreg only
    }

    #[test]
    fn summary_reports_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let s = summary(&c);
        assert!(s.contains("cx=2"));
        assert!(s.contains("qubits=3"));
    }
}
