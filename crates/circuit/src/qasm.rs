//! Human-readable circuit serialization, loosely OpenQASM-2 shaped.
//!
//! Used in experiment logs and DESIGN/EXPERIMENTS artifacts so an approximate
//! circuit found by synthesis can be inspected or re-entered elsewhere.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Renders a circuit as a QASM-like text block.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// qaprox circuit: {} qubits, {} gates",
        circuit.num_qubits(),
        circuit.len()
    );
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for inst in circuit.iter() {
        let qs: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let qs = qs.join(",");
        // Angles print with {:.17e}: 17 significant digits round-trip every
        // IEEE-754 double exactly, so dump -> parse preserves the unitary
        // bit-for-bit (the 12-digit dump it replaces lost up to ~1e-12 per
        // angle, enough to corrupt content-addressed store keys).
        let line = match &inst.gate {
            Gate::RX(t) => format!("rx({t:.17e}) {qs};"),
            Gate::RY(t) => format!("ry({t:.17e}) {qs};"),
            Gate::RZ(t) => format!("rz({t:.17e}) {qs};"),
            Gate::P(l) => format!("p({l:.17e}) {qs};"),
            Gate::U3(t, p, l) => format!("u3({t:.17e},{p:.17e},{l:.17e}) {qs};"),
            Gate::CRX(t) => format!("crx({t:.17e}) {qs};"),
            Gate::CRZ(t) => format!("crz({t:.17e}) {qs};"),
            Gate::CP(l) => format!("cp({l:.17e}) {qs};"),
            Gate::Unitary1(_) => format!("// unitary1 {qs};"),
            Gate::Unitary2(_) => format!("// unitary2 {qs};"),
            g => format!("{} {qs};", g.name()),
        };
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Canonical byte serialization of a circuit for content addressing: the
/// [`to_qasm`] dump as UTF-8. Because angles print with full 17-digit
/// precision, two circuits serialize identically iff their instruction
/// streams are identical — a stable input for store cache keys.
pub fn canonical_bytes(circuit: &Circuit) -> Vec<u8> {
    to_qasm(circuit).into_bytes()
}

/// One-line summary used in experiment tables: gate counts and depth.
pub fn summary(circuit: &Circuit) -> String {
    format!(
        "qubits={} gates={} cx={} 2q={} depth={} cnot_depth={}",
        circuit.num_qubits(),
        circuit.len(),
        circuit.cx_count(),
        circuit.two_qubit_count(),
        circuit.depth(),
        circuit.cnot_depth(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qasm_contains_header_and_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.5, 1);
        let text = to_qasm(&c);
        assert!(text.contains("qreg q[2];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        assert!(text.contains("rz(5.00000000000000000e-1"), "{text}");
    }

    #[test]
    fn qasm_renders_parameterized_gates_losslessly() {
        // 17 significant digits round-trip any double exactly
        let theta = 0.123_456_789_012_345_68_f64;
        let mut c = Circuit::new(1);
        c.u3(theta, -1.0, 2.0, 0);
        let text = to_qasm(&c);
        let angle = text
            .split("u3(")
            .nth(1)
            .and_then(|r| r.split(',').next())
            .expect("u3 angle present");
        assert_eq!(angle.parse::<f64>().unwrap().to_bits(), theta.to_bits());
    }

    #[test]
    fn canonical_bytes_distinguish_angles_at_full_precision() {
        let mut a = Circuit::new(1);
        a.rz(0.1, 0);
        let mut b = Circuit::new(1);
        b.rz(0.1 + 1e-15, 0);
        assert_ne!(canonical_bytes(&a), canonical_bytes(&b));
        let mut a2 = Circuit::new(1);
        a2.rz(0.1, 0);
        assert_eq!(canonical_bytes(&a), canonical_bytes(&a2));
    }

    #[test]
    fn qasm_of_empty_circuit_is_header_only() {
        let c = Circuit::new(4);
        let text = to_qasm(&c);
        assert_eq!(text.lines().filter(|l| l.ends_with(';')).count(), 1); // qreg only
    }

    #[test]
    fn summary_reports_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let s = summary(&c);
        assert!(s.contains("cx=2"));
        assert!(s.contains("qubits=3"));
    }
}
