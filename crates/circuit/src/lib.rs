//! # qaprox-circuit
//!
//! The circuit intermediate representation shared by the whole workspace:
//! a [`Circuit`] is an ordered list of one- and two-qubit [`Gate`]s placed on
//! named qubits. Wider operations (Toffoli, multi-controlled gates) are
//! decomposed by `qaprox-algos` before entering the IR, so simulators,
//! transpiler and synthesis only ever see two gate arities.
//!
//! Conventions (shared with `qaprox-linalg`):
//! * qubit 0 is the least-significant bit of basis indices;
//! * a two-qubit gate's first listed qubit is the high bit of its 4x4 matrix
//!   (for [`Gate::CX`], the control).

#![warn(missing_docs)]

pub mod circuit;
pub mod commute;
pub mod gate;
pub mod parser;
pub mod qasm;

pub use circuit::{Circuit, Instruction};
pub use commute::{commutes, commuting_span};
pub use gate::{controlled, Gate};
pub use parser::{from_qasm, from_qasm_lenient, ParseError, RawMeasure, RawProgram};
