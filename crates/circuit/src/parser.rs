//! Parser for the QASM-ish text format emitted by [`crate::qasm::to_qasm`].
//!
//! Supports the subset this workspace produces: one `qreg`, the named gate
//! set, and parameterized gates with literal angles (including simple
//! `pi`-expressions like `pi/2` or `-0.5*pi`). Round-tripping circuits
//! through text lets experiment artifacts be re-loaded and re-executed.

use crate::circuit::{Circuit, Instruction};
use crate::gate::Gate;

/// A parse failure with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses an angle literal: a float, `pi`, `-pi`, `pi/N`, or `F*pi`.
fn parse_angle(s: &str, line: usize) -> Result<f64, ParseError> {
    let t = s.trim();
    if let Ok(v) = t.parse::<f64>() {
        return Ok(v);
    }
    let pi = std::f64::consts::PI;
    let (sign, body) = if let Some(rest) = t.strip_prefix('-') {
        (-1.0, rest.trim())
    } else {
        (1.0, t)
    };
    if body == "pi" {
        return Ok(sign * pi);
    }
    if let Some(den) = body.strip_prefix("pi/") {
        let d: f64 = den
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad denominator in angle '{t}'")))?;
        return Ok(sign * pi / d);
    }
    if let Some(factor) = body.strip_suffix("*pi") {
        let f: f64 = factor
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad factor in angle '{t}'")))?;
        return Ok(sign * f * pi);
    }
    Err(err(line, format!("cannot parse angle '{t}'")))
}

/// Parses `q[3]` into `3`.
fn parse_qubit(s: &str, line: usize) -> Result<usize, ParseError> {
    let t = s.trim();
    let inner = t
        .strip_prefix("q[")
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected q[i], got '{t}'")))?;
    inner
        .parse()
        .map_err(|_| err(line, format!("bad qubit index in '{t}'")))
}

/// A measurement statement kept by the lenient parser.
///
/// The core [`Circuit`] IR is pure unitary evolution (measurement is implied
/// at the end), so `measure q[i] -> c[j];` lines never become
/// [`Instruction`]s. They are recorded here for dataflow analysis: lints
/// like "gate after final measurement" and "unread classical bit" need to
/// know *where* in the gate stream each measurement sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawMeasure {
    /// Measured qubit index (unchecked, like gate operands).
    pub qubit: usize,
    /// Destination classical bit index (unchecked).
    pub clbit: usize,
    /// Number of gate instructions parsed *before* this measurement — its
    /// position in the merged program order.
    pub after: usize,
    /// 1-based source line.
    pub line: usize,
}

/// A leniently parsed program: the declared register width plus the raw
/// instruction stream, with **no** structural validation applied.
///
/// [`from_qasm`] rejects programs with out-of-range operands or wrong gate
/// arity; static analysis wants to *see* those programs so it can report
/// every defect with a code and location instead of dying on the first one.
#[derive(Debug, Clone)]
pub struct RawProgram {
    /// Width of the `qreg` declaration.
    pub num_qubits: usize,
    /// Width of the `creg` declaration (0 when absent).
    pub num_clbits: usize,
    /// Instructions in program order, operands unchecked.
    pub instructions: Vec<Instruction>,
    /// 1-based source line of each instruction (parallel to `instructions`).
    pub lines: Vec<usize>,
    /// Measurement statements in program order, operands unchecked.
    pub measures: Vec<RawMeasure>,
}

/// Parses `c[3]` into `3`.
fn parse_clbit(s: &str, line: usize) -> Result<usize, ParseError> {
    let t = s.trim();
    let inner = t
        .strip_prefix("c[")
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected c[i], got '{t}'")))?;
    inner
        .parse()
        .map_err(|_| err(line, format!("bad classical bit index in '{t}'")))
}

/// Parses the text format produced by [`crate::qasm::to_qasm`] without
/// validating operands, so defective programs survive parsing and can be
/// diagnosed downstream (e.g. by `qaprox-verify`).
///
/// Only *syntactic* problems fail: missing `qreg`, unknown gate names,
/// malformed angles or operands, wrong parameter counts. Out-of-range
/// qubits, duplicate operands, and wrong operand counts parse fine.
/// `creg c[n];`, `measure q[i] -> c[j];`, and `barrier …;` statements from
/// real OpenQASM-2 programs are accepted: measurements are kept in
/// [`RawProgram::measures`], barriers are skipped (they carry no dataflow).
pub fn from_qasm_lenient(text: &str) -> Result<RawProgram, ParseError> {
    let mut program: Option<RawProgram> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with("OPENQASM") || line.starts_with("include") {
            continue;
        }
        let stmt = line
            .strip_suffix(';')
            .ok_or_else(|| err(line_no, format!("missing ';' in '{line}'")))?
            .trim();

        if let Some(rest) = stmt.strip_prefix("qreg") {
            let n = rest
                .trim()
                .strip_prefix("q[")
                .and_then(|r| r.strip_suffix(']'))
                .and_then(|r| r.parse::<usize>().ok())
                .ok_or_else(|| err(line_no, "malformed qreg declaration"))?;
            if program.is_some() {
                return Err(err(line_no, "duplicate qreg declaration"));
            }
            program = Some(RawProgram {
                num_qubits: n,
                num_clbits: 0,
                instructions: Vec::new(),
                lines: Vec::new(),
                measures: Vec::new(),
            });
            continue;
        }

        if let Some(rest) = stmt.strip_prefix("creg") {
            let n = rest
                .trim()
                .strip_prefix("c[")
                .and_then(|r| r.strip_suffix(']'))
                .and_then(|r| r.parse::<usize>().ok())
                .ok_or_else(|| err(line_no, "malformed creg declaration"))?;
            let p = program
                .as_mut()
                .ok_or_else(|| err(line_no, "creg before qreg declaration"))?;
            if p.num_clbits != 0 {
                return Err(err(line_no, "duplicate creg declaration"));
            }
            p.num_clbits = n;
            continue;
        }

        let p = program
            .as_mut()
            .ok_or_else(|| err(line_no, "gate before qreg declaration"))?;

        if let Some(rest) = stmt.strip_prefix("measure") {
            let (lhs, rhs) = rest
                .split_once("->")
                .ok_or_else(|| err(line_no, "measure needs 'q[i] -> c[j]'"))?;
            let qubit = parse_qubit(lhs, line_no)?;
            let clbit = parse_clbit(rhs, line_no)?;
            p.measures.push(RawMeasure {
                qubit,
                clbit,
                after: p.instructions.len(),
                line: line_no,
            });
            continue;
        }

        if stmt.starts_with("barrier") {
            continue; // no dataflow: purely a scheduling hint
        }

        // split "name(params) operands" or "name operands"
        let (head, operands) = match stmt.find(' ') {
            Some(pos) => (&stmt[..pos], stmt[pos + 1..].trim()),
            None => return Err(err(line_no, format!("malformed statement '{stmt}'"))),
        };
        let (name, params): (&str, Vec<f64>) = match head.find('(') {
            Some(open) => {
                let close = head
                    .rfind(')')
                    .ok_or_else(|| err(line_no, "unclosed parameter list"))?;
                let name = &head[..open];
                let params = head[open + 1..close]
                    .split(',')
                    .map(|p| parse_angle(p, line_no))
                    .collect::<Result<Vec<f64>, _>>()?;
                (name, params)
            }
            None => (head, Vec::new()),
        };
        let qubits = operands
            .split(',')
            .map(|q| parse_qubit(q, line_no))
            .collect::<Result<Vec<usize>, _>>()?;

        let need = |k: usize| -> Result<(), ParseError> {
            if params.len() == k {
                Ok(())
            } else {
                Err(err(line_no, format!("{name} expects {k} parameter(s)")))
            }
        };
        let gate = match name {
            "x" => Gate::X,
            "y" => Gate::Y,
            "z" => Gate::Z,
            "h" => Gate::H,
            "s" => Gate::S,
            "sdg" => Gate::Sdg,
            "t" => Gate::T,
            "tdg" => Gate::Tdg,
            "sx" => Gate::SX,
            "rx" => {
                need(1)?;
                Gate::RX(params[0])
            }
            "ry" => {
                need(1)?;
                Gate::RY(params[0])
            }
            "rz" => {
                need(1)?;
                Gate::RZ(params[0])
            }
            "p" | "u1" => {
                need(1)?;
                Gate::P(params[0])
            }
            "u3" | "u" => {
                need(3)?;
                Gate::U3(params[0], params[1], params[2])
            }
            "cx" | "cnot" => Gate::CX,
            "cz" => Gate::CZ,
            "swap" => Gate::SWAP,
            "crx" => {
                need(1)?;
                Gate::CRX(params[0])
            }
            "crz" => {
                need(1)?;
                Gate::CRZ(params[0])
            }
            "cp" | "cu1" => {
                need(1)?;
                Gate::CP(params[0])
            }
            other => return Err(err(line_no, format!("unknown gate '{other}'"))),
        };
        p.instructions.push(Instruction { gate, qubits });
        p.lines.push(line_no);
    }
    program.ok_or_else(|| err(0, "no qreg declaration found"))
}

/// Parses the text format produced by [`crate::qasm::to_qasm`] back into a
/// circuit, validating operand counts (arity) here and operand ranges via
/// [`Circuit::push`]. Final `measure` statements are dropped — the IR is
/// pure unitary evolution with measurement implied at the end — so a real
/// OpenQASM-2 dump with a trailing measurement block loads cleanly.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseError> {
    let raw = from_qasm_lenient(text)?;
    let mut c = Circuit::new(raw.num_qubits);
    for (inst, line_no) in raw.instructions.into_iter().zip(raw.lines) {
        if inst.qubits.len() != inst.gate.arity() {
            return Err(err(
                line_no,
                format!(
                    "{} expects {} qubit(s), got {}",
                    inst.gate.name(),
                    inst.gate.arity(),
                    inst.qubits.len()
                ),
            ));
        }
        // the semantic defects Circuit::push would panic on become parse
        // errors here, so defective files fail cleanly (the lenient path +
        // linter is the route that *keeps* them, to report QA101/QA102)
        if let Some(&q) = inst.qubits.iter().find(|&&q| q >= raw.num_qubits) {
            return Err(err(
                line_no,
                format!("qubit {q} out of range (n={})", raw.num_qubits),
            ));
        }
        if inst.qubits.len() == 2 && inst.qubits[0] == inst.qubits[1] {
            return Err(err(
                line_no,
                format!("duplicate qubit operand {}", inst.qubits[0]),
            ));
        }
        c.push(inst.gate, &inst.qubits);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::to_qasm;

    #[test]
    fn parses_minimal_program() {
        let c = from_qasm("qreg q[2];\nh q[0];\ncx q[0],q[1];\n").unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.cx_count(), 1);
    }

    #[test]
    fn round_trips_emitted_text() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(0.123456, 1)
            .u3(0.4, -1.2, 2.2, 2)
            .swap(1, 2)
            .cz(0, 2);
        c.push(Gate::CP(0.77), &[0, 1]);
        c.push(Gate::Tdg, &[2]);
        let text = to_qasm(&c);
        let back = from_qasm(&text).unwrap();
        assert_eq!(back.len(), c.len());
        let d = {
            let a = c.unitary();
            let b = back.unitary();
            a.max_diff(&b)
        };
        assert!(d < 1e-9, "round trip changed the unitary by {d}");
    }

    #[test]
    fn parses_pi_expressions() {
        let c = from_qasm("qreg q[1];\nrz(pi/2) q[0];\nrx(-pi) q[0];\nry(0.5*pi) q[0];\n").unwrap();
        match &c.instructions()[0].gate {
            Gate::RZ(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            g => panic!("unexpected gate {g:?}"),
        }
        match &c.instructions()[1].gate {
            Gate::RX(t) => assert!((t + std::f64::consts::PI).abs() < 1e-12),
            g => panic!("unexpected gate {g:?}"),
        }
    }

    #[test]
    fn skips_comments_and_headers() {
        let src =
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n// a comment\nqreg q[1];\nx q[0]; // flip\n";
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn error_on_unknown_gate() {
        let e = from_qasm("qreg q[1];\nfoo q[0];\n").unwrap_err();
        assert!(e.message.contains("unknown gate"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn error_on_missing_qreg() {
        assert!(from_qasm("h q[0];\n").is_err());
    }

    #[test]
    fn strict_parse_rejects_semantic_defects_cleanly() {
        // no panic: the defects Circuit::push would assert on come back as
        // ParseError so CLI consumers (analyze, equiv) fail with a message
        let e = from_qasm("qreg q[1];\nh q[5];\n").unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        let e = from_qasm("qreg q[2];\ncx q[1],q[1];\n").unwrap_err();
        assert!(e.to_string().contains("duplicate"), "{e}");
    }

    #[test]
    fn lenient_parse_keeps_defective_programs() {
        let raw = from_qasm_lenient("qreg q[2];\nh q[5];\ncx q[0],q[0];\ncx q[1];\n").unwrap();
        assert_eq!(raw.num_qubits, 2);
        assert_eq!(raw.instructions.len(), 3);
        assert_eq!(raw.instructions[0].qubits, vec![5]); // out of range kept
        assert_eq!(raw.instructions[1].qubits, vec![0, 0]); // duplicate kept
        assert_eq!(raw.instructions[2].qubits, vec![1]); // wrong arity kept
        assert_eq!(raw.lines, vec![2, 3, 4]);
    }

    #[test]
    fn lenient_parse_still_rejects_syntax_errors() {
        assert!(from_qasm_lenient("qreg q[1];\nfoo q[0];\n").is_err());
        assert!(from_qasm_lenient("qreg q[1];\nrz(abc) q[0];\n").is_err());
        assert!(from_qasm_lenient("h q[0];\n").is_err());
    }

    #[test]
    fn parses_creg_measure_and_barrier() {
        let src = "qreg q[2];\ncreg c[2];\nh q[0];\nbarrier q[0],q[1];\n\
                   measure q[0] -> c[0];\nx q[1];\nmeasure q[1] -> c[1];\n";
        let raw = from_qasm_lenient(src).unwrap();
        assert_eq!(raw.num_qubits, 2);
        assert_eq!(raw.num_clbits, 2);
        assert_eq!(raw.instructions.len(), 2, "barrier and measures skipped");
        assert_eq!(
            raw.measures,
            vec![
                RawMeasure {
                    qubit: 0,
                    clbit: 0,
                    after: 1,
                    line: 5
                },
                RawMeasure {
                    qubit: 1,
                    clbit: 1,
                    after: 2,
                    line: 7
                },
            ]
        );
        // the strict parser drops measurements but still round-trips gates
        let c = from_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn measure_operands_are_unchecked_like_gates() {
        let raw = from_qasm_lenient("qreg q[1];\ncreg c[1];\nmeasure q[9] -> c[9];\n").unwrap();
        assert_eq!(raw.measures[0].qubit, 9);
        assert_eq!(raw.measures[0].clbit, 9);
    }

    #[test]
    fn malformed_measure_and_creg_fail() {
        assert!(from_qasm_lenient("qreg q[1];\nmeasure q[0];\n").is_err());
        assert!(from_qasm_lenient("qreg q[1];\nmeasure q[0] -> q[0];\n").is_err());
        assert!(from_qasm_lenient("qreg q[1];\ncreg c[x];\n").is_err());
        assert!(from_qasm_lenient("creg c[1];\nqreg q[1];\n").is_err());
        assert!(from_qasm_lenient("qreg q[1];\ncreg c[1];\ncreg c[2];\n").is_err());
    }

    #[test]
    fn error_on_wrong_arity() {
        let e = from_qasm("qreg q[2];\ncx q[0];\n").unwrap_err();
        assert!(e.message.contains("expects 2 qubit"));
    }

    #[test]
    fn error_on_bad_angle() {
        let e = from_qasm("qreg q[1];\nrz(abc) q[0];\n").unwrap_err();
        assert!(e.message.contains("angle"));
    }
}
