//! Gate commutation rules.
//!
//! Qiskit's higher optimization levels cancel CNOT pairs even when commuting
//! gates sit between them (an RZ on the control, an RX on the target, ...).
//! This module encodes the standard structural rules; every rule is verified
//! against explicit matrices in the tests.

use crate::circuit::Instruction;
use crate::gate::Gate;

/// Gates diagonal in the computational basis (commute with anything that is
/// also diagonal, and with a CX's *control*).
pub fn is_diagonal(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::RZ(_)
            | Gate::P(_)
            | Gate::CZ
            | Gate::CP(_)
            | Gate::CRZ(_)
    )
}

/// Gates that are X-axis rotations (commute with a CX's *target*).
pub fn is_x_axis(gate: &Gate) -> bool {
    matches!(gate, Gate::X | Gate::RX(_) | Gate::SX)
}

/// Structural commutation test for two placed instructions.
///
/// Returns `true` only when the rule base *proves* commutation; `false`
/// means "unknown or does not commute". The rules:
///
/// 1. disjoint qubits always commute;
/// 2. two diagonal gates always commute (any overlap);
/// 3. a diagonal one-qubit gate commutes with a CX acting on that qubit as
///    **control**;
/// 4. an X-axis one-qubit gate commutes with a CX acting on that qubit as
///    **target**;
/// 5. two CX gates sharing only their control commute; sharing only their
///    target also commute.
pub fn commutes(a: &Instruction, b: &Instruction) -> bool {
    let shared: Vec<usize> = a
        .qubits
        .iter()
        .copied()
        .filter(|q| b.qubits.contains(q))
        .collect();
    if shared.is_empty() {
        return true; // rule 1
    }
    if is_diagonal(&a.gate) && is_diagonal(&b.gate) {
        return true; // rule 2
    }
    // rules 3/4: 1q gate vs CX
    let one_q_vs_cx = |one: &Instruction, cx: &Instruction| -> bool {
        if one.qubits.len() != 1 || !matches!(cx.gate, Gate::CX) {
            return false;
        }
        let q = one.qubits[0];
        let control = cx.qubits[0];
        let target = cx.qubits[1];
        (is_diagonal(&one.gate) && q == control) || (is_x_axis(&one.gate) && q == target)
    };
    if one_q_vs_cx(a, b) || one_q_vs_cx(b, a) {
        return true;
    }
    // rule 5: CX vs CX
    if matches!(a.gate, Gate::CX) && matches!(b.gate, Gate::CX) {
        let (ac, at) = (a.qubits[0], a.qubits[1]);
        let (bc, bt) = (b.qubits[0], b.qubits[1]);
        let share_control = ac == bc && at != bt;
        let share_target = at == bt && ac != bc;
        if share_control || share_target {
            return true;
        }
    }
    false
}

/// The exclusive end of the run of instructions the gate at `from` can
/// provably slide across to the right: every instruction in
/// `from + 1 .. commuting_span(insts, from)` commutes with `insts[from]`,
/// and `insts[commuting_span(insts, from)]` (when in range) is the first
/// that does not.
///
/// This is the single slide primitive every commutation consumer is built
/// on: the transpiler's commutation-aware CX cancellation scans to the span
/// boundary for a cancelling partner, and the verifier's trace-monoid
/// analysis uses the same pairwise relation to layer instructions. Keeping
/// one primitive here keeps all consumers on one property-tested oracle.
pub fn commuting_span(insts: &[Instruction], from: usize) -> usize {
    let mut j = from + 1;
    while j < insts.len() && commutes(&insts[from], &insts[j]) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    /// Verifies `commutes` against the actual matrices on a 3-qubit register.
    fn matrix_commutes(a: &Instruction, b: &Instruction) -> bool {
        let mut ab = Circuit::new(3);
        ab.push(a.gate.clone(), &a.qubits);
        ab.push(b.gate.clone(), &b.qubits);
        let mut ba = Circuit::new(3);
        ba.push(b.gate.clone(), &b.qubits);
        ba.push(a.gate.clone(), &a.qubits);
        ab.unitary().approx_eq(&ba.unitary(), 1e-10)
    }

    fn inst(gate: Gate, qubits: &[usize]) -> Instruction {
        Instruction {
            gate,
            qubits: qubits.to_vec(),
        }
    }

    #[test]
    fn rule_base_is_sound_on_exhaustive_catalog() {
        // every pair the rules claim commutes must commute as matrices; the
        // catalog covers every diagonal and X-axis family the rules name,
        // on every placement class (same qubit, control, target, disjoint)
        let catalog = vec![
            inst(Gate::RZ(0.7), &[0]),
            inst(Gate::RZ(0.3), &[1]),
            inst(Gate::RX(1.1), &[0]),
            inst(Gate::RX(0.2), &[1]),
            inst(Gate::T, &[0]),
            inst(Gate::Tdg, &[1]),
            inst(Gate::S, &[0]),
            inst(Gate::Sdg, &[2]),
            inst(Gate::Z, &[1]),
            inst(Gate::P(0.4), &[0]),
            inst(Gate::X, &[1]),
            inst(Gate::SX, &[2]),
            inst(Gate::H, &[0]),
            inst(Gate::RY(0.6), &[1]),
            inst(Gate::CX, &[0, 1]),
            inst(Gate::CX, &[1, 0]),
            inst(Gate::CX, &[0, 2]),
            inst(Gate::CX, &[2, 1]),
            inst(Gate::CZ, &[0, 1]),
            inst(Gate::CRZ(0.8), &[0, 2]),
            inst(Gate::CP(0.9), &[1, 2]),
        ];
        for a in &catalog {
            for b in &catalog {
                if commutes(a, b) {
                    assert!(
                        matrix_commutes(a, b),
                        "rule base wrongly claims {}{:?} commutes with {}{:?}",
                        a.gate.name(),
                        a.qubits,
                        b.gate.name(),
                        b.qubits
                    );
                }
            }
        }
    }

    #[test]
    fn rz_commutes_with_cx_control_not_target() {
        let rz0 = inst(Gate::RZ(0.5), &[0]);
        let rz1 = inst(Gate::RZ(0.5), &[1]);
        let cx = inst(Gate::CX, &[0, 1]);
        assert!(commutes(&rz0, &cx), "RZ on control commutes");
        assert!(!commutes(&rz1, &cx), "RZ on target does not");
        assert!(!matrix_commutes(&rz1, &cx));
    }

    #[test]
    fn rx_commutes_with_cx_target_not_control() {
        let rx0 = inst(Gate::RX(0.5), &[0]);
        let rx1 = inst(Gate::RX(0.5), &[1]);
        let cx = inst(Gate::CX, &[0, 1]);
        assert!(!commutes(&rx0, &cx), "RX on control does not commute");
        assert!(commutes(&rx1, &cx), "RX on target commutes");
        assert!(!matrix_commutes(&rx0, &cx));
    }

    #[test]
    fn cx_pairs_sharing_control_or_target() {
        let a = inst(Gate::CX, &[0, 1]);
        let b = inst(Gate::CX, &[0, 2]);
        let c = inst(Gate::CX, &[2, 1]);
        let d = inst(Gate::CX, &[1, 2]);
        assert!(commutes(&a, &b), "shared control");
        assert!(commutes(&a, &c), "shared target");
        assert!(!commutes(&a, &d), "control of one is target of the other");
        assert!(!matrix_commutes(&a, &d));
    }

    #[test]
    fn disjoint_gates_commute() {
        let a = inst(Gate::H, &[0]);
        let b = inst(Gate::RX(0.4), &[1]);
        assert!(commutes(&a, &b));
    }

    #[test]
    fn unknown_cases_default_to_false() {
        // H on the shared qubit: no rule proves commutation
        let h = inst(Gate::H, &[0]);
        let cx = inst(Gate::CX, &[0, 1]);
        assert!(!commutes(&h, &cx));
    }

    #[test]
    fn commutes_is_symmetric_on_the_catalog() {
        let catalog = vec![
            inst(Gate::RZ(0.7), &[0]),
            inst(Gate::RX(0.2), &[1]),
            inst(Gate::T, &[0]),
            inst(Gate::H, &[0]),
            inst(Gate::CX, &[0, 1]),
            inst(Gate::CX, &[1, 0]),
            inst(Gate::CZ, &[0, 1]),
            inst(Gate::CP(0.9), &[1, 2]),
        ];
        for a in &catalog {
            for b in &catalog {
                assert_eq!(commutes(a, b), commutes(b, a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn commuting_span_stops_at_first_dependence() {
        // cx(0,1) slides over rz on its control and a disjoint h, then
        // stops at the rx on its control
        let insts = vec![
            inst(Gate::CX, &[0, 1]),
            inst(Gate::RZ(0.5), &[0]),
            inst(Gate::H, &[2]),
            inst(Gate::RX(0.3), &[0]),
            inst(Gate::RZ(0.1), &[1]),
        ];
        assert_eq!(commuting_span(&insts, 0), 3);
        // the trailing rz on qubit 1 slides to the end
        assert_eq!(commuting_span(&insts, 4), 5);
        // an identical CX never commutes with its own copy, so the span
        // boundary is exactly where a cancellation partner can sit
        let pair = vec![inst(Gate::CX, &[0, 1]), inst(Gate::CX, &[0, 1])];
        assert_eq!(commuting_span(&pair, 0), 1);
    }
}
