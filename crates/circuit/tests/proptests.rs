//! Property-based tests for the circuit IR.

use proptest::prelude::*;
use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::Matrix;

/// Strategy: a random gate placement for an `n`-qubit circuit.
fn placement(n: usize) -> impl Strategy<Value = (Gate, Vec<usize>)> {
    let one_q = (0..7, 0..n, -3.0f64..3.0).prop_map(|(kind, q, t)| {
        let gate = match kind {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::S,
            3 => Gate::T,
            4 => Gate::RX(t),
            5 => Gate::RY(t),
            _ => Gate::RZ(t),
        };
        (gate, vec![q])
    });
    let two_q = (0..4, 0..n, 0..n, -3.0f64..3.0).prop_filter_map(
        "distinct qubits",
        |(kind, a, b, t)| {
            if a == b {
                return None;
            }
            let gate = match kind {
                0 => Gate::CX,
                1 => Gate::CZ,
                2 => Gate::SWAP,
                _ => Gate::CP(t),
            };
            Some((gate, vec![a, b]))
        },
    );
    prop_oneof![one_q, two_q]
}

fn random_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(placement(n), 0..max_len).prop_map(move |placements| {
        let mut c = Circuit::new(n);
        for (gate, qubits) in placements {
            c.push(gate, &qubits);
        }
        c
    })
}

proptest! {
    #[test]
    fn circuit_unitaries_are_unitary(c in random_circuit(3, 20)) {
        prop_assert!(c.unitary().is_unitary(1e-9));
    }

    #[test]
    fn inverse_composes_to_identity(c in random_circuit(3, 15)) {
        let mut full = c.clone();
        full.extend(&c.inverse());
        prop_assert!(full.unitary().approx_eq(&Matrix::identity(8), 1e-8));
    }

    #[test]
    fn statevector_preserves_norm(c in random_circuit(3, 25)) {
        let sv = c.statevector();
        let norm: f64 = sv.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unitary_first_column_is_ground_statevector(c in random_circuit(2, 15)) {
        let u = c.unitary();
        let sv = c.statevector();
        for i in 0..4 {
            prop_assert!((u[(i, 0)] - sv[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn depth_bounds(c in random_circuit(4, 30)) {
        prop_assert!(c.depth() <= c.len());
        prop_assert!(c.cnot_depth() <= c.two_qubit_count());
        prop_assert!(c.cx_count() <= c.two_qubit_count());
    }

    #[test]
    fn extend_mapped_preserves_unitary_under_identity_map(c in random_circuit(3, 15)) {
        let mut out = Circuit::new(3);
        out.extend_mapped(&c, &[0, 1, 2]);
        prop_assert_eq!(out, c);
    }

    #[test]
    fn qasm_has_one_line_per_gate(c in random_circuit(3, 20)) {
        let text = qaprox_circuit::qasm::to_qasm(&c);
        let gate_lines = text
            .lines()
            .filter(|l| l.ends_with(';') && !l.starts_with("qreg"))
            .count();
        prop_assert_eq!(gate_lines, c.len());
    }

    #[test]
    fn dagger_is_matrix_adjoint(t in -3.0f64..3.0) {
        for g in [Gate::RX(t), Gate::RY(t), Gate::RZ(t), Gate::P(t), Gate::CP(t), Gate::CRZ(t)] {
            prop_assert!(g.dagger().matrix().approx_eq(&g.matrix().adjoint(), 1e-12));
        }
    }
}
