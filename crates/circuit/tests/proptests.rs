//! Property-style tests for the circuit IR, driven by the in-repo seeded RNG.

use qaprox_circuit::{Circuit, Gate};
use qaprox_linalg::random::{Rng, SplitMix64};
use qaprox_linalg::Matrix;

const CASES: usize = 32;

/// A random gate placement for an `n`-qubit circuit.
fn placement(n: usize, rng: &mut SplitMix64) -> (Gate, Vec<usize>) {
    if rng.gen::<bool>() || n < 2 {
        let t = rng.gen_range(-3.0..3.0);
        let gate = match rng.gen_range(0u8..7) {
            0 => Gate::H,
            1 => Gate::X,
            2 => Gate::S,
            3 => Gate::T,
            4 => Gate::RX(t),
            5 => Gate::RY(t),
            _ => Gate::RZ(t),
        };
        (gate, vec![rng.gen_range(0..n)])
    } else {
        let a = rng.gen_range(0..n);
        let b = loop {
            let b = rng.gen_range(0..n);
            if b != a {
                break b;
            }
        };
        let gate = match rng.gen_range(0u8..4) {
            0 => Gate::CX,
            1 => Gate::CZ,
            2 => Gate::SWAP,
            _ => Gate::CP(rng.gen_range(-3.0..3.0)),
        };
        (gate, vec![a, b])
    }
}

fn random_circuit(n: usize, max_len: usize, rng: &mut SplitMix64) -> Circuit {
    let len = rng.gen_range(0..max_len);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let (gate, qubits) = placement(n, rng);
        c.push(gate, &qubits);
    }
    c
}

#[test]
fn circuit_unitaries_are_unitary() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let c = random_circuit(3, 20, &mut rng);
        assert!(c.unitary().is_unitary(1e-9));
    }
}

#[test]
fn inverse_composes_to_identity() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let c = random_circuit(3, 15, &mut rng);
        let mut full = c.clone();
        full.extend(&c.inverse());
        assert!(full.unitary().approx_eq(&Matrix::identity(8), 1e-8));
    }
}

#[test]
fn statevector_preserves_norm() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let c = random_circuit(3, 25, &mut rng);
        let sv = c.statevector();
        let norm: f64 = sv.iter().map(|z| z.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }
}

#[test]
fn unitary_first_column_is_ground_statevector() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let c = random_circuit(2, 15, &mut rng);
        let u = c.unitary();
        let sv = c.statevector();
        for i in 0..4 {
            assert!((u[(i, 0)] - sv[i]).abs() < 1e-10);
        }
    }
}

#[test]
fn depth_bounds() {
    let mut rng = SplitMix64::seed_from_u64(5);
    for _ in 0..CASES {
        let c = random_circuit(4, 30, &mut rng);
        assert!(c.depth() <= c.len());
        assert!(c.cnot_depth() <= c.two_qubit_count());
        assert!(c.cx_count() <= c.two_qubit_count());
    }
}

#[test]
fn extend_mapped_preserves_unitary_under_identity_map() {
    let mut rng = SplitMix64::seed_from_u64(6);
    for _ in 0..CASES {
        let c = random_circuit(3, 15, &mut rng);
        let mut out = Circuit::new(3);
        out.extend_mapped(&c, &[0, 1, 2]);
        assert_eq!(out, c);
    }
}

#[test]
fn qasm_has_one_line_per_gate() {
    let mut rng = SplitMix64::seed_from_u64(7);
    for _ in 0..CASES {
        let c = random_circuit(3, 20, &mut rng);
        let text = qaprox_circuit::qasm::to_qasm(&c);
        let gate_lines = text
            .lines()
            .filter(|l| l.ends_with(';') && !l.starts_with("qreg"))
            .count();
        assert_eq!(gate_lines, c.len());
    }
}

#[test]
fn dagger_is_matrix_adjoint() {
    let mut rng = SplitMix64::seed_from_u64(8);
    for _ in 0..CASES {
        let t = rng.gen_range(-3.0..3.0);
        for g in [
            Gate::RX(t),
            Gate::RY(t),
            Gate::RZ(t),
            Gate::P(t),
            Gate::CP(t),
            Gate::CRZ(t),
        ] {
            assert!(g.dagger().matrix().approx_eq(&g.matrix().adjoint(), 1e-12));
        }
    }
}
