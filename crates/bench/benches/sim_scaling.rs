//! Simulator performance: statevector vs density matrix vs noisy execution,
//! across qubit counts (the ablation behind choosing per-circuit density
//! matrices + rayon batching over circuits).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaprox::prelude::*;
use std::hint::black_box;

fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..layers {
        for q in 0..n {
            c.u3(0.3 + l as f64 * 0.01, 0.2, -0.4, q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

fn bench_statevector(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("statevector");
    for n in [3usize, 5, 8, 10] {
        let c = layered_circuit(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &c, |b, c| {
            b.iter(|| black_box(qaprox_sim::statevector::probabilities(c)));
        });
    }
    group.finish();
}

fn bench_density_matrix(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("density_matrix_unitary");
    for n in [3usize, 4, 5, 6] {
        let c = layered_circuit(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &c, |b, c| {
            b.iter(|| {
                let mut dm = qaprox_sim::DensityMatrix::ground(c.num_qubits());
                dm.apply_circuit(c);
                black_box(dm.probabilities())
            });
        });
    }
    group.finish();
}

fn bench_noisy_execution(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("noisy_execution");
    group.sample_size(20);
    for n in [3usize, 4, 5] {
        let cal = devices::ourense().induced(&(0..n).collect::<Vec<_>>());
        let model = NoiseModel::from_calibration(cal);
        let c = layered_circuit(n, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &c, |b, c| {
            b.iter(|| black_box(model.probabilities(c)));
        });
    }
    group.finish();
}

fn bench_batch_parallelism(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("batch_64_circuits");
    group.sample_size(10);
    let cal = devices::ourense().induced(&[0, 1, 2]);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let circuits: Vec<Circuit> = (0..64).map(|i| layered_circuit(3, 3 + i % 5)).collect();
    group.bench_function("rayon_batch", |b| {
        b.iter(|| black_box(backend.run_batch(&circuits)));
    });
    group.finish();
}

fn bench_trajectory_vs_density(crit: &mut Criterion) {
    // ablation: density-matrix exactness vs trajectory sampling cost
    let mut group = crit.benchmark_group("noisy_paths_3q");
    group.sample_size(10);
    let cal = devices::ourense().induced(&[0, 1, 2]);
    let model = NoiseModel::from_calibration(cal);
    let c = layered_circuit(3, 10);
    group.bench_function("density_matrix", |b| {
        b.iter(|| black_box(model.probabilities(&c)));
    });
    group.bench_function("trajectories_x100", |b| {
        b.iter(|| black_box(qaprox_sim::trajectory_probabilities(&c, &model, 100, 1)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_statevector,
    bench_density_matrix,
    bench_noisy_execution,
    bench_batch_parallelism,
    bench_trajectory_vs_density
);
criterion_main!(benches);
