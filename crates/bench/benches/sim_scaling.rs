//! Simulator performance: statevector vs density matrix vs noisy execution,
//! across qubit counts (the ablation behind choosing per-circuit density
//! matrices + batched parallel execution over circuits).

use qaprox::prelude::*;
use qaprox_bench::timing::{bench, header};

fn layered_circuit(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for l in 0..layers {
        for q in 0..n {
            c.u3(0.3 + l as f64 * 0.01, 0.2, -0.4, q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

fn main() {
    header("sim_scaling");

    for n in [3usize, 5, 8, 10] {
        let c = layered_circuit(n, 10);
        bench(&format!("statevector/{n}"), || {
            qaprox_sim::statevector::probabilities(&c)
        });
    }

    for n in [3usize, 4, 5, 6] {
        let c = layered_circuit(n, 10);
        bench(&format!("density_matrix_unitary/{n}"), || {
            let mut dm = qaprox_sim::DensityMatrix::ground(c.num_qubits());
            dm.apply_circuit(&c);
            dm.probabilities()
        });
    }

    for n in [3usize, 4, 5] {
        let cal = devices::ourense().induced(&(0..n).collect::<Vec<_>>());
        let model = NoiseModel::from_calibration(cal);
        let c = layered_circuit(n, 10);
        bench(&format!("noisy_execution/{n}"), || model.probabilities(&c));
    }

    {
        let cal = devices::ourense().induced(&[0, 1, 2]);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let circuits: Vec<Circuit> = (0..64).map(|i| layered_circuit(3, 3 + i % 5)).collect();
        bench("batch_64_circuits/parallel_batch", || {
            backend.run_batch(&circuits)
        });
    }

    {
        // ablation: density-matrix exactness vs trajectory sampling cost
        let cal = devices::ourense().induced(&[0, 1, 2]);
        let model = NoiseModel::from_calibration(cal);
        let c = layered_circuit(3, 10);
        bench("noisy_paths_3q/density_matrix", || model.probabilities(&c));
        bench("noisy_paths_3q/trajectories_x100", || {
            qaprox_sim::trajectory_probabilities(&c, &model, 100, 1)
        });
    }
}
