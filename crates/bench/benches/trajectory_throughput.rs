//! Trajectory-backend throughput: per-shot cost, compile (gate-fusion)
//! cost, and whole-job cost across circuit widths on the Toronto 27q
//! heavy-hex calibration.
//!
//! Output is CSV; the checked-in snapshot lives at
//! `artifacts/trajectory_throughput.csv` (regenerate with
//! `cargo bench -p qaprox-bench --bench trajectory_throughput`), with a
//! machine-readable summary in `BENCH_trajectory.json`. `QAPROX_QUICK=1`
//! shrinks the run for CI smoke.
//!
//! What the rows mean:
//! * `compile_{n}q` — one `FusedProgram::compile` (gate fusion + Kraus
//!   table construction); paid once per circuit, not per shot;
//! * `shot_{n}q` — one trajectory through the fused program, including
//!   the `|0…0⟩` state reset (the per-shot marginal cost);
//! * `job_{n}q/shots=S` — a full `TrajectoryBackend::probabilities` call
//!   (compile + S shots + accumulation + readout confusion).
//!
//! * `batch_job_{n}q/cands=K` — K candidate circuits scored in ONE
//!   shot-batched pass (`TrajectoryBackend::probabilities_batch`), vs
//! * `solo_jobs_{n}q/cands=K` — the same K candidates scored one at a
//!   time; the ratio is the wide-run batching win.
//!
//! Commentary lines record the selected amplitude kernel (`simd` on AVX2
//! hosts, `scalar` under `QAPROX_SIMD=0` or on other ISAs), the fusion
//! ratio (source gates per fused op), and the shots/sec each width
//! sustains, so wide-device budgets (27q/65q runs) can be estimated from
//! the snapshot. Run the bench twice — default and `QAPROX_SIMD=0` — to
//! measure the SIMD speedup itself; both legs are recorded side by side in
//! `BENCH_trajectory.json`.

use qaprox_algos::tfim::{tfim_circuit, TfimParams};
use qaprox_bench::timing::{bench, header};
use qaprox_device::devices::toronto;
use qaprox_linalg::random::SplitMix64;
use qaprox_linalg::Complex64;
use qaprox_sim::{FusedProgram, NoiseModel, TrajectoryBackend};

fn main() {
    header("trajectory_throughput");
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v == "1");

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# host_cores={host_cores} (shot-level scaling is bounded by this)");
    println!(
        "# kernel={} (runtime dispatch; QAPROX_SIMD=0 forces scalar)",
        qaprox_linalg::selected_kernel()
    );

    let sizes: &[usize] = if quick { &[3, 8] } else { &[3, 8, 14, 18] };
    let trotter_steps = 4;
    let device = toronto();

    for &n in sizes {
        // a connected n-qubit chain out of the 27q heavy-hex, so every
        // nearest-neighbour TFIM coupling is a calibrated edge
        let path = device
            .topology
            .connected_path(n)
            .expect("toronto supports chains well past these widths");
        let cal = device.induced(&path);
        let model = NoiseModel::from_calibration(cal);
        let circuit = tfim_circuit(&TfimParams::paper_defaults(n), trotter_steps);

        let program = FusedProgram::compile(&circuit, &model);
        println!(
            "# tfim_{n}q: {} source gates -> {} fused ops ({:.2} gates/op)",
            circuit.len(),
            program.len(),
            circuit.len() as f64 / program.len().max(1) as f64
        );

        bench(&format!("compile_{n}q"), || {
            FusedProgram::compile(&circuit, &model)
        });

        // per-shot marginal cost: reuse one state buffer, reset each shot
        let mut state = vec![Complex64::ZERO; circuit.dim()];
        let mut rng = SplitMix64::seed_from_u64(0x7261_6A00 ^ n as u64);
        let m = bench(&format!("shot_{n}q"), || {
            program.run_shot(&mut state, &mut rng);
            state[0]
        });
        let shots_per_sec = 1e9 / m.median.as_nanos().max(1) as f64;
        println!("# shot_{n}q: {shots_per_sec:.1} shots/sec");

        // whole jobs only at the narrow widths — wide-job cost is
        // shots x shot_{n}q + compile_{n}q and is reported above
        if n <= 8 {
            let shots = if quick { 16 } else { 64 };
            let backend = TrajectoryBackend::with_shots(model.clone(), shots);
            bench(&format!("job_{n}q/shots={shots}"), || {
                backend.probabilities(&circuit, 7)
            });

            // multi-candidate scoring, the serve wide-run shape: the same
            // K step-count truncations batched vs evaluated one at a time
            let cands = 4usize;
            let circuits: Vec<_> = (1..=cands)
                .map(|s| tfim_circuit(&TfimParams::paper_defaults(n), s))
                .collect();
            bench(&format!("batch_job_{n}q/cands={cands}"), || {
                backend.probabilities_batch(&circuits).unwrap()
            });
            bench(&format!("solo_jobs_{n}q/cands={cands}"), || {
                circuits
                    .iter()
                    .enumerate()
                    .map(|(i, c)| backend.probabilities(c, i as u64))
                    .collect::<Vec<_>>()
            });
        }
    }
}
