//! Synthesis throughput vs worker-thread count: full QSearch runs on random
//! 3q/4q targets at 1/2/4/8 threads, plus the structure-memo hit counters.
//!
//! Output is CSV; the checked-in snapshot lives at
//! `artifacts/synth_throughput.csv` (regenerate with
//! `cargo bench -p qaprox-bench --features parallel --bench synth_throughput`).
//! `QAPROX_QUICK=1` shrinks the run for CI smoke. Speedup is bounded by the
//! host's physical cores — the snapshot records the host core count in a
//! comment so flat curves on small machines read as what they are.
//!
//! Satellite note (allocation behavior this PR changed):
//! * `DensityMatrix::apply_kraus_{1q,2q}` previously cloned the full `rho`
//!   once per Kraus operator (4 clones per depolarizing channel, 32x32
//!   complex each at 5 qubits); they now fill a single scratch accumulator
//!   via `accum_conj_{1q,2q}` — exactly one allocation per channel
//!   application.
//! * `HsObjective` evaluations now reuse a thread-local
//!   `InstantiateWorkspace` (prefix/suffix/scratch matrices) — zero heap
//!   allocation per objective evaluation after warmup.

use qaprox_bench::timing::header;
use qaprox_device::Topology;
use qaprox_linalg::parallel::set_max_threads;
use qaprox_linalg::random::{haar_unitary, SplitMix64};
use qaprox_synth::{qsearch, QSearchConfig};
use std::time::Instant;

fn main() {
    header("synth_throughput");
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v == "1");

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# host_cores={host_cores} (thread scaling is bounded by this)");

    let sizes: &[usize] = if quick { &[3] } else { &[3, 4] };
    let threads: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let reps = if quick { 1 } else { 3 };

    for &n in sizes {
        let mut rng = SplitMix64::seed_from_u64(42 + n as u64);
        let target = haar_unitary(1 << n, &mut rng);
        let topo = Topology::linear(n);
        let cfg = QSearchConfig {
            max_nodes: if quick {
                20
            } else if n == 3 {
                60
            } else {
                40
            },
            ..Default::default()
        };

        let mut baseline_ns: u128 = 0;
        for &t in threads {
            set_max_threads(t);
            let mut runs: Vec<u128> = (0..reps)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(qsearch(&target, &topo, &cfg));
                    t0.elapsed().as_nanos()
                })
                .collect();
            runs.sort_unstable();
            let min = runs[0];
            let median = runs[runs.len() / 2];
            let mean = runs.iter().sum::<u128>() / runs.len() as u128;
            println!("qsearch_{n}q/threads={t},{reps},{min},{median},{mean}");
            if t == 1 {
                baseline_ns = median;
            } else {
                let speedup = baseline_ns as f64 / median as f64;
                println!("# qsearch_{n}q threads={t}: speedup {speedup:.2}x vs 1 thread");
            }
        }
        set_max_threads(0);

        // memo counters for one representative run (thread-count invariant)
        set_max_threads(1);
        let out = qsearch(&target, &topo, &cfg);
        set_max_threads(0);
        println!(
            "# qsearch_{n}q memo: hits={} misses={}",
            out.stats.memo_hits, out.stats.memo_misses
        );
    }
}
