//! Metric evaluation cost: HS distances and distribution divergences at the
//! sizes the experiments use.

use qaprox::prelude::*;
use qaprox_bench::timing::{bench, header};
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::Rng;
use qaprox_linalg::random::SplitMix64 as StdRng;

fn main() {
    header("metrics_bench");

    let mut rng = StdRng::seed_from_u64(4);
    for n in [2usize, 3, 4, 5] {
        let a = haar_unitary(1 << n, &mut rng);
        let b = haar_unitary(1 << n, &mut rng);
        bench(&format!("hs_distance/{n}"), || hs_distance(&a, &b));
    }

    let mut rng = StdRng::seed_from_u64(5);
    let p: Vec<f64> = (0..32).map(|_| rng.gen::<f64>()).collect();
    let q: Vec<f64> = (0..32).map(|_| rng.gen::<f64>()).collect();
    bench("divergences/js_distance_32", || js_distance(&p, &q));
    bench("divergences/magnetization_32", || magnetization(&p));

    for n in [3usize, 4, 5] {
        let c = qaprox_algos::mct::mct_reference(n);
        bench(&format!("circuit_unitary/{n}"), || c.unitary());
    }
}
