//! Metric evaluation cost: HS distances and distribution divergences at the
//! sizes the experiments use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaprox::prelude::*;
use qaprox_linalg::random::haar_unitary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_hs_distance(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("hs_distance");
    let mut rng = StdRng::seed_from_u64(4);
    for n in [2usize, 3, 4, 5] {
        let a = haar_unitary(1 << n, &mut rng);
        let b = haar_unitary(1 << n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bch, (a, b)| {
            bch.iter(|| black_box(hs_distance(a, b)));
        });
    }
    group.finish();
}

fn bench_divergences(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("divergences");
    let mut rng = StdRng::seed_from_u64(5);
    let p: Vec<f64> = (0..32).map(|_| rng.gen::<f64>()).collect();
    let q: Vec<f64> = (0..32).map(|_| rng.gen::<f64>()).collect();
    group.bench_function("js_distance_32", |b| {
        b.iter(|| black_box(js_distance(&p, &q)));
    });
    group.bench_function("magnetization_32", |b| {
        b.iter(|| black_box(magnetization(&p)));
    });
    group.finish();
}

fn bench_unitary_construction(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("circuit_unitary");
    for n in [3usize, 4, 5] {
        let c = qaprox_algos::mct::mct_reference(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &c, |b, c| {
            b.iter(|| black_box(c.unitary()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hs_distance, bench_divergences, bench_unitary_construction);
criterion_main!(benches);
