//! Throughput of the static-analysis layer: CircuitDag construction, the
//! dataflow lints, and the noise-budget interpreter, across circuit shapes
//! from the paper's workloads plus a wide 16-qubit stress case.
//!
//! The point of the estimator is to be cheap enough to pre-rank whole
//! populations before any density-matrix simulation, so the commentary
//! reports gates/sec alongside the raw per-call timings. Output is CSV;
//! the checked-in snapshot lives at `artifacts/analyze_throughput.csv`
//! (regenerate with `cargo bench -p qaprox-bench --bench analyze_throughput`).

use qaprox_algos::{grover_circuit, optimal_iterations, tfim_circuit, TfimParams};
use qaprox_bench::timing::{bench, header};
use qaprox_circuit::Circuit;
use qaprox_device::devices::{ourense, toronto};
use qaprox_verify::{analyze, find_cancellations, AnalyzeOptions, CircuitDag};

fn wide_ladder(num_qubits: usize, rounds: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for r in 0..rounds {
        for q in 0..num_qubits {
            c.rz(0.1 * (r + q) as f64, q);
        }
        for q in 0..num_qubits - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

fn main() {
    header("analyze_throughput");

    let params = TfimParams::paper_defaults(3);
    let cases: Vec<(&str, Circuit)> = vec![
        ("tfim3q/4steps", tfim_circuit(&params, 4)),
        ("tfim3q/16steps", tfim_circuit(&params, 16)),
        ("grover3q", grover_circuit(3, 7, optimal_iterations(3))),
        ("ladder16q/8rounds", wide_ladder(16, 8)),
    ];

    let cal3 = ourense().induced(&[0, 1, 2]);
    let cal16 = toronto().induced(&(0..16).collect::<Vec<_>>());
    let opts = AnalyzeOptions::default();

    for (name, circuit) in &cases {
        let cal = if circuit.num_qubits() > 3 {
            &cal16
        } else {
            &cal3
        };
        let gates = circuit.len() as f64;

        let dag = bench(&format!("dag_build/{name}"), || {
            CircuitDag::from_circuit(circuit)
        });
        let built = CircuitDag::from_circuit(circuit);
        let lints = bench(&format!("cancellations/{name}"), || {
            find_cancellations(&built)
        });
        let full = bench(&format!("analyze/{name}"), || analyze(circuit, cal, &opts));

        let rate = gates / full.median.as_secs_f64();
        println!(
            "# {name}: {} gates, dag {:?}, cancellations {:?}, analyze {:?} ({rate:.0} gates/s)",
            circuit.len(),
            dag.median,
            lints.median,
            full.median
        );
    }
}
