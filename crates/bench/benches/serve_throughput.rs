//! Job-service throughput: jobs/sec through the full TCP stack (server,
//! scheduler, store) at several worker counts, cold store vs warm store,
//! plus the per-job round-trip latency of a cache hit.
//!
//! Output is CSV; the checked-in snapshot lives at
//! `artifacts/serve_throughput.csv` (regenerate with
//! `cargo bench -p qaprox-bench --bench serve_throughput`).

use qaprox_bench::timing::{bench, header};
use qaprox_serve::{Client, JobSpec, SchedulerConfig, Server, ServerConfig, SynthSpec};
use qaprox_store::Store;
use std::sync::Arc;
use std::time::{Duration, Instant};

const JOBS: usize = 16;
const WAIT: Duration = Duration::from_secs(300);

fn tiny(seed: u64) -> JobSpec {
    JobSpec::Synth(SynthSpec {
        workload: "tfim".into(),
        qubits: 2,
        steps: 2,
        max_cnots: 3,
        max_nodes: 25,
        max_hs: 0.4,
        seed,
        deadline_ms: None,
    })
}

fn fresh_store(tag: &str) -> Arc<Store> {
    let dir = std::env::temp_dir().join(format!(
        "qaprox-serve-throughput-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    Arc::new(Store::open(dir).expect("temp store opens"))
}

fn start_server(workers: usize, store: Arc<Store>) -> Server {
    Server::start(
        ServerConfig {
            scheduler: SchedulerConfig {
                workers,
                queue_capacity: JOBS * 2,
                ..Default::default()
            },
            ..Default::default()
        },
        Some(store),
    )
    .expect("server starts")
}

/// Submits `JOBS` distinct jobs and waits for all of them; returns jobs/sec.
fn drain(client: &mut Client) -> f64 {
    let t0 = Instant::now();
    let ids: Vec<u64> = (0..JOBS)
        .map(|i| client.submit(&tiny(i as u64)).expect("submit accepted").0)
        .collect();
    for id in ids {
        client.wait_for_result(id, WAIT).expect("job completes");
    }
    JOBS as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    header("serve_throughput");

    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let mut worker_counts = vec![1usize, 4, max_workers];
    worker_counts.dedup();
    worker_counts.retain(|&w| w <= max_workers || w == 1);

    // Throughput rows use the shared CSV shape with iters=JOBS and the
    // per-job wall time in the ns columns; jobs/sec is printed alongside
    // as a comment for direct reading.
    for &workers in &worker_counts {
        let store = fresh_store(&format!("w{workers}"));
        let server = start_server(workers, Arc::clone(&store));
        let addr = server.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("client connects");

        let cold = drain(&mut client); // synthesizes every job
        let warm = drain(&mut client); // identical resubmits: store hits
        let per_job_cold = (1e9 / cold) as u64;
        let per_job_warm = (1e9 / warm) as u64;
        println!(
            "throughput/cold/workers={workers},{JOBS},{per_job_cold},{per_job_cold},{per_job_cold}"
        );
        println!(
            "throughput/warm/workers={workers},{JOBS},{per_job_warm},{per_job_warm},{per_job_warm}"
        );
        println!("# workers={workers}: cold {cold:.1} jobs/s, warm {warm:.1} jobs/s");

        server.shutdown();
    }

    // Per-request latency of a cache hit through the full TCP round trip.
    let store = fresh_store("latency");
    let server = start_server(2, Arc::clone(&store));
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("client connects");
    let (id, _, _) = client.submit(&tiny(0)).expect("seed job accepted");
    client
        .wait_for_result(id, WAIT)
        .expect("seed job completes");
    bench("cache_hit_round_trip", || {
        let (id, _, _) = client.submit(&tiny(0)).expect("resubmit accepted");
        client.wait_for_result(id, WAIT).expect("hit completes")
    });
    server.shutdown();
}
