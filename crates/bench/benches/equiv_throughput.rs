//! Throughput of the certified noisy equivalence checker (the QA5xx
//! family): how fast `check_equivalence` disposes of a circuit pair, across
//! the regimes that matter for its consumers.
//!
//! The checker's job is to be cheap enough that synthesis admission and the
//! serve fast path can afford to run it on *every* candidate before any
//! density-matrix work, so the commentary reports gate-pairs/sec (total
//! gates across both sides per call) alongside the raw timings. Output is
//! CSV; the checked-in snapshot lives at `artifacts/equiv_throughput.csv`
//! (regenerate with `cargo bench -p qaprox-bench --bench equiv_throughput`).

use qaprox_algos::{grover_circuit, optimal_iterations, tfim_circuit, TfimParams};
use qaprox_bench::timing::{bench, header};
use qaprox_circuit::Circuit;
use qaprox_device::devices::{ourense, toronto};
use qaprox_verify::{check_equivalence, EquivOptions};

/// One greedy left-to-right pass of adjacent disjoint-support swaps — the
/// same reorder the `tfim-r` serve workload uses, reproduced here so the
/// bench covers the tier-1 full-discharge regime the fast path relies on.
fn commuting_reorder(c: &Circuit) -> Circuit {
    let mut insts: Vec<_> = c.instructions().to_vec();
    let mut i = 0;
    while i + 1 < insts.len() {
        let disjoint = insts[i]
            .qubits
            .iter()
            .all(|q| !insts[i + 1].qubits.contains(q));
        if disjoint {
            insts.swap(i, i + 1);
            i += 2;
        } else {
            i += 1;
        }
    }
    let mut out = Circuit::new(c.num_qubits());
    for inst in &insts {
        out.push(inst.gate.clone(), &inst.qubits);
    }
    out
}

fn wide_ladder(num_qubits: usize, rounds: usize) -> Circuit {
    let mut c = Circuit::new(num_qubits);
    for r in 0..rounds {
        for q in 0..num_qubits {
            c.rz(0.1 * (r + q) as f64, q);
        }
        for q in 0..num_qubits - 1 {
            c.cx(q, q + 1);
        }
    }
    c
}

fn main() {
    header("equiv_throughput");
    let quick = std::env::var("QAPROX_QUICK").is_ok_and(|v| v == "1");
    let deep_steps = if quick { 8 } else { 16 };

    let params = TfimParams::paper_defaults(3);
    let tfim4 = tfim_circuit(&params, 4);
    let tfim_deep = tfim_circuit(&params, deep_steps);
    let grover = grover_circuit(3, 7, optimal_iterations(3));
    let ladder = wide_ladder(16, if quick { 4 } else { 8 });

    // (name, side A, side B): identical = pure tier-1 discharge; reordered =
    // the fast-path regime (discharge across disjoint neighbours); distinct =
    // worst case, full DP alignment + exact ideal-TV cross-check; wide =
    // residual path only (16 qubits is past the ideal-TV width cap)
    let cases: Vec<(&str, &Circuit, Circuit)> = vec![
        ("identical/tfim3q_4steps", &tfim4, tfim4.clone()),
        ("reordered/tfim3q_4steps", &tfim4, commuting_reorder(&tfim4)),
        (
            "reordered/tfim3q_deep",
            &tfim_deep,
            commuting_reorder(&tfim_deep),
        ),
        ("distinct/tfim_vs_grover_3q", &tfim4, grover.clone()),
        ("wide/ladder16q", &ladder, commuting_reorder(&ladder)),
    ];

    let cal3 = ourense().induced(&[0, 1, 2]);
    let cal16 = toronto().induced(&(0..16).collect::<Vec<_>>());
    let opts = EquivOptions::default();

    for (name, a, b) in &cases {
        let cal = if a.num_qubits() > 3 { &cal16 } else { &cal3 };
        let m = bench(&format!("check/{name}"), || {
            check_equivalence(a, b, cal, &opts)
        });
        let report = check_equivalence(a, b, cal, &opts);
        let pairs = (a.len() + b.len()) as f64;
        let rate = pairs / m.median.as_secs_f64();
        println!(
            "# {name}: {}+{} gates, verdict {}, bound {:.3e}, check {:?} ({rate:.0} gate-pairs/s)",
            a.len(),
            b.len(),
            report.verdict.as_str(),
            report.bound,
            m.median
        );
    }
}
