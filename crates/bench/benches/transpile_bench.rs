//! Transpiler performance: basis translation, routing, and full level-3
//! pipelines on real device topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaprox::prelude::*;
use qaprox_algos::mct::mct_reference;
use std::hint::black_box;

fn bench_basis_translation(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("to_basis");
    for n in [3usize, 4, 5] {
        let c = mct_reference(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &c, |b, c| {
            b.iter(|| black_box(qaprox_transpile::to_basis(c)));
        });
    }
    group.finish();
}

fn bench_full_transpile(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("transpile_level3_toronto");
    group.sample_size(20);
    let cal = devices::toronto();
    for n in [3usize, 4] {
        let c = mct_reference(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &c, |b, c| {
            b.iter(|| black_box(transpile(c, &cal, OptLevel::L3, None)));
        });
    }
    group.finish();
}

fn bench_optimization_passes(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("peephole");
    let mut c = Circuit::new(4);
    for i in 0..50 {
        c.rz(0.1, i % 4).rx(0.2, (i + 1) % 4).cx(i % 3, i % 3 + 1);
        if i % 7 == 0 {
            c.cx(i % 3, i % 3 + 1); // cancellable pair
        }
    }
    group.bench_function("optimize_200_gates", |b| {
        b.iter(|| black_box(qaprox_transpile::optimize(&c)));
    });
    group.finish();
}

criterion_group!(benches, bench_basis_translation, bench_full_transpile, bench_optimization_passes);
criterion_main!(benches);
