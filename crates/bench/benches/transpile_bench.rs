//! Transpiler performance: basis translation, routing, and full level-3
//! pipelines on real device topologies.

use qaprox::prelude::*;
use qaprox_algos::mct::mct_reference;
use qaprox_bench::timing::{bench, header};

fn main() {
    header("transpile_bench");

    for n in [3usize, 4, 5] {
        let c = mct_reference(n);
        bench(&format!("to_basis/{n}"), || qaprox_transpile::to_basis(&c));
    }

    let cal = devices::toronto();
    for n in [3usize, 4] {
        let c = mct_reference(n);
        bench(&format!("transpile_level3_toronto/{n}"), || {
            transpile(&c, &cal, OptLevel::L3, None)
        });
    }

    let mut c = Circuit::new(4);
    for i in 0..50 {
        c.rz(0.1, i % 4).rx(0.2, (i + 1) % 4).cx(i % 3, i % 3 + 1);
        if i % 7 == 0 {
            c.cx(i % 3, i % 3 + 1); // cancellable pair
        }
    }
    bench("peephole/optimize_200_gates", || {
        qaprox_transpile::optimize(&c)
    });
}
