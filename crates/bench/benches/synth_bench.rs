//! Synthesis performance: instantiation cost vs parameter count, QSearch
//! node rate, QFactor sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qaprox::prelude::*;
use qaprox_linalg::random::haar_unitary;
use qaprox_synth::{instantiate, qfactor_optimize, InstantiateConfig, QFactorConfig, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_instantiation(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("instantiation");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(1);
    for blocks in [1usize, 3, 5] {
        let mut s = Structure::root(3);
        for i in 0..blocks {
            let (c, t) = if i % 2 == 0 { (0, 1) } else { (1, 2) };
            s = s.extended(c, t);
        }
        let target = haar_unitary(8, &mut rng);
        let cfg = InstantiateConfig { starts: 1, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(blocks), &s, |b, s| {
            b.iter(|| {
                black_box(instantiate(s, &target, &vec![0.1; s.num_params()], &cfg))
            });
        });
    }
    group.finish();
}

fn bench_qsearch(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("qsearch_2q");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(2);
    let target = haar_unitary(4, &mut rng);
    let topo = Topology::linear(2);
    let cfg = QSearchConfig {
        max_cnots: 3,
        max_nodes: 40,
        ..Default::default()
    };
    group.bench_function("random_su4", |b| {
        b.iter(|| black_box(qsearch(&target, &topo, &cfg)));
    });
    group.finish();
}

fn bench_qfactor(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("qfactor");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(3);
    let target = haar_unitary(8, &mut rng);
    let s = Structure::root(3).extended(0, 1).extended(1, 2).extended(0, 1);
    let start = s.to_circuit(&vec![0.2; s.num_params()]);
    let cfg = QFactorConfig { max_sweeps: 20, ..Default::default() };
    group.bench_function("20_sweeps_3q", |b| {
        b.iter(|| black_box(qfactor_optimize(&start, &target, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_instantiation, bench_qsearch, bench_qfactor);
criterion_main!(benches);
