//! Synthesis performance: instantiation cost vs parameter count, QSearch
//! node rate, QFactor sweeps.

use qaprox::prelude::*;
use qaprox_bench::timing::{bench, header};
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_synth::{instantiate, qfactor_optimize, InstantiateConfig, QFactorConfig, Structure};

fn main() {
    header("synth_bench");

    let mut rng = StdRng::seed_from_u64(1);
    for blocks in [1usize, 3, 5] {
        let mut s = Structure::root(3);
        for i in 0..blocks {
            let (c, t) = if i % 2 == 0 { (0, 1) } else { (1, 2) };
            s = s.extended(c, t);
        }
        let target = haar_unitary(8, &mut rng);
        let cfg = InstantiateConfig {
            starts: 1,
            ..Default::default()
        };
        bench(&format!("instantiation/{blocks}"), || {
            instantiate(&s, &target, &vec![0.1; s.num_params()], &cfg)
        });
    }

    let mut rng = StdRng::seed_from_u64(2);
    let target = haar_unitary(4, &mut rng);
    let topo = Topology::linear(2);
    let cfg = QSearchConfig {
        max_cnots: 3,
        max_nodes: 40,
        ..Default::default()
    };
    bench("qsearch_2q/random_su4", || qsearch(&target, &topo, &cfg));

    let mut rng = StdRng::seed_from_u64(3);
    let target = haar_unitary(8, &mut rng);
    let s = Structure::root(3)
        .extended(0, 1)
        .extended(1, 2)
        .extended(0, 1);
    let start = s.to_circuit(&vec![0.2; s.num_params()]);
    let cfg = QFactorConfig {
        max_sweeps: 20,
        ..Default::default()
    };
    bench("qfactor/20_sweeps_3q", || {
        qfactor_optimize(&start, &target, &cfg)
    });
}
