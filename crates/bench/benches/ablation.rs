//! Ablations for the design choices called out in DESIGN.md:
//! analytic-gradient L-BFGS vs derivative-free Nelder-Mead instantiation,
//! and pure-A* vs beam-capped QSearch frontiers.

use qaprox::prelude::*;
use qaprox_bench::timing::{bench, header};
use qaprox_linalg::random::haar_unitary;
use qaprox_linalg::random::SplitMix64 as StdRng;
use qaprox_opt::{nelder_mead, NelderMeadParams};
use qaprox_synth::{instantiate, HsObjective, InstantiateConfig, Structure};

fn main() {
    header("ablation");

    {
        let mut rng = StdRng::seed_from_u64(6);
        let target = haar_unitary(4, &mut rng);
        let s = Structure::root(2)
            .extended(0, 1)
            .extended(1, 0)
            .extended(0, 1);
        let x0 = vec![0.1; s.num_params()];

        let cfg = InstantiateConfig {
            starts: 1,
            ..Default::default()
        };
        bench("ablation_optimizer/lbfgs_analytic", || {
            instantiate(&s, &target, &x0, &cfg)
        });

        let obj = HsObjective::new(&s, &target);
        let params = NelderMeadParams {
            max_evals: 4000,
            ..Default::default()
        };
        bench("ablation_optimizer/nelder_mead", || {
            nelder_mead(&|x: &[f64]| obj.distance(x), &x0, &params)
        });
    }

    {
        let mut rng = StdRng::seed_from_u64(7);
        let target = haar_unitary(8, &mut rng);
        let topo = Topology::linear(3);
        for (label, beam) in [
            ("beam_2", 2usize),
            ("beam_8", 8),
            ("pure_astar", usize::MAX),
        ] {
            let cfg = QSearchConfig {
                max_cnots: 3,
                max_nodes: 60,
                beam_width: beam,
                ..Default::default()
            };
            bench(&format!("ablation_frontier/{label}"), || {
                qsearch(&target, &topo, &cfg)
            });
        }
    }

    {
        // The QSearch frontier improvement: expanding one node per
        // (depth, distance) class escapes instantiation plateaus. Measures
        // search cost with and without (quality difference is asserted in
        // tests; here we measure the node-rate cost).
        let target = qaprox_algos::grover::paper_grover().unitary();
        let topo = Topology::linear(3);
        for (label, pruning) in [("with_pruning", true), ("without_pruning", false)] {
            let cfg = QSearchConfig {
                max_cnots: 6,
                max_nodes: 80,
                beam_width: 4,
                diversity_pruning: pruning,
                ..Default::default()
            };
            bench(&format!("ablation_diversity/{label}"), || {
                qsearch(&target, &topo, &cfg)
            });
        }
    }

    {
        // JS-vs-HS as the selection metric (supports Obs. 2): measures the
        // cost of scoring a population by output metric instead of process
        // metric.
        let mut rng = StdRng::seed_from_u64(8);
        let target = haar_unitary(8, &mut rng);
        let topo = Topology::linear(3);
        let cfg = QSearchConfig {
            max_cnots: 3,
            max_nodes: 30,
            ..Default::default()
        };
        let out = qsearch(&target, &topo, &cfg);
        let cal = devices::ourense().induced(&[0, 1, 2]);
        let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
        let ideal = qaprox_sim::statevector::probabilities(&out.best.circuit);

        bench("ablation_selection/score_by_hs", || {
            out.intermediates.iter().map(|c| c.hs_distance).sum::<f64>()
        });
        bench("ablation_selection/score_by_js_output", || {
            out.intermediates
                .iter()
                .map(|c| js_distance(&backend.probabilities(&c.circuit, 0), &ideal))
                .sum::<f64>()
        });
    }
}
