//! Ablations for the design choices called out in DESIGN.md:
//! analytic-gradient L-BFGS vs derivative-free Nelder-Mead instantiation,
//! and pure-A* vs beam-capped QSearch frontiers.

use criterion::{criterion_group, criterion_main, Criterion};
use qaprox::prelude::*;
use qaprox_linalg::random::haar_unitary;
use qaprox_opt::{nelder_mead, NelderMeadParams};
use qaprox_synth::{instantiate, HsObjective, InstantiateConfig, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn ablation_optimizer(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("ablation_optimizer");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    let target = haar_unitary(4, &mut rng);
    let s = Structure::root(2).extended(0, 1).extended(1, 0).extended(0, 1);
    let x0 = vec![0.1; s.num_params()];

    group.bench_function("lbfgs_analytic", |b| {
        let cfg = InstantiateConfig { starts: 1, ..Default::default() };
        b.iter(|| black_box(instantiate(&s, &target, &x0, &cfg)));
    });
    group.bench_function("nelder_mead", |b| {
        let obj = HsObjective::new(&s, &target);
        let params = NelderMeadParams { max_evals: 4000, ..Default::default() };
        b.iter(|| black_box(nelder_mead(&|x: &[f64]| obj.distance(x), &x0, &params)));
    });
    group.finish();
}

fn ablation_frontier(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("ablation_frontier");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let target = haar_unitary(8, &mut rng);
    let topo = Topology::linear(3);
    for (label, beam) in [("beam_2", 2usize), ("beam_8", 8), ("pure_astar", usize::MAX)] {
        let cfg = QSearchConfig {
            max_cnots: 3,
            max_nodes: 60,
            beam_width: beam,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| black_box(qsearch(&target, &topo, &cfg)));
        });
    }
    group.finish();
}

fn ablation_diversity_pruning(crit: &mut Criterion) {
    // The QSearch frontier improvement: expanding one node per
    // (depth, distance) class escapes instantiation plateaus. Measures
    // search cost with and without (quality difference is asserted in
    // tests; here we measure the node-rate cost).
    let mut group = crit.benchmark_group("ablation_diversity");
    group.sample_size(10);
    let target = qaprox_algos::grover::paper_grover().unitary();
    let topo = Topology::linear(3);
    for (label, pruning) in [("with_pruning", true), ("without_pruning", false)] {
        let cfg = QSearchConfig {
            max_cnots: 6,
            max_nodes: 80,
            beam_width: 4,
            diversity_pruning: pruning,
            ..Default::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| black_box(qsearch(&target, &topo, &cfg)));
        });
    }
    group.finish();
}

fn ablation_selection_metric(crit: &mut Criterion) {
    // JS-vs-HS as the selection metric (supports Obs. 2): measures the cost
    // of scoring a population by output metric instead of process metric.
    let mut group = crit.benchmark_group("ablation_selection");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(8);
    let target = haar_unitary(8, &mut rng);
    let topo = Topology::linear(3);
    let cfg = QSearchConfig { max_cnots: 3, max_nodes: 30, ..Default::default() };
    let out = qsearch(&target, &topo, &cfg);
    let cal = devices::ourense().induced(&[0, 1, 2]);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));
    let ideal = qaprox_sim::statevector::probabilities(&out.best.circuit);

    group.bench_function("score_by_hs", |b| {
        b.iter(|| {
            let total: f64 = out.intermediates.iter().map(|c| c.hs_distance).sum();
            black_box(total)
        });
    });
    group.bench_function("score_by_js_output", |b| {
        b.iter(|| {
            let total: f64 = out
                .intermediates
                .iter()
                .map(|c| js_distance(&backend.probabilities(&c.circuit, 0), &ideal))
                .sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_optimizer,
    ablation_frontier,
    ablation_diversity_pruning,
    ablation_selection_metric
);
criterion_main!(benches);
