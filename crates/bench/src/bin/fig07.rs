//! Fig. 7: JS distance over CNOT count for the 5-qubit Toffoli under the
//! Manhattan noise model; random noise sits at JS ~ 0.465.

use qaprox::prelude::*;
use qaprox::toffoli_study::{
    battery_js_transpiled, evaluate_population, random_noise_js, toffoli_target,
};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig07",
        "5q Toffoli, Manhattan noise model: JS vs CNOT count",
        &scale,
    );
    let target = toffoli_target(5);
    let mut wf = scale.workflow_both(5);
    wf.max_hs = 0.6; // 5q MCT is far from shallow circuits; keep the wide stream
    let pop = wf.generate(&target);
    let circuits = cap_population(&pop.circuits, scale.population_cap);
    let backend = device_model_backend("manhattan", 5);
    let scored = evaluate_population(&circuits, &backend);

    // The paper transpiles the reference onto the device (level 1), which
    // inflates its CNOT count with routing SWAPs; evaluate it the same way.
    let device = devices::by_name("manhattan")
        .unwrap()
        .induced(&(0..5).collect::<Vec<_>>());
    let reference = mct_reference(5);
    let (ref_js, routed_cnots) = battery_js_transpiled(
        &reference,
        &device,
        |cal| Backend::Noisy(NoiseModel::from_calibration(cal)),
        0xC0,
    );
    print_scatter("js_distance", ref_js, routed_cnots, &scored);
    println!("# random-noise JS floor: {:.4}", random_noise_js(5));
    println!("# reference ({routed_cnots} CNOTs after routing) JS: {ref_js:.4}");
}
