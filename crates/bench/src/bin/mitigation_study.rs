//! Extension (Related Work question): does readout-error mitigation
//! interfere with the advantage of approximate circuits?

use qaprox::prelude::*;
use qaprox_bench::*;
use qaprox_sim::mitigation::{errors_from_calibration, mitigate_readout};

fn main() {
    let scale = Scale::from_env();
    banner(
        "mitigation_study",
        "approximate-circuit gains with and without readout mitigation",
        &scale,
    );
    let params = TfimParams::paper_defaults(3);
    let pops = qaprox::tfim_study::generate_populations(
        &params,
        scale.tfim_steps.min(12),
        &scale.workflow(3),
    );
    let cal = devices::toronto().induced(&[0, 1, 2]);
    let errors = errors_from_calibration(&cal);
    let backend = Backend::Noisy(NoiseModel::from_calibration(cal));

    println!("step,ref_err_raw,ref_err_mitigated,best_err_raw,best_err_mitigated");
    let mut gains = (0.0f64, 0.0f64);
    let mut rows = 0usize;
    for (i, (reference, population)) in pops.references.iter().zip(&pops.populations).enumerate() {
        let ideal_m = magnetization(&qaprox_sim::statevector::probabilities(reference));
        let raw_ref = backend.probabilities(reference, i as u64);
        let mit_ref = mitigate_readout(&raw_ref, &errors);
        let ref_err_raw = (magnetization(&raw_ref) - ideal_m).abs();
        let ref_err_mit = (magnetization(&mit_ref) - ideal_m).abs();

        let (mut best_raw, mut best_mit) = (f64::INFINITY, f64::INFINITY);
        for (j, ap) in population.circuits.iter().enumerate() {
            let raw = backend.probabilities(&ap.circuit, (i as u64) << 16 | j as u64);
            let mit = mitigate_readout(&raw, &errors);
            best_raw = best_raw.min((magnetization(&raw) - ideal_m).abs());
            best_mit = best_mit.min((magnetization(&mit) - ideal_m).abs());
        }
        println!(
            "{},{ref_err_raw:.4},{ref_err_mit:.4},{best_raw:.4},{best_mit:.4}",
            i + 1
        );
        gains.0 += ref_err_raw - best_raw;
        gains.1 += ref_err_mit - best_mit;
        rows += 1;
    }
    let n = rows.max(1) as f64;
    println!(
        "# mean approximate-circuit gain: raw={:.4} mitigated={:.4}",
        gains.0 / n,
        gains.1 / n
    );
    println!("# (if the mitigated gain stays positive, mitigation composes with approximation)");
}
