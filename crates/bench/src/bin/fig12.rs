//! Fig. 12: 3q TFIM on the (emulated) Manhattan physical machine.
use qaprox_bench::*;
fn main() {
    let scale = Scale::from_env();
    banner("fig12", "3q TFIM on emulated Manhattan hardware", &scale);
    let pops = tfim_populations(3, &scale);
    let backend = hardware_backend("manhattan", 3);
    let results = qaprox::tfim_study::evaluate(&pops, &backend);
    print_tfim_dots(&results, scale.population_cap);
    print_tfim_verdict(&results);
}
