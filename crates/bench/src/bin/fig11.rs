//! Fig. 11: CNOT depth of the best approximate circuit per timestep, for a
//! range of CNOT error levels (Obs. 6: more noise -> shallower winners).

use qaprox::prelude::*;
use qaprox::sweep::{best_depth_series, cx_error_sweep, mean_best_depth, paper_error_levels};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig11",
        "best-circuit CNOT depth vs timestep per CNOT error level",
        &scale,
    );
    let pops = tfim_populations(3, &scale);
    let base = devices::ourense().induced(&[0, 1, 2]);
    let levels = paper_error_levels();
    let sweep = cx_error_sweep(&pops, &base, &levels);
    println!("cx_error,step,best_cnot_depth");
    for (eps, depths) in best_depth_series(&sweep) {
        for (i, d) in depths.iter().enumerate() {
            println!("{eps},{},{d}", i + 1);
        }
    }
    println!("# mean best depth per level (Obs. 6 trend):");
    for (eps, mean) in mean_best_depth(&sweep) {
        println!("# eps={eps:.5} mean_depth={mean:.2}");
    }
}
