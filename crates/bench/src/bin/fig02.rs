//! Fig. 2: magnetization over 21 timesteps of selected (minimal-HS / best)
//! approximate circuits for the 3-qubit TFIM under the Toronto noise model.

use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig02",
        "3q TFIM, Toronto noise model: reference vs selected approximations",
        &scale,
    );
    let pops = tfim_populations(3, &scale);
    let backend = device_model_backend("toronto", 3);
    let results = qaprox::tfim_study::evaluate(&pops, &backend);
    print_tfim_series(&results);
    print_tfim_verdict(&results);
}
