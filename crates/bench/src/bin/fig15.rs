//! Fig. 15: 4q Toffoli on the (emulated) Manhattan physical machine — the
//! reference lands near/under the random-noise floor (JS ~ 0.465).

use qaprox::prelude::*;
use qaprox::toffoli_study::{
    battery_js_transpiled, evaluate_population, random_noise_js, toffoli_target,
};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig15",
        "4q Toffoli on emulated Manhattan hardware: JS vs CNOTs",
        &scale,
    );
    let target = toffoli_target(4);
    let wf = deep_toffoli_workflow(&scale);
    let pop = wf.generate(&target);
    let circuits = cap_population(&pop.circuits, scale.population_cap);
    // heavy-2021 effects: the paper's Fig. 15 hardware drove this workload
    // to the random floor (Obs. 8)
    let cal4 = devices::by_name("manhattan")
        .unwrap()
        .induced(&(0..4).collect::<Vec<_>>());
    let backend = Backend::Hardware(HardwareBackend::with_effects(
        NoiseModel::from_calibration(cal4),
        HardwareEffects::heavy_2021(),
    ));
    let scored = evaluate_population(&circuits, &backend);
    // Transpile the reference onto the device chain (the paper's level-1
    // hardware preparation) and run it through the hardware emulation.
    let device = devices::by_name("manhattan")
        .unwrap()
        .induced(&(0..4).collect::<Vec<_>>());
    let reference = mct_reference(4);
    let (ref_js, routed_cnots) = battery_js_transpiled(
        &reference,
        &device,
        |cal| {
            Backend::Hardware(HardwareBackend::with_effects(
                NoiseModel::from_calibration(cal),
                HardwareEffects::heavy_2021(),
            ))
        },
        0xF15,
    );
    print_scatter("js_distance", ref_js, routed_cnots, &scored);
    let floor = random_noise_js(4);
    println!("# random-noise JS floor: {floor:.4}");
    if let Some(best) = scored.iter().map(|s| s.score).min_by(f64::total_cmp) {
        println!(
            "# best approximate JS: {best:.4} ({:.0}% below reference)",
            (1.0 - best / ref_js) * 100.0
        );
    }
}
