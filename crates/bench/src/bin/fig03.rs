//! Fig. 3: every approximate circuit (dots) for the 3-qubit TFIM under the
//! Toronto noise model.

use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig03",
        "3q TFIM, Toronto noise model: all approximate circuits",
        &scale,
    );
    let pops = tfim_populations(3, &scale);
    let backend = device_model_backend("toronto", 3);
    let results = qaprox::tfim_study::evaluate(&pops, &backend);
    print_tfim_dots(&results, scale.population_cap);
    print_tfim_verdict(&results);
}
