//! Fig. 10: 3q TFIM approximations under the Ourense model, CNOT error 0.24.
use qaprox_bench::*;
fn main() {
    let scale = Scale::from_env();
    run_sweep_figure("fig10", 0.24, &scale);
}
