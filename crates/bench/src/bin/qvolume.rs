//! Roadmap (Sec. 6.5): quantum-volume estimates for every device model.
use qaprox::prelude::*;
use qaprox::qvolume::quantum_volume;
use qaprox_bench::{banner, Scale};

fn main() {
    let scale = Scale::from_env();
    banner(
        "qvolume",
        "quantum volume per device model (roadmap metric)",
        &scale,
    );
    let trials = if scale.tfim_steps < 21 { 4 } else { 16 };
    println!("machine,width,heavy_output_prob,passed,quantum_volume");
    for cal in devices::all_devices() {
        let max_width = cal.topology.num_qubits().min(5);
        let report = quantum_volume(&cal, max_width, trials, 0x9E);
        for p in &report.points {
            println!(
                "{},{},{:.4},{},{}",
                cal.machine, p.width, p.heavy_output_probability, p.passed, report.quantum_volume
            );
        }
    }
}
