//! Fig. 4: all approximate circuits for the 4-qubit TFIM under the Santiago
//! noise model (QSearch + QFast streams).

use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig04",
        "4q TFIM, Santiago noise model: all approximate circuits",
        &scale,
    );
    let pops = tfim_populations(4, &scale);
    let backend = device_model_backend("santiago", 4);
    let results = qaprox::tfim_study::evaluate(&pops, &backend);
    print_tfim_dots(&results, scale.population_cap);
    print_tfim_verdict(&results);
}
