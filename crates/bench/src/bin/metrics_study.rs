//! Extension (Sec. 6.5): how well does each cheap metric predict the true
//! noisy-output error of approximate circuits, across noise levels?

use qaprox::metric_correlation::correlate;
use qaprox::prelude::*;
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "metrics_study",
        "predictive power of HS/JS/KL/TVD/depth vs true noisy error",
        &scale,
    );
    let params = TfimParams::paper_defaults(3);
    let step = scale.tfim_steps.min(8);
    let reference = tfim_circuit(&params, step);
    let mut wf = scale.workflow(3);
    wf.max_hs = 0.35; // wide population: correlation needs spread in quality
    let pop = wf.generate(&qaprox::Workflow::target_unitary(&reference));
    if pop.circuits.len() < 3 {
        println!("# population too thin at this scale; rerun without QAPROX_QUICK");
        return;
    }
    let ideal = qaprox_sim::statevector::probabilities(&reference);
    println!(
        "# population: {} circuits for TFIM step {step}",
        pop.circuits.len()
    );

    println!("cx_error,metric,pearson,spearman");
    let base = devices::ourense().induced(&[0, 1, 2]);
    for eps in [0.0, 0.01, 0.06, 0.12, 0.24] {
        let backend = Backend::Noisy(NoiseModel::from_calibration(
            base.with_uniform_cx_error(eps),
        ));
        for r in correlate(&pop.circuits, &ideal, &backend) {
            println!("{eps},{},{:.3},{:.3}", r.metric, r.pearson, r.spearman);
        }
    }
    println!("# process metrics lose predictive power as noise grows; depth gains it (Obs. 2/6)");
}
