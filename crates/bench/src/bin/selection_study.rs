//! Extension (Obs. 2): which selection strategy picks the best approximate
//! circuit without spending device time on every candidate?

use qaprox::prelude::*;
use qaprox::selection::{compare_selectors, regret, SelectionContext, Selector};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "selection_study",
        "selection strategies vs the oracle (Obs. 2)",
        &scale,
    );
    let params = TfimParams::paper_defaults(3);
    let pops = qaprox::tfim_study::generate_populations(
        &params,
        scale.tfim_steps.min(12),
        &scale.workflow(3),
    );
    let base = devices::ourense().induced(&[0, 1, 2]);

    println!("cx_error,step,selector,chosen_cnots,chosen_hs,true_tvd,regret");
    for eps in [0.01, 0.06, 0.12] {
        let backend = Backend::Noisy(NoiseModel::from_calibration(
            base.with_uniform_cx_error(eps),
        ));
        let selectors = vec![
            Selector::MinHs,
            Selector::CnotBudget(3),
            Selector::DepthPenalized(eps),
            Selector::ProxyNoise { cx_error: eps },
            Selector::Oracle,
        ];
        for (i, (reference, population)) in
            pops.references.iter().zip(&pops.populations).enumerate()
        {
            if population.circuits.is_empty() {
                continue;
            }
            let ideal = qaprox_sim::statevector::probabilities(reference);
            let ctx = SelectionContext {
                ideal: &ideal,
                backend: &backend,
            };
            let outcomes = compare_selectors(&selectors, &population.circuits, &ctx);
            let regrets = regret(&outcomes);
            for (o, (_, r)) in outcomes.iter().zip(&regrets) {
                println!(
                    "{eps},{},{},{},{:.4},{:.4},{:.4}",
                    i + 1,
                    o.selector,
                    o.chosen.cnots,
                    o.chosen.hs_distance,
                    o.chosen.score,
                    r
                );
            }
        }
    }
    println!("# lower regret = better proxy for real-device selection");
}
