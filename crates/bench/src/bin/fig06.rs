//! Fig. 6: JS distance over CNOT count for the 4-qubit Toffoli under the
//! Manhattan noise model; Qiskit reference (orange) and QFast default (red).

use qaprox::prelude::*;
use qaprox::toffoli_study::{
    battery_js, battery_js_transpiled, evaluate_population, random_noise_js, toffoli_target,
};
use qaprox_bench::*;

fn main() {
    let scale = Scale::from_env();
    banner(
        "fig06",
        "4q Toffoli, Manhattan noise model: JS vs CNOT count",
        &scale,
    );
    let target = toffoli_target(4);
    let wf = deep_toffoli_workflow(&scale);
    let pop = wf.generate(&target);
    let circuits = cap_population(&pop.circuits, scale.population_cap);
    let backend = device_model_backend("manhattan", 4);
    let scored = evaluate_population(&circuits, &backend);

    // The paper transpiles the reference onto the device (level 1), which
    // inflates its CNOT count with routing SWAPs; evaluate it the same way.
    let device = devices::by_name("manhattan")
        .unwrap()
        .induced(&(0..4).collect::<Vec<_>>());
    let reference = mct_reference(4);
    let (ref_js, routed_cnots) = battery_js_transpiled(
        &reference,
        &device,
        |cal| Backend::Noisy(NoiseModel::from_calibration(cal)),
        0xA0,
    );
    print_scatter("js_distance", ref_js, routed_cnots, &scored);

    // the QFast default (its best exact-ish output)
    let qf = qfast(&target, &Topology::linear(4), &scale.qfast_config());
    let qf_js = battery_js(&qf.best.circuit, &backend, 0xB0);
    println!(
        "qfast_default,{},{:.5},{:.4}",
        qf.best.cnots, qf.best.hs_distance, qf_js
    );
    println!("# random-noise JS floor: {:.4}", random_noise_js(4));
    let better = scored.iter().filter(|s| s.score < ref_js).count();
    println!(
        "# {better}/{} approximations beat the Qiskit reference",
        scored.len()
    );
}
