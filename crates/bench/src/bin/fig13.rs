//! Fig. 13: 4q TFIM on the (emulated) Manhattan physical machine.
use qaprox_bench::*;
fn main() {
    let scale = Scale::from_env();
    banner("fig13", "4q TFIM on emulated Manhattan hardware", &scale);
    let pops = tfim_populations(4, &scale);
    let backend = hardware_backend("manhattan", 4);
    let results = qaprox::tfim_study::evaluate(&pops, &backend);
    print_tfim_dots(&results, scale.population_cap);
    print_tfim_verdict(&results);
}
