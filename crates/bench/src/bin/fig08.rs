//! Fig. 8: 3q TFIM approximations under the Ourense model with CNOT error 0.
use qaprox_bench::*;
fn main() {
    let scale = Scale::from_env();
    run_sweep_figure("fig08", 0.0, &scale);
}
