//! Fig. 17: 4q Toffoli on Toronto, best manual mapping (the blue circle).
use qaprox_bench::*;
fn main() {
    mapping_figure("fig17", 0);
}
