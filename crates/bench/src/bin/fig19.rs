//! Fig. 19: 4q Toffoli on Toronto, automatic level-3 mapping per circuit.
use qaprox_bench::*;
fn main() {
    mapping_figure("fig19", usize::MAX);
}
