//! Fig. 18: 4q Toffoli on Toronto, worst manual mapping (the red circle).
use qaprox_bench::*;
fn main() {
    mapping_figure("fig18", 1);
}
